#include "c2b/exec/disk_tier.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "c2b/obs/obs.h"

namespace c2b::exec {
namespace {

// FNV-1a64, the trace-v2 checksum discipline (trace_io.cpp).
constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = kFnvOffsetBasis;
  for (std::size_t i = 0; i < size; ++i)
    hash = (hash ^ static_cast<unsigned char>(data[i])) * kFnvPrime;
  return hash;
}

// Record: [magic "C2BR"][u32 schema][u32 key_len][u64 time bits]
//         [u64 memory_accesses][key bytes][u64 FNV-1a64 of all prior bytes].
// Integers are explicit little-endian so a record's bytes mean the same
// thing regardless of how the compiler lays out structs.
constexpr char kMagic[4] = {'C', '2', 'B', 'R'};
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 8 + 8;
constexpr std::size_t kTrailerSize = 8;
constexpr std::size_t kMaxKeyLen = 1 << 20;

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t read_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t read_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::string encode_record(const std::string& key, const SimCache::Value& value) {
  std::string out;
  out.reserve(kHeaderSize + key.size() + kTrailerSize);
  out.append(kMagic, sizeof kMagic);
  append_u32(out, kSimCacheSchemaVersion);
  append_u32(out, static_cast<std::uint32_t>(key.size()));
  std::uint64_t time_bits = 0;
  std::memcpy(&time_bits, &value.time, sizeof time_bits);
  append_u64(out, time_bits);
  append_u64(out, value.memory_accesses);
  out.append(key);
  append_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

std::string read_file(const std::filesystem::path& path) {
  std::string bytes;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return bytes;
  char buffer[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) bytes.append(buffer, got);
  std::fclose(file);
  return bytes;
}

}  // namespace

struct DiskTier::Impl {
  std::string dir;
  Options options;

  mutable std::mutex index_mutex;
  std::unordered_map<std::string, SimCache::Value> index;

  std::mutex queue_mutex;
  std::condition_variable queue_cv;    ///< wakes the flusher
  std::condition_variable drained_cv;  ///< wakes flush() waiters
  std::vector<std::pair<std::string, SimCache::Value>> pending;
  bool writing = false;  ///< a popped batch is being appended right now
  bool stopping = false;

  std::mutex write_mutex;              ///< serializes segment appends
  std::vector<std::FILE*> segments;    ///< lazily opened append handles
  std::thread flusher;

  std::atomic<std::uint64_t> loaded{0};
  std::atomic<std::uint64_t> appended{0};
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> flushes{0};

  void count_drops(std::uint64_t n) {
    if (n == 0) return;
    drops.fetch_add(n, std::memory_order_relaxed);
    C2B_COUNTER_ADD("exec.simcache.disk.drop", static_cast<long long>(n));
  }

  void publish_entries() {
    C2B_GAUGE_SET("exec.simcache.disk.entries", static_cast<double>(index.size()));
  }

  /// Scans one segment's bytes, recovering every intact, current-schema
  /// record (later records override earlier ones — last write wins, same as
  /// the in-memory tier). Each failed parse counts one drop and resyncs at
  /// the next magic occurrence, so a single flipped bit loses at most the
  /// records it physically touches.
  void load_segment(const std::string& bytes) {
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      const std::size_t remaining = bytes.size() - pos;
      bool corrupt = false;
      if (remaining < kHeaderSize + kTrailerSize) {
        count_drops(1);  // torn tail
        return;
      }
      std::size_t key_len = 0;
      if (std::memcmp(bytes.data() + pos, kMagic, sizeof kMagic) != 0) {
        corrupt = true;
      } else {
        key_len = read_u32(bytes.data() + pos + 8);
        if (key_len > kMaxKeyLen || kHeaderSize + key_len + kTrailerSize > remaining) {
          corrupt = true;  // implausible length or record runs past EOF
        } else {
          const std::size_t body = kHeaderSize + key_len;
          const std::uint64_t stored = read_u64(bytes.data() + pos + body);
          if (stored != fnv1a(bytes.data() + pos, body)) corrupt = true;
        }
      }
      if (corrupt) {
        count_drops(1);
        // Resync: scan forward for the next full magic occurrence; without
        // one the rest of the segment is unrecoverable.
        std::size_t at = bytes.find(kMagic[0], pos + 1);
        while (at != std::string::npos && bytes.size() - at >= sizeof kMagic &&
               std::memcmp(bytes.data() + at, kMagic, sizeof kMagic) != 0) {
          at = bytes.find(kMagic[0], at + 1);
        }
        if (at == std::string::npos || bytes.size() - at < sizeof kMagic) return;
        pos = at;
        continue;
      }
      const std::uint32_t schema = read_u32(bytes.data() + pos + 4);
      const char* key_data = bytes.data() + pos + kHeaderSize;
      if (schema != kSimCacheSchemaVersion) {
        count_drops(1);  // stale record from an older build — self-invalidates
      } else {
        SimCache::Value value;
        const std::uint64_t time_bits = read_u64(bytes.data() + pos + 12);
        std::memcpy(&value.time, &time_bits, sizeof value.time);
        value.memory_accesses = read_u64(bytes.data() + pos + 20);
        index[std::string(key_data, key_len)] = value;
        loaded.fetch_add(1, std::memory_order_relaxed);
      }
      pos += kHeaderSize + key_len + kTrailerSize;
    }
  }

  std::FILE* segment_handle(std::size_t slot) {
    if (segments[slot] == nullptr) {
      const std::string path = dir + "/" + DiskTier::segment_name(slot);
      segments[slot] = std::fopen(path.c_str(), "ab");
    }
    return segments[slot];
  }

  void write_batch(const std::vector<std::pair<std::string, SimCache::Value>>& batch) {
    std::lock_guard<std::mutex> lock(write_mutex);
    // Group appends by segment so each file is touched once per round.
    std::vector<std::string> buffers(options.segment_count);
    for (const auto& [key, value] : batch) {
      const std::size_t slot = std::hash<std::string>{}(key) % options.segment_count;
      buffers[slot] += encode_record(key, value);
    }
    for (std::size_t slot = 0; slot < buffers.size(); ++slot) {
      if (buffers[slot].empty()) continue;
      std::FILE* file = segment_handle(slot);
      if (file == nullptr ||
          std::fwrite(buffers[slot].data(), 1, buffers[slot].size(), file) !=
              buffers[slot].size() ||
          std::fflush(file) != 0) {
        count_drops(1);  // the affected round's records may be torn; recovery skips them
        continue;
      }
    }
    appended.fetch_add(batch.size(), std::memory_order_relaxed);
    flushes.fetch_add(1, std::memory_order_relaxed);
    C2B_COUNTER_INC("exec.simcache.disk.flush");
  }

  void flusher_loop() {
    for (;;) {
      std::unique_lock<std::mutex> lock(queue_mutex);
      queue_cv.wait(lock, [&] { return stopping || !pending.empty(); });
      if (pending.empty()) return;  // stopping and drained
      auto batch = std::move(pending);
      pending.clear();
      writing = true;
      lock.unlock();
      write_batch(batch);
      lock.lock();
      writing = false;
      drained_cv.notify_all();
    }
  }
};

DiskTier::DiskTier() : impl_(new Impl) {}

std::unique_ptr<DiskTier> DiskTier::open(const std::string& dir) {
  return open(dir, Options{});
}

std::unique_ptr<DiskTier> DiskTier::open(const std::string& dir, Options options) {
  namespace fs = std::filesystem;
  if (options.segment_count == 0) options.segment_count = 1;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir, ec) || ec) return nullptr;

  std::unique_ptr<DiskTier> tier(new DiskTier());
  tier->impl_->dir = dir;
  tier->impl_->options = options;
  tier->impl_->segments.assign(options.segment_count, nullptr);

  // Startup recovery: stream every segment present, whatever segment_count
  // wrote it. Segment names are sorted so recovery order (and therefore
  // which record wins a duplicate key) is deterministic.
  std::vector<fs::path> segment_paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0 && name.size() > 4 &&
        name.compare(name.size() - 4, 4, ".c2b") == 0) {
      segment_paths.push_back(entry.path());
    }
  }
  std::sort(segment_paths.begin(), segment_paths.end());
  for (const auto& path : segment_paths) tier->impl_->load_segment(read_file(path));
  tier->impl_->publish_entries();

  Impl* impl = tier->impl_.get();
  impl->flusher = std::thread([impl] { impl->flusher_loop(); });
  return tier;
}

DiskTier::~DiskTier() {
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    impl_->stopping = true;
  }
  impl_->queue_cv.notify_all();
  if (impl_->flusher.joinable()) impl_->flusher.join();
  for (std::FILE* file : impl_->segments)
    if (file != nullptr) std::fclose(file);
}

std::optional<SimCache::Value> DiskTier::find(const std::string& key) const {
  std::lock_guard<std::mutex> lock(impl_->index_mutex);
  const auto it = impl_->index.find(key);
  if (it == impl_->index.end()) return std::nullopt;
  return it->second;
}

void DiskTier::find_many(const std::vector<std::string>& keys,
                         const std::vector<std::size_t>& indices,
                         std::vector<std::optional<SimCache::Value>>& out,
                         std::uint64_t& found, std::uint64_t& missed) const {
  std::lock_guard<std::mutex> lock(impl_->index_mutex);
  for (const std::size_t i : indices) {
    const auto it = impl_->index.find(keys[i]);
    if (it == impl_->index.end()) {
      ++missed;
    } else {
      out[i] = it->second;
      ++found;
    }
  }
}

void DiskTier::enqueue(const std::string& key, const SimCache::Value& value) {
  {
    std::lock_guard<std::mutex> lock(impl_->index_mutex);
    const auto [it, inserted] = impl_->index.try_emplace(key, value);
    (void)it;
    if (!inserted) return;  // already persisted (or queued) — no re-append
    impl_->publish_entries();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    if (impl_->pending.size() >= impl_->options.queue_limit) {
      // Overload: drop the append (counted), keep the index entry. The
      // record is served from RAM this run and recomputed after restart.
      impl_->count_drops(1);
      return;
    }
    impl_->pending.emplace_back(key, value);
  }
  impl_->queue_cv.notify_one();
}

void DiskTier::flush() {
  std::unique_lock<std::mutex> lock(impl_->queue_mutex);
  while (!impl_->pending.empty() || impl_->writing) {
    if (!impl_->pending.empty()) {
      auto batch = std::move(impl_->pending);
      impl_->pending.clear();
      lock.unlock();
      impl_->write_batch(batch);
      lock.lock();
    } else {
      impl_->drained_cv.wait(lock);
    }
  }
}

DiskTierStats DiskTier::stats() const {
  DiskTierStats out;
  {
    std::lock_guard<std::mutex> lock(impl_->index_mutex);
    out.entries = impl_->index.size();
  }
  out.loaded = impl_->loaded.load(std::memory_order_relaxed);
  out.appended = impl_->appended.load(std::memory_order_relaxed);
  out.drops = impl_->drops.load(std::memory_order_relaxed);
  out.flushes = impl_->flushes.load(std::memory_order_relaxed);
  return out;
}

std::size_t DiskTier::entries() const {
  std::lock_guard<std::mutex> lock(impl_->index_mutex);
  return impl_->index.size();
}

std::string DiskTier::segment_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "seg-%02zu.c2b", index);
  return buf;
}

}  // namespace c2b::exec
