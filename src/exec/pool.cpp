#include "c2b/exec/pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "c2b/common/assert.h"
#include "c2b/obs/context.h"
#include "c2b/obs/journal.h"
#include "c2b/obs/obs.h"

namespace c2b::exec {
namespace {

/// Fork nesting depth of the current thread. Non-zero means we are already
/// inside a parallel_for chunk (as a worker or as the caller executing its
/// own share), so further forks run inline serially.
thread_local int tls_fork_depth = 0;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("C2B_THREADS")) {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && value >= 1) return static_cast<std::size_t>(value);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;
std::size_t g_configured_threads = 0;  // 0 = default (env / hardware)

}  // namespace

struct ThreadPool::Impl {
  /// One fork-join invocation: chunks reference it until the last one
  /// finishes and wakes the caller.
  struct Batch {
    const ChunkBody* body = nullptr;
    /// The submitting thread's journal/progress, installed around every
    /// chunk of this batch: with concurrent submitters (c2b serve), a
    /// worker may interleave chunks from different jobs, and each chunk's
    /// instrumentation must land in its own job's flight record.
    obs::ObsContext context;
    std::atomic<std::size_t> remaining{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  struct Chunk {
    Batch* batch = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// One worker's queue. The owner pops from the front; thieves take from
  /// the back, so stolen work is the coldest.
  struct Queue {
    std::mutex mutex;
    std::deque<Chunk> chunks;
  };

  std::vector<std::unique_ptr<Queue>> queues;  // one per worker thread
  std::vector<std::thread> workers;
  std::mutex work_mutex;
  std::condition_variable work_cv;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> queued{0};  // chunks sitting in worker queues
  std::atomic<std::uint64_t> steals{0};

  void run_chunk(const Chunk& chunk) noexcept {
    ++tls_fork_depth;
    try {
      const obs::ScopedObsContext obs_scope(chunk.batch->context);
      (*chunk.batch->body)(chunk.begin, chunk.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(chunk.batch->error_mutex);
      if (!chunk.batch->error) chunk.batch->error = std::current_exception();
    }
    --tls_fork_depth;
    // Decrement under done_mutex: the caller evaluates its wait predicate
    // while holding the same mutex, so it cannot observe remaining == 0 and
    // destroy the stack-allocated Batch while this thread is still between
    // the decrement and the notify. After the guard releases, `chunk.batch`
    // may be gone — touch nothing past this block.
    Batch* const batch = chunk.batch;
    std::lock_guard<std::mutex> lock(batch->done_mutex);
    if (batch->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
      batch->done_cv.notify_all();
  }

  bool try_pop(std::size_t queue_index, Chunk* out, bool from_front) {
    Queue& queue = *queues[queue_index];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.chunks.empty()) return false;
    if (from_front) {
      *out = queue.chunks.front();
      queue.chunks.pop_front();
    } else {
      *out = queue.chunks.back();
      queue.chunks.pop_back();
    }
    queued.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Grab work as worker `self` (own queue first, then steal). Pass
  /// self == queues.size() for the caller thread, which owns no queue and
  /// only steals (its own share never entered a queue).
  bool acquire(std::size_t self, Chunk* out) {
    if (self < queues.size() && try_pop(self, out, /*from_front=*/true)) return true;
    for (std::size_t i = 0; i < queues.size(); ++i) {
      if (i == self) continue;
      if (try_pop(i, out, /*from_front=*/false)) {
        if (self < queues.size()) {
          // Only a worker taking from a sibling is a steal. The caller
          // draining leftovers is the normal fork-join epilogue (it owns no
          // queue), so it gets its own counter instead of inflating the
          // contention metric.
          steals.fetch_add(1, std::memory_order_relaxed);
          C2B_COUNTER_INC("exec.pool.steals");
        } else {
          C2B_COUNTER_INC("exec.pool.caller_drains");
        }
        return true;
      }
    }
    return false;
  }

  void worker_main(std::size_t self) {
    for (;;) {
      Chunk chunk;
      if (acquire(self, &chunk)) {
        run_chunk(chunk);
        continue;
      }
      std::unique_lock<std::mutex> lock(work_mutex);
      work_cv.wait(lock, [&] {
        return stop.load(std::memory_order_relaxed) ||
               queued.load(std::memory_order_relaxed) > 0;
      });
      if (stop.load(std::memory_order_relaxed) &&
          queued.load(std::memory_order_relaxed) == 0)
        return;
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl), thread_count_(threads) {
  C2B_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  const std::size_t worker_count = threads - 1;
  impl_->queues.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i)
    impl_->queues.push_back(std::make_unique<Impl::Queue>());
  impl_->workers.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i)
    impl_->workers.emplace_back([this, i] { impl_->worker_main(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->work_mutex);
    impl_->stop.store(true, std::memory_order_relaxed);
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

std::uint64_t ThreadPool::steal_count() const noexcept {
  return impl_->steals.load(std::memory_order_relaxed);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, const ChunkBody& body,
                              std::size_t grain) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  // Chunk layout is a function of (count, grain, thread_count) only —
  // identical for every run at a given configuration, and each index lands
  // in exactly one chunk.
  const std::size_t target_chunks = thread_count_ * 4;
  const std::size_t chunk_size =
      std::max<std::size_t>(grain == 0 ? 1 : grain, (count + target_chunks - 1) / target_chunks);
  const std::size_t chunk_count = (count + chunk_size - 1) / chunk_size;
  auto chunk_range = [&](std::size_t c) {
    const std::size_t lo = begin + c * chunk_size;
    return std::pair<std::size_t, std::size_t>{lo, std::min(end, lo + chunk_size)};
  };

  const std::size_t worker_count = impl_->queues.size();
  if (worker_count == 0 || tls_fork_depth > 0 || chunk_count == 1) {
    // Exact serial fallback (threads=1, nested fork, or trivially small):
    // same chunks, ascending order, on this thread; exceptions propagate.
    ++tls_fork_depth;
    try {
      for (std::size_t c = 0; c < chunk_count; ++c) {
        const auto [lo, hi] = chunk_range(c);
        body(lo, hi);
      }
    } catch (...) {
      --tls_fork_depth;
      throw;
    }
    --tls_fork_depth;
    return;
  }

  Impl::Batch batch;
  batch.body = &body;
  batch.context = obs::capture_context();
  batch.remaining.store(chunk_count, std::memory_order_relaxed);

  // Deal chunks round-robin across executors: slot 0 is the caller's local
  // share (never queued), slots 1..worker_count feed the worker queues.
  std::vector<Impl::Chunk> local;
  const std::size_t executors = worker_count + 1;
  {
    std::size_t pushed = 0;
    for (std::size_t c = 0; c < chunk_count; ++c) {
      const auto [lo, hi] = chunk_range(c);
      const Impl::Chunk chunk{&batch, lo, hi};
      const std::size_t slot = c % executors;
      if (slot == 0) {
        local.push_back(chunk);
      } else {
        Impl::Queue& queue = *impl_->queues[slot - 1];
        std::lock_guard<std::mutex> lock(queue.mutex);
        queue.chunks.push_back(chunk);
        ++pushed;
      }
    }
    // Publish `queued` under work_mutex (mirroring the stop flag in the
    // destructor): a worker evaluates its wait predicate while holding the
    // same mutex, so it either sees the new count or is not yet blocked and
    // will be reached by the notify below — no lost wakeup.
    {
      std::lock_guard<std::mutex> lock(impl_->work_mutex);
      impl_->queued.fetch_add(pushed, std::memory_order_relaxed);
    }
    C2B_COUNTER_ADD("exec.pool.chunks", chunk_count);
    C2B_GAUGE_SET("exec.pool.queue_depth", static_cast<double>(pushed));
  }
  impl_->work_cv.notify_all();

  // The caller is executor 0: run its share, then help drain the queues,
  // then sleep until the stragglers finish.
  for (const Impl::Chunk& chunk : local) impl_->run_chunk(chunk);
  Impl::Chunk chunk;
  while (impl_->acquire(impl_->queues.size(), &chunk)) impl_->run_chunk(chunk);
  {
    std::unique_lock<std::mutex> lock(batch.done_mutex);
    batch.done_cv.wait(lock,
                       [&] { return batch.remaining.load(std::memory_order_acquire) == 0; });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    const std::size_t threads =
        g_configured_threads > 0 ? g_configured_threads : default_thread_count();
    g_global_pool = std::make_unique<ThreadPool>(threads);
    C2B_GAUGE_SET("exec.pool.threads", static_cast<double>(threads));
    if (auto* journal = obs::active_journal())
      journal->emit(obs::JournalEvent("pool_start")
                        .count("threads", static_cast<std::uint64_t>(threads)));
  }
  return *g_global_pool;
}

void set_thread_count(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_configured_threads = threads;
  g_global_pool.reset();  // rebuilt lazily with the new size
}

std::size_t thread_count() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (g_global_pool) return g_global_pool->thread_count();
  return g_configured_threads > 0 ? g_configured_threads : default_thread_count();
}

}  // namespace c2b::exec
