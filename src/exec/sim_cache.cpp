#include "c2b/exec/sim_cache.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "c2b/common/assert.h"
#include "c2b/obs/obs.h"

namespace c2b::exec {
namespace {

constexpr std::size_t kShardCount = 16;

bool env_disables_cache() {
  const char* env = std::getenv("C2B_SIM_CACHE");
  return env != nullptr && env[0] == '0' && env[1] == '\0';
}

}  // namespace

struct SimCache::Impl {
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Value> entries;
    std::deque<std::string> order;  // FIFO eviction
  };

  std::array<Shard, kShardCount> shards;
  std::size_t shard_capacity = 0;
  std::atomic<bool> enabled{true};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> entry_count{0};  ///< live entries across shards

  void publish_entry_count() {
    C2B_GAUGE_SET("exec.simcache.entries",
                  static_cast<double>(entry_count.load(std::memory_order_relaxed)));
  }

  Shard& shard_for(const std::string& key) {
    return shards[std::hash<std::string>{}(key) % kShardCount];
  }
};

SimCache::SimCache(std::size_t capacity) : impl_(new Impl) {
  C2B_REQUIRE(capacity >= kShardCount, "cache capacity below shard count");
  impl_->shard_capacity = capacity / kShardCount;
  if (env_disables_cache()) impl_->enabled.store(false, std::memory_order_relaxed);
}

SimCache::~SimCache() { delete impl_; }

bool SimCache::enabled() const noexcept {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void SimCache::set_enabled(bool on) noexcept {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

std::optional<SimCache::Value> SimCache::find(const std::string& key) {
  if (!enabled()) return std::nullopt;
  Impl::Shard& shard = impl_->shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    impl_->misses.fetch_add(1, std::memory_order_relaxed);
    C2B_COUNTER_INC("exec.simcache.miss");
    return std::nullopt;
  }
  impl_->hits.fetch_add(1, std::memory_order_relaxed);
  C2B_COUNTER_INC("exec.simcache.hit");
  return it->second;
}

void SimCache::insert(const std::string& key, const Value& value) {
  if (!enabled()) return;
  Impl::Shard& shard = impl_->shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.entries.insert_or_assign(key, value);
  (void)it;
  if (!inserted) return;  // concurrent recompute of the same key
  impl_->entry_count.fetch_add(1, std::memory_order_relaxed);
  shard.order.push_back(key);
  while (shard.entries.size() > impl_->shard_capacity) {
    shard.entries.erase(shard.order.front());
    shard.order.pop_front();
    impl_->entry_count.fetch_sub(1, std::memory_order_relaxed);
    impl_->evictions.fetch_add(1, std::memory_order_relaxed);
    C2B_COUNTER_INC("exec.simcache.evict");
  }
  impl_->publish_entry_count();
}

void SimCache::insert_many(const std::vector<std::pair<std::string, Value>>& entries) {
  if (!enabled() || entries.empty()) return;
  std::array<std::vector<const std::pair<std::string, Value>*>, kShardCount> by_shard;
  for (const auto& entry : entries) {
    const std::size_t idx = std::hash<std::string>{}(entry.first) % kShardCount;
    by_shard[idx].push_back(&entry);
  }
  for (std::size_t idx = 0; idx < kShardCount; ++idx) {
    if (by_shard[idx].empty()) continue;
    Impl::Shard& shard = impl_->shards[idx];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto* entry : by_shard[idx]) {
      const auto [it, inserted] = shard.entries.insert_or_assign(entry->first, entry->second);
      (void)it;
      if (!inserted) continue;
      impl_->entry_count.fetch_add(1, std::memory_order_relaxed);
      shard.order.push_back(entry->first);
      while (shard.entries.size() > impl_->shard_capacity) {
        shard.entries.erase(shard.order.front());
        shard.order.pop_front();
        impl_->entry_count.fetch_sub(1, std::memory_order_relaxed);
        impl_->evictions.fetch_add(1, std::memory_order_relaxed);
        C2B_COUNTER_INC("exec.simcache.evict");
      }
    }
  }
  impl_->publish_entry_count();
}

void SimCache::clear() {
  for (Impl::Shard& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
    shard.order.clear();
  }
  impl_->hits.store(0, std::memory_order_relaxed);
  impl_->misses.store(0, std::memory_order_relaxed);
  impl_->evictions.store(0, std::memory_order_relaxed);
  impl_->entry_count.store(0, std::memory_order_relaxed);
  impl_->publish_entry_count();
}

SimCacheStats SimCache::stats() const {
  SimCacheStats out;
  out.hits = impl_->hits.load(std::memory_order_relaxed);
  out.misses = impl_->misses.load(std::memory_order_relaxed);
  out.evictions = impl_->evictions.load(std::memory_order_relaxed);
  for (const Impl::Shard& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.entries += shard.entries.size();
  }
  return out;
}

SimCache& SimCache::global() {
  static SimCache instance;
  return instance;
}

}  // namespace c2b::exec
