#include "c2b/exec/sim_cache.h"

#include <array>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "c2b/common/assert.h"
#include "c2b/exec/disk_tier.h"
#include "c2b/obs/obs.h"

namespace c2b::exec {
namespace {

constexpr std::size_t kShardCount = 16;

bool env_disables_cache() {
  const char* env = std::getenv("C2B_SIM_CACHE");
  return env != nullptr && env[0] == '0' && env[1] == '\0';
}

}  // namespace

struct SimCache::Impl {
  struct Entry {
    Value value;
    bool referenced = false;  ///< set on hit, cleared by the clock hand
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> entries;
    std::deque<std::string> order;  ///< clock queue (second-chance)
  };

  std::array<Shard, kShardCount> shards;
  std::size_t shard_capacity = 0;
  std::atomic<bool> enabled{true};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> disk_hits{0};
  std::atomic<std::uint64_t> disk_misses{0};
  std::atomic<std::uint64_t> entry_count{0};  ///< live entries across shards

  mutable std::mutex disk_mutex;      ///< guards the shared_ptr, not the tier
  std::shared_ptr<DiskTier> disk;

  std::shared_ptr<DiskTier> disk_tier() const {
    std::lock_guard<std::mutex> lock(disk_mutex);
    return disk;
  }

  void publish_entry_count() {
    C2B_GAUGE_SET("exec.simcache.entries",
                  static_cast<double>(entry_count.load(std::memory_order_relaxed)));
  }

  static std::size_t shard_index(const std::string& key) {
    return std::hash<std::string>{}(key) % kShardCount;
  }

  Shard& shard_for(const std::string& key) { return shards[shard_index(key)]; }

  /// Second-chance eviction: the entry at the clock hand is evicted unless
  /// its referenced bit is set, in which case the bit is cleared and the
  /// entry rotates to the back for one more cycle. Terminates in at most
  /// two passes (the first pass clears every bit it skips). Caller holds
  /// the shard mutex.
  void evict_one(Shard& shard) {
    for (;;) {
      const auto it = shard.entries.find(shard.order.front());
      C2B_ASSERT(it != shard.entries.end(), "clock queue references a missing key");
      if (it->second.referenced) {
        it->second.referenced = false;
        shard.order.push_back(std::move(shard.order.front()));
        shard.order.pop_front();
        continue;
      }
      shard.entries.erase(it);
      shard.order.pop_front();
      entry_count.fetch_sub(1, std::memory_order_relaxed);
      evictions.fetch_add(1, std::memory_order_relaxed);
      C2B_COUNTER_INC("exec.simcache.evict");
      return;
    }
  }

  /// Inserts into the memory tier only (no disk enqueue): the shared body
  /// of insert(), insert_many(), and disk-hit promotion. Caller holds the
  /// shard mutex. Returns true when the key was new.
  bool insert_locked(Shard& shard, const std::string& key, const Value& value) {
    const auto [it, inserted] = shard.entries.insert_or_assign(key, Entry{value, false});
    (void)it;
    if (!inserted) return false;  // concurrent recompute of the same key
    entry_count.fetch_add(1, std::memory_order_relaxed);
    shard.order.push_back(key);
    while (shard.entries.size() > shard_capacity) evict_one(shard);
    return true;
  }
};

SimCache::SimCache(std::size_t capacity) : impl_(new Impl) {
  C2B_REQUIRE(capacity >= kShardCount, "cache capacity below shard count");
  impl_->shard_capacity = capacity / kShardCount;
  if (env_disables_cache()) impl_->enabled.store(false, std::memory_order_relaxed);
}

SimCache::~SimCache() { delete impl_; }

bool SimCache::enabled() const noexcept {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void SimCache::set_enabled(bool on) noexcept {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

std::optional<SimCache::Value> SimCache::find(const std::string& key) {
  if (!enabled()) return std::nullopt;
  Impl::Shard& shard = impl_->shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      it->second.referenced = true;
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      C2B_COUNTER_INC("exec.simcache.hit");
      return it->second.value;
    }
  }
  // Memory miss: fall through to the disk tier before declaring a miss.
  if (const auto disk = impl_->disk_tier()) {
    if (const auto value = disk->find(key)) {
      impl_->disk_hits.fetch_add(1, std::memory_order_relaxed);
      C2B_COUNTER_INC("exec.simcache.disk.hit");
      std::lock_guard<std::mutex> lock(shard.mutex);
      impl_->insert_locked(shard, key, *value);  // promote
      impl_->publish_entry_count();
      return value;
    }
    impl_->disk_misses.fetch_add(1, std::memory_order_relaxed);
    C2B_COUNTER_INC("exec.simcache.disk.miss");
  }
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  C2B_COUNTER_INC("exec.simcache.miss");
  return std::nullopt;
}

std::vector<std::optional<SimCache::Value>> SimCache::find_many(
    const std::vector<std::string>& keys, std::uint64_t* disk_hits) {
  std::vector<std::optional<Value>> out(keys.size());
  if (disk_hits != nullptr) *disk_hits = 0;
  if (!enabled() || keys.empty()) return out;

  std::array<std::vector<std::size_t>, kShardCount> by_shard;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (keys[i].empty()) continue;  // uncacheable (uid-less workload)
    by_shard[Impl::shard_index(keys[i])].push_back(i);
  }

  std::uint64_t mem_hits = 0;
  std::vector<std::size_t> missed;
  for (std::size_t idx = 0; idx < kShardCount; ++idx) {
    if (by_shard[idx].empty()) continue;
    Impl::Shard& shard = impl_->shards[idx];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const std::size_t i : by_shard[idx]) {
      const auto it = shard.entries.find(keys[i]);
      if (it != shard.entries.end()) {
        it->second.referenced = true;
        out[i] = it->second.value;
        ++mem_hits;
      } else {
        missed.push_back(i);
      }
    }
  }
  if (mem_hits > 0) {
    impl_->hits.fetch_add(mem_hits, std::memory_order_relaxed);
    C2B_COUNTER_ADD("exec.simcache.hit", static_cast<long long>(mem_hits));
  }

  std::uint64_t full_misses = static_cast<std::uint64_t>(missed.size());
  if (const auto disk = impl_->disk_tier(); disk != nullptr && !missed.empty()) {
    std::uint64_t disk_found = 0;
    std::uint64_t disk_missed = 0;
    disk->find_many(keys, missed, out, disk_found, disk_missed);
    if (disk_hits != nullptr) *disk_hits = disk_found;
    if (disk_found > 0) {
      impl_->disk_hits.fetch_add(disk_found, std::memory_order_relaxed);
      C2B_COUNTER_ADD("exec.simcache.disk.hit", static_cast<long long>(disk_found));
      // Promote the disk hits, again one shard lock per shard.
      std::array<std::vector<std::size_t>, kShardCount> promote;
      for (const std::size_t i : missed)
        if (out[i].has_value()) promote[Impl::shard_index(keys[i])].push_back(i);
      for (std::size_t idx = 0; idx < kShardCount; ++idx) {
        if (promote[idx].empty()) continue;
        Impl::Shard& shard = impl_->shards[idx];
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (const std::size_t i : promote[idx])
          impl_->insert_locked(shard, keys[i], *out[i]);
      }
      impl_->publish_entry_count();
    }
    if (disk_missed > 0) {
      impl_->disk_misses.fetch_add(disk_missed, std::memory_order_relaxed);
      C2B_COUNTER_ADD("exec.simcache.disk.miss", static_cast<long long>(disk_missed));
    }
    full_misses = disk_missed;
  }
  if (full_misses > 0) {
    impl_->misses.fetch_add(full_misses, std::memory_order_relaxed);
    C2B_COUNTER_ADD("exec.simcache.miss", static_cast<long long>(full_misses));
  }
  return out;
}

void SimCache::insert(const std::string& key, const Value& value) {
  if (!enabled()) return;
  Impl::Shard& shard = impl_->shard_for(key);
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    inserted = impl_->insert_locked(shard, key, value);
  }
  impl_->publish_entry_count();
  if (!inserted) return;
  if (const auto disk = impl_->disk_tier()) disk->enqueue(key, value);
}

void SimCache::insert_many(const std::vector<std::pair<std::string, Value>>& entries) {
  if (!enabled() || entries.empty()) return;
  std::array<std::vector<const std::pair<std::string, Value>*>, kShardCount> by_shard;
  for (const auto& entry : entries)
    by_shard[Impl::shard_index(entry.first)].push_back(&entry);
  const auto disk = impl_->disk_tier();
  for (std::size_t idx = 0; idx < kShardCount; ++idx) {
    if (by_shard[idx].empty()) continue;
    Impl::Shard& shard = impl_->shards[idx];
    std::vector<const std::pair<std::string, Value>*> fresh;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto* entry : by_shard[idx])
        if (impl_->insert_locked(shard, entry->first, entry->second) && disk != nullptr)
          fresh.push_back(entry);
    }
    // Disk enqueues happen outside the shard lock: the write-behind queue
    // has its own locking and the hot path must not nest the two.
    for (const auto* entry : fresh) disk->enqueue(entry->first, entry->second);
  }
  impl_->publish_entry_count();
}

bool SimCache::attach_disk_tier(const std::string& dir) {
  auto tier = DiskTier::open(dir);
  if (tier == nullptr) return false;
  std::shared_ptr<DiskTier> previous;
  {
    std::lock_guard<std::mutex> lock(impl_->disk_mutex);
    previous = std::move(impl_->disk);
    impl_->disk = std::move(tier);
  }
  if (previous != nullptr) previous->flush();
  return true;
}

void SimCache::detach_disk_tier() {
  std::shared_ptr<DiskTier> previous;
  {
    std::lock_guard<std::mutex> lock(impl_->disk_mutex);
    previous = std::move(impl_->disk);
    impl_->disk = nullptr;
  }
  if (previous != nullptr) previous->flush();
}

bool SimCache::has_disk_tier() const { return impl_->disk_tier() != nullptr; }

void SimCache::flush_disk() {
  if (const auto disk = impl_->disk_tier()) disk->flush();
}

void SimCache::clear() {
  for (Impl::Shard& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.entries.clear();
    shard.order.clear();
  }
  impl_->hits.store(0, std::memory_order_relaxed);
  impl_->misses.store(0, std::memory_order_relaxed);
  impl_->evictions.store(0, std::memory_order_relaxed);
  impl_->disk_hits.store(0, std::memory_order_relaxed);
  impl_->disk_misses.store(0, std::memory_order_relaxed);
  impl_->entry_count.store(0, std::memory_order_relaxed);
  impl_->publish_entry_count();
}

SimCacheStats SimCache::stats() const {
  SimCacheStats out;
  out.hits = impl_->hits.load(std::memory_order_relaxed);
  out.misses = impl_->misses.load(std::memory_order_relaxed);
  out.evictions = impl_->evictions.load(std::memory_order_relaxed);
  for (const Impl::Shard& shard : impl_->shards) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    out.entries += shard.entries.size();
  }
  out.disk_hits = impl_->disk_hits.load(std::memory_order_relaxed);
  out.disk_misses = impl_->disk_misses.load(std::memory_order_relaxed);
  if (const auto disk = impl_->disk_tier()) {
    const DiskTierStats disk_stats = disk->stats();
    out.disk_drops = disk_stats.drops;
    out.disk_flushes = disk_stats.flushes;
    out.disk_entries = disk_stats.entries;
  }
  return out;
}

SimCache& SimCache::global() {
  static SimCache instance;
  static const bool attached = [] {
    const char* dir = std::getenv("C2B_SIM_CACHE_DIR");
    if (dir != nullptr && dir[0] != '\0') instance.attach_disk_tier(dir);
    return true;
  }();
  (void)attached;
  return instance;
}

}  // namespace c2b::exec
