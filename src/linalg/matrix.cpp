#include "c2b/linalg/matrix.h"

#include <cmath>
#include <stdexcept>

namespace c2b {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    C2B_REQUIRE(row.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix eye(n, n);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  C2B_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "matrix shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  C2B_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "matrix shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  C2B_REQUIRE(a.cols_ == b.rows_, "matrix shape mismatch in *");
  Matrix out(a.rows_, b.cols_, 0.0);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.data() + k * b.cols_;
      double* orow = out.data() + i * out.cols_;
      for (std::size_t j = 0; j < b.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Vector operator*(const Matrix& a, const Vector& x) {
  C2B_REQUIRE(a.cols_ == x.size(), "matrix/vector shape mismatch");
  Vector out(a.rows_, 0.0);
  for (std::size_t i = 0; i < a.rows_; ++i) {
    const double* row = a.data() + i * a.cols_;
    double sum = 0.0;
    for (std::size_t j = 0; j < a.cols_; ++j) sum += row[j] * x[j];
    out[i] = sum;
  }
  return out;
}

double Matrix::frobenius_norm() const noexcept {
  double sum = 0.0;
  for (const double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::max_abs() const noexcept {
  double best = 0.0;
  for (const double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double dot(const Vector& a, const Vector& b) {
  C2B_REQUIRE(a.size() == b.size(), "dot of different-length vectors");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(const Vector& v) noexcept {
  double sum = 0.0;
  for (const double x : v) sum += x * x;
  return std::sqrt(sum);
}

double norm_inf(const Vector& v) noexcept {
  double best = 0.0;
  for (const double x : v) best = std::max(best, std::fabs(x));
  return best;
}

Vector axpy(double alpha, const Vector& x, const Vector& y) {
  C2B_REQUIRE(x.size() == y.size(), "axpy of different-length vectors");
  Vector out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = alpha * x[i] + y[i];
  return out;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)), pivot_(lu_.rows()) {
  C2B_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  for (std::size_t i = 0; i < n; ++i) pivot_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: bring the largest remaining entry to the diagonal.
    std::size_t best_row = col;
    double best = std::fabs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, col));
      if (mag > best) {
        best = mag;
        best_row = r;
      }
    }
    if (best < 1e-300) throw std::runtime_error("LuDecomposition: matrix is singular");
    if (best_row != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(col, c), lu_(best_row, c));
      std::swap(pivot_[col], pivot_[best_row]);
      pivot_sign_ = -pivot_sign_;
    }
    const double diag = lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) / diag;
      lu_(r, col) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c) lu_(r, c) -= factor * lu_(col, c);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  C2B_REQUIRE(b.size() == n, "rhs length must match matrix dimension");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[pivot_[i]];
  // Forward substitution with unit lower triangle.
  for (std::size_t i = 1; i < n; ++i) {
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution with upper triangle.
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= lu_(ii, j) * x[j];
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  C2B_REQUIRE(b.rows() == lu_.rows(), "rhs rows must match matrix dimension");
  Matrix out(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) column[r] = b(r, c);
    const Vector solved = solve(column);
    for (std::size_t r = 0; r < b.rows(); ++r) out(r, c) = solved[r];
  }
  return out;
}

double LuDecomposition::determinant() const noexcept {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector lu_solve(Matrix a, const Vector& b) { return LuDecomposition(std::move(a)).solve(b); }

}  // namespace c2b
