#include "c2b/serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstring>

namespace c2b::serve {
namespace {

constexpr std::size_t kMaxRequestBytes = 4u << 20;  ///< hard cap on header+body

void set_io_timeout(int fd) {
  // A stalled peer must not wedge the sequential accept loop.
  timeval tv{};
  tv.tv_sec = 10;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    default: return "OK";
  }
}

/// Reads one request off `fd`. False on malformed/oversized/timeout.
bool read_request(int fd, HttpRequest& out) {
  std::string buffer;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxRequestBytes) return false;
    header_end = buffer.find("\r\n\r\n");
  }

  // Request line: METHOD SP target SP version.
  const std::size_t line_end = buffer.find("\r\n");
  const std::string line = buffer.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  out.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    out.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  out.path = std::move(target);

  // Headers: only Content-Length matters to us.
  std::size_t content_length = 0;
  std::size_t cursor = line_end + 2;
  while (cursor < header_end) {
    const std::size_t eol = buffer.find("\r\n", cursor);
    const std::string header = buffer.substr(cursor, eol - cursor);
    cursor = eol + 2;
    const std::size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string name = header.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (name == "content-length") {
      const char* value = header.c_str() + colon + 1;
      content_length = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
      if (content_length > kMaxRequestBytes) return false;
    }
  }

  const std::size_t body_start = header_end + 4;
  while (buffer.size() - body_start < content_length) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  out.body = buffer.substr(body_start, content_length);
  return true;
}

void write_response(int fd, const HttpResponse& response) {
  char header[256];
  const int header_len = std::snprintf(
      header, sizeof header,
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, status_reason(response.status), response.content_type.c_str(),
      response.body.size());
  if (!send_all(fd, header, static_cast<std::size_t>(header_len))) return;
  send_all(fd, response.body.data(), response.body.size());
}

}  // namespace

HttpServer::HttpServer() = default;

HttpServer::~HttpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool HttpServer::listen(const std::string& host, int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host '" + host + "' (want a dotted IPv4 address)";
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr) *error = "cannot bind " + host + ":" + std::to_string(port);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    if (error != nullptr) *error = "listen() failed";
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    if (error != nullptr) *error = "getsockname() failed";
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return true;
}

void HttpServer::serve(const HttpHandler& handler) {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (re-check stop) or EINTR
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    set_io_timeout(conn);
    HttpRequest request;
    if (read_request(conn, request)) {
      HttpResponse response;
      try {
        response = handler(request);
      } catch (const std::exception& e) {
        response.status = 500;
        response.body = std::string("{\"error\":\"") + e.what() + "\"}";
      } catch (...) {
        response.status = 500;
        response.body = "{\"error\":\"unknown\"}";
      }
      write_response(conn, response);
    }
    ::shutdown(conn, SHUT_RDWR);
    ::close(conn);
  }
}

std::optional<HttpResponse> http_request(const std::string& host, int port,
                                         const std::string& method, const std::string& path,
                                         const std::string& body, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket() failed";
    return std::nullopt;
  }
  set_io_timeout(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host '" + host + "'";
    ::close(fd);
    return std::nullopt;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (error != nullptr)
      *error = "cannot connect to " + host + ":" + std::to_string(port);
    ::close(fd);
    return std::nullopt;
  }

  std::string request = method + " " + path + " HTTP/1.1\r\nHost: " + host +
                        "\r\nContent-Length: " + std::to_string(body.size()) +
                        "\r\nConnection: close\r\n\r\n" + body;
  if (!send_all(fd, request.data(), request.size())) {
    if (error != nullptr) *error = "send failed";
    ::close(fd);
    return std::nullopt;
  }

  std::string buffer;
  char chunk[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0) {
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > kMaxRequestBytes) break;
  }
  ::close(fd);

  const std::size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos || buffer.rfind("HTTP/1.", 0) != 0) {
    if (error != nullptr) *error = "malformed response";
    return std::nullopt;
  }
  HttpResponse response;
  response.status = std::atoi(buffer.c_str() + 9);
  response.body = buffer.substr(header_end + 4);
  return response;
}

}  // namespace c2b::serve
