#include "c2b/serve/jobs.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <limits>

#include "c2b/aps/aps.h"
#include "c2b/aps/dse.h"
#include "c2b/check/oracles.h"
#include "c2b/exec/pool.h"
#include "c2b/obs/journal.h"
#include "c2b/trace/workloads.h"

namespace c2b::serve {
namespace {

const WorkloadSpec* find_workload(const std::vector<WorkloadSpec>& catalog,
                                  const std::string& name) {
  for (const WorkloadSpec& spec : catalog)
    if (spec.name == name) return &spec;
  return nullptr;
}

sim::SystemConfig default_system() {
  // Mirrors the CLI's baseline so a job submitted over the wire reproduces
  // `c2b dse`/`c2b aps` bit for bit.
  sim::SystemConfig config;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 512 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  return config;
}

DseAxes axes_for(const JobRequest& request) {
  if (request.flag("large-axes")) return make_large_axes();
  DseAxes axes;
  axes.a0 = {1.0, 4.0};
  axes.a1 = {0.5, 1.0};
  axes.a2 = {1.0, 2.0};
  axes.n = {1, 2};
  axes.issue = {2, 4};
  axes.rob = {32, 64};
  return axes;
}

bool build_context(const JobRequest& request, DseContext& context, std::string* error) {
  const std::string name = request.str("workload", "stencil");
  const auto catalog = workload_catalog();
  const WorkloadSpec* spec = find_workload(catalog, name);
  if (spec == nullptr) {
    *error = "unknown workload '" + name + "'";
    return false;
  }
  context.base = default_system();
  context.workload = *spec;
  context.instructions0 = static_cast<std::uint64_t>(request.num("instructions", 20'000));
  context.per_core_cap = static_cast<std::uint64_t>(request.num("per-core-cap", 10'000));
  context.chip.total_area = request.num("area", 9.0);
  context.chip.shared_area = request.num("shared-area", 1.0);
  context.seed = static_cast<std::uint64_t>(request.num("seed", 99));
  for (const char* budget : {"power-budget", "bw-budget", "noc-budget"}) {
    const double value = request.num(budget, std::numeric_limits<double>::infinity());
    if (!(value > 0.0)) {
      *error = std::string(budget) + " must be > 0";
      return false;
    }
  }
  context.power_budget = request.num("power-budget", context.power_budget);
  context.bw_budget = request.num("bw-budget", context.bw_budget);
  context.noc_budget = request.num("noc-budget", context.noc_budget);
  context.surrogate_enabled = request.flag("surrogate");
  context.surrogate_band = request.num("surrogate-band", context.surrogate_band);
  context.surrogate_warmup =
      static_cast<std::size_t>(request.num("surrogate-warmup",
                                           static_cast<double>(context.surrogate_warmup)));
  return true;
}

std::string batch_json(const BatchReplayStats& batch) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"classes\":%zu,\"members\":%zu,\"cache_hits\":%zu,"
                "\"cache_hits_disk\":%zu}",
                batch.classes, batch.members, batch.cache_hits, batch.cache_hits_disk);
  return buf;
}

JobOutcome run_dse(const JobRequest& request) {
  JobOutcome outcome;
  DseContext context;
  if (!build_context(request, context, &outcome.error)) return outcome;
  const GridSpace space = make_design_space(axes_for(request));

  if (obs::RunJournal* journal = obs::active_journal())
    journal->emit(obs::JournalEvent("sweep_config")
                      .str("command", "dse")
                      .str("workload", context.workload.name)
                      .count("grid_points", space.size())
                      .count("instructions", context.instructions0)
                      .count("seed", context.seed));

  char buf[512];
  if (request.flag("pareto")) {
    const ParetoDseResult result = run_pareto_dse(context, space);
    std::snprintf(buf, sizeof buf,
                  "{\"type\":\"dse\",\"pareto\":1,\"grid_points\":%zu,"
                  "\"feasible\":%zu,\"frontier\":%zu,\"batch\":",
                  result.grid_points, result.feasible_count, result.frontier.size());
    outcome.result_json = std::string(buf) + batch_json(result.batch) + "}";
  } else {
    const FullDseResult result = run_full_dse(context, space);
    std::snprintf(buf, sizeof buf,
                  "{\"type\":\"dse\",\"grid_points\":%zu,\"feasible\":%zu,"
                  "\"best_index\":%zu,\"best_time\":%.17g,\"simulations\":%zu,\"batch\":",
                  space.size(), result.feasible_count, result.best_index, result.best_time,
                  result.simulations);
    outcome.result_json = std::string(buf) + batch_json(result.batch) + "}";
  }
  outcome.ok = true;
  return outcome;
}

JobOutcome run_aps_job(const JobRequest& request) {
  JobOutcome outcome;
  DseContext context;
  if (!build_context(request, context, &outcome.error)) return outcome;
  const GridSpace space = make_design_space(axes_for(request));
  ApsOptions options;
  options.neighborhood_radius =
      std::max<std::size_t>(1, static_cast<std::size_t>(request.num("radius", 1)));
  options.characterize.instructions =
      static_cast<std::uint64_t>(request.num("characterize-instructions", 60'000));

  if (obs::RunJournal* journal = obs::active_journal())
    journal->emit(obs::JournalEvent("sweep_config")
                      .str("command", "aps")
                      .str("workload", context.workload.name)
                      .count("grid_points", space.size())
                      .count("instructions", context.instructions0)
                      .count("seed", context.seed));

  const ApsResult result = run_aps(context, space, options);
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"aps\",\"grid_points\":%zu,\"best_index\":%zu,"
                "\"best_time\":%.17g,\"simulations\":%zu,\"narrowing_factor\":%.3f,"
                "\"batch\":",
                space.size(), result.best_index, result.best_time, result.simulations,
                result.narrowing_factor);
  outcome.result_json = std::string(buf) + batch_json(result.batch) + "}";
  outcome.ok = true;
  return outcome;
}

JobOutcome run_check_job(const JobRequest& request) {
  JobOutcome outcome;
  const std::string family = request.str("family", "invariants");
  check::OracleOptions options;
  options.seed = static_cast<std::uint64_t>(request.num("seed", 42));
  // Service-sized defaults: one family per job, scaled down the same way
  // the CI quick slice runs them.
  const struct {
    const char* name;
    check::OracleReport (*run)(const check::OracleOptions&);
  } families[] = {
      {"analytic", check::run_analytic_vs_sim_oracle},
      {"determinism", check::run_determinism_oracle},
      {"invariants", check::run_invariant_oracle},
      {"kernel", check::run_kernel_equivalence_oracle},
      {"batch", check::run_batch_equivalence_oracle},
      {"simd", check::run_simd_equivalence_oracle},
      {"constraint", check::run_constraint_oracle},
      {"surrogate", check::run_surrogate_oracle},
      {"cache", check::run_persistent_cache_oracle},
  };
  for (const auto& entry : families) {
    if (family != entry.name) continue;
    const check::OracleReport report = entry.run(options);
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"type\":\"check\",\"family\":\"%s\",\"checks\":%zu,\"failures\":%zu}",
                  report.family.c_str(), report.checks, report.failures.size());
    outcome.result_json = buf;
    outcome.ok = report.passed();
    if (!outcome.ok) outcome.error = "oracle family '" + family + "' failed";
    return outcome;
  }
  outcome.error = "unknown oracle family '" + family + "'";
  return outcome;
}

}  // namespace

double JobRequest::num(const std::string& key, double fallback) const {
  const auto it = numbers.find(key);
  return it == numbers.end() ? fallback : it->second;
}

std::string JobRequest::str(const std::string& key, const std::string& fallback) const {
  const auto it = strings.find(key);
  return it == strings.end() ? fallback : it->second;
}

bool JobRequest::flag(const std::string& key) const { return num(key, 0.0) != 0.0; }

std::size_t JobRequest::threads_share() const {
  const double requested = num("threads", 1.0);
  if (!(requested >= 1.0)) return 1;
  return static_cast<std::size_t>(requested);
}

std::optional<JobRequest> JobRequest::parse(const std::string& body, std::string* error) {
  // The body is one flat JSON object — the journal-line grammar. Normalize
  // newlines so pretty-printed clients still parse.
  std::string line = body;
  std::replace(line.begin(), line.end(), '\n', ' ');
  std::replace(line.begin(), line.end(), '\r', ' ');
  obs::JournalRecord record;
  if (!obs::parse_journal_line(line, record)) {
    if (error != nullptr)
      *error = "malformed job body (want a flat JSON object with a \"type\" field)";
    return std::nullopt;
  }
  JobRequest request;
  request.type = record.type;
  request.strings = std::move(record.strings);
  request.numbers = std::move(record.numbers);
  if (request.type != "dse" && request.type != "aps" && request.type != "check") {
    if (error != nullptr) *error = "unknown job type '" + request.type + "'";
    return std::nullopt;
  }
  if (request.type == "check") {
    const std::string family = request.str("family", "invariants");
    bool known = false;
    for (const char* name : {"analytic", "determinism", "invariants", "kernel", "batch",
                             "simd", "constraint", "surrogate", "cache"})
      known = known || family == name;
    if (!known) {
      if (error != nullptr) *error = "unknown oracle family '" + family + "'";
      return std::nullopt;
    }
  } else {
    const std::string name = request.str("workload", "stencil");
    if (find_workload(workload_catalog(), name) == nullptr) {
      if (error != nullptr) *error = "unknown workload '" + name + "'";
      return std::nullopt;
    }
  }
  return request;
}

JobOutcome run_job(const JobRequest& request) {
  try {
    if (request.type == "dse") return run_dse(request);
    if (request.type == "aps") return run_aps_job(request);
    if (request.type == "check") return run_check_job(request);
    JobOutcome outcome;
    outcome.error = "unknown job type '" + request.type + "'";
    return outcome;
  } catch (const std::exception& e) {
    JobOutcome outcome;
    outcome.error = e.what();
    return outcome;
  } catch (...) {
    JobOutcome outcome;
    outcome.error = "unknown error";
    return outcome;
  }
}

}  // namespace c2b::serve
