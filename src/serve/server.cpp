#include "c2b/serve/server.h"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "c2b/exec/pool.h"
#include "c2b/obs/context.h"
#include "c2b/obs/export.h"
#include "c2b/obs/journal.h"
#include "c2b/obs/obs.h"

namespace c2b::serve {
namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

HttpResponse json_error(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":\"" + json_escape(message) + "\"}";
  return response;
}

enum class JobState { kQueued, kRunning, kDone, kFailed };

const char* state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

struct Job {
  std::uint64_t id = 0;
  JobRequest request;
  JobState state = JobState::kQueued;
  std::size_t share = 1;  ///< admission weight, clamped to [1, threads_total]
  JobOutcome outcome;
  std::string journal_path;  ///< empty when no spool directory
};

}  // namespace

struct Server::Impl {
  ServerOptions options;
  HttpServer http;

  std::mutex mutex;
  std::condition_variable work_cv;   ///< runners: queue/admission changes
  std::condition_variable drain_cv;  ///< drain(): a job finished
  std::vector<std::unique_ptr<Job>> jobs;      // index = id
  std::deque<std::uint64_t> queue;             // FIFO of queued job ids
  std::size_t unfinished = 0;                  // queued + running
  std::size_t running_shares = 0;
  bool accepting = true;
  bool stopping = false;
  std::vector<std::thread> runners;

  explicit Impl(ServerOptions opts) : options(std::move(opts)) {
    if (options.max_active == 0) options.max_active = 1;
    if (options.threads_total == 0) options.threads_total = exec::thread_count();
    if (options.threads_total == 0) options.threads_total = 1;
    runners.reserve(options.max_active);
    for (std::size_t i = 0; i < options.max_active; ++i)
      runners.emplace_back([this] { runner_loop(); });
  }

  ~Impl() {
    {
      const std::lock_guard<std::mutex> lock(mutex);
      stopping = true;
    }
    work_cv.notify_all();
    for (std::thread& t : runners) t.join();
  }

  // ------------------------------------------------------------------ jobs

  HttpResponse submit(const std::string& body) {
    std::string error;
    auto request = JobRequest::parse(body, &error);
    if (!request.has_value()) {
      C2B_COUNTER_INC("serve.jobs.rejected");
      return json_error(400, error);
    }
    std::unique_lock<std::mutex> lock(mutex);
    if (!accepting) {
      C2B_COUNTER_INC("serve.jobs.rejected");
      return json_error(503, "shutting down");
    }
    if (unfinished >= options.max_queue) {
      C2B_COUNTER_INC("serve.jobs.rejected");
      return json_error(429, "queue full (" + std::to_string(options.max_queue) +
                                 " unfinished jobs)");
    }
    auto job = std::make_unique<Job>();
    job->id = jobs.size();
    job->request = std::move(*request);
    job->share = std::clamp<std::size_t>(job->request.threads_share(), 1,
                                         options.threads_total);
    if (!options.spool_dir.empty())
      job->journal_path =
          options.spool_dir + "/job-" + std::to_string(job->id) + ".jsonl";
    const std::uint64_t id = job->id;
    jobs.push_back(std::move(job));
    queue.push_back(id);
    ++unfinished;
    lock.unlock();
    C2B_COUNTER_INC("serve.jobs.submitted");
    work_cv.notify_one();
    HttpResponse response;
    response.status = 202;
    response.body = "{\"id\":" + std::to_string(id) + ",\"status\":\"queued\"}";
    return response;
  }

  void runner_loop() {
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex);
      // FIFO admission: only the front job is considered, so a wide job
      // cannot be starved by narrow ones slipping past it.
      work_cv.wait(lock, [this] {
        if (stopping) return true;
        return !queue.empty() &&
               running_shares + jobs[queue.front()]->share <= options.threads_total;
      });
      if (queue.empty() ||
          running_shares + jobs[queue.front()]->share > options.threads_total) {
        if (stopping) return;
        continue;
      }
      Job* job = jobs[queue.front()].get();
      queue.pop_front();
      job->state = JobState::kRunning;
      running_shares += job->share;
      lock.unlock();

      C2B_COUNTER_INC("serve.jobs.started");
      execute(*job);

      lock.lock();
      job->state = job->outcome.ok ? JobState::kDone : JobState::kFailed;
      running_shares -= job->share;
      --unfinished;
      lock.unlock();
      if (job->outcome.ok) {
        C2B_COUNTER_INC("serve.jobs.completed");
      } else {
        C2B_COUNTER_INC("serve.jobs.failed");
      }
      work_cv.notify_all();  // freed shares may admit the next job
      drain_cv.notify_all();
    }
  }

  void execute(Job& job) {
    std::unique_ptr<obs::RunJournal> journal;
    if (!job.journal_path.empty()) journal = obs::RunJournal::open(job.journal_path);
    const obs::ScopedObsContext scope(obs::ObsContext{journal.get(), nullptr});
    if (journal)
      journal->emit(obs::JournalEvent("job_begin")
                        .count("id", job.id)
                        .str("job_type", job.request.type)
                        .count("threads_share", job.share));
    job.outcome = run_job(job.request);
    if (journal) {
      journal->emit(obs::JournalEvent("job_end")
                        .count("id", job.id)
                        .count("ok", job.outcome.ok ? 1 : 0)
                        .str("error", job.outcome.error));
      journal->flush();
    }
  }

  void drain() {
    std::unique_lock<std::mutex> lock(mutex);
    accepting = false;
    drain_cv.wait(lock, [this] { return unfinished == 0; });
  }

  // ---------------------------------------------------------------- routes

  HttpResponse job_status(std::uint64_t id) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (id >= jobs.size()) return json_error(404, "no job " + std::to_string(id));
    const Job& job = *jobs[id];
    std::string body = "{\"id\":" + std::to_string(id) + ",\"status\":\"" +
                       state_name(job.state) + "\"";
    if (job.state == JobState::kDone || job.state == JobState::kFailed) {
      body += ",\"ok\":" + std::string(job.outcome.ok ? "1" : "0");
      if (!job.outcome.error.empty())
        body += ",\"error\":\"" + json_escape(job.outcome.error) + "\"";
      body += ",\"result\":" + job.outcome.result_json;
    }
    body += "}";
    HttpResponse response;
    response.body = std::move(body);
    return response;
  }

  HttpResponse job_events(std::uint64_t id, const std::string& query) {
    std::string path;
    {
      const std::lock_guard<std::mutex> lock(mutex);
      if (id >= jobs.size()) return json_error(404, "no job " + std::to_string(id));
      path = jobs[id]->journal_path;
    }
    std::size_t from = 0;
    if (query.rfind("from=", 0) == 0)
      from = static_cast<std::size_t>(std::strtoull(query.c_str() + 5, nullptr, 10));

    // Validated raw journal lines: each line is already a JSON object, so
    // the slice [from, end) splices straight into a JSON array. Torn tails
    // (the journal may be mid-flush) are skipped exactly like `c2b report`
    // skips them.
    std::vector<std::string> lines;
    if (!path.empty()) {
      std::ifstream in(path);
      std::string line;
      obs::JournalRecord record;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (obs::parse_journal_line(line, record)) lines.push_back(line);
      }
    }
    std::string body = "{\"from\":" + std::to_string(from) +
                       ",\"total\":" + std::to_string(lines.size()) + ",\"events\":[";
    for (std::size_t i = from; i < lines.size(); ++i) {
      if (i != from) body += ',';
      body += lines[i];
    }
    body += "]}";
    HttpResponse response;
    response.body = std::move(body);
    return response;
  }

  HttpResponse stats() {
    const std::lock_guard<std::mutex> lock(mutex);
    std::size_t queued = 0, running = 0, done = 0, failed = 0;
    for (const auto& job : jobs) {
      switch (job->state) {
        case JobState::kQueued: ++queued; break;
        case JobState::kRunning: ++running; break;
        case JobState::kDone: ++done; break;
        case JobState::kFailed: ++failed; break;
      }
    }
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"queued\":%zu,\"running\":%zu,\"done\":%zu,\"failed\":%zu,"
                  "\"running_shares\":%zu,\"max_active\":%zu,\"max_queue\":%zu,"
                  "\"threads_total\":%zu}",
                  queued, running, done, failed, running_shares, options.max_active,
                  options.max_queue, options.threads_total);
    HttpResponse response;
    response.body = buf;
    return response;
  }

  HttpResponse handle(const HttpRequest& request) {
    if (request.path == "/healthz") {
      HttpResponse response;
      response.body = "{\"ok\":1}";
      return response;
    }
    if (request.path == "/metrics") {
      if (request.method != "GET") return json_error(405, "GET only");
      HttpResponse response;
      response.body = obs::metrics_json();
      return response;
    }
    if (request.path == "/stats") return stats();
    if (request.path == "/shutdown") {
      if (request.method != "POST") return json_error(405, "POST only");
      {
        const std::lock_guard<std::mutex> lock(mutex);
        accepting = false;
      }
      http.stop();
      HttpResponse response;
      response.body = "{\"ok\":1,\"draining\":1}";
      return response;
    }
    if (request.path == "/jobs") {
      if (request.method != "POST") return json_error(405, "POST only");
      return submit(request.body);
    }
    if (request.path.rfind("/jobs/", 0) == 0) {
      const std::string rest = request.path.substr(6);
      char* end = nullptr;
      const std::uint64_t id = std::strtoull(rest.c_str(), &end, 10);
      if (end == rest.c_str()) return json_error(404, "bad job id");
      const std::string tail(end);
      if (tail.empty()) return job_status(id);
      if (tail == "/events") return job_events(id, request.query);
      return json_error(404, "no route " + request.path);
    }
    return json_error(404, "no route " + request.path);
  }
};

Server::Server(ServerOptions options) : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() = default;

bool Server::start(std::string* error) {
  return impl_->http.listen(impl_->options.host, impl_->options.port, error);
}

int Server::port() const noexcept { return impl_->http.port(); }

void Server::run() {
  impl_->http.serve([this](const HttpRequest& request) { return impl_->handle(request); });
  // The listener is down; every accepted job still completes ("drain,
  // never drop") before run() returns.
  impl_->drain();
}

void Server::stop() { impl_->http.stop(); }

HttpResponse Server::handle(const HttpRequest& request) { return impl_->handle(request); }

}  // namespace c2b::serve
