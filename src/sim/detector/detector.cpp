#include "c2b/sim/detector/detector.h"

#include <algorithm>
#include <limits>

#include "c2b/common/assert.h"

namespace c2b::sim {

namespace detail {

TimelineMetrics assemble_detector_metrics(const DetectorCounters& c) {
  TimelineMetrics m;
  m.accesses = c.accesses;
  m.misses = c.misses;
  m.pure_misses = c.pure_misses;
  m.hit_cycle_count = c.hit_cycle_count;
  m.hit_access_cycles = c.hit_access_cycles;
  m.pure_miss_cycle_count = c.pure_miss_cycle_count;
  m.pure_miss_access_cycles = c.pure_miss_access_cycles;
  m.memory_active_cycles = c.memory_active_cycles;
  if (m.accesses == 0) return m;  // pure-compute window: everything zero

  const auto accesses_d = static_cast<double>(m.accesses);
  m.amat_params.hit_time = static_cast<double>(c.total_hit_duration) / accesses_d;
  m.amat_params.miss_rate = static_cast<double>(c.misses) / accesses_d;
  m.amat_params.miss_penalty =
      c.misses == 0 ? 0.0
                    : static_cast<double>(c.total_miss_penalty) / static_cast<double>(c.misses);
  m.amat_value = amat(m.amat_params);

  m.camat_params.hit_time = m.amat_params.hit_time;
  m.camat_params.hit_concurrency =
      c.hit_cycle_count == 0 ? 1.0
                             : static_cast<double>(c.hit_access_cycles) /
                                   static_cast<double>(c.hit_cycle_count);
  m.camat_params.pure_miss_rate = static_cast<double>(c.pure_misses) / accesses_d;
  m.camat_params.pure_miss_penalty =
      c.pure_misses == 0 ? 0.0
                         : static_cast<double>(c.per_access_pure_cycles) /
                               static_cast<double>(c.pure_misses);
  m.camat_params.miss_concurrency =
      c.pure_miss_cycle_count == 0 ? 1.0
                                   : static_cast<double>(c.per_access_pure_cycles) /
                                         static_cast<double>(c.pure_miss_cycle_count);
  m.camat_value = camat(m.camat_params);
  m.camat_direct = static_cast<double>(c.memory_active_cycles) / accesses_d;
  m.apc = accesses_d / static_cast<double>(c.memory_active_cycles);
  m.concurrency_c = m.camat_value > 0.0 ? m.amat_value / m.camat_value : 1.0;
  return m;
}

}  // namespace detail

void CamatDetector::record_access(std::uint64_t start_cycle, std::uint32_t hit_cycles,
                                  std::uint32_t miss_penalty_cycles) {
  C2B_REQUIRE(hit_cycles > 0, "an access needs at least one hit/lookup cycle");
  C2B_ASSERT(start_cycle >= swept_base_,
             "access touches an already-finalized cycle (advance() watermark too eager)");
  ++counters_.accesses;
  counters_.total_hit_duration += hit_cycles;
  const std::uint64_t hit_end = start_cycle + hit_cycles;
  hit_intervals_.push_back({start_cycle, hit_end});
  max_live_end_ = std::max(max_live_end_, hit_end);
  if (miss_penalty_cycles > 0) {
    ++counters_.misses;
    counters_.total_miss_penalty += miss_penalty_cycles;
    const std::uint64_t miss_end = hit_end + miss_penalty_cycles;
    miss_intervals_.push_back({hit_end, miss_end});
    pending_misses_.push_back({hit_end, miss_penalty_cycles});
    max_live_end_ = std::max(max_live_end_, miss_end);
  }
}

void CamatDetector::build_hit_union() {
  hit_union_.assign(hit_intervals_.begin(), hit_intervals_.end());
  std::sort(hit_union_.begin(), hit_union_.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  std::size_t out = 0;
  for (const Interval& iv : hit_union_) {
    if (out > 0 && iv.start <= hit_union_[out - 1].end)
      hit_union_[out - 1].end = std::max(hit_union_[out - 1].end, iv.end);
    else
      hit_union_[out++] = iv;
  }
  hit_union_.resize(out);
  hit_union_prefix_.resize(out + 1);
  hit_union_prefix_[0] = 0;
  for (std::size_t i = 0; i < out; ++i)
    hit_union_prefix_[i + 1] = hit_union_prefix_[i] + (hit_union_[i].end - hit_union_[i].start);
}

std::uint64_t CamatDetector::hit_coverage(std::uint64_t start, std::uint64_t end) const {
  if (start >= end || hit_union_.empty()) return 0;
  // The union is disjoint and sorted, so starts AND ends are both sorted.
  const auto lo = std::partition_point(hit_union_.begin(), hit_union_.end(),
                                       [&](const Interval& iv) { return iv.end <= start; });
  const auto hi = std::partition_point(lo, hit_union_.end(),
                                       [&](const Interval& iv) { return iv.start < end; });
  if (lo == hi) return 0;
  const std::size_t lo_i = static_cast<std::size_t>(lo - hit_union_.begin());
  const std::size_t hi_i = static_cast<std::size_t>(hi - hit_union_.begin());
  std::uint64_t covered = hit_union_prefix_[hi_i] - hit_union_prefix_[lo_i];
  // Every entry in [lo, hi) overlaps [start, end); only the first and last
  // can stick out past the query, so trim exactly that overhang.
  if (lo->start < start) covered -= start - lo->start;
  const Interval& last = hit_union_[hi_i - 1];
  if (last.end > end) covered -= last.end - end;
  return covered;
}

void CamatDetector::sweep_classification(std::uint64_t upto) {
  if (upto <= swept_base_) return;
  boundaries_.clear();
  for (const Interval& iv : hit_intervals_) {
    const std::uint64_t s = std::max(iv.start, swept_base_);
    const std::uint64_t e = std::min(iv.end, upto);
    if (s < e) {
      boundaries_.push_back({s, +1, 0});
      boundaries_.push_back({e, -1, 0});
    }
  }
  for (const Interval& iv : miss_intervals_) {
    const std::uint64_t s = std::max(iv.start, swept_base_);
    const std::uint64_t e = std::min(iv.end, upto);
    if (s < e) {
      boundaries_.push_back({s, 0, +1});
      boundaries_.push_back({e, 0, -1});
    }
  }
  if (!boundaries_.empty()) {
    std::sort(boundaries_.begin(), boundaries_.end(),
              [](const Boundary& a, const Boundary& b) { return a.cycle < b.cycle; });
    // Between consecutive boundary cycles the per-cycle (hits, misses) pair
    // is constant, so each segment folds in one shot: the same per-cycle
    // classification the reference detector applies slot by slot.
    std::int64_t cur_hits = 0;
    std::int64_t cur_misses = 0;
    std::uint64_t segment_start = boundaries_.front().cycle;
    std::size_t i = 0;
    while (i < boundaries_.size()) {
      const std::uint64_t cycle = boundaries_[i].cycle;
      const std::uint64_t length = cycle - segment_start;
      if (length > 0 && (cur_hits > 0 || cur_misses > 0)) {
        counters_.memory_active_cycles += length;
        if (cur_hits > 0) {
          counters_.hit_cycle_count += length;
          counters_.hit_access_cycles += static_cast<std::uint64_t>(cur_hits) * length;
        } else {
          counters_.pure_miss_cycle_count += length;
          counters_.pure_miss_access_cycles += static_cast<std::uint64_t>(cur_misses) * length;
        }
      }
      while (i < boundaries_.size() && boundaries_[i].cycle == cycle) {
        cur_hits += boundaries_[i].hit_delta;
        cur_misses += boundaries_[i].miss_delta;
        ++i;
      }
      segment_start = cycle;
    }
    C2B_ASSERT(cur_hits == 0 && cur_misses == 0, "detector sweep left unbalanced activity");
  }

  // Drop intervals wholly below the new base and trim straddlers in place:
  // the trimmed-off part is already classified, and it lies below every
  // pending miss start (upto never exceeds one), so pass-1 coverage queries
  // never miss it.
  const auto compact = [upto](std::vector<Interval>& pool) {
    std::size_t keep = 0;
    for (Interval iv : pool) {
      if (iv.end <= upto) continue;
      if (iv.start < upto) iv.start = upto;
      pool[keep++] = iv;
    }
    pool.resize(keep);
  };
  compact(hit_intervals_);
  compact(miss_intervals_);
  swept_base_ = upto;
}

void CamatDetector::advance(std::uint64_t watermark) {
  // Below the swept base nothing is live, and every pending miss starts at
  // or above it, so a stale watermark has no work to do.
  if (watermark <= swept_base_) return;

  // Pass 1 (MCD): finalize in-flight misses whose whole penalty interval is
  // below the watermark. The miss's own span keeps miss activity on every
  // one of its cycles, so its pure cycles are exactly the span cycles not
  // covered by any hit interval — and all hit intervals that can overlap
  // the span are still live (sweeps never discard activity at or above a
  // pending miss start, and future accesses start at or above the
  // watermark). Survivors compact to the front in place.
  std::size_t keep = 0;
  bool union_built = false;
  for (std::size_t p = 0; p < pending_misses_.size(); ++p) {
    const PendingMiss pm = pending_misses_[p];
    const std::uint64_t miss_end = pm.miss_start + pm.miss_cycles;
    if (miss_end > watermark) {
      pending_misses_[keep++] = pm;
      continue;
    }
    if (!union_built) {
      build_hit_union();
      union_built = true;
    }
    const std::uint64_t pure_cycles = pm.miss_cycles - hit_coverage(pm.miss_start, miss_end);
    if (pure_cycles > 0) {
      ++counters_.pure_misses;
      counters_.per_access_pure_cycles += pure_cycles;
    }
  }
  pending_misses_.resize(keep);

  // Pass 2 (HCD + cycle classification): fold cycles below the watermark,
  // but only those no pending miss still needs to inspect.
  std::uint64_t protect_from = watermark;
  for (const PendingMiss& pm : pending_misses_)
    protect_from = std::min(protect_from, pm.miss_start);
  sweep_classification(protect_from);
}

TimelineMetrics CamatDetector::finalize() {
  advance(std::numeric_limits<std::uint64_t>::max());
  C2B_ASSERT(pending_misses_.empty() && hit_intervals_.empty() && miss_intervals_.empty(),
             "detector finalize left live state");
  return detail::assemble_detector_metrics(counters_);
}

void ApcCounter::add_interval(std::uint64_t start, std::uint64_t end) {
  C2B_REQUIRE(end > start, "interval must be non-empty");
  ++accesses_;
  const std::uint64_t effective_start = std::max(start, frontier_);
  if (end > effective_start) {
    busy_cycles_ += end - effective_start;
    frontier_ = end;
  }
}

}  // namespace c2b::sim
