#include "c2b/sim/detector/detector.h"

#include <algorithm>
#include <limits>

#include "c2b/common/assert.h"

namespace c2b::sim {

CamatDetector::CycleActivity& CamatDetector::cycle_slot(std::uint64_t cycle) {
  if (!window_anchored_) {
    window_base_ = cycle;
    window_anchored_ = true;
  }
  C2B_ASSERT(cycle >= window_base_,
             "access touches an already-finalized cycle (advance() watermark too eager)");
  const std::uint64_t offset = cycle - window_base_;
  if (offset >= window_.size()) window_.resize(offset + 1);
  return window_[offset];
}

const CamatDetector::CycleActivity* CamatDetector::find_cycle(std::uint64_t cycle) const {
  if (!window_anchored_ || cycle < window_base_) return nullptr;
  const std::uint64_t offset = cycle - window_base_;
  if (offset >= window_.size()) return nullptr;
  return &window_[offset];
}

void CamatDetector::record_access(std::uint64_t start_cycle, std::uint32_t hit_cycles,
                                  std::uint32_t miss_penalty_cycles) {
  C2B_REQUIRE(hit_cycles > 0, "an access needs at least one hit/lookup cycle");
  ++finalized_accesses_;
  total_hit_duration_ += hit_cycles;
  for (std::uint32_t i = 0; i < hit_cycles; ++i) ++cycle_slot(start_cycle + i).hits;
  if (miss_penalty_cycles > 0) {
    ++miss_count_;
    total_miss_penalty_ += miss_penalty_cycles;
    const std::uint64_t miss_start = start_cycle + hit_cycles;
    for (std::uint32_t i = 0; i < miss_penalty_cycles; ++i)
      ++cycle_slot(miss_start + i).misses;
    pending_misses_.push_back({miss_start, miss_penalty_cycles});
  }
}

void CamatDetector::advance(std::uint64_t watermark) {
  // Pass 1 (MCD): finalize in-flight misses whose whole penalty interval is
  // below the watermark — their cycle entries are still live, so the pure
  // classification is exact.
  for (auto it = pending_misses_.begin(); it != pending_misses_.end();) {
    const std::uint64_t miss_end = it->miss_start + it->miss_cycles;
    if (miss_end > watermark) {
      ++it;
      continue;
    }
    std::uint64_t pure_cycles = 0;
    for (std::uint32_t i = 0; i < it->miss_cycles; ++i) {
      const CycleActivity* activity = find_cycle(it->miss_start + i);
      if (activity != nullptr && activity->hits == 0 && activity->misses > 0) ++pure_cycles;
    }
    if (pure_cycles > 0) {
      ++pure_miss_count_;
      per_access_pure_cycles_ += pure_cycles;
    }
    it = pending_misses_.erase(it);
  }

  // Pass 2 (HCD + cycle classification): retire cycle entries below the
  // watermark, but only those no pending miss still needs to inspect.
  std::uint64_t protect_from = watermark;
  for (const PendingMiss& pm : pending_misses_)
    protect_from = std::min(protect_from, pm.miss_start);

  while (window_anchored_ && !window_.empty() && window_base_ < protect_from) {
    const CycleActivity activity = window_.front();
    window_.pop_front();
    ++window_base_;
    if (activity.hits == 0 && activity.misses == 0) continue;  // idle slot
    ++memory_active_cycles_;
    if (activity.hits > 0) {
      ++hit_cycle_count_;
      hit_access_cycles_ += activity.hits;
    } else {
      ++pure_miss_cycle_count_;
      pure_miss_access_cycles_ += activity.misses;
    }
  }
}

TimelineMetrics CamatDetector::finalize() {
  advance(std::numeric_limits<std::uint64_t>::max());
  C2B_ASSERT(pending_misses_.empty() && window_.empty(), "detector finalize left live state");

  TimelineMetrics m;
  m.accesses = finalized_accesses_;
  m.misses = miss_count_;
  m.pure_misses = pure_miss_count_;
  m.hit_cycle_count = hit_cycle_count_;
  m.hit_access_cycles = hit_access_cycles_;
  m.pure_miss_cycle_count = pure_miss_cycle_count_;
  m.pure_miss_access_cycles = pure_miss_access_cycles_;
  m.memory_active_cycles = memory_active_cycles_;
  if (m.accesses == 0) return m;  // pure-compute window: everything zero

  const auto accesses_d = static_cast<double>(m.accesses);
  m.amat_params.hit_time = static_cast<double>(total_hit_duration_) / accesses_d;
  m.amat_params.miss_rate = static_cast<double>(miss_count_) / accesses_d;
  m.amat_params.miss_penalty =
      miss_count_ == 0
          ? 0.0
          : static_cast<double>(total_miss_penalty_) / static_cast<double>(miss_count_);
  m.amat_value = amat(m.amat_params);

  m.camat_params.hit_time = m.amat_params.hit_time;
  m.camat_params.hit_concurrency =
      hit_cycle_count_ == 0
          ? 1.0
          : static_cast<double>(hit_access_cycles_) / static_cast<double>(hit_cycle_count_);
  m.camat_params.pure_miss_rate = static_cast<double>(pure_miss_count_) / accesses_d;
  m.camat_params.pure_miss_penalty =
      pure_miss_count_ == 0 ? 0.0
                            : static_cast<double>(per_access_pure_cycles_) /
                                  static_cast<double>(pure_miss_count_);
  m.camat_params.miss_concurrency =
      pure_miss_cycle_count_ == 0 ? 1.0
                                  : static_cast<double>(per_access_pure_cycles_) /
                                        static_cast<double>(pure_miss_cycle_count_);
  m.camat_value = camat(m.camat_params);
  m.camat_direct = static_cast<double>(memory_active_cycles_) / accesses_d;
  m.apc = accesses_d / static_cast<double>(memory_active_cycles_);
  m.concurrency_c = m.camat_value > 0.0 ? m.amat_value / m.camat_value : 1.0;
  return m;
}

void ApcCounter::add_interval(std::uint64_t start, std::uint64_t end) {
  C2B_REQUIRE(end > start, "interval must be non-empty");
  ++accesses_;
  const std::uint64_t effective_start = std::max(start, frontier_);
  if (end > effective_start) {
    busy_cycles_ += end - effective_start;
    frontier_ = end;
  }
}

}  // namespace c2b::sim
