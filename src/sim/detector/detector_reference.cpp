#include "c2b/sim/detector/detector_reference.h"

#include <limits>

#include "c2b/common/assert.h"
#include "c2b/sim/detector/detector.h"

namespace c2b::sim {

void ReferenceCamatDetector::grow_window(std::size_t needed) {
  std::size_t capacity = window_.empty() ? 1024 : window_.size();
  while (capacity < needed) capacity *= 2;
  std::vector<CycleActivity> grown(capacity);
  const std::size_t old_capacity = window_.size();
  for (std::size_t i = 0; i < window_count_; ++i)
    grown[i] = window_[(window_head_ + i) & (old_capacity - 1)];
  window_ = std::move(grown);
  window_head_ = 0;
}

ReferenceCamatDetector::CycleActivity& ReferenceCamatDetector::cycle_slot(std::uint64_t cycle) {
  if (!window_anchored_) {
    window_base_ = cycle;
    window_anchored_ = true;
  }
  C2B_ASSERT(cycle >= window_base_,
             "access touches an already-finalized cycle (advance() watermark too eager)");
  const std::uint64_t offset = cycle - window_base_;
  if (offset >= window_count_) {
    if (offset >= window_.size()) grow_window(static_cast<std::size_t>(offset) + 1);
    // Slots between the old and new end are zero by invariant.
    window_count_ = static_cast<std::size_t>(offset) + 1;
  }
  return window_[(window_head_ + static_cast<std::size_t>(offset)) & (window_.size() - 1)];
}

const ReferenceCamatDetector::CycleActivity* ReferenceCamatDetector::find_cycle(
    std::uint64_t cycle) const {
  if (!window_anchored_ || cycle < window_base_) return nullptr;
  const std::uint64_t offset = cycle - window_base_;
  if (offset >= window_count_) return nullptr;
  return &window_[(window_head_ + static_cast<std::size_t>(offset)) & (window_.size() - 1)];
}

void ReferenceCamatDetector::record_access(std::uint64_t start_cycle, std::uint32_t hit_cycles,
                                           std::uint32_t miss_penalty_cycles) {
  C2B_REQUIRE(hit_cycles > 0, "an access needs at least one hit/lookup cycle");
  ++finalized_accesses_;
  total_hit_duration_ += hit_cycles;
  for (std::uint32_t i = 0; i < hit_cycles; ++i) ++cycle_slot(start_cycle + i).hits;
  if (miss_penalty_cycles > 0) {
    ++miss_count_;
    total_miss_penalty_ += miss_penalty_cycles;
    const std::uint64_t miss_start = start_cycle + hit_cycles;
    for (std::uint32_t i = 0; i < miss_penalty_cycles; ++i)
      ++cycle_slot(miss_start + i).misses;
    pending_misses_.push_back({miss_start, miss_penalty_cycles});
  }
}

void ReferenceCamatDetector::advance(std::uint64_t watermark) {
  // Pass 1 (MCD): finalize in-flight misses whose whole penalty interval is
  // below the watermark by inspecting their live per-cycle slots.
  std::size_t keep = 0;
  for (std::size_t p = 0; p < pending_misses_.size(); ++p) {
    const PendingMiss pm = pending_misses_[p];
    const std::uint64_t miss_end = pm.miss_start + pm.miss_cycles;
    if (miss_end > watermark) {
      pending_misses_[keep++] = pm;
      continue;
    }
    std::uint64_t pure_cycles = 0;
    for (std::uint32_t i = 0; i < pm.miss_cycles; ++i) {
      const CycleActivity* activity = find_cycle(pm.miss_start + i);
      if (activity != nullptr && activity->hits == 0 && activity->misses > 0) ++pure_cycles;
    }
    if (pure_cycles > 0) {
      ++pure_miss_count_;
      per_access_pure_cycles_ += pure_cycles;
    }
  }
  pending_misses_.resize(keep);

  // Pass 2 (HCD + cycle classification): retire cycle entries below the
  // watermark, but only those no pending miss still needs to inspect.
  std::uint64_t protect_from = watermark;
  for (const PendingMiss& pm : pending_misses_)
    protect_from = std::min(protect_from, pm.miss_start);

  while (window_anchored_ && window_count_ != 0 && window_base_ < protect_from) {
    CycleActivity& slot = window_[window_head_];
    const CycleActivity activity = slot;
    slot = CycleActivity{};  // keep the outside-live-range-is-zero invariant
    window_head_ = (window_head_ + 1) & (window_.size() - 1);
    --window_count_;
    ++window_base_;
    if (activity.hits == 0 && activity.misses == 0) continue;  // idle slot
    ++memory_active_cycles_;
    if (activity.hits > 0) {
      ++hit_cycle_count_;
      hit_access_cycles_ += activity.hits;
    } else {
      ++pure_miss_cycle_count_;
      pure_miss_access_cycles_ += activity.misses;
    }
  }
}

TimelineMetrics ReferenceCamatDetector::finalize() {
  advance(std::numeric_limits<std::uint64_t>::max());
  C2B_ASSERT(pending_misses_.empty() && window_count_ == 0,
             "detector finalize left live state");
  return detail::assemble_detector_metrics(
      {finalized_accesses_, total_hit_duration_, total_miss_penalty_, miss_count_,
       pure_miss_count_, per_access_pure_cycles_, hit_cycle_count_, hit_access_cycles_,
       pure_miss_cycle_count_, pure_miss_access_cycles_, memory_active_cycles_});
}

}  // namespace c2b::sim
