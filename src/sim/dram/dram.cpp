#include "c2b/sim/dram/dram.h"

#include <algorithm>

#include "c2b/obs/obs.h"

namespace c2b::sim {

void DramConfig::validate() const {
  C2B_REQUIRE(banks >= 1, "DRAM needs at least one bank");
  C2B_REQUIRE(lines_per_row >= 1, "row must hold at least one line");
  C2B_REQUIRE(t_cas >= 1 && t_rcd >= 1 && t_rp >= 1 && t_bus >= 1,
              "DRAM timing parameters must be positive");
}

DramModel::DramModel(const DramConfig& config) : config_(config) {
  config_.validate();
  banks_.resize(config_.banks);
}

std::uint64_t DramModel::access(std::uint64_t line, std::uint64_t arrival_cycle) {
  // Row-interleaved address map: consecutive rows rotate across banks, so
  // streaming access exploits bank-level parallelism like real controllers.
  const std::uint64_t row = line / config_.lines_per_row;
  BankState& bank = banks_[row % config_.banks];

  ++stats_.accesses;
  std::uint64_t start = std::max(arrival_cycle, bank.ready_cycle);
  std::uint64_t column_ready;
  if (bank.has_open_row && bank.open_row == row) {
    ++stats_.row_hits;
    column_ready = start + config_.t_cas;
  } else if (!bank.has_open_row) {
    ++stats_.row_empty;
    column_ready = start + config_.t_rcd + config_.t_cas;
  } else {
    ++stats_.row_conflicts;
    column_ready = start + config_.t_rp + config_.t_rcd + config_.t_cas;
  }
  bank.open_row = row;
  bank.has_open_row = true;
  bank.ready_cycle = column_ready;  // next column op to this bank after data

  // The shared data bus serializes bursts across banks.
  const std::uint64_t burst_start = std::max(column_ready, bus_free_);
  const std::uint64_t completion = burst_start + config_.t_bus;
  bus_free_ = completion;

  stats_.total_latency += completion - arrival_cycle;
  stats_.busy_cycle_estimate += config_.t_bus;
  // Queueing delay ahead of this request, expressed in burst slots: how many
  // bursts deep the bank + bus backlog effectively was on arrival.
  C2B_HISTOGRAM_RECORD(
      "sim.dram.queue_depth", 0.0, 64.0, 64,
      static_cast<double>(burst_start - arrival_cycle) / static_cast<double>(config_.t_bus));
  return completion;
}

}  // namespace c2b::sim
