#include "c2b/sim/dram/scheduler.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "c2b/common/assert.h"
#include "c2b/common/stats.h"

namespace c2b::sim {
namespace {

struct BankState {
  std::uint64_t open_row = 0;
  bool has_open_row = false;
  std::uint64_t ready = 0;
};

struct Pending {
  DramRequest request;
  std::size_t original_index = 0;
};

}  // namespace

DramScheduleResult schedule_dram_trace(const DramSchedulerConfig& config,
                                       std::vector<DramRequest> requests) {
  config.timing.validate();
  C2B_REQUIRE(config.queue_depth >= 1, "reorder queue needs at least one slot");
  DramScheduleResult result;
  result.completions.resize(requests.size());
  if (requests.empty()) return result;

  // Stable sort by arrival; keep the original index for the output mapping.
  std::vector<Pending> sorted(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) sorted[i] = {requests[i], i};
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Pending& a, const Pending& b) {
                     return a.request.arrival < b.request.arrival;
                   });

  std::vector<BankState> banks(config.timing.banks);
  std::uint64_t bus_free = 0;
  std::uint64_t now = sorted.front().request.arrival;

  std::vector<Pending> queue;  // requests visible to the scheduler
  std::size_t next_feed = 0;
  std::vector<double> latencies;
  latencies.reserve(requests.size());

  auto row_of = [&](std::uint64_t line) { return line / config.timing.lines_per_row; };
  auto bank_of = [&](std::uint64_t row) { return row % config.timing.banks; };

  while (next_feed < sorted.size() || !queue.empty()) {
    // Admit arrived requests into the reorder window.
    while (next_feed < sorted.size() && queue.size() < config.queue_depth &&
           sorted[next_feed].request.arrival <= now) {
      queue.push_back(sorted[next_feed++]);
    }
    if (queue.empty()) {
      // Jump to the next arrival.
      now = std::max(now, sorted[next_feed].request.arrival);
      continue;
    }

    // The controller decides when the oldest visible request could actually
    // issue — by then, later arrivals are visible too (this is what enables
    // FR-FCFS to bypass a conflicting older request with a younger row hit).
    {
      std::size_t oldest = 0;
      for (std::size_t i = 1; i < queue.size(); ++i)
        if (queue[i].request.arrival < queue[oldest].request.arrival) oldest = i;
      const std::uint64_t oldest_row = row_of(queue[oldest].request.line);
      const std::uint64_t horizon = std::max(
          {now, banks[bank_of(oldest_row)].ready, queue[oldest].request.arrival});
      while (next_feed < sorted.size() && queue.size() < config.queue_depth &&
             sorted[next_feed].request.arrival <= horizon) {
        queue.push_back(sorted[next_feed++]);
      }
    }

    // Pick per policy among visible requests.
    std::size_t pick = 0;
    if (config.policy == DramPolicy::kFrFcfs) {
      std::size_t oldest_hit = queue.size();
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const std::uint64_t row = row_of(queue[i].request.line);
        const BankState& bank = banks[bank_of(row)];
        if (bank.has_open_row && bank.open_row == row) {
          if (oldest_hit == queue.size() ||
              queue[i].request.arrival < queue[oldest_hit].request.arrival)
            oldest_hit = i;
        }
      }
      if (oldest_hit < queue.size()) {
        pick = oldest_hit;
      } else {
        for (std::size_t i = 1; i < queue.size(); ++i)
          if (queue[i].request.arrival < queue[pick].request.arrival) pick = i;
      }
    } else {  // FCFS: strictly oldest
      for (std::size_t i = 1; i < queue.size(); ++i)
        if (queue[i].request.arrival < queue[pick].request.arrival) pick = i;
    }

    const Pending chosen = queue[pick];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));

    const std::uint64_t row = row_of(chosen.request.line);
    BankState& bank = banks[bank_of(row)];
    const std::uint64_t start = std::max({now, bank.ready, chosen.request.arrival});
    std::uint64_t column_ready;
    if (bank.has_open_row && bank.open_row == row) {
      ++result.stats.row_hits;
      column_ready = start + config.timing.t_cas;
    } else if (!bank.has_open_row) {
      column_ready = start + config.timing.t_rcd + config.timing.t_cas;
    } else {
      column_ready = start + config.timing.t_rp + config.timing.t_rcd + config.timing.t_cas;
    }
    bank.open_row = row;
    bank.has_open_row = true;
    bank.ready = column_ready;

    const std::uint64_t burst_start = std::max(column_ready, bus_free);
    const std::uint64_t done = burst_start + config.timing.t_bus;
    bus_free = done;
    // The controller can overlap the next pick with this service; advance
    // `now` only to the command issue point, not the data burst.
    now = std::max(now, start + 1);

    result.completions[chosen.original_index] = {start, done};
    latencies.push_back(static_cast<double>(done - chosen.request.arrival));
    result.stats.makespan = std::max(result.stats.makespan, done);
  }

  result.stats.requests = requests.size();
  result.stats.mean_latency = mean_of(latencies);
  result.stats.p95_latency = percentile_of(latencies, 95.0);
  return result;
}

}  // namespace c2b::sim
