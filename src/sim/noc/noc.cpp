#include "c2b/sim/noc/noc.h"

#include <cmath>

namespace c2b::sim {

void NocConfig::validate() const {
  C2B_REQUIRE(nodes >= 1, "mesh needs at least one node");
  C2B_REQUIRE(hop_latency >= 1, "hop latency must be positive");
  C2B_REQUIRE(congestion_per_load >= 0.0, "congestion factor must be non-negative");
}

MeshNoc::MeshNoc(const NocConfig& config) : config_(config) {
  config_.validate();
  side_ = static_cast<std::uint32_t>(std::ceil(std::sqrt(static_cast<double>(config_.nodes))));
  if (side_ == 0) side_ = 1;
}

std::uint32_t MeshNoc::hops_between(std::uint32_t a, std::uint32_t b) const {
  const std::uint32_t ax = a % side_, ay = a / side_;
  const std::uint32_t bx = b % side_, by = b / side_;
  const std::uint32_t dx = ax > bx ? ax - bx : bx - ax;
  const std::uint32_t dy = ay > by ? ay - by : by - ay;
  return dx + dy;
}

std::uint64_t MeshNoc::latency(std::uint32_t src_node, std::uint32_t dst_node) const {
  C2B_REQUIRE(src_node < config_.nodes && dst_node < config_.nodes, "node out of range");
  const std::uint32_t hops = hops_between(src_node, dst_node);
  const double congestion = config_.congestion_per_load * average_hops();
  return config_.injection_latency + static_cast<std::uint64_t>(hops) * config_.hop_latency +
         static_cast<std::uint64_t>(congestion);
}

std::uint64_t MeshNoc::round_trip(std::uint32_t src_node, std::uint32_t dst_node) {
  const std::uint64_t one_way = latency(src_node, dst_node);
  messages_ += 2;
  total_hops_ += 2ull * hops_between(src_node, dst_node);
  return 2 * one_way;
}

double MeshNoc::average_hops() const noexcept {
  return messages_ == 0 ? 0.0
                        : static_cast<double>(total_hops_) / static_cast<double>(messages_);
}

}  // namespace c2b::sim
