#include "c2b/sim/cache/cache.h"

#include <algorithm>

#include "c2b/common/math_util.h"
#include "c2b/common/rng.h"

namespace c2b::sim {

namespace {
/// Base for the per-instance kRandom victim streams (golden-ratio constant,
/// the same value every array shared before streams existed).
constexpr std::uint64_t kVictimSeedBase = 0x9E3779B97F4A7C15ull;
}  // namespace

void CacheGeometry::validate() const {
  C2B_REQUIRE(line_bytes > 0 && is_pow2(line_bytes), "line size must be a power of two");
  C2B_REQUIRE(size_bytes >= line_bytes, "cache smaller than one line");
  C2B_REQUIRE(size_bytes % line_bytes == 0, "size must be a multiple of the line size");
  C2B_REQUIRE(associativity >= 1, "associativity must be >= 1");
  C2B_REQUIRE(lines() % associativity == 0, "lines must divide evenly into sets");
  C2B_REQUIRE(sets() >= 1, "cache must have at least one set");
}

CacheArray::CacheArray(const CacheGeometry& geometry, ReplacementPolicy policy,
                       std::uint64_t victim_stream)
    : geometry_(geometry),
      policy_(policy),
      rng_state_(Rng::derive_stream_seed(kVictimSeedBase, victim_stream)) {
  if (rng_state_ == 0) rng_state_ = kVictimSeedBase;  // xorshift must not start at 0
  geometry_.validate();
  C2B_REQUIRE(policy_ != ReplacementPolicy::kTreePlru || is_pow2(geometry_.associativity),
              "tree-PLRU requires power-of-two associativity");
  ways_.resize(geometry_.sets() * geometry_.associativity);
  if (policy_ == ReplacementPolicy::kTreePlru) plru_.assign(geometry_.sets(), 0);
}

CacheArray::Way* CacheArray::find_way(std::uint64_t byte_address) {
  const std::uint64_t line = line_of(byte_address);
  const std::size_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);
  Way* base = ways_.data() + set * geometry_.associativity;
  for (std::uint32_t i = 0; i < geometry_.associativity; ++i)
    if (base[i].valid && base[i].tag == tag) return base + i;
  return nullptr;
}

const CacheArray::Way* CacheArray::find_way(std::uint64_t byte_address) const {
  return const_cast<CacheArray*>(this)->find_way(byte_address);
}

void CacheArray::note_use(std::size_t set, std::uint32_t way) {
  switch (policy_) {
    case ReplacementPolicy::kLru:
      ways_[set * geometry_.associativity + way].last_used = ++clock_;
      break;
    case ReplacementPolicy::kTreePlru: {
      // Walk root->leaf; at each node record "went the other way" so the
      // PLRU victim path points away from this way.
      std::uint64_t& tree = plru_[set];
      std::uint32_t node = 1;  // 1-based heap index
      for (std::uint32_t span = geometry_.associativity / 2; span >= 1; span /= 2) {
        const bool right = (way / span) & 1;
        if (right) {
          tree &= ~(std::uint64_t{1} << node);  // bit 0 => victim goes left
        } else {
          tree |= (std::uint64_t{1} << node);   // bit 1 => victim goes right
        }
        node = 2 * node + (right ? 1 : 0);
      }
      break;
    }
    case ReplacementPolicy::kRandom:
      break;  // stateless
  }
}

std::uint32_t CacheArray::pick_victim(std::size_t set) {
  Way* base = ways_.data() + set * geometry_.associativity;
  for (std::uint32_t i = 0; i < geometry_.associativity; ++i)
    if (!base[i].valid) return i;

  switch (policy_) {
    case ReplacementPolicy::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t i = 1; i < geometry_.associativity; ++i)
        if (base[i].last_used < base[victim].last_used) victim = i;
      return victim;
    }
    case ReplacementPolicy::kTreePlru: {
      const std::uint64_t tree = plru_[set];
      std::uint32_t node = 1;
      std::uint32_t way = 0;
      for (std::uint32_t span = geometry_.associativity / 2; span >= 1; span /= 2) {
        const bool right = (tree >> node) & 1;
        if (right) way += span;
        node = 2 * node + (right ? 1 : 0);
      }
      return way;
    }
    case ReplacementPolicy::kRandom: {
      // xorshift64*
      rng_state_ ^= rng_state_ >> 12;
      rng_state_ ^= rng_state_ << 25;
      rng_state_ ^= rng_state_ >> 27;
      return static_cast<std::uint32_t>((rng_state_ * 0x2545F4914F6CDD1Dull) %
                                        geometry_.associativity);
    }
  }
  return 0;
}

bool CacheArray::probe(std::uint64_t byte_address, bool mark_dirty) {
  ++probes_;
  Way* way = find_way(byte_address);
  if (way == nullptr) return false;
  ++hits_;
  if (mark_dirty) way->dirty = true;
  const std::size_t set = set_of(line_of(byte_address));
  note_use(set, static_cast<std::uint32_t>(way - (ways_.data() + set * geometry_.associativity)));
  return true;
}

bool CacheArray::contains(std::uint64_t byte_address) const {
  return find_way(byte_address) != nullptr;
}

bool CacheArray::is_dirty(std::uint64_t byte_address) const {
  const Way* way = find_way(byte_address);
  return way != nullptr && way->dirty;
}

std::optional<CacheArray::Evicted> CacheArray::fill(std::uint64_t byte_address, bool dirty) {
  const std::uint64_t line = line_of(byte_address);
  const std::size_t set = set_of(line);
  const std::uint64_t tag = tag_of(line);

  // If already present (e.g. a merged miss filled first), refresh state.
  if (Way* existing = find_way(byte_address)) {
    existing->dirty = existing->dirty || dirty;
    note_use(set, static_cast<std::uint32_t>(
                      existing - (ways_.data() + set * geometry_.associativity)));
    return std::nullopt;
  }

  const std::uint32_t victim_index = pick_victim(set);
  Way& victim = ways_[set * geometry_.associativity + victim_index];
  std::optional<Evicted> evicted;
  if (victim.valid) {
    const std::uint64_t victim_line = victim.tag * geometry_.sets() + set;
    evicted = Evicted{victim_line * geometry_.line_bytes, victim.dirty};
    if (victim.dirty) ++dirty_evictions_;
  }
  victim = Way{.tag = tag, .last_used = 0, .valid = true, .dirty = dirty};
  note_use(set, victim_index);
  return evicted;
}

bool CacheArray::invalidate(std::uint64_t byte_address) {
  Way* way = find_way(byte_address);
  if (way == nullptr) return false;
  *way = Way{};
  return true;
}

BankPortScheduler::BankPortScheduler(std::uint32_t banks, std::uint32_t ports_per_bank)
    : ports_(ports_per_bank) {
  C2B_REQUIRE(banks >= 1, "need at least one bank");
  C2B_REQUIRE(ports_per_bank >= 1, "need at least one port per bank");
  state_.resize(banks);
}

std::uint64_t BankPortScheduler::schedule(std::uint64_t line, std::uint64_t earliest) {
  BankState& bank = state_[line % state_.size()];
  if (earliest > bank.cycle) {
    bank.cycle = earliest;
    bank.used = 1;
    return earliest;
  }
  // earliest <= bank.cycle: the bank is already busy at/after our arrival.
  if (bank.used < ports_) {
    ++bank.used;
    contention_cycles_ += bank.cycle - earliest;
    return bank.cycle;
  }
  ++bank.cycle;
  bank.used = 1;
  contention_cycles_ += bank.cycle - earliest;
  return bank.cycle;
}

MshrFile::MshrFile(std::uint32_t entries) : capacity_(entries) {
  C2B_REQUIRE(entries >= 1, "MSHR file needs at least one entry");
  entries_.reserve(entries);
}

void MshrFile::retire_before(std::uint64_t cycle) {
  // Fast path: nothing in flight completes at or before `cycle`, so the
  // scan below would keep every entry — skip it. earliest_completion_ is
  // exactly the minimum nonzero completion, maintained by complete() and
  // the compaction here.
  if (earliest_completion_ == 0 || earliest_completion_ > cycle) return;
  std::size_t keep = 0;
  std::uint64_t earliest = 0;
  for (const Entry& e : entries_) {
    if (e.completion != 0 && e.completion <= cycle) continue;
    if (e.completion != 0 && (earliest == 0 || e.completion < earliest)) earliest = e.completion;
    entries_[keep++] = e;
  }
  entries_.resize(keep);
  earliest_completion_ = earliest;
}

MshrFile::Grant MshrFile::request(std::uint64_t line, std::uint64_t cycle) {
  retire_before(cycle);
  for (const Entry& e : entries_) {
    if (e.line == line) {
      ++merges_;
      return {.start_cycle = cycle, .merged = true, .merged_completion = e.completion};
    }
  }
  std::uint64_t start = cycle;
  if (entries_.size() >= capacity_) {
    // Structural stall: wait until the earliest known completion frees a
    // slot (the incrementally maintained value — no scan needed).
    ++full_stalls_;
    if (earliest_completion_ > start) start = earliest_completion_;
    retire_before(start);
    if (entries_.size() >= capacity_) {
      // Everything in flight had unknown completion: overwrite the oldest
      // entry (bounded state; should not happen in the normal flow, where
      // each access completes its entry before the next request).
      C2B_ASSERT(entries_.front().completion == 0,
                 "full MSHR with a known completion survived retire_before");
      entries_.erase(entries_.begin());
    }
  }
  entries_.push_back({line, 0});
  return {.start_cycle = start, .merged = false, .merged_completion = 0};
}

void MshrFile::complete(std::uint64_t line, std::uint64_t completion_cycle) {
  C2B_REQUIRE(completion_cycle != 0, "completion cycle 0 is the 'unknown' sentinel");
  for (Entry& e : entries_) {
    if (e.line == line && e.completion == 0) {
      e.completion = completion_cycle;
      if (earliest_completion_ == 0 || completion_cycle < earliest_completion_)
        earliest_completion_ = completion_cycle;
      return;
    }
  }
  C2B_ASSERT(false, "MshrFile::complete for a line with no in-flight entry");
}

}  // namespace c2b::sim
