#include "c2b/sim/cache/coherence.h"

#include <bit>

namespace c2b::sim {

Directory::Directory(std::uint32_t cores) : cores_(cores) {
  C2B_REQUIRE(cores >= 1 && cores <= kMaxCores, "directory supports 1..64 cores");
}

void Directory::check_core(std::uint32_t core) const {
  C2B_REQUIRE(core < cores_, "core id out of range");
}

Directory::ReadOutcome Directory::on_read(std::uint32_t core, std::uint64_t line) {
  check_core(core);
  Entry& entry = entries_[line];
  ReadOutcome outcome;
  if (entry.owner != kNoOwner && entry.owner != core) {
    // Remote modified copy: downgrade the owner to sharer, forward data.
    outcome.owner_transfer = true;
    outcome.previous_owner = entry.owner;
    ++transfers_;
    entry.owner = kNoOwner;
  } else if (entry.owner == core) {
    // Reading our own M copy changes nothing.
    return outcome;
  }
  entry.sharers |= (std::uint64_t{1} << core);
  return outcome;
}

Directory::WriteOutcome Directory::on_write(std::uint32_t core, std::uint64_t line) {
  check_core(core);
  Entry& entry = entries_[line];
  WriteOutcome outcome;
  if (entry.owner == core) return outcome;  // already exclusive here

  if (entry.owner != kNoOwner) {
    outcome.owner_transfer = true;
    outcome.previous_owner = entry.owner;
    ++transfers_;
  }
  const std::uint64_t self_bit = std::uint64_t{1} << core;
  outcome.invalidated_mask = entry.sharers & ~self_bit;
  const auto killed = static_cast<std::uint32_t>(std::popcount(outcome.invalidated_mask));
  invalidations_ += killed;
  if ((entry.sharers & self_bit) != 0 && killed > 0) ++upgrades_;  // S -> M upgrade

  entry.sharers = self_bit;
  entry.owner = core;
  return outcome;
}

void Directory::on_evict(std::uint32_t core, std::uint64_t line) {
  check_core(core);
  const auto it = entries_.find(line);
  if (it == entries_.end()) return;
  it->second.sharers &= ~(std::uint64_t{1} << core);
  if (it->second.owner == core) it->second.owner = kNoOwner;
  if (it->second.sharers == 0) entries_.erase(it);
}

bool Directory::is_sharer(std::uint32_t core, std::uint64_t line) const {
  check_core(core);
  const auto it = entries_.find(line);
  return it != entries_.end() && (it->second.sharers >> core) & 1;
}

std::uint32_t Directory::owner_of(std::uint64_t line) const {
  const auto it = entries_.find(line);
  return it == entries_.end() ? kNoOwner : it->second.owner;
}

std::uint32_t Directory::sharer_count(std::uint64_t line) const {
  const auto it = entries_.find(line);
  return it == entries_.end() ? 0u
                              : static_cast<std::uint32_t>(std::popcount(it->second.sharers));
}

}  // namespace c2b::sim
