#include "c2b/sim/cache/prefetch.h"

#include <cstdlib>
#include <limits>

namespace c2b::sim {

Prefetcher::Prefetcher(const PrefetcherConfig& config) : config_(config) {
  C2B_REQUIRE(config_.degree >= 1, "prefetch degree must be >= 1");
  C2B_REQUIRE(config_.stream_table >= 1, "need at least one stream entry");
  C2B_REQUIRE(config_.confidence >= 1, "confidence threshold must be >= 1");
  if (config_.kind == PrefetchKind::kStride) streams_.resize(config_.stream_table);
}

std::vector<std::uint64_t> Prefetcher::on_miss(std::uint64_t line) {
  std::vector<std::uint64_t> out;
  switch (config_.kind) {
    case PrefetchKind::kNone:
      return out;

    case PrefetchKind::kNextLine:
      ++triggers_;
      out.reserve(config_.degree);
      for (std::uint32_t d = 1; d <= config_.degree; ++d) out.push_back(line + d);
      return out;

    case PrefetchKind::kStride: {
      ++clock_;
      // Find the stream whose last line is nearest this miss (within a
      // generous window), else allocate the LRU entry.
      Stream* best = nullptr;
      std::uint64_t best_distance = 256;  // lines; beyond this, new stream
      for (Stream& stream : streams_) {
        if (!stream.valid) continue;
        const std::uint64_t distance = line > stream.last_line
                                           ? line - stream.last_line
                                           : stream.last_line - line;
        if (distance <= best_distance) {
          best_distance = distance;
          best = &stream;
        }
      }
      if (best == nullptr) {
        Stream* lru = &streams_[0];
        for (Stream& stream : streams_)
          if (!stream.valid || stream.lru < lru->lru) lru = &stream;
        *lru = Stream{.last_line = line, .stride = 0, .hits = 0, .valid = true, .lru = clock_};
        return out;
      }

      const std::int64_t delta =
          static_cast<std::int64_t>(line) - static_cast<std::int64_t>(best->last_line);
      if (delta != 0 && delta == best->stride) {
        if (best->hits < std::numeric_limits<std::uint32_t>::max()) ++best->hits;
      } else {
        best->stride = delta;
        best->hits = delta == 0 ? best->hits : 1;
      }
      best->last_line = line;
      best->lru = clock_;

      if (best->stride != 0 && best->hits >= config_.confidence) {
        ++triggers_;
        out.reserve(config_.degree);
        for (std::uint32_t d = 1; d <= config_.degree; ++d) {
          const std::int64_t target =
              static_cast<std::int64_t>(line) + best->stride * static_cast<std::int64_t>(d);
          if (target >= 0) out.push_back(static_cast<std::uint64_t>(target));
        }
      }
      return out;
    }
  }
  return out;
}

}  // namespace c2b::sim
