#include "batched_simd.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__x86_64__) && !defined(C2B_DISABLE_SIMD)
#include <immintrin.h>
#define C2B_SIMD_AVX2_DISPATCH 1
#endif

#include "batch_state.h"
#include "c2b/common/assert.h"
#include "c2b/obs/obs.h"
#include "c2b/trace/chunk_store.h"

namespace c2b::sim::detail {

namespace {

/// Two-pass argmin: a blocked min reduction (lane accumulators in a
/// std::array so -O2 can vectorize the inner loop), then a scan for the
/// first occurrence of the min. The scan makes ties resolve to the lowest
/// index, matching the event heap's (cycle, core) order.
std::size_t argmin_u64_portable(const std::uint64_t* values, std::size_t count) {
  constexpr std::size_t kBlock = 8;
  std::uint64_t best = values[0];
  std::size_t i = 1;
  if (count >= 2 * kBlock) {
    std::array<std::uint64_t, kBlock> acc;
    std::memcpy(acc.data(), values, kBlock * sizeof(std::uint64_t));
    for (i = kBlock; i + kBlock <= count; i += kBlock)
      for (std::size_t j = 0; j < kBlock; ++j) acc[j] = std::min(acc[j], values[i + j]);
    best = acc[0];
    for (std::size_t j = 1; j < kBlock; ++j) best = std::min(best, acc[j]);
  }
  for (; i < count; ++i) best = std::min(best, values[i]);
  for (std::size_t j = 0;; ++j)
    if (values[j] == best) return j;
}

#if defined(C2B_SIMD_AVX2_DISPATCH)
/// AVX2 min reduction. AVX2 has no unsigned 64-bit min, so compare through
/// a sign bias: x <u y  <=>  (x ^ 2^63) <s (y ^ 2^63).
__attribute__((target("avx2"))) std::size_t argmin_u64_avx2(const std::uint64_t* values,
                                                            std::size_t count) {
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  __m256i vmin = _mm256_set1_epi64x(-1);  // all-ones == u64 max in every lane
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i gt =
        _mm256_cmpgt_epi64(_mm256_xor_si256(vmin, bias), _mm256_xor_si256(x, bias));
    vmin = _mm256_blendv_epi8(vmin, x, gt);
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  std::uint64_t best = std::min(std::min(lanes[0], lanes[1]), std::min(lanes[2], lanes[3]));
  for (; i < count; ++i) best = std::min(best, values[i]);
  for (std::size_t j = 0;; ++j)
    if (values[j] == best) return j;
}
#endif

using ArgminFn = std::size_t (*)(const std::uint64_t*, std::size_t);

struct Dispatch {
  ArgminFn argmin = argmin_u64_portable;
  bool avx2 = false;
};

Dispatch pick_dispatch() {
  Dispatch d;
#if defined(C2B_SIMD_AVX2_DISPATCH)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) {
    d.argmin = argmin_u64_avx2;
    d.avx2 = true;
  }
#endif
  return d;
}

const Dispatch g_dispatch = pick_dispatch();

/// The kernel loop, templated over the concrete cursor type so step_core's
/// peek/advance/compute_run/skip calls devirtualize for ChunkCursor.
template <typename Cursor>
std::vector<SystemResult> run_vectorized(const std::vector<SystemConfig>& configs,
                                         const std::vector<std::vector<Cursor*>>& cursors,
                                         const BatchedReplayOptions& options) {
  const std::size_t k = configs.size();
  std::vector<MemberState> members;
  members.reserve(k);
  std::vector<std::size_t> offset(k + 1, 0);
  for (std::size_t m = 0; m < k; ++m) {
    members.emplace_back(configs[m], cursors[m].size());
    offset[m + 1] = offset[m] + cursors[m].size();
  }
  // Flat next-event cycles; member m's cores occupy [offset[m], offset[m+1]).
  // All cores start pending at cycle 0, like the heap's initial events.
  std::vector<std::uint64_t> next(offset[k], 0);

  // Active members, compacted as members finish so late lockstep rounds
  // only touch live lanes.
  std::vector<std::size_t> active(k);
  for (std::size_t m = 0; m < k; ++m) active[m] = m;

  std::uint64_t lanes_active_sum = 0;
  std::uint64_t target = 0;
  while (!active.empty()) {
    if (target >= std::numeric_limits<std::uint64_t>::max() - options.lockstep_records)
      target = std::numeric_limits<std::uint64_t>::max();
    else
      target += options.lockstep_records;
    lanes_active_sum += active.size();
    std::size_t live = 0;
    for (const std::size_t m : active) {
      MemberState& s = members[m];
      std::uint64_t* const lane = next.data() + offset[m];
      bool finished = false;
      for (;;) {
        const std::size_t c = argmin_u64(lane, s.n);
        const std::uint64_t cycle = lane[c];
        if (cycle == kNever) {
          finished = true;
          break;
        }
        if (s.consumed >= target) break;
        lane[c] = step_core(s, *cursors[m][c], cycle, c);
      }
      if (finished) {
        if (!s.counters_flushed) {
          s.counters_flushed = true;
          s.flush_kernel_counters();
        }
      } else {
        active[live++] = m;
      }
    }
    active.resize(live);
  }

  std::uint64_t steps = 0;
  std::uint64_t peels = 0;
  for (const MemberState& s : members) {
    steps += s.steps;
    peels += s.peel_records;
  }
  C2B_COUNTER_ADD("exec.batch.simd.steps", steps);
  C2B_COUNTER_ADD("exec.batch.simd.peels", peels);
  C2B_COUNTER_ADD("exec.batch.simd.lanes_active", lanes_active_sum);
  if (options.kernel_stats != nullptr) {
    options.kernel_stats->simd_steps += steps;
    options.kernel_stats->simd_peels += peels;
    options.kernel_stats->simd_lanes_active += lanes_active_sum;
  }

  std::vector<SystemResult> results;
  results.reserve(k);
  for (MemberState& s : members) results.push_back(s.build_result());
  return results;
}

}  // namespace

bool simd_kernel_enabled() {
#if defined(C2B_DISABLE_SIMD)
  return false;
#else
  static const bool enabled = [] {
    const char* env = std::getenv("C2B_NO_SIMD");
    return env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0;
  }();
  return enabled;
#endif
}

bool simd_avx2_active() { return g_dispatch.avx2; }

std::size_t argmin_u64(const std::uint64_t* values, std::size_t count) {
  return g_dispatch.argmin(values, count);
}

std::vector<SystemResult> simulate_batch_vectorized(
    const std::vector<SystemConfig>& configs,
    const std::vector<std::vector<TraceCursor*>>& cursors, const BatchedReplayOptions& options) {
  // Same per-member validation as the SystemReplay constructor, so both
  // drivers reject the same inputs and bump the same run counter.
  for (std::size_t m = 0; m < configs.size(); ++m) {
    configs[m].validate();
    C2B_COUNTER_INC("sim.system.runs");
    C2B_REQUIRE(!cursors[m].empty(), "need at least one trace");
    C2B_REQUIRE(cursors[m].size() <= configs[m].hierarchy.cores,
                "more traces than cores in the hierarchy");
    for (TraceCursor* cursor : cursors[m])
      C2B_REQUIRE(cursor != nullptr && cursor->peek() != nullptr, "core trace must be non-empty");
  }

  // Devirtualize the hot path: the batched driver hands out ChunkCursors,
  // so recover the concrete type when every cursor is one.
  bool all_chunk = true;
  std::vector<std::vector<ChunkCursor*>> chunk_cursors(cursors.size());
  for (std::size_t m = 0; m < cursors.size() && all_chunk; ++m) {
    chunk_cursors[m].reserve(cursors[m].size());
    for (TraceCursor* cursor : cursors[m]) {
      auto* chunk = dynamic_cast<ChunkCursor*>(cursor);
      if (chunk == nullptr) {
        all_chunk = false;
        break;
      }
      chunk_cursors[m].push_back(chunk);
    }
  }
  if (all_chunk) return run_vectorized<ChunkCursor>(configs, chunk_cursors, options);
  return run_vectorized<TraceCursor>(configs, cursors, options);
}

}  // namespace c2b::sim::detail
