#pragma once

// Vectorized lockstep batch kernel (private header).
//
// simulate_batch_vectorized runs K batch members inside ONE kernel loop
// instead of K independent SystemReplay objects: all members' per-core
// next-event cycles live in one flat array, the per-member event heap is
// replaced by a SIMD argmin scan over that member's slice, and finished
// members are compacted out of the active-lane list. The step body is the
// shared detail::step_core template (batch_state.h), instantiated with the
// concrete ChunkCursor type when every cursor is one (the common batched
// path), so peek/advance/compute_run/skip devirtualize.
//
// Results are bit-identical to running each member through SystemReplay:
// the heap holds exactly one pending event per live core, ordered by
// (cycle, core index), and argmin with a strict `<` left-to-right scan
// returns the lowest index among minimal cycles — the same pop order.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "c2b/sim/system/batched.h"

namespace c2b::sim::detail {

/// False when the vectorized kernel is compiled out (-DC2B_DISABLE_SIMD=ON)
/// or disabled at runtime (C2B_NO_SIMD=1 in the environment).
bool simd_kernel_enabled();

/// True when the AVX2 argmin path was selected by runtime dispatch (always
/// false on non-x86-64 or under C2B_DISABLE_SIMD).
bool simd_avx2_active();

/// Index of the smallest value in [values, values + count); the lowest
/// index wins ties. Precondition: count > 0. Runtime-dispatched between a
/// portable blocked reduction and an AVX2 path.
std::size_t argmin_u64(const std::uint64_t* values, std::size_t count);

/// Vectorized equivalent of the scalar lockstep loop in batched.cpp: same
/// preconditions and member semantics as simulate_system_batched (which is
/// the only caller), same results bit for bit.
std::vector<SystemResult> simulate_batch_vectorized(
    const std::vector<SystemConfig>& configs,
    const std::vector<std::vector<TraceCursor*>>& cursors,
    const BatchedReplayOptions& options);

}  // namespace c2b::sim::detail
