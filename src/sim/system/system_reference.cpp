#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

#include "c2b/common/assert.h"
#include "c2b/obs/obs.h"
#include "c2b/sim/detector/detector_reference.h"
#include "c2b/sim/system/system.h"

// The seed cycle-by-cycle kernel, kept verbatim as the differential
// baseline for the event-driven kernel in system.cpp. Every observable —
// SystemResult fields, per-core C-AMAT/APC metrics, hierarchy stats — must
// match the production kernel bitwise; the `kernel` oracle family and the
// perf-labeled equivalence tests enforce that. Keep this file boring: any
// "improvement" here weakens the oracle.

namespace c2b::sim {

namespace {

struct ReferenceCoreState {
  const Trace* trace = nullptr;
  std::size_t ip = 0;                     ///< next instruction to issue
  std::deque<std::uint64_t> rob;          ///< completion cycles, program order
  std::uint64_t last_mem_completion = 0;  ///< for dependent loads
  std::uint64_t retired = 0;
  std::uint64_t memory_accesses = 0;
  std::uint64_t last_retire_cycle = 0;
  ReferenceCamatDetector detector;

  bool fetch_done() const { return trace == nullptr || ip >= trace->records.size(); }
  bool done() const { return fetch_done() && rob.empty(); }
};

}  // namespace

SystemResult simulate_system_reference(const SystemConfig& config,
                                       const std::vector<Trace>& per_core_traces) {
  config.validate();
  C2B_SPAN("sim/simulate_system_reference");
  C2B_COUNTER_INC("sim.system.reference_runs");
  C2B_REQUIRE(!per_core_traces.empty(), "need at least one trace");
  C2B_REQUIRE(per_core_traces.size() <= config.hierarchy.cores,
              "more traces than cores in the hierarchy");

  MemoryHierarchy hierarchy(config.hierarchy);
  std::vector<ReferenceCoreState> cores(per_core_traces.size());
  for (std::size_t c = 0; c < per_core_traces.size(); ++c) {
    cores[c].trace = &per_core_traces[c];
    C2B_REQUIRE(!per_core_traces[c].records.empty(), "core trace must be non-empty");
  }

  const std::uint32_t width = config.core.issue_width;
  const std::uint32_t rob_size = config.core.rob_size;

  std::uint64_t cycle = 0;
  for (;;) {
    bool all_done = true;
    bool any_progress = false;
    // The earliest future cycle at which some blocked core can make
    // progress; used to skip idle stretches.
    std::uint64_t next_event = std::numeric_limits<std::uint64_t>::max();

    for (std::size_t c = 0; c < cores.size(); ++c) {
      ReferenceCoreState& core = cores[c];
      if (core.done()) continue;
      all_done = false;

      // ---- Retire: in-order, up to `width` completed entries ----
      std::uint32_t retired_now = 0;
      while (!core.rob.empty() && retired_now < width && core.rob.front() <= cycle) {
        core.rob.pop_front();
        ++core.retired;
        ++retired_now;
        core.last_retire_cycle = cycle;
        any_progress = true;
      }
      if (!core.rob.empty() && core.rob.front() > cycle)
        next_event = std::min(next_event, core.rob.front());

      // ---- Issue: in-order, up to `width`, bounded by ROB space ----
      std::uint32_t issued_now = 0;
      std::uint32_t compute_issued_now = 0;
      while (issued_now < width && core.rob.size() < rob_size && !core.fetch_done()) {
        const TraceRecord& rec = core.trace->records[core.ip];
        std::uint64_t completion;
        if (rec.kind == InstrKind::kCompute) {
          if (compute_issued_now >= config.core.functional_units) break;
          ++compute_issued_now;
          completion = cycle + 1;
        } else {
          if (rec.depends_on_prev_mem && core.last_mem_completion > cycle) {
            // Address operand not ready: stall issue until it is.
            next_event = std::min(next_event, core.last_mem_completion);
            break;
          }
          const AccessOutcome outcome = hierarchy.access(
              static_cast<std::uint32_t>(c), rec.address, rec.kind == InstrKind::kStore, cycle);
          completion = outcome.completion_cycle;
          core.last_mem_completion = completion;
          ++core.memory_accesses;
          core.detector.record_access(outcome.start_cycle, outcome.hit_cycles,
                                      outcome.miss_penalty_cycles);
        }
        core.rob.push_back(completion);
        ++core.ip;
        ++issued_now;
        any_progress = true;
      }
      if (!core.rob.empty()) next_event = std::min(next_event, core.rob.front());

      // Periodically fold finished cycles into the detector's counters so
      // its live window stays bounded (every future access starts at or
      // after `cycle`, so `cycle` is always a safe watermark).
      if ((cycle & 0xFFF) == 0) {
        core.detector.advance(cycle);
        C2B_HISTOGRAM_RECORD("sim.core.rob_occupancy", 0.0, 256.0, 64,
                             static_cast<double>(core.rob.size()));
      }
    }

    if (all_done) break;
    if (any_progress || next_event == std::numeric_limits<std::uint64_t>::max()) {
      ++cycle;
    } else {
      // Every live core is blocked: jump straight to the next completion.
      cycle = std::max(cycle + 1, next_event);
    }
  }

  SystemResult result;
  result.cores.reserve(cores.size());
  for (ReferenceCoreState& core : cores) {
    CoreResult r;
    r.instructions = core.retired;
    r.memory_accesses = core.memory_accesses;
    r.cycles = core.last_retire_cycle;
    r.cpi = core.retired == 0
                ? 0.0
                : static_cast<double>(r.cycles) / static_cast<double>(core.retired);
    r.f_mem = core.retired == 0 ? 0.0
                                : static_cast<double>(core.memory_accesses) /
                                      static_cast<double>(core.retired);
    r.camat = core.detector.finalize();
    result.cycles = std::max(result.cycles, r.cycles);
    result.cores.push_back(std::move(r));
  }
  result.hierarchy = hierarchy.stats();
  return result;
}

}  // namespace c2b::sim
