#pragma once

// Struct-of-arrays batch state for the replay kernels (private header).
//
// The event-driven kernel's per-config hot state — RLE ROB ring heads and
// groups, last-memory-completion cycles, retirement counters, C-AMAT
// detector handles, next-event cycles — lives here as flat parallel arrays
// (CoreLanes spans the cores of one member; the vectorized batch kernel in
// batched_simd.cpp lays K members' lanes side by side and scans their
// next-event cycles with batch primitives). The per-event step itself is
// `step_core`, a function template over the concrete cursor type: the
// scalar SystemReplay instantiates it with the abstract TraceCursor, the
// batch kernel with ChunkCursor (a final class, so peek/advance/compute_run
// devirtualize). Both kernels therefore execute the *same* step code —
// bit-identity between them needs no argument beyond event ordering, which
// each caller owns (a (cycle, core) min-heap vs a flat next-cycle array
// with an argmin scan; see batched_simd.cpp for why those orders agree).

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "c2b/obs/obs.h"
#include "c2b/sim/system/system.h"

namespace c2b::sim::detail {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
/// Detector fold cadence, matching the seed kernel's `(cycle & 0xFFF)`.
constexpr std::uint64_t kDetectorStride = 0x1000;

/// One ROB ring entry: `count` program-order-adjacent instructions that all
/// complete at `completion`. Run-length encoding the ROB is unobservable —
/// only the FIFO sequence of completion cycles matters — and it makes whole
/// issue groups (and the pipelined fast path's batch rewrites) O(1) per
/// cycle instead of O(width).
struct RobGroup {
  std::uint64_t completion = 0;
  std::uint32_t count = 0;
};

/// Flat structure-of-arrays core state: per-core scalars in parallel
/// vectors and all ROBs in one fixed-capacity ring buffer of RLE groups,
/// replacing the per-core std::deque of the seed kernel. Capacity is
/// rob_size groups: instructions per core never exceed rob_size, and every
/// group holds at least one, so the ring cannot overflow.
struct CoreLanes {
  std::uint32_t rob_capacity = 0;
  std::vector<RobGroup> rob;             ///< group ring per core
  std::vector<std::uint32_t> rob_head;   ///< front group slot
  std::vector<std::uint32_t> rob_groups;  ///< live groups
  std::vector<std::uint32_t> rob_count;   ///< live instructions
  std::vector<std::uint64_t> last_mem_completion;
  std::vector<std::uint64_t> retired;
  std::vector<std::uint64_t> memory_accesses;
  std::vector<std::uint64_t> last_retire_cycle;
  std::vector<std::uint64_t> last_detector_fold;
  /// Running max completion ever pushed per core; never decreased on pop,
  /// so `rob_max_completion[c] <= cycle` conservatively proves every live
  /// entry is retireable (staleness only delays the pipelined fast path).
  std::vector<std::uint64_t> rob_max_completion;
  std::vector<CamatDetector> detectors;

  CoreLanes(std::size_t cores, std::uint32_t rob_size)
      : rob_capacity(rob_size),
        rob(cores * static_cast<std::size_t>(rob_size)),
        rob_head(cores, 0),
        rob_groups(cores, 0),
        rob_count(cores, 0),
        last_mem_completion(cores, 0),
        retired(cores, 0),
        memory_accesses(cores, 0),
        last_retire_cycle(cores, 0),
        last_detector_fold(cores, 0),
        rob_max_completion(cores, 0),
        detectors(cores) {}

  RobGroup& front_group(std::size_t c) { return rob[c * rob_capacity + rob_head[c]]; }
  void pop_group(std::size_t c) {
    std::uint32_t head = rob_head[c] + 1;
    if (head == rob_capacity) head = 0;
    rob_head[c] = head;
    --rob_groups[c];
  }
  /// FIFO completion of the oldest instruction (precondition: non-empty).
  std::uint64_t rob_front(std::size_t c) { return front_group(c).completion; }
  /// Append `count` instructions completing at `completion`, merging into
  /// the tail group when the completion matches (same-cycle issue group).
  void rob_push(std::size_t c, std::uint64_t completion, std::uint32_t count = 1) {
    std::uint32_t tail = rob_head[c] + rob_groups[c];
    if (tail >= rob_capacity) tail -= rob_capacity;
    if (rob_groups[c] != 0) {
      std::uint32_t last = tail == 0 ? rob_capacity - 1 : tail - 1;
      RobGroup& back = rob[c * rob_capacity + last];
      if (back.completion == completion) {
        back.count += count;
        rob_count[c] += count;
        return;
      }
    }
    rob[c * rob_capacity + tail] = {completion, count};
    ++rob_groups[c];
    rob_count[c] += count;
    rob_max_completion[c] = std::max(rob_max_completion[c], completion);
  }
};

/// All kernel loop state of one batch member (one SystemConfig run):
/// the former SystemReplay locals minus the cursors and the event order,
/// which each kernel supplies. step_core() processes exactly one event and
/// is the seed kernel's loop body unchanged.
struct MemberState {
  MemoryHierarchy hierarchy;
  std::uint32_t width;
  std::uint32_t rob_size;
  std::uint32_t fus;
  std::size_t n;
  CoreLanes lanes;

  // Cycle-skip accounting for bench_sim_kernel: cycles no event landed on
  // were provably unobservable (no core could act), so the kernel never
  // touched them.
  std::uint64_t visited_cycles = 0;
  std::uint64_t skipped_cycles = 0;
  std::uint64_t last_visited = 0;
  bool any_visited = false;

  std::uint64_t consumed = 0;  ///< trace records consumed across cursors
  bool counters_flushed = false;

  // Vectorization accounting (read by the batch kernel's telemetry): every
  // consumed record is either advanced by a closed-form compute jump
  // (fast_records) or issued through the scalar per-record path
  // (peel_records), so fast_records + peel_records == consumed.
  std::uint64_t steps = 0;         ///< events processed
  std::uint64_t fast_records = 0;  ///< records advanced by compute fast paths
  std::uint64_t peel_records = 0;  ///< records through the scalar issue path

  MemberState(const SystemConfig& config, std::size_t cores)
      : hierarchy(config.hierarchy),
        width(config.core.issue_width),
        rob_size(config.core.rob_size),
        fus(config.core.functional_units),
        n(cores),
        lanes(cores, config.core.rob_size) {}

  /// Flush the one-shot kernel counters (call exactly once, when the run
  /// finishes — both kernels guard with counters_flushed).
  void flush_kernel_counters();

  /// Final per-member SystemResult; folds the detectors (one-shot).
  SystemResult build_result();
};

/// One event-kernel step for core `c` of member `s` at `cycle`: retire,
/// compute fast paths, issue, detector fold. Returns the next cycle this
/// core can act (kNever when it is done). The caller owns event ordering
/// and must deliver events in ascending (cycle, core-index) order — the
/// seed kernel's per-cycle core scan order.
template <typename Cursor>
inline std::uint64_t step_core(MemberState& s, Cursor& cursor, const std::uint64_t cycle,
                               const std::size_t c) {
  CoreLanes& lanes = s.lanes;
  const std::uint32_t width = s.width;
  const std::uint32_t fus = s.fus;
  const std::uint32_t rob_size = s.rob_size;
  ++s.steps;
  if (!s.any_visited || cycle > s.last_visited) {
    if (s.any_visited) s.skipped_cycles += cycle - s.last_visited - 1;
    s.last_visited = cycle;
    s.any_visited = true;
    ++s.visited_cycles;
  }

  // ---- Retire: in-order, up to `width` completed entries ----
  std::uint32_t retired_now = 0;
  while (lanes.rob_count[c] != 0 && retired_now < width) {
    RobGroup& group = lanes.front_group(c);
    if (group.completion > cycle) break;
    const std::uint32_t take = std::min(group.count, width - retired_now);
    group.count -= take;
    retired_now += take;
    lanes.rob_count[c] -= take;
    lanes.retired[c] += take;
    lanes.last_retire_cycle[c] = cycle;
    if (group.count == 0) lanes.pop_group(c);
  }

  // ---- Compute fast path: jump over whole compute batches ----
  if (lanes.rob_count[c] == 0 && fus >= width) {
    const std::size_t run = cursor.compute_run(std::numeric_limits<std::size_t>::max());
    const std::uint64_t batches = run / width;
    if (batches > 0) {
      cursor.skip(static_cast<std::size_t>(batches) * width);
      s.consumed += batches * width;
      s.fast_records += batches * width;
      lanes.retired[c] += batches * width;
      const std::uint64_t resume = cycle + batches;
      lanes.last_retire_cycle[c] = resume;
      if (cycle - lanes.last_detector_fold[c] >= kDetectorStride) {
        lanes.last_detector_fold[c] = cycle;
        lanes.detectors[c].advance(cycle);
        C2B_HISTOGRAM_RECORD("sim.core.rob_occupancy", 0.0, 256.0, 64, 0.0);
      }
      // Resume later instead of continuing in place: cores with earlier
      // pending events must reach the hierarchy first.
      return resume;
    }
  }

  // ---- Pipelined compute fast path: steady-state retire/issue batches ----
  //
  // After a memory stall the ROB refills with computes and then never
  // drains (retire width == issue width keeps the occupancy constant), so
  // the empty-ROB jump above can't re-engage. But that regime is just as
  // predictable: when every live entry is already retireable and the next
  // records are all compute, each of the next `batches` cycles retires
  // exactly `width` FIFO-oldest entries and issues one full compute group
  // completing the following cycle. The net effect on the ROB is a pure
  // FIFO shift, so the surviving entries can be written in closed form:
  // any old entries the (batches-1)*width retirements did not reach,
  // followed by the newest pushes (group g, pushed at cycle+g, completes
  // cycle+g+1). No shared state is touched, so cross-core ordering is
  // preserved exactly as in the empty-ROB jump.
  if (lanes.rob_count[c] != 0 && fus >= width &&
      lanes.rob_max_completion[c] <= cycle && lanes.rob_count[c] + width <= rob_size) {
    const std::size_t run = cursor.compute_run(std::numeric_limits<std::size_t>::max());
    const std::uint64_t batches = run / width;
    if (batches > 0) {
      const std::uint32_t live = lanes.rob_count[c];
      cursor.skip(static_cast<std::size_t>(batches) * width);
      s.consumed += batches * width;
      s.fast_records += batches * width;
      const std::uint64_t pops = (batches - 1) * static_cast<std::uint64_t>(width);
      if (pops > 0) {
        lanes.retired[c] += pops;
        lanes.last_retire_cycle[c] = cycle + batches - 1;
      }
      const std::uint32_t keep_old =
          pops >= live ? 0u : live - static_cast<std::uint32_t>(pops);
      // Drop the retired old instructions group-wise from the front.
      std::uint32_t drop = live - keep_old;
      while (drop > 0) {
        RobGroup& group = lanes.front_group(c);
        const std::uint32_t take = std::min(group.count, drop);
        group.count -= take;
        drop -= take;
        lanes.rob_count[c] -= take;
        if (group.count == 0) lanes.pop_group(c);
      }
      // Append the surviving pushes: group g (issued at cycle+g) completes
      // cycle+g+1; the earliest surviving group may be partially retired.
      const std::uint64_t total_pushes = batches * width;
      const std::uint64_t first_push = total_pushes - (live + width - keep_old);
      const std::uint64_t first_group = first_push / width;
      lanes.rob_push(c, cycle + first_group + 1,
                     static_cast<std::uint32_t>((first_group + 1) * width - first_push));
      for (std::uint64_t g = first_group + 1; g < batches; ++g)
        lanes.rob_push(c, cycle + g + 1, width);
      if (cycle - lanes.last_detector_fold[c] >= kDetectorStride) {
        lanes.last_detector_fold[c] = cycle;
        lanes.detectors[c].advance(cycle);
        C2B_HISTOGRAM_RECORD("sim.core.rob_occupancy", 0.0, 256.0, 64,
                             static_cast<double>(lanes.rob_count[c]));
      }
      return cycle + batches;
    }
  }

  // ---- Issue: in-order, up to `width`, bounded by ROB space ----
  std::uint32_t issued_now = 0;
  std::uint32_t compute_issued_now = 0;
  bool dep_stall = false;
  std::uint64_t dep_ready = 0;
  const TraceRecord* rec = nullptr;
  while (issued_now < width && lanes.rob_count[c] < rob_size &&
         (rec = cursor.peek()) != nullptr) {
    std::uint64_t completion;
    if (rec->kind == InstrKind::kCompute) {
      if (compute_issued_now >= fus) break;
      ++compute_issued_now;
      completion = cycle + 1;
    } else {
      if (rec->depends_on_prev_mem && lanes.last_mem_completion[c] > cycle) {
        // Address operand not ready: stall issue until it is.
        dep_stall = true;
        dep_ready = lanes.last_mem_completion[c];
        break;
      }
      const AccessOutcome outcome = s.hierarchy.access(
          static_cast<std::uint32_t>(c), rec->address, rec->kind == InstrKind::kStore, cycle);
      completion = outcome.completion_cycle;
      lanes.last_mem_completion[c] = completion;
      ++lanes.memory_accesses[c];
      lanes.detectors[c].record_access(outcome.start_cycle, outcome.hit_cycles,
                                       outcome.miss_penalty_cycles);
    }
    lanes.rob_push(c, completion);
    cursor.advance();
    ++s.consumed;
    ++s.peel_records;
    ++issued_now;
  }

  // Periodically fold finished cycles into the detector's counters so its
  // live window stays bounded. Any watermark <= `cycle` is safe (every
  // future access starts at or after `cycle`), and the fold cadence does
  // not affect the finalized metrics (see system.cpp's header comment).
  if (cycle - lanes.last_detector_fold[c] >= kDetectorStride) {
    lanes.last_detector_fold[c] = cycle;
    lanes.detectors[c].advance(cycle);
    C2B_HISTOGRAM_RECORD("sim.core.rob_occupancy", 0.0, 256.0, 64,
                         static_cast<double>(lanes.rob_count[c]));
  }

  // ---- Next wake: the earliest cycle this core can act again ----
  std::uint64_t wake = kNever;
  if (lanes.rob_count[c] != 0) {
    const std::uint64_t head = lanes.rob_front(c);
    // Head already complete means retirement was width-limited this
    // cycle; it resumes next cycle.
    wake = head <= cycle ? cycle + 1 : head;
  }
  if (cursor.peek() != nullptr) {
    std::uint64_t issue_wake;
    if (dep_stall) {
      issue_wake = dep_ready;
    } else if (lanes.rob_count[c] >= rob_size) {
      issue_wake = wake;  // a slot frees at the next retirement
    } else {
      issue_wake = cycle + 1;  // width/FU budgets reset next cycle
    }
    wake = std::min(wake, issue_wake);
  }
  return wake;
}

}  // namespace c2b::sim::detail
