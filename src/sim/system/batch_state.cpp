#include "batch_state.h"

namespace c2b::sim::detail {

void MemberState::flush_kernel_counters() {
  C2B_COUNTER_ADD("sim.kernel.visited_cycles", visited_cycles);
  C2B_COUNTER_ADD("sim.kernel.skipped_cycles", skipped_cycles);
}

SystemResult MemberState::build_result() {
  SystemResult result;
  result.cores.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    CoreResult r;
    r.instructions = lanes.retired[c];
    r.memory_accesses = lanes.memory_accesses[c];
    r.cycles = lanes.last_retire_cycle[c];
    r.cpi = lanes.retired[c] == 0
                ? 0.0
                : static_cast<double>(r.cycles) / static_cast<double>(lanes.retired[c]);
    r.f_mem = lanes.retired[c] == 0 ? 0.0
                                    : static_cast<double>(lanes.memory_accesses[c]) /
                                          static_cast<double>(lanes.retired[c]);
    r.camat = lanes.detectors[c].finalize();
    result.cycles = std::max(result.cycles, r.cycles);
    result.cores.push_back(std::move(r));
  }
  result.hierarchy = hierarchy.stats();
  return result;
}

}  // namespace c2b::sim::detail
