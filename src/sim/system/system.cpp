#include "c2b/sim/system/system.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "batch_state.h"
#include "c2b/common/assert.h"
#include "c2b/obs/obs.h"
#include "c2b/sim/system/batched.h"

// Event-driven cycle-skipping kernel.
//
// The seed kernel (system_reference.cpp) walks every cycle and visits every
// core. This kernel instead keeps one pending event per live core — the
// next cycle at which that core can change state — in a min-heap ordered by
// (cycle, core index), and advances time by popping events.
//
// Why this is bit-identical to the per-cycle loop:
//
//  * All shared state (bank schedulers, MSHRs, L2, NoC, DRAM, directory,
//    APC counters) is touched exclusively through hierarchy.access(), and
//    the seed kernel performs those calls in lexicographic
//    (cycle, core index, issue slot) order. A core's *ability* to act at a
//    cycle depends only on core-local state: its ROB head completion, its
//    last memory completion (dependent loads), and the per-cycle width/FU
//    budgets, which reset every cycle. So each core's next actionable
//    cycle can be computed locally, and popping a (cycle, core)-ordered
//    heap reproduces the exact same access interleaving.
//  * Visits where a core can do nothing are pure in the seed kernel (no
//    state changes), so skipping them is unobservable. Conversely every
//    visit where the seed kernel's core acts is enqueued here: retirement
//    resumes exactly at the ROB head's completion cycle, issue resumes at
//    the dependent load's completion, at the next retirement (ROB full),
//    or next cycle (width/FU budget exhausted).
//  * CamatDetector::advance() folds each cycle exactly once with the same
//    classification for any valid watermark schedule (watermarks never
//    exceed the core's current cycle, and accesses never start before it),
//    so the detector's finalized metrics do not depend on the fold cadence.
//
// The compute fast path additionally jumps over whole batches of
// consecutive kCompute records: with an empty ROB and FUs >= width the seed
// kernel issues exactly `width` computes per cycle (the issue loop exits on
// the width budget, so no memory record co-issues) and retires them one
// cycle later, touching no shared state. The jump only updates core-local
// counters and re-enqueues the core, so cross-core ordering is preserved.
//
// The loop body itself (retire / fast paths / issue / detector fold) lives
// in detail::step_core (batch_state.h), shared verbatim with the vectorized
// batch kernel (batched_simd.cpp); this file owns only the event heap.

namespace c2b::sim {

void CoreConfig::validate() const {
  C2B_REQUIRE(issue_width >= 1, "issue width must be >= 1");
  C2B_REQUIRE(rob_size >= issue_width, "ROB must hold at least one issue group");
  C2B_REQUIRE(functional_units >= 1, "need at least one functional unit");
}

void SystemConfig::validate() const {
  core.validate();
  hierarchy.validate();
}

double SystemResult::total_instructions() const noexcept {
  double sum = 0.0;
  for (const CoreResult& c : cores) sum += static_cast<double>(c.instructions);
  return sum;
}

double SystemResult::aggregate_ipc() const noexcept {
  return cycles == 0 ? 0.0 : total_instructions() / static_cast<double>(cycles);
}

double SystemResult::mean_cpi() const noexcept {
  double weighted = 0.0;
  double instructions = 0.0;
  for (const CoreResult& c : cores) {
    weighted += c.cpi * static_cast<double>(c.instructions);
    instructions += static_cast<double>(c.instructions);
  }
  return instructions == 0.0 ? 0.0 : weighted / instructions;
}

namespace {

struct Event {
  std::uint64_t cycle = 0;
  std::uint32_t core = 0;
};

/// Min-heap order: earliest cycle first, then lowest core index — the seed
/// kernel's per-cycle core scan order.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return a.cycle != b.cycle ? a.cycle > b.cycle : a.core > b.core;
  }
};

}  // namespace

/// Kernel loop state: the shared member state plus this kernel's event
/// order (the min-heap). All state is members so the run can pause between
/// events (see batched.h); step() processes exactly one popped event.
struct SystemReplay::Impl {
  detail::MemberState state;
  std::vector<TraceCursor*> cursors;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events;

  Impl(const SystemConfig& config, std::vector<TraceCursor*> cs)
      : state(config, cs.size()), cursors(std::move(cs)) {
    for (std::size_t c = 0; c < state.n; ++c)
      events.push({0, static_cast<std::uint32_t>(c)});
  }

  void step() {
    const Event ev = events.top();
    events.pop();
    const std::uint64_t wake =
        detail::step_core(state, *cursors[ev.core], ev.cycle, ev.core);
    if (wake != detail::kNever) events.push({wake, ev.core});
  }
};

SystemReplay::SystemReplay(const SystemConfig& config, std::vector<TraceCursor*> cursors) {
  config.validate();
  C2B_COUNTER_INC("sim.system.runs");
  C2B_REQUIRE(!cursors.empty(), "need at least one trace");
  C2B_REQUIRE(cursors.size() <= config.hierarchy.cores,
              "more traces than cores in the hierarchy");
  for (TraceCursor* cursor : cursors)
    C2B_REQUIRE(cursor != nullptr && cursor->peek() != nullptr, "core trace must be non-empty");
  impl_ = std::make_unique<Impl>(config, std::move(cursors));
}

SystemReplay::~SystemReplay() = default;
SystemReplay::SystemReplay(SystemReplay&&) noexcept = default;
SystemReplay& SystemReplay::operator=(SystemReplay&&) noexcept = default;

bool SystemReplay::advance_until(std::uint64_t record_target) {
  Impl& s = *impl_;
  while (!s.events.empty() && s.state.consumed < record_target) s.step();
  if (s.events.empty() && !s.state.counters_flushed) {
    s.state.counters_flushed = true;
    s.state.flush_kernel_counters();
  }
  return s.events.empty();
}

bool SystemReplay::finished() const noexcept { return impl_->events.empty(); }

std::uint64_t SystemReplay::consumed_records() const noexcept { return impl_->state.consumed; }

SystemResult SystemReplay::result() {
  Impl& s = *impl_;
  C2B_REQUIRE(s.events.empty(), "result() before the replay finished");
  return s.state.build_result();
}

SystemResult simulate_system_streaming(const SystemConfig& config,
                                       const std::vector<TraceCursor*>& cursors) {
  C2B_SPAN("sim/simulate_system");
  SystemReplay replay(config, cursors);
  replay.advance_until(std::numeric_limits<std::uint64_t>::max());
  return replay.result();
}

SystemResult simulate_system(const SystemConfig& config,
                             const std::vector<Trace>& per_core_traces) {
  C2B_REQUIRE(!per_core_traces.empty(), "need at least one trace");
  std::vector<VectorTraceCursor> storage;
  storage.reserve(per_core_traces.size());
  for (const Trace& trace : per_core_traces) storage.emplace_back(trace);
  std::vector<TraceCursor*> cursors;
  cursors.reserve(storage.size());
  for (VectorTraceCursor& cursor : storage) cursors.push_back(&cursor);
  return simulate_system_streaming(config, cursors);
}

SystemResult simulate_single_core(const SystemConfig& config, const Trace& trace) {
  return simulate_system(config, {trace});
}

}  // namespace c2b::sim
