#include "c2b/sim/system/system.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "c2b/common/assert.h"
#include "c2b/obs/obs.h"
#include "c2b/sim/system/batched.h"

// Event-driven cycle-skipping kernel.
//
// The seed kernel (system_reference.cpp) walks every cycle and visits every
// core. This kernel instead keeps one pending event per live core — the
// next cycle at which that core can change state — in a min-heap ordered by
// (cycle, core index), and advances time by popping events.
//
// Why this is bit-identical to the per-cycle loop:
//
//  * All shared state (bank schedulers, MSHRs, L2, NoC, DRAM, directory,
//    APC counters) is touched exclusively through hierarchy.access(), and
//    the seed kernel performs those calls in lexicographic
//    (cycle, core index, issue slot) order. A core's *ability* to act at a
//    cycle depends only on core-local state: its ROB head completion, its
//    last memory completion (dependent loads), and the per-cycle width/FU
//    budgets, which reset every cycle. So each core's next actionable
//    cycle can be computed locally, and popping a (cycle, core)-ordered
//    heap reproduces the exact same access interleaving.
//  * Visits where a core can do nothing are pure in the seed kernel (no
//    state changes), so skipping them is unobservable. Conversely every
//    visit where the seed kernel's core acts is enqueued here: retirement
//    resumes exactly at the ROB head's completion cycle, issue resumes at
//    the dependent load's completion, at the next retirement (ROB full),
//    or next cycle (width/FU budget exhausted).
//  * CamatDetector::advance() folds each cycle exactly once with the same
//    classification for any valid watermark schedule (watermarks never
//    exceed the core's current cycle, and accesses never start before it),
//    so the detector's finalized metrics do not depend on the fold cadence.
//
// The compute fast path additionally jumps over whole batches of
// consecutive kCompute records: with an empty ROB and FUs >= width the seed
// kernel issues exactly `width` computes per cycle (the issue loop exits on
// the width budget, so no memory record co-issues) and retires them one
// cycle later, touching no shared state. The jump only updates core-local
// counters and re-enqueues the core, so cross-core ordering is preserved.

namespace c2b::sim {

void CoreConfig::validate() const {
  C2B_REQUIRE(issue_width >= 1, "issue width must be >= 1");
  C2B_REQUIRE(rob_size >= issue_width, "ROB must hold at least one issue group");
  C2B_REQUIRE(functional_units >= 1, "need at least one functional unit");
}

void SystemConfig::validate() const {
  core.validate();
  hierarchy.validate();
}

double SystemResult::total_instructions() const noexcept {
  double sum = 0.0;
  for (const CoreResult& c : cores) sum += static_cast<double>(c.instructions);
  return sum;
}

double SystemResult::aggregate_ipc() const noexcept {
  return cycles == 0 ? 0.0 : total_instructions() / static_cast<double>(cycles);
}

double SystemResult::mean_cpi() const noexcept {
  double weighted = 0.0;
  double instructions = 0.0;
  for (const CoreResult& c : cores) {
    weighted += c.cpi * static_cast<double>(c.instructions);
    instructions += static_cast<double>(c.instructions);
  }
  return instructions == 0.0 ? 0.0 : weighted / instructions;
}

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
/// Detector fold cadence, matching the seed kernel's `(cycle & 0xFFF)`.
constexpr std::uint64_t kDetectorStride = 0x1000;

struct Event {
  std::uint64_t cycle = 0;
  std::uint32_t core = 0;
};

/// Min-heap order: earliest cycle first, then lowest core index — the seed
/// kernel's per-cycle core scan order.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return a.cycle != b.cycle ? a.cycle > b.cycle : a.core > b.core;
  }
};

/// One ROB ring entry: `count` program-order-adjacent instructions that all
/// complete at `completion`. Run-length encoding the ROB is unobservable —
/// only the FIFO sequence of completion cycles matters — and it makes whole
/// issue groups (and the pipelined fast path's batch rewrites) O(1) per
/// cycle instead of O(width).
struct RobGroup {
  std::uint64_t completion = 0;
  std::uint32_t count = 0;
};

/// Flat structure-of-arrays core state: per-core scalars in parallel
/// vectors and all ROBs in one fixed-capacity ring buffer of RLE groups,
/// replacing the per-core std::deque of the seed kernel. Capacity is
/// rob_size groups: instructions per core never exceed rob_size, and every
/// group holds at least one, so the ring cannot overflow.
struct CoreLanes {
  std::uint32_t rob_capacity = 0;
  std::vector<RobGroup> rob;             ///< group ring per core
  std::vector<std::uint32_t> rob_head;   ///< front group slot
  std::vector<std::uint32_t> rob_groups;  ///< live groups
  std::vector<std::uint32_t> rob_count;   ///< live instructions
  std::vector<std::uint64_t> last_mem_completion;
  std::vector<std::uint64_t> retired;
  std::vector<std::uint64_t> memory_accesses;
  std::vector<std::uint64_t> last_retire_cycle;
  std::vector<std::uint64_t> last_detector_fold;
  /// Running max completion ever pushed per core; never decreased on pop,
  /// so `rob_max_completion[c] <= cycle` conservatively proves every live
  /// entry is retireable (staleness only delays the pipelined fast path).
  std::vector<std::uint64_t> rob_max_completion;
  std::vector<CamatDetector> detectors;

  CoreLanes(std::size_t cores, std::uint32_t rob_size)
      : rob_capacity(rob_size),
        rob(cores * static_cast<std::size_t>(rob_size)),
        rob_head(cores, 0),
        rob_groups(cores, 0),
        rob_count(cores, 0),
        last_mem_completion(cores, 0),
        retired(cores, 0),
        memory_accesses(cores, 0),
        last_retire_cycle(cores, 0),
        last_detector_fold(cores, 0),
        rob_max_completion(cores, 0),
        detectors(cores) {}

  RobGroup& front_group(std::size_t c) { return rob[c * rob_capacity + rob_head[c]]; }
  void pop_group(std::size_t c) {
    std::uint32_t head = rob_head[c] + 1;
    if (head == rob_capacity) head = 0;
    rob_head[c] = head;
    --rob_groups[c];
  }
  /// FIFO completion of the oldest instruction (precondition: non-empty).
  std::uint64_t rob_front(std::size_t c) { return front_group(c).completion; }
  /// Append `count` instructions completing at `completion`, merging into
  /// the tail group when the completion matches (same-cycle issue group).
  void rob_push(std::size_t c, std::uint64_t completion, std::uint32_t count = 1) {
    std::uint32_t tail = rob_head[c] + rob_groups[c];
    if (tail >= rob_capacity) tail -= rob_capacity;
    if (rob_groups[c] != 0) {
      std::uint32_t last = tail == 0 ? rob_capacity - 1 : tail - 1;
      RobGroup& back = rob[c * rob_capacity + last];
      if (back.completion == completion) {
        back.count += count;
        rob_count[c] += count;
        return;
      }
    }
    rob[c * rob_capacity + tail] = {completion, count};
    ++rob_groups[c];
    rob_count[c] += count;
    rob_max_completion[c] = std::max(rob_max_completion[c], completion);
  }
};

}  // namespace

/// All kernel loop state. The former simulate_system_streaming locals are
/// members so the run can pause between events (see batched.h); step()
/// processes exactly one popped event and is the seed kernel's loop body
/// unchanged.
struct SystemReplay::Impl {
  MemoryHierarchy hierarchy;
  std::vector<TraceCursor*> cursors;
  std::uint32_t width;
  std::uint32_t rob_size;
  std::uint32_t fus;
  std::size_t n;
  CoreLanes lanes;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events;

  // Cycle-skip accounting for bench_sim_kernel: cycles no event landed on
  // were provably unobservable (no core could act), so the kernel never
  // touched them.
  std::uint64_t visited_cycles = 0;
  std::uint64_t skipped_cycles = 0;
  std::uint64_t last_visited = 0;
  bool any_visited = false;

  std::uint64_t consumed = 0;  ///< trace records consumed across cursors
  bool counters_flushed = false;

  Impl(const SystemConfig& config, std::vector<TraceCursor*> cs)
      : hierarchy(config.hierarchy),
        cursors(std::move(cs)),
        width(config.core.issue_width),
        rob_size(config.core.rob_size),
        fus(config.core.functional_units),
        n(cursors.size()),
        lanes(cursors.size(), config.core.rob_size) {
    for (std::size_t c = 0; c < n; ++c) events.push({0, static_cast<std::uint32_t>(c)});
  }

  void step();
};

void SystemReplay::Impl::step() {
  const Event ev = events.top();
  events.pop();
  const std::uint64_t cycle = ev.cycle;
  const std::size_t c = ev.core;
  if (!any_visited || cycle > last_visited) {
    if (any_visited) skipped_cycles += cycle - last_visited - 1;
    last_visited = cycle;
    any_visited = true;
    ++visited_cycles;
  }
  TraceCursor& cursor = *cursors[c];

  // ---- Retire: in-order, up to `width` completed entries ----
  std::uint32_t retired_now = 0;
  while (lanes.rob_count[c] != 0 && retired_now < width) {
    RobGroup& group = lanes.front_group(c);
    if (group.completion > cycle) break;
    const std::uint32_t take = std::min(group.count, width - retired_now);
    group.count -= take;
    retired_now += take;
    lanes.rob_count[c] -= take;
    lanes.retired[c] += take;
    lanes.last_retire_cycle[c] = cycle;
    if (group.count == 0) lanes.pop_group(c);
  }

  // ---- Compute fast path: jump over whole compute batches ----
  if (lanes.rob_count[c] == 0 && fus >= width) {
    const std::size_t run = cursor.compute_run(std::numeric_limits<std::size_t>::max());
    const std::uint64_t batches = run / width;
    if (batches > 0) {
      cursor.skip(static_cast<std::size_t>(batches) * width);
      consumed += batches * width;
      lanes.retired[c] += batches * width;
      const std::uint64_t resume = cycle + batches;
      lanes.last_retire_cycle[c] = resume;
      if (cycle - lanes.last_detector_fold[c] >= kDetectorStride) {
        lanes.last_detector_fold[c] = cycle;
        lanes.detectors[c].advance(cycle);
        C2B_HISTOGRAM_RECORD("sim.core.rob_occupancy", 0.0, 256.0, 64, 0.0);
      }
      // Re-enqueue instead of continuing in place: cores with earlier
      // pending events must reach the hierarchy first.
      events.push({resume, static_cast<std::uint32_t>(c)});
      return;
    }
  }

  // ---- Pipelined compute fast path: steady-state retire/issue batches ----
  //
  // After a memory stall the ROB refills with computes and then never
  // drains (retire width == issue width keeps the occupancy constant), so
  // the empty-ROB jump above can't re-engage. But that regime is just as
  // predictable: when every live entry is already retireable and the next
  // records are all compute, each of the next `batches` cycles retires
  // exactly `width` FIFO-oldest entries and issues one full compute group
  // completing the following cycle. The net effect on the ROB is a pure
  // FIFO shift, so the surviving entries can be written in closed form:
  // any old entries the (batches-1)*width retirements did not reach,
  // followed by the newest pushes (group g, pushed at cycle+g, completes
  // cycle+g+1). No shared state is touched, so cross-core ordering is
  // preserved exactly as in the empty-ROB jump.
  if (lanes.rob_count[c] != 0 && fus >= width &&
      lanes.rob_max_completion[c] <= cycle && lanes.rob_count[c] + width <= rob_size) {
    const std::size_t run = cursor.compute_run(std::numeric_limits<std::size_t>::max());
    const std::uint64_t batches = run / width;
    if (batches > 0) {
      const std::uint32_t live = lanes.rob_count[c];
      cursor.skip(static_cast<std::size_t>(batches) * width);
      consumed += batches * width;
      const std::uint64_t pops = (batches - 1) * static_cast<std::uint64_t>(width);
      if (pops > 0) {
        lanes.retired[c] += pops;
        lanes.last_retire_cycle[c] = cycle + batches - 1;
      }
      const std::uint32_t keep_old =
          pops >= live ? 0u : live - static_cast<std::uint32_t>(pops);
      // Drop the retired old instructions group-wise from the front.
      std::uint32_t drop = live - keep_old;
      while (drop > 0) {
        RobGroup& group = lanes.front_group(c);
        const std::uint32_t take = std::min(group.count, drop);
        group.count -= take;
        drop -= take;
        lanes.rob_count[c] -= take;
        if (group.count == 0) lanes.pop_group(c);
      }
      // Append the surviving pushes: group g (issued at cycle+g) completes
      // cycle+g+1; the earliest surviving group may be partially retired.
      const std::uint64_t total_pushes = batches * width;
      const std::uint64_t first_push = total_pushes - (live + width - keep_old);
      const std::uint64_t first_group = first_push / width;
      lanes.rob_push(c, cycle + first_group + 1,
                     static_cast<std::uint32_t>((first_group + 1) * width - first_push));
      for (std::uint64_t g = first_group + 1; g < batches; ++g)
        lanes.rob_push(c, cycle + g + 1, width);
      if (cycle - lanes.last_detector_fold[c] >= kDetectorStride) {
        lanes.last_detector_fold[c] = cycle;
        lanes.detectors[c].advance(cycle);
        C2B_HISTOGRAM_RECORD("sim.core.rob_occupancy", 0.0, 256.0, 64,
                             static_cast<double>(lanes.rob_count[c]));
      }
      events.push({cycle + batches, static_cast<std::uint32_t>(c)});
      return;
    }
  }

  // ---- Issue: in-order, up to `width`, bounded by ROB space ----
  std::uint32_t issued_now = 0;
  std::uint32_t compute_issued_now = 0;
  bool dep_stall = false;
  std::uint64_t dep_ready = 0;
  const TraceRecord* rec = nullptr;
  while (issued_now < width && lanes.rob_count[c] < rob_size &&
         (rec = cursor.peek()) != nullptr) {
    std::uint64_t completion;
    if (rec->kind == InstrKind::kCompute) {
      if (compute_issued_now >= fus) break;
      ++compute_issued_now;
      completion = cycle + 1;
    } else {
      if (rec->depends_on_prev_mem && lanes.last_mem_completion[c] > cycle) {
        // Address operand not ready: stall issue until it is.
        dep_stall = true;
        dep_ready = lanes.last_mem_completion[c];
        break;
      }
      const AccessOutcome outcome = hierarchy.access(
          static_cast<std::uint32_t>(c), rec->address, rec->kind == InstrKind::kStore, cycle);
      completion = outcome.completion_cycle;
      lanes.last_mem_completion[c] = completion;
      ++lanes.memory_accesses[c];
      lanes.detectors[c].record_access(outcome.start_cycle, outcome.hit_cycles,
                                       outcome.miss_penalty_cycles);
    }
    lanes.rob_push(c, completion);
    cursor.advance();
    ++consumed;
    ++issued_now;
  }

  // Periodically fold finished cycles into the detector's counters so its
  // live window stays bounded. Any watermark <= `cycle` is safe (every
  // future access starts at or after `cycle`), and the fold cadence does
  // not affect the finalized metrics (see the header comment).
  if (cycle - lanes.last_detector_fold[c] >= kDetectorStride) {
    lanes.last_detector_fold[c] = cycle;
    lanes.detectors[c].advance(cycle);
    C2B_HISTOGRAM_RECORD("sim.core.rob_occupancy", 0.0, 256.0, 64,
                         static_cast<double>(lanes.rob_count[c]));
  }

  // ---- Next wake: the earliest cycle this core can act again ----
  std::uint64_t wake = kNever;
  if (lanes.rob_count[c] != 0) {
    const std::uint64_t head = lanes.rob_front(c);
    // Head already complete means retirement was width-limited this
    // cycle; it resumes next cycle.
    wake = head <= cycle ? cycle + 1 : head;
  }
  if (cursor.peek() != nullptr) {
    std::uint64_t issue_wake;
    if (dep_stall) {
      issue_wake = dep_ready;
    } else if (lanes.rob_count[c] >= rob_size) {
      issue_wake = wake;  // a slot frees at the next retirement
    } else {
      issue_wake = cycle + 1;  // width/FU budgets reset next cycle
    }
    wake = std::min(wake, issue_wake);
  }
  if (wake != kNever) events.push({wake, static_cast<std::uint32_t>(c)});
}

SystemReplay::SystemReplay(const SystemConfig& config, std::vector<TraceCursor*> cursors) {
  config.validate();
  C2B_COUNTER_INC("sim.system.runs");
  C2B_REQUIRE(!cursors.empty(), "need at least one trace");
  C2B_REQUIRE(cursors.size() <= config.hierarchy.cores,
              "more traces than cores in the hierarchy");
  for (TraceCursor* cursor : cursors)
    C2B_REQUIRE(cursor != nullptr && cursor->peek() != nullptr, "core trace must be non-empty");
  impl_ = std::make_unique<Impl>(config, std::move(cursors));
}

SystemReplay::~SystemReplay() = default;
SystemReplay::SystemReplay(SystemReplay&&) noexcept = default;
SystemReplay& SystemReplay::operator=(SystemReplay&&) noexcept = default;

bool SystemReplay::advance_until(std::uint64_t record_target) {
  Impl& s = *impl_;
  while (!s.events.empty() && s.consumed < record_target) s.step();
  if (s.events.empty() && !s.counters_flushed) {
    s.counters_flushed = true;
    C2B_COUNTER_ADD("sim.kernel.visited_cycles", s.visited_cycles);
    C2B_COUNTER_ADD("sim.kernel.skipped_cycles", s.skipped_cycles);
  }
  return s.events.empty();
}

bool SystemReplay::finished() const noexcept { return impl_->events.empty(); }

std::uint64_t SystemReplay::consumed_records() const noexcept { return impl_->consumed; }

SystemResult SystemReplay::result() {
  Impl& s = *impl_;
  C2B_REQUIRE(s.events.empty(), "result() before the replay finished");
  SystemResult result;
  result.cores.reserve(s.n);
  for (std::size_t c = 0; c < s.n; ++c) {
    CoreResult r;
    r.instructions = s.lanes.retired[c];
    r.memory_accesses = s.lanes.memory_accesses[c];
    r.cycles = s.lanes.last_retire_cycle[c];
    r.cpi = s.lanes.retired[c] == 0
                ? 0.0
                : static_cast<double>(r.cycles) / static_cast<double>(s.lanes.retired[c]);
    r.f_mem = s.lanes.retired[c] == 0 ? 0.0
                                      : static_cast<double>(s.lanes.memory_accesses[c]) /
                                            static_cast<double>(s.lanes.retired[c]);
    r.camat = s.lanes.detectors[c].finalize();
    result.cycles = std::max(result.cycles, r.cycles);
    result.cores.push_back(std::move(r));
  }
  result.hierarchy = s.hierarchy.stats();
  return result;
}

SystemResult simulate_system_streaming(const SystemConfig& config,
                                       const std::vector<TraceCursor*>& cursors) {
  C2B_SPAN("sim/simulate_system");
  SystemReplay replay(config, cursors);
  replay.advance_until(std::numeric_limits<std::uint64_t>::max());
  return replay.result();
}

SystemResult simulate_system(const SystemConfig& config,
                             const std::vector<Trace>& per_core_traces) {
  C2B_REQUIRE(!per_core_traces.empty(), "need at least one trace");
  std::vector<VectorTraceCursor> storage;
  storage.reserve(per_core_traces.size());
  for (const Trace& trace : per_core_traces) storage.emplace_back(trace);
  std::vector<TraceCursor*> cursors;
  cursors.reserve(storage.size());
  for (VectorTraceCursor& cursor : storage) cursors.push_back(&cursor);
  return simulate_system_streaming(config, cursors);
}

SystemResult simulate_single_core(const SystemConfig& config, const Trace& trace) {
  return simulate_system(config, {trace});
}

}  // namespace c2b::sim
