#include "c2b/sim/system/hierarchy.h"

#include <algorithm>

#include "c2b/obs/obs.h"

namespace c2b::sim {

void HierarchyConfig::validate() const {
  C2B_REQUIRE(cores >= 1, "need at least one core");
  l1_geometry.validate();
  l2_geometry.validate();
  C2B_REQUIRE(l1_geometry.line_bytes == l2_geometry.line_bytes,
              "L1 and L2 must share a line size");
  C2B_REQUIRE(l1_hit_latency >= 1 && l2_hit_latency >= 1, "hit latencies must be positive");
  C2B_REQUIRE(l1_banks >= 1 && l2_banks >= 1, "bank counts must be positive");
  C2B_REQUIRE(l1_ports_per_bank >= 1 && l2_ports_per_bank >= 1, "port counts must be positive");
  C2B_REQUIRE(l1_mshr_entries >= 1 && l2_mshr_entries >= 1, "MSHR counts must be positive");
  C2B_REQUIRE(!coherence || cores <= Directory::kMaxCores,
              "coherence directory supports at most 64 cores");
  noc.validate();
  dram.validate();
}

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config)
    : config_(config),
      l2_(config.l2_geometry, ReplacementPolicy::kLru, 0),
      l2_sched_(config.l2_banks, config.l2_ports_per_bank),
      l2_mshr_(config.l2_mshr_entries),
      noc_([&] {
        NocConfig n = config.noc;
        n.nodes = std::max(n.nodes, config.cores);
        return n;
      }()),
      dram_(config.dram) {
  config_.validate();
  if (config_.coherence) directory_.emplace(config_.cores);
  prefetched_pending_.resize(config_.cores);
  prefetchers_.reserve(config_.cores);
  for (std::uint32_t c = 0; c < config_.cores; ++c)
    prefetchers_.emplace_back(config_.l1_prefetch);
  l1_.reserve(config_.cores);
  l1_sched_.reserve(config_.cores);
  l1_mshr_.reserve(config_.cores);
  for (std::uint32_t c = 0; c < config_.cores; ++c) {
    // Distinct victim streams per array (L2 holds stream 0) so a future
    // kRandom hierarchy never replays correlated victim sequences.
    l1_.emplace_back(config_.l1_geometry, ReplacementPolicy::kLru, c + 1);
    l1_sched_.emplace_back(config_.l1_banks, config_.l1_ports_per_bank);
    l1_mshr_.emplace_back(config_.l1_mshr_entries);
  }
}

AccessOutcome MemoryHierarchy::access(std::uint32_t core, std::uint64_t address, bool is_write,
                                      std::uint64_t cycle) {
  C2B_REQUIRE(core < config_.cores, "core id out of range");
  const std::uint64_t line = address / config_.l1_geometry.line_bytes;
  const std::uint32_t slice = noc_.slice_of(line);
  const std::uint32_t core_node = core;  // cores occupy the first mesh nodes

  AccessOutcome outcome;
  outcome.hit_cycles = config_.l1_hit_latency;
  outcome.start_cycle = l1_sched_[core].schedule(line, cycle);
  const std::uint64_t lookup_done = outcome.start_cycle + config_.l1_hit_latency;

  // L2 fill that retires dirty victims to DRAM as write traffic (off the
  // load critical path, but occupying banks and bus like any burst).
  auto fill_l2 = [&](std::uint64_t fill_address, bool dirty, std::uint64_t at_cycle) {
    const auto victim = l2_.fill(fill_address, dirty);
    if (victim.has_value()) {
      C2B_COUNTER_INC("sim.l2.evictions");
      if (victim->dirty) {
        dram_.access(victim->address / config_.l2_geometry.line_bytes, at_cycle);
        ++l2_writebacks_;
      }
    }
  };

  // Invalidate the other cores' L1 copies named by `mask` and return the
  // worst-case directory fan-out delay (slice -> victim -> ack).
  auto fan_out_invalidations = [&](std::uint64_t mask) -> std::uint64_t {
    std::uint64_t worst = 0;
    for (std::uint32_t victim = 0; mask != 0; ++victim, mask >>= 1) {
      if ((mask & 1) == 0) continue;
      l1_[victim].invalidate(address);
      worst = std::max(worst, 2 * noc_.latency(slice, victim));
    }
    return worst;
  };

  if (config_.perfect_memory || l1_[core].probe(address, is_write)) {
    C2B_COUNTER_INC("sim.l1.hit");
    outcome.completion_cycle = lookup_done;
    outcome.level = ServiceLevel::kL1;
    if (!prefetched_pending_[core].empty() && prefetched_pending_[core].erase(line) > 0)
      ++prefetch_useful_;
    if (directory_ && !config_.perfect_memory) {
      if (is_write) {
        // Write hit: if anyone else holds the line, this is an S->M upgrade
        // through the home slice — a coherence stall, not a plain hit.
        const Directory::WriteOutcome w = directory_->on_write(core, line);
        if (w.invalidated_mask != 0 || w.owner_transfer) {
          const std::uint64_t fan_out = fan_out_invalidations(w.invalidated_mask);
          const std::uint64_t upgrade =
              noc_.latency(core_node, slice) * 2 + fan_out;
          outcome.completion_cycle = lookup_done + upgrade;
          outcome.miss_penalty_cycles = static_cast<std::uint32_t>(upgrade);
          outcome.level = ServiceLevel::kL2;
        }
      } else {
        directory_->on_read(core, line);  // bookkeeping; already a sharer
      }
    }
    apc_l1_.add_interval(outcome.start_cycle, outcome.completion_cycle);
    return outcome;
  }

  // ---- L1 miss: allocate/merge an MSHR ----
  C2B_COUNTER_INC("sim.l1.miss");
  const MshrFile::Grant grant = l1_mshr_[core].request(line, lookup_done);
  C2B_HISTOGRAM_RECORD("sim.l1.mshr_occupancy", 0.0, 64.0, 64,
                       static_cast<double>(l1_mshr_[core].in_flight()));
  if (grant.merged && grant.merged_completion > lookup_done) {
    outcome.completion_cycle = grant.merged_completion;
    outcome.level = ServiceLevel::kL2;  // rides the primary miss
    outcome.miss_penalty_cycles =
        static_cast<std::uint32_t>(outcome.completion_cycle - lookup_done);
    if (directory_) {
      if (is_write) {
        fan_out_invalidations(directory_->on_write(core, line).invalidated_mask);
      } else {
        directory_->on_read(core, line);
      }
    }
    apc_l1_.add_interval(outcome.start_cycle, outcome.completion_cycle);
    return outcome;
  }
  const std::uint64_t service_start = grant.merged ? lookup_done : grant.start_cycle;

  // ---- Travel to the line's home L2 slice ----
  const std::uint64_t to_slice = noc_.latency(core_node, slice);
  const std::uint64_t from_slice = to_slice;  // symmetric route
  noc_.round_trip(core_node, slice);          // traffic bookkeeping
  C2B_HISTOGRAM_RECORD("sim.noc.round_trip_cycles", 0.0, 256.0, 64,
                       static_cast<double>(2 * to_slice));

  const std::uint64_t l2_arrival = service_start + to_slice;
  const std::uint64_t l2_start = l2_sched_.schedule(line, l2_arrival);
  const std::uint64_t l2_done = l2_start + config_.l2_hit_latency;
  ++l2_accesses_;

  // Coherence action at the home slice: a remote M copy is fetched from its
  // owner (cache-to-cache forward + implicit writeback into L2); a write
  // additionally invalidates every other sharer.
  std::uint64_t coherence_delay = 0;
  if (directory_) {
    if (is_write) {
      const Directory::WriteOutcome w = directory_->on_write(core, line);
      coherence_delay = fan_out_invalidations(w.invalidated_mask);
      if (w.owner_transfer) {
        coherence_delay =
            std::max(coherence_delay, 2 * noc_.latency(slice, w.previous_owner));
        fill_l2(address, true, l2_start);  // the dirty data lands in L2
      }
    } else {
      const Directory::ReadOutcome r = directory_->on_read(core, line);
      if (r.owner_transfer) {
        coherence_delay = 2 * noc_.latency(slice, r.previous_owner);
        fill_l2(address, true, l2_start);  // owner's writeback makes L2 current
      }
    }
  }

  std::uint64_t data_at_slice;
  if (l2_.probe(address)) {
    C2B_COUNTER_INC("sim.l2.hit");
    data_at_slice = l2_done + coherence_delay;
    outcome.level = ServiceLevel::kL2;
    apc_l2_.add_interval(l2_start, data_at_slice);
  } else {
    ++l2_misses_;
    C2B_COUNTER_INC("sim.l2.miss");
    outcome.level = ServiceLevel::kMemory;
    const MshrFile::Grant l2_grant = l2_mshr_.request(line, l2_done);
    if (l2_grant.merged && l2_grant.merged_completion > l2_done) {
      data_at_slice = l2_grant.merged_completion;
    } else {
      const std::uint64_t dram_arrival = l2_grant.merged ? l2_done : l2_grant.start_cycle;
      data_at_slice = dram_.access(line, dram_arrival);
      apc_mem_.add_interval(dram_arrival, data_at_slice);
      l2_mshr_.complete(line, data_at_slice);
    }
    data_at_slice += coherence_delay;
    fill_l2(address, false, data_at_slice);
    apc_l2_.add_interval(l2_start, data_at_slice);
  }

  outcome.completion_cycle = data_at_slice + from_slice;
  const auto evicted = l1_[core].fill(address, is_write);
  if (evicted.has_value()) {
    C2B_COUNTER_INC("sim.l1.evictions");
    if (directory_)
      directory_->on_evict(core, evicted->address / config_.l1_geometry.line_bytes);
    if (evicted->dirty) {
      // Write-back to the victim's home L2 slice via the write buffer; it is
      // not on this access's critical path but generates real L2/DRAM traffic.
      fill_l2(evicted->address, true, outcome.completion_cycle);
      ++l1_writebacks_;
    }
  }
  l1_mshr_[core].complete(line, outcome.completion_cycle);
  outcome.miss_penalty_cycles =
      static_cast<std::uint32_t>(outcome.completion_cycle - lookup_done);
  apc_l1_.add_interval(outcome.start_cycle, outcome.completion_cycle);

  if (config_.l1_prefetch.kind != PrefetchKind::kNone) {
    for (const std::uint64_t candidate : prefetchers_[core].on_miss(line))
      issue_prefetch(core, candidate, data_at_slice);
  }
  return outcome;
}

void MemoryHierarchy::issue_prefetch(std::uint32_t core, std::uint64_t line,
                                     std::uint64_t at_cycle) {
  const std::uint64_t address = line * config_.l1_geometry.line_bytes;
  if (l1_[core].contains(address)) return;
  // Never prefetch a line another core holds modified: that would force an
  // ownership transfer on speculation.
  if (directory_ && directory_->owner_of(line) != Directory::kNoOwner &&
      directory_->owner_of(line) != core)
    return;

  // Charge the shared resources the speculative fetch occupies.
  const std::uint64_t l2_start = l2_sched_.schedule(line, at_cycle);
  if (!l2_.probe(address)) {
    const std::uint64_t done = dram_.access(line, l2_start + config_.l2_hit_latency);
    const auto victim = l2_.fill(address);
    if (victim.has_value() && victim->dirty) {
      dram_.access(victim->address / config_.l2_geometry.line_bytes, done);
      ++l2_writebacks_;
    }
  }

  const auto evicted = l1_[core].fill(address);
  if (evicted.has_value()) {
    if (directory_)
      directory_->on_evict(core, evicted->address / config_.l1_geometry.line_bytes);
    if (evicted->dirty) {
      const auto victim = l2_.fill(evicted->address, true);
      if (victim.has_value() && victim->dirty) {
        dram_.access(victim->address / config_.l2_geometry.line_bytes, at_cycle);
        ++l2_writebacks_;
      }
      ++l1_writebacks_;
    }
    prefetched_pending_[core].erase(evicted->address / config_.l1_geometry.line_bytes);
  }
  if (directory_) directory_->on_read(core, line);
  prefetched_pending_[core].insert(line);
  ++prefetches_issued_;
}

HierarchyStats MemoryHierarchy::stats() const {
  HierarchyStats s;
  std::uint64_t probes = 0, hits = 0, merges = 0, full_stalls = 0;
  for (std::uint32_t c = 0; c < config_.cores; ++c) {
    probes += l1_[c].probe_count();
    hits += l1_[c].hit_count();
    merges += l1_mshr_[c].merge_count();
    full_stalls += l1_mshr_[c].full_stall_events();
  }
  s.l1_accesses = probes;
  s.l1_miss_ratio =
      probes == 0 ? 0.0 : 1.0 - static_cast<double>(hits) / static_cast<double>(probes);
  s.l2_accesses = l2_accesses_;
  s.l2_miss_ratio = l2_accesses_ == 0 ? 0.0
                                      : static_cast<double>(l2_misses_) /
                                            static_cast<double>(l2_accesses_);
  s.dram_accesses = dram_.stats().accesses;
  s.dram_row_hit_ratio = dram_.stats().row_hit_ratio();
  s.dram_average_latency = dram_.stats().average_latency();
  s.apc_l1 = apc_l1_.apc();
  s.apc_l2 = apc_l2_.apc();
  s.apc_mem = apc_mem_.apc();
  s.l1_mshr_merges = merges;
  s.l1_mshr_full_stalls = full_stalls;
  s.l1_writebacks = l1_writebacks_;
  s.l2_writebacks = l2_writebacks_;
  s.prefetches_issued = prefetches_issued_;
  s.prefetch_useful_hits = prefetch_useful_;
  s.prefetch_accuracy =
      prefetches_issued_ == 0
          ? 0.0
          : static_cast<double>(prefetch_useful_) / static_cast<double>(prefetches_issued_);
  s.noc_average_hops = noc_.average_hops();
  if (directory_) {
    s.coherence_invalidations = directory_->invalidations_sent();
    s.coherence_owner_transfers = directory_->ownership_transfers();
    s.coherence_upgrades = directory_->upgrade_requests();
  }
  return s;
}

}  // namespace c2b::sim
