#include "c2b/sim/system/batched.h"

#include <limits>

#include "c2b/common/assert.h"
#include "c2b/obs/obs.h"

namespace c2b::sim {

std::vector<SystemResult> simulate_system_batched(
    const std::vector<SystemConfig>& configs,
    const std::vector<std::vector<TraceCursor*>>& cursors, const BatchedReplayOptions& options) {
  C2B_REQUIRE(!configs.empty(), "need at least one batch member");
  C2B_REQUIRE(configs.size() == cursors.size(), "one cursor set per config");
  C2B_REQUIRE(options.lockstep_records > 0, "lockstep granularity must be positive");
  C2B_SPAN("sim/simulate_system_batched");

  const std::size_t k = configs.size();
  std::vector<SystemReplay> replays;
  replays.reserve(k);
  for (std::size_t m = 0; m < k; ++m) replays.emplace_back(configs[m], cursors[m]);

  // Round-robin over the members with a common, monotonically growing
  // record target: no member consumes past the target until every member
  // has reached it (or finished). Members that share a chunk-store stream
  // therefore stay within ~one chunk + one compute-run of each other, which
  // bounds the store's resident window and keeps each chunk cache-hot while
  // all K members drain it. Bit-identity needs no argument here: each
  // member is an independent SystemReplay, and slicing a replay into
  // advance_until() calls is invisible to its result.
  std::uint64_t target = 0;
  std::size_t finished = 0;
  while (finished < k) {
    if (target >= std::numeric_limits<std::uint64_t>::max() - options.lockstep_records)
      target = std::numeric_limits<std::uint64_t>::max();
    else
      target += options.lockstep_records;
    finished = 0;
    for (std::size_t m = 0; m < k; ++m)
      if (replays[m].advance_until(target)) ++finished;
  }

  std::vector<SystemResult> results;
  results.reserve(k);
  for (std::size_t m = 0; m < k; ++m) results.push_back(replays[m].result());
  return results;
}

}  // namespace c2b::sim
