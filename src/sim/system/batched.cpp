#include "c2b/sim/system/batched.h"

#include <limits>
#include <numeric>

#include "batched_simd.h"
#include "c2b/common/assert.h"
#include "c2b/obs/obs.h"

namespace c2b::sim {

std::vector<SystemResult> simulate_system_batched(
    const std::vector<SystemConfig>& configs,
    const std::vector<std::vector<TraceCursor*>>& cursors, const BatchedReplayOptions& options) {
  C2B_REQUIRE(!configs.empty(), "need at least one batch member");
  C2B_REQUIRE(configs.size() == cursors.size(), "one cursor set per config");
  C2B_REQUIRE(options.lockstep_records > 0, "lockstep granularity must be positive");
  C2B_SPAN("sim/simulate_system_batched");

  const std::size_t k = configs.size();

  // Dispatch: multi-member batches run the vectorized kernel (one loop over
  // all members, SIMD argmin event selection, devirtualized cursors) unless
  // it is switched off; single members gain nothing from it. Both paths are
  // bit-identical — see batched_simd.h for the ordering argument.
  if (k >= 2 && options.use_simd && detail::simd_kernel_enabled())
    return detail::simulate_batch_vectorized(configs, cursors, options);

  std::vector<SystemReplay> replays;
  replays.reserve(k);
  for (std::size_t m = 0; m < k; ++m) replays.emplace_back(configs[m], cursors[m]);

  // Round-robin over the members with a common, monotonically growing
  // record target: no member consumes past the target until every member
  // has reached it (or finished). Members that share a chunk-store stream
  // therefore stay within ~one chunk + one compute-run of each other, which
  // bounds the store's resident window and keeps each chunk cache-hot while
  // all K members drain it. Bit-identity needs no argument here: each
  // member is an independent SystemReplay, and slicing a replay into
  // advance_until() calls is invisible to its result. Finished members are
  // compacted out of the sweep so skewed trace lengths don't pay a full
  // K-wide scan every remaining round.
  std::vector<std::size_t> unfinished(k);
  std::iota(unfinished.begin(), unfinished.end(), std::size_t{0});
  std::uint64_t target = 0;
  while (!unfinished.empty()) {
    if (target >= std::numeric_limits<std::uint64_t>::max() - options.lockstep_records)
      target = std::numeric_limits<std::uint64_t>::max();
    else
      target += options.lockstep_records;
    std::size_t live = 0;
    for (const std::size_t m : unfinished)
      if (!replays[m].advance_until(target)) unfinished[live++] = m;
    unfinished.resize(live);
  }

  std::vector<SystemResult> results;
  results.reserve(k);
  for (std::size_t m = 0; m < k; ++m) results.push_back(replays[m].result());
  return results;
}

}  // namespace c2b::sim
