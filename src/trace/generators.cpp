#include "c2b/trace/generators.h"

#include <algorithm>
#include <numeric>

#include "c2b/common/assert.h"

namespace c2b {

namespace detail {

TraceRecord BufferedGenerator::next() {
  while (position_ >= buffer_.size()) {
    buffer_.clear();
    position_ = 0;
    refill(buffer_);
    C2B_ASSERT(!buffer_.empty(), "generator refill produced no records");
  }
  return buffer_[position_++];
}

void BufferedGenerator::reset() {
  buffer_.clear();
  position_ = 0;
  rewind();
}

}  // namespace detail

namespace {

constexpr std::uint64_t kElem = 8;   // sizeof(double)
constexpr std::uint64_t kLine = 64;  // cache-line bytes

}  // namespace

// ---------------------------------------------------------------------------
// TiledMatMulGenerator

TiledMatMulGenerator::TiledMatMulGenerator(std::size_t matrix_dim, std::size_t tile_dim,
                                           std::uint64_t base_address)
    : BufferedGenerator("tmm"), n_(matrix_dim), tile_(tile_dim) {
  C2B_REQUIRE(matrix_dim >= 1, "matrix dimension must be >= 1");
  C2B_REQUIRE(tile_dim >= 1 && tile_dim <= matrix_dim, "tile must fit in the matrix");
  base_a_ = base_address;
  base_b_ = base_a_ + static_cast<std::uint64_t>(n_) * n_ * kElem;
  base_c_ = base_b_ + static_cast<std::uint64_t>(n_) * n_ * kElem;
}

void TiledMatMulGenerator::refill(std::vector<TraceRecord>& out) {
  // One (i, j): the full k-run of the current tile, so the C element is
  // loaded once, accumulated over k, and stored once — like real code.
  const std::size_t i = ii_ + i_;
  const std::size_t j = jj_ + j_;
  out.push_back(load(base_c_ + (static_cast<std::uint64_t>(i) * n_ + j) * kElem));
  const std::size_t k_end = std::min(kk_ + tile_, n_);
  for (std::size_t k = kk_; k < k_end; ++k) {
    out.push_back(load(base_a_ + (static_cast<std::uint64_t>(i) * n_ + k) * kElem));
    out.push_back(load(base_b_ + (static_cast<std::uint64_t>(k) * n_ + j) * kElem));
    out.push_back(compute());  // multiply
    out.push_back(compute());  // add
  }
  out.push_back(store(base_c_ + (static_cast<std::uint64_t>(i) * n_ + j) * kElem));

  // Advance the (ii, jj, kk)(i, j) odometer; k is consumed whole per refill.
  auto advance = [&] {
    if (++j_ < tile_ && jj_ + j_ < n_) return;
    j_ = 0;
    if (++i_ < tile_ && ii_ + i_ < n_) return;
    i_ = 0;
    kk_ += tile_;
    if (kk_ < n_) return;
    kk_ = 0;
    jj_ += tile_;
    if (jj_ < n_) return;
    jj_ = 0;
    ii_ += tile_;
    if (ii_ < n_) return;
    ii_ = 0;  // whole multiply done; loop forever
  };
  advance();
}

void TiledMatMulGenerator::rewind() { ii_ = jj_ = kk_ = i_ = j_ = k_ = 0; }

// ---------------------------------------------------------------------------
// StencilGenerator

StencilGenerator::StencilGenerator(std::size_t grid_dim, std::uint64_t base_address)
    : BufferedGenerator("stencil"), n_(grid_dim) {
  C2B_REQUIRE(grid_dim >= 3, "stencil grid must be at least 3x3");
  base_in_ = base_address;
  base_out_ = base_in_ + static_cast<std::uint64_t>(n_) * n_ * kElem;
}

void StencilGenerator::refill(std::vector<TraceRecord>& out) {
  auto at = [&](std::uint64_t base, std::size_t r, std::size_t c) {
    return base + (static_cast<std::uint64_t>(r) * n_ + c) * kElem;
  };
  out.push_back(load(at(base_in_, i_, j_)));
  out.push_back(load(at(base_in_, i_ - 1, j_)));
  out.push_back(load(at(base_in_, i_ + 1, j_)));
  out.push_back(load(at(base_in_, i_, j_ - 1)));
  out.push_back(load(at(base_in_, i_, j_ + 1)));
  for (int c = 0; c < 5; ++c) out.push_back(compute());
  out.push_back(store(at(base_out_, i_, j_)));

  if (++j_ >= n_ - 1) {
    j_ = 1;
    if (++i_ >= n_ - 1) i_ = 1;  // next sweep
  }
}

void StencilGenerator::rewind() {
  i_ = 1;
  j_ = 1;
}

// ---------------------------------------------------------------------------
// FftGenerator

FftGenerator::FftGenerator(unsigned log2_n, std::uint64_t base_address)
    : BufferedGenerator("fft"), log2_n_(log2_n), n_(std::size_t{1} << log2_n), base_(base_address) {
  C2B_REQUIRE(log2_n >= 1 && log2_n <= 30, "FFT size must be 2^1 .. 2^30");
}

void FftGenerator::refill(std::vector<TraceRecord>& out) {
  // Stage s pairs elements `half` apart within groups of size 2*half;
  // complex doubles are 16 bytes.
  const std::size_t half = std::size_t{1} << stage_;
  const std::size_t idx_a = group_ * (half * 2) + butterfly_;
  const std::size_t idx_b = idx_a + half;
  constexpr std::uint64_t kComplex = 16;

  out.push_back(load(base_ + idx_a * kComplex));
  out.push_back(load(base_ + idx_b * kComplex));
  for (int c = 0; c < 6; ++c) out.push_back(compute());  // twiddle multiply + add/sub
  out.push_back(store(base_ + idx_a * kComplex));
  out.push_back(store(base_ + idx_b * kComplex));

  if (++butterfly_ >= half) {
    butterfly_ = 0;
    const std::size_t groups = n_ / (half * 2);
    if (++group_ >= groups) {
      group_ = 0;
      if (++stage_ >= log2_n_) stage_ = 0;  // next transform
    }
  }
}

void FftGenerator::rewind() {
  stage_ = 0;
  group_ = butterfly_ = 0;
}

// ---------------------------------------------------------------------------
// BandSparseGenerator

BandSparseGenerator::BandSparseGenerator(std::size_t rows, std::size_t band,
                                         std::uint64_t base_address)
    : BufferedGenerator("band_sparse"), rows_(rows), band_(band) {
  C2B_REQUIRE(rows >= 1, "need at least one row");
  C2B_REQUIRE(band >= 1 && band <= rows, "band must be in [1, rows]");
  const std::uint64_t nnz = static_cast<std::uint64_t>(rows_) * (2 * band_ + 1);
  base_vals_ = base_address;
  base_x_ = base_vals_ + nnz * kElem;
  base_y_ = base_x_ + static_cast<std::uint64_t>(rows_) * kElem;
}

void BandSparseGenerator::refill(std::vector<TraceRecord>& out) {
  // y[row] = sum over the band of A(row, col) * x[col].
  const std::size_t width = 2 * band_ + 1;
  const std::uint64_t row_vals = base_vals_ + static_cast<std::uint64_t>(row_) * width * kElem;
  const std::size_t col_lo = row_ >= band_ ? row_ - band_ : 0;
  const std::size_t col_hi = std::min(row_ + band_, rows_ - 1);
  for (std::size_t col = col_lo; col <= col_hi; ++col) {
    out.push_back(load(row_vals + (col - col_lo) * kElem));
    out.push_back(load(base_x_ + static_cast<std::uint64_t>(col) * kElem));
    out.push_back(compute());
    out.push_back(compute());
  }
  out.push_back(store(base_y_ + static_cast<std::uint64_t>(row_) * kElem));
  if (++row_ >= rows_) row_ = 0;
}

void BandSparseGenerator::rewind() { row_ = 0; }

// ---------------------------------------------------------------------------
// PointerChaseGenerator

PointerChaseGenerator::PointerChaseGenerator(std::size_t lines, unsigned computes_per_access,
                                             std::uint64_t seed, std::uint64_t base_address)
    : BufferedGenerator("pointer_chase"),
      computes_per_access_(computes_per_access),
      base_(base_address) {
  C2B_REQUIRE(lines >= 2, "pointer chase needs at least two lines");
  std::vector<std::uint32_t> permutation(lines);
  std::iota(permutation.begin(), permutation.end(), 0u);
  // Sattolo's algorithm: a single cycle through every line, so the chase
  // visits the whole working set before repeating.
  Rng rng(seed);
  for (std::size_t i = lines - 1; i > 0; --i) {
    const std::size_t j = rng.uniform_below(i);
    std::swap(permutation[i], permutation[j]);
  }
  permutation_ = std::make_shared<const std::vector<std::uint32_t>>(std::move(permutation));
}

void PointerChaseGenerator::refill(std::vector<TraceRecord>& out) {
  out.push_back(dependent_load(base_ + static_cast<std::uint64_t>(current_) * kLine));
  for (unsigned c = 0; c < computes_per_access_; ++c) out.push_back(compute());
  current_ = (*permutation_)[current_];
}

void PointerChaseGenerator::rewind() { current_ = 0; }

// ---------------------------------------------------------------------------
// ZipfStreamGenerator

ZipfStreamGenerator::ZipfStreamGenerator(const Params& params)
    : BufferedGenerator("zipf_stream"), params_(params), rng_(params.seed) {
  C2B_REQUIRE(params.working_set_lines >= 1, "working set must be non-empty");
  C2B_REQUIRE(params.zipf_exponent >= 0.0, "zipf exponent must be >= 0");
  C2B_REQUIRE(params.f_mem > 0.0 && params.f_mem <= 1.0, "f_mem in (0,1]");
  C2B_REQUIRE(params.write_ratio >= 0.0 && params.write_ratio <= 1.0, "write ratio in [0,1]");
  // Scatter the popularity ranks over the address space so hot lines do not
  // all sit in the same cache sets.
  std::vector<std::uint32_t> hot_order(params.working_set_lines);
  std::iota(hot_order.begin(), hot_order.end(), 0u);
  Rng shuffle_rng(params.seed ^ 0x5bf03635u);
  for (std::size_t i = hot_order.size() - 1; i > 0; --i) {
    const std::size_t j = shuffle_rng.uniform_below(i + 1);
    std::swap(hot_order[i], hot_order[j]);
  }
  hot_order_ = std::make_shared<const std::vector<std::uint32_t>>(std::move(hot_order));
}

void ZipfStreamGenerator::refill(std::vector<TraceRecord>& out) {
  if (!rng_.bernoulli(params_.f_mem)) {
    out.push_back(compute());
    return;
  }
  const std::size_t rank = rng_.zipf(params_.working_set_lines, params_.zipf_exponent);
  const std::uint64_t line = (*hot_order_)[rank];
  const std::uint64_t address = params_.base_address + line * kLine;
  if (rng_.bernoulli(params_.write_ratio)) {
    out.push_back(store(address));
  } else {
    out.push_back(load(address));
  }
}

void ZipfStreamGenerator::rewind() {
  rng_.reseed(params_.seed);
}

// ---------------------------------------------------------------------------
// GupsGenerator

GupsGenerator::GupsGenerator(std::size_t table_lines, std::uint64_t seed,
                             std::uint64_t base_address)
    : BufferedGenerator("gups"), table_lines_(table_lines), seed_(seed), rng_(seed),
      base_(base_address) {
  C2B_REQUIRE(table_lines >= 1, "GUPS table must be non-empty");
}

void GupsGenerator::refill(std::vector<TraceRecord>& out) {
  const std::uint64_t address = base_ + rng_.uniform_below(table_lines_) * kLine;
  out.push_back(load(address));
  out.push_back(compute());  // the update (xor/add)
  out.push_back(store(address));
}

void GupsGenerator::rewind() { rng_.reseed(seed_); }

// ---------------------------------------------------------------------------
// ReductionGenerator

ReductionGenerator::ReductionGenerator(std::size_t elements, std::uint64_t base_address)
    : BufferedGenerator("reduction"), elements_(elements), base_(base_address) {
  C2B_REQUIRE(elements >= 1, "reduction needs at least one element");
}

void ReductionGenerator::refill(std::vector<TraceRecord>& out) {
  out.push_back(load(base_ + static_cast<std::uint64_t>(index_) * kElem));
  out.push_back(compute());  // accumulate
  if (++index_ >= elements_) index_ = 0;
}

void ReductionGenerator::rewind() { index_ = 0; }

// ---------------------------------------------------------------------------
// TransposeGenerator

TransposeGenerator::TransposeGenerator(std::size_t matrix_dim, std::size_t block_dim,
                                       std::uint64_t base_address)
    : BufferedGenerator("transpose"), n_(matrix_dim), block_(block_dim) {
  C2B_REQUIRE(matrix_dim >= 1, "matrix dimension must be >= 1");
  C2B_REQUIRE(block_dim >= 1 && block_dim <= matrix_dim, "block must fit in the matrix");
  base_in_ = base_address;
  base_out_ = base_in_ + static_cast<std::uint64_t>(n_) * n_ * kElem;
}

void TransposeGenerator::refill(std::vector<TraceRecord>& out) {
  const std::size_t row = bi_ + i_;
  const std::size_t col = bj_ + j_;
  out.push_back(load(base_in_ + (static_cast<std::uint64_t>(row) * n_ + col) * kElem));
  out.push_back(store(base_out_ + (static_cast<std::uint64_t>(col) * n_ + row) * kElem));

  auto advance = [&] {
    if (++j_ < block_ && bj_ + j_ < n_) return;
    j_ = 0;
    if (++i_ < block_ && bi_ + i_ < n_) return;
    i_ = 0;
    bj_ += block_;
    if (bj_ < n_) return;
    bj_ = 0;
    bi_ += block_;
    if (bi_ < n_) return;
    bi_ = 0;  // whole transpose done; loop
  };
  advance();
}

void TransposeGenerator::rewind() { bi_ = bj_ = i_ = j_ = 0; }

// ---------------------------------------------------------------------------
// FrontierGenerator

FrontierGenerator::FrontierGenerator(const Params& params)
    : BufferedGenerator("frontier"), params_(params), rng_(params.seed) {
  C2B_REQUIRE(params.vertices >= 2, "graph needs at least two vertices");
  C2B_REQUIRE(params.neighbors_per_vertex >= 1, "need at least one neighbor per vertex");
  base_frontier_ = params.base_address;
  base_adjacency_ = base_frontier_ + static_cast<std::uint64_t>(params.vertices) * kElem;
}

void FrontierGenerator::refill(std::vector<TraceRecord>& out) {
  // Sequential frontier read...
  out.push_back(load(base_frontier_ + static_cast<std::uint64_t>(frontier_index_) * kElem));
  out.push_back(compute());  // dequeue/bounds
  // ...then a burst of random neighbor lookups with a visited-flag store.
  for (unsigned e = 0; e < params_.neighbors_per_vertex; ++e) {
    const std::uint64_t neighbor = rng_.uniform_below(params_.vertices);
    out.push_back(load(base_adjacency_ + neighbor * kLine));
    out.push_back(compute());  // visited test
    if (rng_.bernoulli(0.25))
      out.push_back(store(base_adjacency_ + neighbor * kLine));  // mark visited
  }
  if (++frontier_index_ >= params_.vertices) frontier_index_ = 0;
}

void FrontierGenerator::rewind() {
  frontier_index_ = 0;
  rng_.reseed(params_.seed);
}

// ---------------------------------------------------------------------------
// PhasedGenerator

PhasedGenerator::PhasedGenerator(std::vector<Phase> phases)
    : BufferedGenerator("phased"), phases_(std::move(phases)) {
  C2B_REQUIRE(!phases_.empty(), "phased generator needs at least one phase");
  for (const Phase& p : phases_) {
    C2B_REQUIRE(p.generator != nullptr, "phase generator must not be null");
    C2B_REQUIRE(p.length > 0, "phase length must be positive");
  }
}

void PhasedGenerator::refill(std::vector<TraceRecord>& out) {
  if (emitted_in_phase_ >= phases_[phase_index_].length) {
    emitted_in_phase_ = 0;
    phase_index_ = (phase_index_ + 1) % phases_.size();
  }
  out.push_back(phases_[phase_index_].generator->next());
  ++emitted_in_phase_;
}

void PhasedGenerator::rewind() {
  phase_index_ = 0;
  emitted_in_phase_ = 0;
  for (Phase& p : phases_) p.generator->reset();
}

std::unique_ptr<TraceGenerator> PhasedGenerator::clone() const {
  auto copy = std::make_unique<PhasedGenerator>(*this);
  for (Phase& p : copy->phases_) {
    std::unique_ptr<TraceGenerator> child = p.generator->clone();
    if (child == nullptr) return nullptr;
    p.generator = std::move(child);
  }
  return copy;
}

}  // namespace c2b
