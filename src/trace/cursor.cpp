#include "c2b/trace/cursor.h"

#include <algorithm>

#include "c2b/common/assert.h"

namespace c2b {

GeneratorTraceCursor::GeneratorTraceCursor(std::unique_ptr<TraceGenerator> generator,
                                           std::uint64_t count, std::size_t chunk_records)
    : generator_(std::move(generator)), total_(count), chunk_(chunk_records) {
  C2B_REQUIRE(generator_ != nullptr, "cursor needs a generator");
  C2B_REQUIRE(chunk_ >= 1, "chunk must hold at least one record");
  buffer_.reserve(std::min<std::uint64_t>(total_, chunk_));
}

void GeneratorTraceCursor::refill() {
  buffer_.clear();
  pos_ = 0;
  const std::uint64_t remaining = total_ - produced_;
  const std::size_t pull = static_cast<std::size_t>(std::min<std::uint64_t>(remaining, chunk_));
  for (std::size_t i = 0; i < pull; ++i) buffer_.push_back(generator_->next());
  produced_ += pull;
  max_resident_ = std::max(max_resident_, buffer_.size());
}

const TraceRecord* GeneratorTraceCursor::peek() {
  if (buffer_exhausted()) {
    if (produced_ >= total_) return nullptr;
    refill();
  }
  return buffer_.data() + pos_;
}

void GeneratorTraceCursor::advance() { ++pos_; }

std::size_t GeneratorTraceCursor::compute_run(std::size_t limit) {
  // Refill an *empty* buffer so the fast path stays hot across chunk
  // boundaries, but never concatenate two chunks: the result is allowed to
  // undercount the true run length.
  if (buffer_exhausted()) {
    if (produced_ >= total_) return 0;
    refill();
  }
  std::size_t run = 0;
  const std::size_t end = buffer_.size();
  for (std::size_t i = pos_; i < end && run < limit; ++i, ++run)
    if (buffer_[i].kind != InstrKind::kCompute) break;
  return run;
}

void GeneratorTraceCursor::skip(std::size_t count) {
  while (count > 0) {
    if (buffer_exhausted()) {
      C2B_ASSERT(produced_ < total_, "skip past the end of the trace stream");
      refill();
    }
    const std::size_t step = std::min(count, buffer_.size() - pos_);
    pos_ += step;
    count -= step;
  }
}

void GeneratorTraceCursor::reset() {
  generator_->reset();
  produced_ = 0;
  buffer_.clear();
  pos_ = 0;
}

}  // namespace c2b
