#include "c2b/trace/simpoint.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "c2b/common/assert.h"

namespace c2b {

std::vector<double> interval_features(const TraceRecord* begin, const TraceRecord* end,
                                      std::size_t address_bins) {
  C2B_REQUIRE(begin != nullptr && end != nullptr && begin < end, "empty interval");
  C2B_REQUIRE(address_bins >= 1, "need at least one address bin");
  std::vector<double> features(3 + address_bins, 0.0);

  // Pass 1: mix counts and the touched address range.
  std::uint64_t min_addr = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_addr = 0;
  std::uint64_t mem_count = 0;
  for (const TraceRecord* r = begin; r != end; ++r) {
    switch (r->kind) {
      case InstrKind::kCompute:
        features[0] += 1.0;
        break;
      case InstrKind::kLoad:
        features[1] += 1.0;
        break;
      case InstrKind::kStore:
        features[2] += 1.0;
        break;
    }
    if (r->kind != InstrKind::kCompute) {
      ++mem_count;
      min_addr = std::min(min_addr, r->address);
      max_addr = std::max(max_addr, r->address);
    }
  }
  const auto total = static_cast<double>(end - begin);
  for (int i = 0; i < 3; ++i) features[i] /= total;

  // Pass 2: address-region histogram (normalized), a coarse footprint shape.
  if (mem_count > 0) {
    const double span = static_cast<double>(max_addr - min_addr) + 1.0;
    for (const TraceRecord* r = begin; r != end; ++r) {
      if (r->kind == InstrKind::kCompute) continue;
      auto bin = static_cast<std::size_t>(static_cast<double>(r->address - min_addr) / span *
                                          static_cast<double>(address_bins));
      if (bin >= address_bins) bin = address_bins - 1;
      features[3 + bin] += 1.0;
    }
    for (std::size_t b = 0; b < address_bins; ++b)
      features[3 + b] /= static_cast<double>(mem_count);
  }
  return features;
}

namespace {

double squared_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

SimPointResult pick_simpoints(const Trace& trace, const SimPointOptions& options) {
  C2B_REQUIRE(options.interval_length > 0, "interval length must be positive");
  C2B_REQUIRE(options.max_clusters >= 1, "need at least one cluster");
  const std::uint64_t len = options.interval_length;
  const std::uint64_t total = trace.records.size();
  C2B_REQUIRE(total >= len / 2, "trace shorter than half an interval");

  // Build interval feature vectors (the tail is kept if >= len/2 long).
  std::vector<std::vector<double>> features;
  for (std::uint64_t start = 0; start < total; start += len) {
    const std::uint64_t stop = std::min(start + len, total);
    if (stop - start < len / 2 && !features.empty()) break;
    features.push_back(interval_features(trace.records.data() + start,
                                         trace.records.data() + stop, options.address_bins));
  }
  const std::size_t m = features.size();
  const std::size_t k = std::min(options.max_clusters, m);

  // k-means++ seeding.
  Rng rng(options.seed);
  std::vector<std::vector<double>> centroids;
  centroids.push_back(features[rng.uniform_below(m)]);
  while (centroids.size() < k) {
    std::vector<double> weights(m);
    for (std::size_t i = 0; i < m; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : centroids) best = std::min(best, squared_distance(features[i], c));
      weights[i] = best;
    }
    centroids.push_back(features[rng.categorical(weights)]);
  }

  // Lloyd iterations.
  std::vector<std::size_t> assignment(m, 0);
  for (int iter = 0; iter < options.kmeans_iterations; ++iter) {
    bool changed = false;
    for (std::size_t i = 0; i < m; ++i) {
      std::size_t best_c = 0;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d = squared_distance(features[i], centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    for (std::size_t c = 0; c < centroids.size(); ++c) {
      std::vector<double> mean(features[0].size(), 0.0);
      std::size_t count = 0;
      for (std::size_t i = 0; i < m; ++i) {
        if (assignment[i] != c) continue;
        for (std::size_t d = 0; d < mean.size(); ++d) mean[d] += features[i][d];
        ++count;
      }
      if (count == 0) continue;  // empty cluster keeps its old centroid
      for (double& v : mean) v /= static_cast<double>(count);
      centroids[c] = std::move(mean);
    }
  }

  // One representative per non-empty cluster: the interval nearest the
  // centroid, weighted by cluster population.
  SimPointResult result;
  result.interval_cluster = assignment;
  result.interval_count = m;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    std::size_t best_i = m;
    double best = std::numeric_limits<double>::infinity();
    std::size_t population = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (assignment[i] != c) continue;
      ++population;
      const double d = squared_distance(features[i], centroids[c]);
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    if (population == 0) continue;
    result.points.push_back(
        {best_i, static_cast<double>(population) / static_cast<double>(m)});
  }
  return result;
}

Trace extract_interval(const Trace& trace, std::size_t interval_index,
                       std::uint64_t interval_length) {
  const std::uint64_t start = interval_index * interval_length;
  C2B_REQUIRE(start < trace.records.size(), "interval index out of range");
  const std::uint64_t stop = std::min(start + interval_length,
                                      static_cast<std::uint64_t>(trace.records.size()));
  Trace out;
  out.name = trace.name + "#" + std::to_string(interval_index);
  out.records.assign(trace.records.begin() + static_cast<std::ptrdiff_t>(start),
                     trace.records.begin() + static_cast<std::ptrdiff_t>(stop));
  return out;
}

double simpoint_weighted_estimate(const SimPointResult& result,
                                  const std::vector<double>& per_point_values) {
  C2B_REQUIRE(per_point_values.size() == result.points.size(),
              "one value per simulation point required");
  double estimate = 0.0;
  for (std::size_t i = 0; i < result.points.size(); ++i)
    estimate += result.points[i].weight * per_point_values[i];
  return estimate;
}

}  // namespace c2b
