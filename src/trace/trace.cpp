#include "c2b/trace/trace.h"

#include <unordered_set>

namespace c2b {

std::uint64_t Trace::memory_access_count() const noexcept {
  std::uint64_t count = 0;
  for (const TraceRecord& r : records)
    if (r.kind != InstrKind::kCompute) ++count;
  return count;
}

double Trace::f_mem() const noexcept {
  if (records.empty()) return 0.0;
  return static_cast<double>(memory_access_count()) / static_cast<double>(records.size());
}

std::uint64_t Trace::distinct_lines(std::uint32_t line_bytes) const {
  std::unordered_set<std::uint64_t> lines;
  for (const TraceRecord& r : records)
    if (r.kind != InstrKind::kCompute) lines.insert(r.address / line_bytes);
  return lines.size();
}

Trace TraceGenerator::generate(std::uint64_t count) {
  Trace trace;
  trace.name = name();
  trace.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) trace.records.push_back(next());
  return trace;
}

}  // namespace c2b
