#include "c2b/trace/workloads.h"

#include <cmath>

#include "c2b/common/assert.h"

namespace c2b {
namespace {

/// Scale a linear dimension so the *footprint* (dim^2 elements) grows by
/// `scale`: dim' = dim * sqrt(scale).
std::size_t scale_dim_quadratic(std::size_t base, double scale) {
  return std::max<std::size_t>(base, static_cast<std::size_t>(
                                         std::lround(static_cast<double>(base) * std::sqrt(scale))));
}

std::size_t scale_linear(std::size_t base, double scale) {
  return std::max<std::size_t>(base, static_cast<std::size_t>(
                                         std::lround(static_cast<double>(base) * scale)));
}

}  // namespace

WorkloadSpec make_tmm_workload(std::size_t base_matrix_dim, std::size_t tile_dim) {
  WorkloadSpec spec;
  spec.name = "tmm";
  spec.uid = "tmm/" + std::to_string(base_matrix_dim) + "/" + std::to_string(tile_dim);
  spec.emulates = "Table I TMM; dense-LA phases of SPLASH-2 (lu, cholesky)";
  spec.f_seq = 0.02;
  spec.g = ScalingFunction::from_complexity(3.0, 2.0);
  spec.base_instructions = 2'000'000;
  spec.make_generator = [base_matrix_dim, tile_dim](double scale, std::uint64_t) {
    const std::size_t dim = scale_dim_quadratic(base_matrix_dim, scale);
    return std::make_unique<TiledMatMulGenerator>(dim, std::min(tile_dim, dim));
  };
  return spec;
}

WorkloadSpec make_stencil_workload(std::size_t base_grid_dim) {
  WorkloadSpec spec;
  spec.name = "stencil";
  spec.uid = "stencil/" + std::to_string(base_grid_dim);
  spec.emulates = "Table I stencil; ocean/barnes-style grid sweeps";
  spec.f_seq = 0.03;
  spec.g = ScalingFunction::linear();
  spec.base_instructions = 2'000'000;
  spec.make_generator = [base_grid_dim](double scale, std::uint64_t) {
    return std::make_unique<StencilGenerator>(scale_dim_quadratic(base_grid_dim, scale));
  };
  return spec;
}

WorkloadSpec make_fft_workload(unsigned base_log2_n) {
  WorkloadSpec spec;
  spec.name = "fft";
  spec.uid = "fft/" + std::to_string(base_log2_n);
  spec.emulates = "Table I FFT; SPLASH-2 fft";
  spec.f_seq = 0.05;
  // Table I evaluates the FFT g at M = N: g(N) = 2N (pinned to g(1) = 1).
  spec.g = ScalingFunction::custom([](double n) { return n <= 1.0 ? 1.0 : 2.0 * n; },
                                   "g(N) = 2N (FFT at M = N)");
  spec.base_instructions = 2'000'000;
  spec.make_generator = [base_log2_n](double scale, std::uint64_t) {
    const unsigned extra = scale <= 1.0 ? 0u : static_cast<unsigned>(std::lround(std::log2(scale)));
    return std::make_unique<FftGenerator>(std::min(base_log2_n + extra, 26u));
  };
  return spec;
}

WorkloadSpec make_band_sparse_workload(std::size_t base_rows, std::size_t band) {
  WorkloadSpec spec;
  spec.name = "band_sparse";
  spec.uid = "band_sparse/" + std::to_string(base_rows) + "/" + std::to_string(band);
  spec.emulates = "Table I band sparse matrix multiplication";
  spec.f_seq = 0.04;
  spec.g = ScalingFunction::linear();
  spec.base_instructions = 2'000'000;
  spec.make_generator = [base_rows, band](double scale, std::uint64_t) {
    return std::make_unique<BandSparseGenerator>(scale_linear(base_rows, scale), band);
  };
  return spec;
}

WorkloadSpec make_pointer_chase_workload(std::size_t base_lines) {
  WorkloadSpec spec;
  spec.name = "pointer_chase";
  spec.uid = "pointer_chase/" + std::to_string(base_lines);
  spec.emulates = "Fig. 7 app 1: large f_seq, C ~ 1 (dependent accesses)";
  spec.f_seq = 0.4;
  spec.g = ScalingFunction::fixed();
  spec.base_instructions = 1'000'000;
  spec.make_generator = [base_lines](double scale, std::uint64_t seed) {
    return std::make_unique<PointerChaseGenerator>(scale_linear(base_lines, scale), 3u, seed);
  };
  return spec;
}

WorkloadSpec make_fluidanimate_like_workload(std::size_t base_lines) {
  WorkloadSpec spec;
  spec.name = "fluidanimate_like";
  spec.uid = "fluidanimate_like/" + std::to_string(base_lines);
  spec.emulates = "PARSEC fluidanimate (Fig. 12 case study): large working "
                  "set, phased irregular/regular access, high MLP";
  spec.f_seq = 0.02;
  spec.g = ScalingFunction::linear();
  spec.base_instructions = 4'000'000;
  spec.make_generator = [base_lines](double scale, std::uint64_t seed) {
    const std::size_t lines = scale_linear(base_lines, scale);
    // Phase A: Zipf-skewed neighbor-list updates over the particle arrays.
    ZipfStreamGenerator::Params zipf;
    zipf.working_set_lines = lines;
    zipf.zipf_exponent = 0.7;
    zipf.f_mem = 0.45;
    zipf.write_ratio = 0.35;
    zipf.seed = seed;
    // Phase B: regular grid sweep (density/force accumulation).
    const auto grid_dim = static_cast<std::size_t>(
        std::max(64.0, std::floor(std::sqrt(static_cast<double>(lines) * 8.0))));
    std::vector<PhasedGenerator::Phase> phases;
    phases.push_back({std::make_shared<ZipfStreamGenerator>(zipf), 200'000});
    phases.push_back({std::make_shared<StencilGenerator>(grid_dim), 150'000});
    return std::make_unique<PhasedGenerator>(std::move(phases));
  };
  return spec;
}

WorkloadSpec make_gups_workload(std::size_t base_table_lines) {
  WorkloadSpec spec;
  spec.name = "gups";
  spec.uid = "gups/" + std::to_string(base_table_lines);
  spec.emulates = "HPCC RandomAccess; Section V big-data memory-bound extreme";
  spec.f_seq = 0.01;
  spec.g = ScalingFunction::linear();
  spec.base_instructions = 1'500'000;
  spec.make_generator = [base_table_lines](double scale, std::uint64_t seed) {
    return std::make_unique<GupsGenerator>(scale_linear(base_table_lines, scale), seed);
  };
  return spec;
}

WorkloadSpec make_reduction_workload(std::size_t base_elements) {
  WorkloadSpec spec;
  spec.name = "reduction";
  spec.uid = "reduction/" + std::to_string(base_elements);
  spec.emulates = "streaming reduction/dot-product phases";
  spec.f_seq = 0.02;
  spec.g = ScalingFunction::linear();
  spec.base_instructions = 1'500'000;
  spec.make_generator = [base_elements](double scale, std::uint64_t) {
    return std::make_unique<ReductionGenerator>(scale_linear(base_elements, scale));
  };
  return spec;
}

WorkloadSpec make_transpose_workload(std::size_t base_matrix_dim, std::size_t block_dim) {
  WorkloadSpec spec;
  spec.name = "transpose";
  spec.uid = "transpose/" + std::to_string(base_matrix_dim) + "/" + std::to_string(block_dim);
  spec.emulates = "blocked transpose; conflict-miss-heavy strided access";
  spec.f_seq = 0.02;
  spec.g = ScalingFunction::linear();
  spec.base_instructions = 1'500'000;
  spec.make_generator = [base_matrix_dim, block_dim](double scale, std::uint64_t) {
    const std::size_t dim = scale_dim_quadratic(base_matrix_dim, scale);
    return std::make_unique<TransposeGenerator>(dim, std::min(block_dim, dim));
  };
  return spec;
}

WorkloadSpec make_frontier_workload(std::size_t base_vertices) {
  WorkloadSpec spec;
  spec.name = "frontier";
  spec.uid = "frontier/" + std::to_string(base_vertices);
  spec.emulates = "graph BFS frontier expansion; mixed regular/irregular";
  spec.f_seq = 0.08;
  spec.g = ScalingFunction::linear();
  spec.base_instructions = 1'500'000;
  spec.make_generator = [base_vertices](double scale, std::uint64_t seed) {
    FrontierGenerator::Params params;
    params.vertices = scale_linear(base_vertices, scale);
    params.seed = seed;
    return std::make_unique<FrontierGenerator>(params);
  };
  return spec;
}

std::vector<WorkloadSpec> workload_catalog() {
  return {make_tmm_workload(),           make_stencil_workload(),
          make_fft_workload(),           make_band_sparse_workload(),
          make_pointer_chase_workload(), make_fluidanimate_like_workload(),
          make_gups_workload(),          make_reduction_workload(),
          make_transpose_workload(),     make_frontier_workload()};
}

}  // namespace c2b
