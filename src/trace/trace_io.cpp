#include "c2b/trace/trace_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "c2b/common/assert.h"

namespace c2b {
namespace {

constexpr std::array<char, 4> kMagic{'C', '2', 'B', 'T'};

void put_u32(std::ostream& out, std::uint32_t value) {
  // Little-endian, explicitly.
  for (int i = 0; i < 4; ++i) out.put(static_cast<char>((value >> (8 * i)) & 0xFF));
}

void put_u64(std::ostream& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) out.put(static_cast<char>((value >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(std::istream& in) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    const int byte = in.get();
    if (byte == std::char_traits<char>::eof()) throw std::runtime_error("trace: truncated u32");
    value |= static_cast<std::uint32_t>(byte & 0xFF) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(std::istream& in) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    const int byte = in.get();
    if (byte == std::char_traits<char>::eof()) throw std::runtime_error("trace: truncated u64");
    value |= static_cast<std::uint64_t>(byte & 0xFF) << (8 * i);
  }
  return value;
}

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  out.write(kMagic.data(), kMagic.size());
  put_u32(out, kTraceFormatVersion);
  put_u64(out, trace.records.size());
  put_u32(out, static_cast<std::uint32_t>(trace.name.size()));
  out.write(trace.name.data(), static_cast<std::streamsize>(trace.name.size()));
  for (const TraceRecord& r : trace.records) {
    out.put(static_cast<char>(r.kind));
    out.put(static_cast<char>(r.depends_on_prev_mem ? 1 : 0));
    put_u64(out, r.address);
  }
  if (!out) throw std::runtime_error("trace: write failed");
}

Trace read_trace(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw std::runtime_error("trace: bad magic");
  const std::uint32_t version = get_u32(in);
  if (version != kTraceFormatVersion)
    throw std::runtime_error("trace: unsupported version " + std::to_string(version));
  const std::uint64_t count = get_u64(in);
  const std::uint32_t name_len = get_u32(in);
  if (name_len > (1u << 20)) throw std::runtime_error("trace: implausible name length");

  Trace trace;
  trace.name.resize(name_len);
  in.read(trace.name.data(), name_len);
  if (!in) throw std::runtime_error("trace: truncated name");

  trace.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const int kind_byte = in.get();
    const int flags_byte = in.get();
    if (kind_byte == std::char_traits<char>::eof() ||
        flags_byte == std::char_traits<char>::eof())
      throw std::runtime_error("trace: truncated record");
    if (kind_byte < 0 || kind_byte > 2)
      throw std::runtime_error("trace: invalid record kind " + std::to_string(kind_byte));
    TraceRecord record;
    record.kind = static_cast<InstrKind>(kind_byte);
    record.depends_on_prev_mem = (flags_byte & 1) != 0;
    record.address = get_u64(in);
    trace.records.push_back(record);
  }
  return trace;
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open '" + path + "' for writing");
  write_trace(out, trace);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open '" + path + "' for reading");
  return read_trace(in);
}

}  // namespace c2b
