#include "c2b/trace/trace_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "c2b/common/assert.h"

namespace c2b {
namespace {

constexpr std::array<char, 4> kMagic{'C', '2', 'B', 'T'};

// FNV-1a 64-bit, folded over every byte of the header and record stream.
constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a_step(std::uint64_t hash, unsigned char byte) {
  return (hash ^ byte) * kFnvPrime;
}

/// Checksum-folding little-endian writer.
struct Writer {
  std::ostream& out;
  std::uint64_t hash = kFnvOffsetBasis;

  void bytes(const char* data, std::size_t n) {
    out.write(data, static_cast<std::streamsize>(n));
    for (std::size_t i = 0; i < n; ++i)
      hash = fnv1a_step(hash, static_cast<unsigned char>(data[i]));
  }
  void u8(std::uint8_t value) {
    const char byte = static_cast<char>(value);
    bytes(&byte, 1);
  }
  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF));
  }
  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF));
  }
};

/// Offset-tracking, checksum-folding reader: every failure reports the
/// exact byte offset, so a corrupt file is diagnosable with `xxd`.
struct Reader {
  std::istream& in;
  std::uint64_t offset = 0;
  std::uint64_t hash = kFnvOffsetBasis;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace: " + what + " at byte " + std::to_string(offset));
  }

  /// One checksummed byte; `what` names the field for the error message.
  std::uint8_t u8(const char* what) {
    const int byte = in.get();
    if (byte == std::char_traits<char>::eof()) fail(std::string("truncated ") + what);
    ++offset;
    hash = fnv1a_step(hash, static_cast<unsigned char>(byte));
    return static_cast<std::uint8_t>(byte);
  }
  void bytes(char* data, std::size_t n, const char* what) {
    for (std::size_t i = 0; i < n; ++i)
      data[i] = static_cast<char>(u8(what));
  }
  std::uint32_t u32(const char* what) {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) value |= static_cast<std::uint32_t>(u8(what)) << (8 * i);
    return value;
  }
  std::uint64_t u64(const char* what) {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) value |= static_cast<std::uint64_t>(u8(what)) << (8 * i);
    return value;
  }
  /// The trailer checksum itself is read raw (not folded into the hash).
  std::uint64_t trailer_u64(const char* what) {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      const int byte = in.get();
      if (byte == std::char_traits<char>::eof()) fail(std::string("truncated ") + what);
      ++offset;
      value |= static_cast<std::uint64_t>(byte & 0xFF) << (8 * i);
    }
    return value;
  }
};

}  // namespace

void write_trace(std::ostream& out, const Trace& trace) {
  Writer w{out};
  w.bytes(kMagic.data(), kMagic.size());
  w.u32(kTraceFormatVersion);
  w.u64(trace.records.size());
  w.u32(static_cast<std::uint32_t>(trace.name.size()));
  w.bytes(trace.name.data(), trace.name.size());
  for (const TraceRecord& r : trace.records) {
    w.u8(static_cast<std::uint8_t>(r.kind));
    w.u8(r.depends_on_prev_mem ? 1 : 0);
    w.u64(r.address);
  }
  // Trailer: FNV-1a64 over everything above. Any single corrupted byte —
  // even one the field decoders would happily accept, like an address —
  // changes the hash, so readers always detect it.
  const std::uint64_t checksum = w.hash;
  w.u64(checksum);
  if (!out) throw std::runtime_error("trace: write failed");
}

Trace read_trace(std::istream& in) {
  Reader r{in};
  std::array<char, 4> magic{};
  r.bytes(magic.data(), magic.size(), "magic");
  if (magic != kMagic) {
    r.offset = 0;
    r.fail("bad magic");
  }
  const std::uint32_t version = r.u32("version");
  if (version != kTraceFormatVersion) {
    r.offset -= 4;
    r.fail("unsupported version " + std::to_string(version));
  }
  const std::uint64_t count = r.u64("record count");
  const std::uint32_t name_len = r.u32("name length");
  if (name_len > (1u << 20)) {
    r.offset -= 4;
    r.fail("implausible name length " + std::to_string(name_len));
  }

  Trace trace;
  trace.name.resize(name_len);
  r.bytes(trace.name.data(), name_len, "name");

  trace.records.reserve(count < (1u << 20) ? count : (1u << 20));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t kind_byte = r.u8("record kind");
    if (kind_byte > 2) {
      --r.offset;
      r.fail("invalid record kind " + std::to_string(kind_byte));
    }
    TraceRecord record;
    record.kind = static_cast<InstrKind>(kind_byte);
    record.depends_on_prev_mem = (r.u8("record flags") & 1) != 0;
    record.address = r.u64("record address");
    trace.records.push_back(record);
  }

  const std::uint64_t expected = r.hash;
  const std::uint64_t stored = r.trailer_u64("checksum");
  if (stored != expected) {
    r.offset -= 8;
    r.fail("checksum mismatch (file corrupt)");
  }
  return trace;
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("trace: cannot open '" + path + "' for writing");
  write_trace(out, trace);
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("trace: cannot open '" + path + "' for reading");
  return read_trace(in);
}

}  // namespace c2b
