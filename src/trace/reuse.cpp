#include "c2b/trace/reuse.h"

#include <algorithm>
#include <cmath>

#include "c2b/common/assert.h"
#include "c2b/common/math_util.h"

namespace c2b {

StackDistanceAnalyzer::StackDistanceAnalyzer(std::uint32_t line_bytes) : line_bytes_(line_bytes) {
  C2B_REQUIRE(line_bytes > 0, "line size must be positive");
  fenwick_.push_back(0);  // 1-based
  raw_distance_counts_.assign(1, 0);
}

void StackDistanceAnalyzer::fenwick_add(std::size_t position, std::int64_t delta) {
  for (std::size_t i = position; i < fenwick_.size(); i += i & (~i + 1)) fenwick_[i] += delta;
}

std::int64_t StackDistanceAnalyzer::fenwick_prefix_sum(std::size_t position) const {
  std::int64_t sum = 0;
  for (std::size_t i = std::min(position, fenwick_.size() - 1); i > 0; i -= i & (~i + 1))
    sum += fenwick_[i];
  return sum;
}

std::uint64_t StackDistanceAnalyzer::access(std::uint64_t byte_address) {
  const std::uint64_t line = byte_address / line_bytes_;
  ++time_;
  // Extend the BIT to cover position `time_`. A new node at index i spans
  // (i - lowbit(i), i]; it must be born holding the sum of the already-
  // present entries in that range, not zero.
  {
    const std::size_t i = time_;
    const std::size_t lowbit = i & (~i + 1);
    const std::int64_t spanned =
        fenwick_prefix_sum(i - 1) - fenwick_prefix_sum(i - lowbit);
    fenwick_.push_back(spanned);
  }

  std::uint64_t distance = kColdMiss;
  const auto it = last_access_.find(line);
  if (it == last_access_.end()) {
    ++cold_misses_;
  } else {
    // Distinct lines touched strictly after the previous access to `line`:
    // each line's most-recent access holds a +1 marker, so a suffix sum of
    // markers after `prev` counts exactly the distinct intervening lines.
    const std::uint64_t prev = it->second;
    distance = static_cast<std::uint64_t>(fenwick_prefix_sum(time_ - 1) -
                                          fenwick_prefix_sum(prev));
    fenwick_add(prev, -1);  // retire the old marker
  }
  fenwick_add(time_, +1);
  last_access_[line] = time_;

  if (distance != kColdMiss) {
    const unsigned bucket = distance == 0 ? 0 : floor_log2(distance) + 1;
    if (histogram_.size() <= bucket) histogram_.resize(bucket + 1, 0);
    ++histogram_[bucket];
    if (distance < kExactCap) {
      if (raw_distance_counts_.size() <= distance) raw_distance_counts_.resize(distance + 1, 0);
      ++raw_distance_counts_[distance];
    }
  }
  return distance;
}

void StackDistanceAnalyzer::consume(const Trace& trace) {
  for (const TraceRecord& r : trace.records)
    if (r.kind != InstrKind::kCompute) access(r.address);
}

double StackDistanceAnalyzer::miss_ratio_for(std::uint64_t lines) const {
  if (time_ == 0) return 0.0;
  // Hits are accesses with distance < lines. Exact counts cover distances
  // below kExactCap; beyond that the pow2 histogram is used (conservative:
  // a bucket straddling `lines` counts as misses).
  std::uint64_t hits = 0;
  const std::uint64_t exact_limit = std::min<std::uint64_t>(lines, raw_distance_counts_.size());
  for (std::uint64_t d = 0; d < exact_limit; ++d) hits += raw_distance_counts_[d];
  if (lines > kExactCap) {
    for (std::size_t bucket = 0; bucket < histogram_.size(); ++bucket) {
      const std::uint64_t bucket_lo = bucket == 0 ? 0 : (std::uint64_t{1} << (bucket - 1));
      if (bucket_lo >= kExactCap && bucket_lo < lines) hits += histogram_[bucket];
    }
  }
  return 1.0 - static_cast<double>(hits) / static_cast<double>(time_);
}

std::vector<std::pair<std::uint64_t, double>> StackDistanceAnalyzer::miss_ratio_curve() const {
  std::vector<std::pair<std::uint64_t, double>> curve;
  const std::uint64_t max_lines =
      std::max<std::uint64_t>(2, std::uint64_t{1} << (histogram_.empty() ? 1 : histogram_.size()));
  for (std::uint64_t lines = 1; lines <= max_lines; lines *= 2)
    curve.emplace_back(lines, miss_ratio_for(lines));
  return curve;
}

PowerLawFit fit_miss_power_law(const std::vector<std::pair<std::uint64_t, double>>& curve) {
  // Least squares on log MR = log alpha - beta log S over points with
  // 0 < MR < 1 (saturated ends carry no slope information).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (const auto& [lines, mr] : curve) {
    if (mr <= 1e-9 || mr >= 1.0 - 1e-9) continue;
    const double x = std::log(static_cast<double>(lines));
    const double y = std::log(mr);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  PowerLawFit fit;
  if (n >= 2) {
    const double denom = static_cast<double>(n) * sxx - sx * sx;
    if (std::fabs(denom) > 1e-12) {
      const double slope = (static_cast<double>(n) * sxy - sx * sy) / denom;
      const double intercept = (sy - slope * sx) / static_cast<double>(n);
      fit.beta = -slope;
      fit.alpha = std::exp(intercept);
    }
  }
  if (fit.beta < 0.0) fit.beta = 0.0;  // guard against pathological curves
  return fit;
}

}  // namespace c2b
