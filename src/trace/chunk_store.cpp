#include "c2b/trace/chunk_store.h"

#include <algorithm>

#include "c2b/common/assert.h"

namespace c2b {

TraceChunkStore::TraceChunkStore(std::size_t chunk_records) : chunk_(chunk_records) {
  C2B_REQUIRE(chunk_records > 0, "chunk_records must be positive");
}

std::size_t TraceChunkStore::add_stream(std::unique_ptr<TraceGenerator> generator,
                                        std::uint64_t count) {
  C2B_REQUIRE(generator != nullptr, "generator must not be null");
  C2B_REQUIRE(count > 0, "stream must hold at least one record");
  C2B_REQUIRE(!reads_started_, "cannot add streams once reading has started");
  Stream s;
  s.generator = std::move(generator);
  s.generator->reset();
  s.total = count;
  streams_.push_back(std::move(s));
  return streams_.size() - 1;
}

void TraceChunkStore::set_readers(std::uint32_t readers) {
  C2B_REQUIRE(readers > 0, "need at least one reader");
  C2B_REQUIRE(!reads_started_, "cannot change readers once reading has started");
  readers_ = readers;
}

std::uint64_t TraceChunkStore::stream_length(std::size_t stream) const {
  C2B_REQUIRE(stream < streams_.size(), "stream id out of range");
  return streams_[stream].total;
}

void TraceChunkStore::generate_next_chunk(Stream& s) {
  C2B_ASSERT(s.produced < s.total, "stream already fully generated");
  Chunk c;
  c.base = s.produced;
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(chunk_, s.total - s.produced));
  c.records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.records.push_back(s.generator->next());
    if (c.records.back().kind != InstrKind::kCompute) ++c.memory_records;
  }
  // Backward sweep fills the run-length table in one pass: a kCompute entry
  // extends the run that starts right after it; anything else resets to 0.
  c.compute_run.assign(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    if (c.records[i].kind == InstrKind::kCompute)
      c.compute_run[i] = 1 + (i + 1 < n ? c.compute_run[i + 1] : 0);
  }
  s.produced += n;
  s.window.push_back(std::move(c));
  resident_records_ += n;
  stats_.chunks_generated += 1;
  stats_.records_generated += n;
  stats_.max_resident_records = std::max(stats_.max_resident_records, resident_records_);
}

const TraceChunkStore::Chunk& TraceChunkStore::chunk_at(std::size_t stream, std::uint64_t offset) {
  reads_started_ = true;
  Stream& s = streams_[stream];
  C2B_ASSERT(offset < s.total, "offset past end of stream");
  C2B_REQUIRE(offset >= s.released, "chunk already released (reader fell behind a freed chunk)");
  while (s.produced <= offset) generate_next_chunk(s);
  // All chunks are exactly chunk_ records except the last, and bases are
  // multiples of chunk_, so the resident index is plain arithmetic.
  const std::uint64_t front_base = s.window.front().base;
  const std::size_t idx = static_cast<std::size_t>((offset - front_base) / chunk_);
  C2B_ASSERT(idx < s.window.size(), "resident chunk index out of range");
  return s.window[idx];
}

void TraceChunkStore::pass_chunk(std::size_t stream, std::uint64_t chunk_base) {
  Stream& s = streams_[stream];
  C2B_ASSERT(!s.window.empty() && chunk_base >= s.window.front().base,
             "passed chunk already released");
  const std::size_t idx = static_cast<std::size_t>((chunk_base - s.window.front().base) / chunk_);
  C2B_ASSERT(idx < s.window.size(), "passed chunk not resident");
  Chunk& c = s.window[idx];
  ++c.readers_passed;
  C2B_ASSERT(c.readers_passed <= readers_, "more passes than registered readers");
  // Readers consume chunks in stream order, so chunks complete front-first.
  while (!s.window.empty() && s.window.front().readers_passed == readers_) {
    const Chunk& done = s.window.front();
    const std::uint64_t extra_readers = readers_ - 1;
    stats_.chunks_shared += extra_readers;
    stats_.regen_avoided_records += done.records.size() * extra_readers;
    stats_.regen_avoided_accesses += done.memory_records * extra_readers;
    s.released += done.records.size();
    resident_records_ -= done.records.size();
    s.window.pop_front();
  }
}

ChunkCursor::ChunkCursor(TraceChunkStore& store, std::size_t stream)
    : store_(&store), stream_(stream), total_(store.stream_length(stream)) {}

void ChunkCursor::ensure_chunk() {
  if (chunk_ != nullptr && offset_ < chunk_end_) return;
  if (chunk_ != nullptr) finish_chunk();
  if (offset_ >= total_) return;
  chunk_ = &store_->chunk_at(stream_, offset_);
  chunk_end_ = chunk_->base + chunk_->records.size();
}

void ChunkCursor::finish_chunk() {
  store_->pass_chunk(stream_, chunk_->base);
  chunk_ = nullptr;
}

const TraceRecord* ChunkCursor::peek() {
  ensure_chunk();
  if (chunk_ == nullptr) return nullptr;
  return &chunk_->records[static_cast<std::size_t>(offset_ - chunk_->base)];
}

void ChunkCursor::advance() {
  ++offset_;
  // Release promptly at the chunk boundary so the store can free it as
  // soon as the last lockstep member crosses, not at the next peek().
  if (chunk_ != nullptr && offset_ >= chunk_end_) finish_chunk();
}

std::size_t ChunkCursor::compute_run(std::size_t limit) {
  ensure_chunk();
  if (chunk_ == nullptr) return 0;
  const std::size_t run = chunk_->compute_run[static_cast<std::size_t>(offset_ - chunk_->base)];
  return std::min(limit, run);
}

void ChunkCursor::skip(std::size_t count) {
  while (count > 0) {
    ensure_chunk();
    C2B_ASSERT(chunk_ != nullptr, "skip past end of stream");
    const std::uint64_t in_chunk = chunk_end_ - offset_;
    const std::uint64_t step = std::min<std::uint64_t>(count, in_chunk);
    offset_ += step;
    count -= static_cast<std::size_t>(step);
    if (offset_ >= chunk_end_) finish_chunk();
  }
}

void ChunkCursor::reset() {
  // Safe only before any consumption: earlier chunks may already be freed,
  // and re-reading would double-count passage. The kernel never resets.
  C2B_REQUIRE(offset_ == 0, "ChunkCursor::reset() after consumption is unsupported");
}

}  // namespace c2b
