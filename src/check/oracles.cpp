#include "c2b/check/oracles.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <mutex>
#include <sstream>
#include <tuple>
#include <utility>

#include "c2b/common/assert.h"

#include "c2b/aps/aps.h"
#include "c2b/aps/characterize.h"
#include "c2b/check/generators.h"
#include "c2b/core/optimizer.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/obs/obs.h"
#include "c2b/sim/system/batched.h"
#include "c2b/trace/chunk_store.h"

namespace c2b::check {
namespace {

/// Bitwise double equality — the determinism contract is bit-identity, not
/// epsilon closeness (and NaN == NaN under this comparison).
bool bit_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

/// Saves the process-global execution knobs the oracles twiddle (pool
/// size, sim-cache switch) and restores defaults on scope exit.
struct ExecStateGuard {
  bool cache_was_enabled = exec::SimCache::global().enabled();
  ~ExecStateGuard() {
    exec::set_thread_count(0);
    exec::SimCache::global().set_enabled(cache_was_enabled);
    exec::SimCache::global().clear();
  }
};

/// The baseline machine the analytic-vs-sim oracle characterizes on (same
/// shape the APS tests and the CLI default use).
sim::SystemConfig oracle_baseline() {
  sim::SystemConfig config;
  config.core.issue_width = 4;
  config.core.rob_size = 128;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  return config;
}

template <typename T>
T pick(Rng& rng, std::initializer_list<T> values) {
  const auto index = static_cast<std::size_t>(rng.uniform_below(values.size()));
  return *(values.begin() + static_cast<std::ptrdiff_t>(index));
}

}  // namespace

OracleReport run_analytic_vs_sim_oracle(const OracleOptions& options) {
  OracleReport report;
  report.family = "analytic_vs_sim";

  // Asserted agreement bands. The calibrated model anchors the measured
  // CPI at the baseline configuration, so nearby designs track closely;
  // across the whole sampled space the miss power laws only approximate
  // the simulator's set-associative behavior, hence the generous max.
  // (The paper's 5.96% figure is at APS's *chosen* design, not at random
  // points.) Bands are asserted per workload and exported for trending;
  // the bounds are ~2x the worst errors observed across seeds, so a pass
  // means "no regression", not "model is exact". gups is the extreme:
  // zero locality makes its true miss curve flat, the power law's worst
  // fit, so it earns a wider calibrated band.
  const double kMeanTolerance = 0.60;
  const double kMaxTolerance = 1.50;
  // fluidanimate's phase changes make the characterization window
  // seed-sensitive, so its calibration anchor (and thus the whole band)
  // moves more than the steady-state workloads'.
  auto band_tolerances = [&](const std::string& name) {
    if (name == "gups") return std::pair<double, double>{0.90, 3.00};
    if (name == "fluidanimate_like") return std::pair<double, double>{1.00, 2.00};
    return std::pair<double, double>{kMeanTolerance, kMaxTolerance};
  };

  std::size_t workload_index = 0;
  for (const WorkloadSpec& spec : workload_catalog()) {
    DseContext context;
    context.base = oracle_baseline();
    context.workload = spec;
    context.instructions0 = 24'000;
    context.per_core_cap = 12'000;
    context.seed = Rng::derive_stream_seed(options.seed, 7'000 + workload_index);

    CharacterizeOptions copt;
    copt.instructions = 60'000;
    copt.seed = context.seed;
    const Characterization c = characterize(spec, context.base, copt);
    const C2BoundModel model = build_calibrated_model(context, c);

    ToleranceBand band;
    band.workload = spec.name;
    std::tie(band.mean_tolerance, band.max_tolerance) = band_tolerances(spec.name);

    // Sample designs at the characterized core microarchitecture
    // (issue 4 / ROB 128): the analytic model deliberately does not see
    // the issue/ROB axes, so varying them would measure scope, not error.
    Rng rng(Rng::derive_stream_seed(options.seed, workload_index));
    double error_sum = 0.0;
    for (std::size_t s = 0; s < options.designs_per_workload; ++s) {
      const double a0 = pick(rng, {1.0, 2.0, 4.0});
      const double a1 = pick(rng, {0.5, 1.0, 2.0});
      const double a2 = pick(rng, {1.0, 2.0, 4.0});
      const double n = pick(rng, {1.0, 2.0, 4.0});
      const std::vector<double> point{a0, a1, a2, n, 4.0, 128.0};
      if (!design_feasible(context, point)) continue;

      const double sim_time = simulate_design_time(context, point);
      const Evaluation eval =
          model.evaluate({.n_cores = n, .a0 = a0, .a1 = a1, .a2 = a2});
      // simulate_design_time reports time per unit work (J_D / g(N));
      // normalize the analytic J_D the same way before comparing.
      const double analytic_time = eval.execution_time / model.app().g(n);

      ++report.checks;
      ++band.samples;
      const double err =
          std::abs(analytic_time - sim_time) / std::max(1e-12, sim_time);
      error_sum += err;
      band.max_abs_rel_error = std::max(band.max_abs_rel_error, err);
    }
    if (band.samples > 0)
      band.mean_abs_rel_error = error_sum / static_cast<double>(band.samples);
    band.passed = band.samples > 0 &&
                  band.mean_abs_rel_error <= band.mean_tolerance &&
                  band.max_abs_rel_error <= band.max_tolerance;
    if (!band.passed) {
      std::ostringstream os;
      os << "analytic-vs-sim band violated for workload '" << spec.name
         << "': mean " << fmt(band.mean_abs_rel_error) << " (tol "
         << fmt(band.mean_tolerance) << "), max " << fmt(band.max_abs_rel_error)
         << " (tol " << fmt(band.max_tolerance) << ") over " << band.samples
         << " designs; repro: " << repro_line(options.seed, workload_index);
      report.failures.push_back(os.str());
    }
    report.bands.push_back(band);
    ++workload_index;
  }
  return report;
}

namespace {

/// One thread-count's view of a full-DSE sweep, flattened for comparison.
struct SweepFingerprint {
  std::vector<double> times;
  std::size_t best_index = 0;
  double best_time = 0.0;
  std::size_t simulations = 0;
};

SweepFingerprint fingerprint(const FullDseResult& r) {
  return {r.times, r.best_index, r.best_time, r.simulations};
}

std::optional<std::string> compare_fingerprints(const SweepFingerprint& ref,
                                                std::size_t ref_threads,
                                                const SweepFingerprint& got,
                                                std::size_t got_threads) {
  std::ostringstream os;
  if (got.times.size() != ref.times.size() || got.simulations != ref.simulations ||
      got.best_index != ref.best_index || !bit_equal(got.best_time, ref.best_time)) {
    os << "threads=" << got_threads << " vs threads=" << ref_threads
       << ": summary diverged (best_index " << got.best_index << " vs "
       << ref.best_index << ", best_time " << fmt(got.best_time) << " vs "
       << fmt(ref.best_time) << ", simulations " << got.simulations << " vs "
       << ref.simulations << ")";
    return os.str();
  }
  for (std::size_t i = 0; i < ref.times.size(); ++i) {
    if (!bit_equal(got.times[i], ref.times[i])) {
      os << "threads=" << got_threads << " vs threads=" << ref_threads
         << ": times[" << i << "] " << fmt(got.times[i]) << " != "
         << fmt(ref.times[i]);
      return os.str();
    }
  }
  return std::nullopt;
}

}  // namespace

OracleReport run_determinism_oracle(const OracleOptions& options) {
  OracleReport report;
  report.family = "determinism";
  C2B_REQUIRE(!options.thread_counts.empty(), "determinism oracle needs thread counts");
  ExecStateGuard guard;
  exec::SimCache& cache = exec::SimCache::global();

  for (std::size_t i = 0; i < options.dse_configs; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 10'000 + i));
    const DseScenario scenario = gen_dse_scenario(rng);
    const GridSpace space = make_design_space(scenario.axes);
    const std::string repro = repro_line(options.seed, 10'000 + i);

    // Thread-count sweep with the cache off, so every run recomputes and
    // the comparison exercises the parallel execution paths for real.
    cache.set_enabled(false);
    std::optional<SweepFingerprint> reference;
    for (const std::size_t threads : options.thread_counts) {
      exec::set_thread_count(threads);
      const SweepFingerprint fp = fingerprint(run_full_dse(scenario.context, space));
      ++report.checks;
      if (!reference) {
        reference = fp;
        continue;
      }
      if (auto diff = compare_fingerprints(*reference, options.thread_counts.front(),
                                           fp, threads)) {
        report.failures.push_back("DSE config #" + std::to_string(i) + " (" +
                                  print_dse_scenario(scenario) + "): " + *diff +
                                  "; repro: " + repro);
        break;
      }
    }

    // Warm sim-cache identity: a cold populating run followed by a fully
    // replayed run must reproduce the cold result bit for bit.
    cache.set_enabled(true);
    cache.clear();
    exec::set_thread_count(options.thread_counts.back());
    const SweepFingerprint cold = fingerprint(run_full_dse(scenario.context, space));
    const SweepFingerprint warm = fingerprint(run_full_dse(scenario.context, space));
    ++report.checks;
    if (auto diff = compare_fingerprints(cold, options.thread_counts.back(), warm,
                                         options.thread_counts.back())) {
      report.failures.push_back("DSE config #" + std::to_string(i) +
                                " warm-cache replay diverged: " + *diff +
                                "; repro: " + repro);
    } else {
      const exec::SimCacheStats stats = cache.stats();
      if (stats.hits < cold.simulations) {
        report.failures.push_back(
            "DSE config #" + std::to_string(i) + " warm run hit the cache only " +
            std::to_string(stats.hits) + " times for " +
            std::to_string(cold.simulations) + " simulations; repro: " + repro);
      }
    }
    if (reference && bit_equal(reference->best_time, 0.0) && reference->simulations == 0)
      report.failures.push_back("DSE config #" + std::to_string(i) +
                                " simulated nothing (generator bug); repro: " + repro);
  }

  // APS end to end (characterize + analytic solve + neighborhood) across
  // thread counts: the expensive half of the PR 2 contract, so fewer
  // configurations.
  for (std::size_t i = 0; i < options.aps_configs; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 20'000 + i));
    const DseScenario scenario = gen_dse_scenario(rng);
    const GridSpace space = make_design_space(scenario.axes);
    const std::string repro = repro_line(options.seed, 20'000 + i);
    ApsOptions aps_options;
    aps_options.characterize.instructions = 30'000;
    aps_options.characterize.seed = scenario.context.seed;

    cache.set_enabled(false);
    std::optional<ApsResult> reference;
    std::size_t reference_threads = 0;
    for (const std::size_t threads : options.thread_counts) {
      exec::set_thread_count(threads);
      const ApsResult run = run_aps(scenario.context, space, aps_options);
      ++report.checks;
      if (!reference) {
        reference = run;
        reference_threads = threads;
        continue;
      }
      std::ostringstream os;
      if (run.best_index != reference->best_index ||
          !bit_equal(run.best_time, reference->best_time) ||
          run.memory_accesses != reference->memory_accesses ||
          run.simulated_indices != reference->simulated_indices ||
          !bit_equal(run.analytic.best.execution_time,
                     reference->analytic.best.execution_time)) {
        os << "APS config #" << i << " (" << print_dse_scenario(scenario)
           << "): threads=" << threads << " vs threads=" << reference_threads
           << " diverged (best_index " << run.best_index << " vs "
           << reference->best_index << ", best_time " << fmt(run.best_time)
           << " vs " << fmt(reference->best_time) << ", accesses "
           << run.memory_accesses << " vs " << reference->memory_accesses
           << ", analytic " << fmt(run.analytic.best.execution_time) << " vs "
           << fmt(reference->analytic.best.execution_time)
           << "); repro: " << repro;
        report.failures.push_back(os.str());
        break;
      }
    }
  }
  return report;
}

namespace {

/// Random model-evaluation case for the structural-bound properties.
struct ModelCase {
  AppProfile app;
  MachineProfile machine;
  DesignPoint design;
};

ModelCase gen_model_case(Rng& rng) {
  ModelCase mc;
  mc.app = gen_app_profile(rng);
  mc.machine = gen_machine_profile(rng);
  const ChipConstraints& chip = mc.machine.chip;
  const long long n_max = std::min<long long>(8, chip.max_cores());
  const double n = static_cast<double>(rng.uniform_int(1, std::max<long long>(1, n_max)));
  const AreaSplit split = gen_area_split(rng, chip, chip.per_core_budget(n));
  mc.design = DesignPoint{.n_cores = n, .a0 = split.a0, .a1 = split.a1, .a2 = split.a2};
  return mc;
}

std::string print_model_case(const ModelCase& mc) {
  std::ostringstream os;
  os << print_app_profile(mc.app) << " design{n=" << mc.design.n_cores
     << ", a0=" << mc.design.a0 << ", a1=" << mc.design.a1 << ", a2=" << mc.design.a2
     << "} chip{A=" << mc.machine.chip.total_area << ", Ac=" << mc.machine.chip.shared_area
     << "}";
  return os.str();
}

void run_engine_property(const Property<ModelCase>& property, const OracleOptions& options,
                         OracleReport& report) {
  CheckOptions check_options;
  check_options.seed = options.seed;
  check_options.cases = options.invariant_cases;
  check_options.corpus_dir = options.corpus_dir;
  const CheckResult result = check(property, check_options);
  report.checks += result.cases_run;
  if (!result.passed) report.failures.push_back(result.summary());
}

}  // namespace

OracleReport run_invariant_oracle(const OracleOptions& options) {
  OracleReport report;
  report.family = "invariants";

  // --- model structural bounds, via the property engine -------------------
  // Validity domain: the generators keep pAMP <= AMP and pMR <= MR, the
  // regime where C-AMAT <= AMAT and C >= 1 are theorems of Eq. (2).
  Property<ModelCase> bounds;
  bounds.name = "model_structural_bounds";
  bounds.generate = gen_model_case;
  bounds.print = print_model_case;
  bounds.holds = [](const ModelCase& mc) -> std::optional<std::string> {
    const C2BoundModel model(mc.app, mc.machine);
    const Evaluation eval = model.evaluate(mc.design);
    const MachineProfile& m = mc.machine;
    auto fail = [&](const std::string& what) {
      return std::optional<std::string>(what + " at n=" + std::to_string(mc.design.n_cores));
    };
    if (!(std::isfinite(eval.execution_time) && eval.execution_time > 0.0))
      return fail("execution_time not finite positive: " + fmt(eval.execution_time));
    if (eval.camat > eval.amat * (1.0 + 1e-9))
      return fail("C-AMAT " + fmt(eval.camat) + " > AMAT " + fmt(eval.amat));
    if (eval.concurrency_c < 1.0 - 1e-9)
      return fail("concurrency C " + fmt(eval.concurrency_c) + " < 1");
    if (eval.l1_miss_rate < m.l1_miss.mr_floor - 1e-12 ||
        eval.l1_miss_rate > m.l1_miss.mr_cap + 1e-12)
      return fail("L1 miss rate " + fmt(eval.l1_miss_rate) + " outside [floor, cap]");
    if (eval.l2_local_miss_rate < m.l2_miss.mr_floor - 1e-12 ||
        eval.l2_local_miss_rate > m.l2_miss.mr_cap + 1e-12)
      return fail("L2 miss rate " + fmt(eval.l2_local_miss_rate) + " outside [floor, cap]");
    const double throughput = eval.problem_size / eval.execution_time;
    if (std::abs(eval.throughput - throughput) > 1e-9 * std::max(1.0, throughput))
      return fail("throughput " + fmt(eval.throughput) + " != W/T " + fmt(throughput));
    return std::nullopt;
  };
  run_engine_property(bounds, options, report);

  // Pollack + area monotonicity: growing the core (CPI_exe) or the whole
  // per-core split (execution time at fixed N) can never hurt.
  Property<ModelCase> monotone;
  monotone.name = "model_area_monotonicity";
  monotone.generate = gen_model_case;
  monotone.print = print_model_case;
  monotone.holds = [](const ModelCase& mc) -> std::optional<std::string> {
    const C2BoundModel model(mc.app, mc.machine);
    const Evaluation base = model.evaluate(mc.design);
    for (const double factor : {1.3, 2.0}) {
      DesignPoint bigger = mc.design;
      bigger.a0 *= factor;
      bigger.a1 *= factor;
      bigger.a2 *= factor;
      const Evaluation grown = model.evaluate(bigger);
      const double slack = 1e-9 * std::max(1.0, base.execution_time);
      if (grown.cpi_exe > base.cpi_exe + 1e-12)
        return "CPI_exe rose from " + fmt(base.cpi_exe) + " to " + fmt(grown.cpi_exe) +
               " when a0 grew x" + fmt(factor) + " (Pollack must be monotone)";
      if (grown.execution_time > base.execution_time + slack)
        return "execution time rose from " + fmt(base.execution_time) + " to " +
               fmt(grown.execution_time) + " when every area grew x" + fmt(factor);
    }
    return std::nullopt;
  };
  run_engine_property(monotone, options, report);

  // --- area conservation at every optimizer iterate (Eq. 12) --------------
  for (std::size_t i = 0; i < 6; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 30'000 + i));
    const AppProfile app = gen_app_profile(rng);
    const MachineProfile machine = gen_machine_profile(rng);
    const ChipConstraints chip = machine.chip;

    std::mutex mu;
    double worst_residual = -std::numeric_limits<double>::infinity();
    double worst_min_area = std::numeric_limits<double>::infinity();
    std::size_t observed = 0;

    OptimizerOptions opt;
    opt.n_max = std::min<long long>(6, chip.max_cores());
    opt.nelder_mead_restarts = 2;
    opt.iterate_observer = [&](const DesignPoint& d) {
      const double residual = chip.area_residual(d);
      const double min_area = std::min({d.a0, d.a1, d.a2});
      std::lock_guard<std::mutex> lock(mu);
      worst_residual = std::max(worst_residual, residual);
      worst_min_area = std::min(worst_min_area, min_area);
      ++observed;
    };
    const C2BoundOptimizer optimizer(C2BoundModel(app, machine), opt);
    optimizer.optimize();

    ++report.checks;
    const std::string repro = repro_line(options.seed, 30'000 + i);
    if (observed == 0) {
      report.failures.push_back("area oracle #" + std::to_string(i) +
                                ": optimizer never invoked the iterate observer; repro: " +
                                repro);
      continue;
    }
    // NM candidates satisfy Eq. (12) with equality by construction; the
    // Lagrange polish is accepted only within chip.feasible(1e-4). Allow
    // that acceptance slack, scaled to the chip.
    const double tolerance = 1e-3 * chip.total_area + 1e-6;
    if (worst_residual > tolerance)
      report.failures.push_back("area oracle #" + std::to_string(i) + ": iterate violated Eq. 12 by " +
                                fmt(worst_residual) + " (tolerance " + fmt(tolerance) +
                                ", A=" + fmt(chip.total_area) + "); repro: " + repro);
    if (!(worst_min_area > 0.0))
      report.failures.push_back("area oracle #" + std::to_string(i) +
                                ": iterate had a non-positive area (min " +
                                fmt(worst_min_area) + "); repro: " + repro);
  }

  // --- telemetry ledger ----------------------------------------------------
  // sim.l1.hit + sim.l1.miss + exec.simcache.replayed_accesses must equal
  // the demand accesses the run reports, with replays covering the cached
  // second run. Needs live telemetry; skipped silently under
  // C2B_OBS_DISABLED builds or obs::set_enabled(false).
  if (C2B_OBS_ACTIVE()) {
    ExecStateGuard guard;
    exec::SimCache& cache = exec::SimCache::global();
    for (std::size_t i = 0; i < options.ledger_configs; ++i) {
      Rng rng(Rng::derive_stream_seed(options.seed, 40'000 + i));
      const DseScenario scenario = gen_dse_scenario(rng);
      const GridSpace space = make_design_space(scenario.axes);
      ApsOptions aps_options;
      aps_options.characterize.instructions = 30'000;
      aps_options.characterize.seed = scenario.context.seed;

      exec::set_thread_count(2);
      cache.set_enabled(true);
      cache.clear();
      obs::Registry::global().reset_values();

      const ApsResult first = run_aps(scenario.context, space, aps_options);
      const ApsResult second = run_aps(scenario.context, space, aps_options);
      const std::uint64_t reported = first.memory_accesses + second.memory_accesses;
      obs::Registry& registry = obs::Registry::global();
      const std::uint64_t hits = registry.counter("sim.l1.hit").value();
      const std::uint64_t misses = registry.counter("sim.l1.miss").value();
      const std::uint64_t replayed =
          registry.counter("exec.simcache.replayed_accesses").value();
      ++report.checks;
      if (hits + misses + replayed != reported) {
        std::ostringstream os;
        os << "ledger #" << i << " (" << print_dse_scenario(scenario)
           << "): sim.l1.hit " << hits << " + sim.l1.miss " << misses
           << " + replayed " << replayed << " = " << (hits + misses + replayed)
           << " != reported accesses " << reported
           << "; repro: " << repro_line(options.seed, 40'000 + i);
        report.failures.push_back(os.str());
      }
    }
  }
  return report;
}

namespace {

/// First field-level difference between two SystemResults, or nullopt when
/// they are bitwise identical. Integers compare exactly; doubles compare by
/// bit pattern (the kernel contract is bit-identity, not closeness). Every
/// field of CoreResult, TimelineMetrics, and HierarchyStats is listed —
/// adding a field to those structs without extending this comparator is
/// what the field-count asserts in test_sim_kernel_equiv guard against.
std::optional<std::string> diff_system_results(const sim::SystemResult& a,
                                               const sim::SystemResult& b) {
  std::ostringstream os;
  auto u64 = [&](const std::string& label, std::uint64_t x, std::uint64_t y) {
    if (x == y) return false;
    os << label << " " << x << " != " << y;
    return true;
  };
  auto dbl = [&](const std::string& label, double x, double y) {
    if (bit_equal(x, y)) return false;
    os << label << " " << fmt(x) << " != " << fmt(y);
    return true;
  };

  if (a.cores.size() != b.cores.size())
    return "core count " + std::to_string(a.cores.size()) + " != " +
           std::to_string(b.cores.size());
  if (u64("cycles", a.cycles, b.cycles)) return os.str();

  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    const sim::CoreResult& x = a.cores[c];
    const sim::CoreResult& y = b.cores[c];
    const std::string p = "cores[" + std::to_string(c) + "].";
    if (u64(p + "instructions", x.instructions, y.instructions) ||
        u64(p + "memory_accesses", x.memory_accesses, y.memory_accesses) ||
        u64(p + "cycles", x.cycles, y.cycles) || dbl(p + "cpi", x.cpi, y.cpi) ||
        dbl(p + "f_mem", x.f_mem, y.f_mem))
      return os.str();
    const TimelineMetrics& m = x.camat;
    const TimelineMetrics& n = y.camat;
    const std::string q = p + "camat.";
    if (u64(q + "accesses", m.accesses, n.accesses) ||
        u64(q + "misses", m.misses, n.misses) ||
        u64(q + "pure_misses", m.pure_misses, n.pure_misses) ||
        u64(q + "hit_cycle_count", m.hit_cycle_count, n.hit_cycle_count) ||
        u64(q + "hit_access_cycles", m.hit_access_cycles, n.hit_access_cycles) ||
        u64(q + "pure_miss_cycle_count", m.pure_miss_cycle_count, n.pure_miss_cycle_count) ||
        u64(q + "pure_miss_access_cycles", m.pure_miss_access_cycles,
            n.pure_miss_access_cycles) ||
        u64(q + "memory_active_cycles", m.memory_active_cycles, n.memory_active_cycles) ||
        dbl(q + "amat_params.hit_time", m.amat_params.hit_time, n.amat_params.hit_time) ||
        dbl(q + "amat_params.miss_rate", m.amat_params.miss_rate, n.amat_params.miss_rate) ||
        dbl(q + "amat_params.miss_penalty", m.amat_params.miss_penalty,
            n.amat_params.miss_penalty) ||
        dbl(q + "camat_params.hit_time", m.camat_params.hit_time, n.camat_params.hit_time) ||
        dbl(q + "camat_params.hit_concurrency", m.camat_params.hit_concurrency,
            n.camat_params.hit_concurrency) ||
        dbl(q + "camat_params.pure_miss_rate", m.camat_params.pure_miss_rate,
            n.camat_params.pure_miss_rate) ||
        dbl(q + "camat_params.pure_miss_penalty", m.camat_params.pure_miss_penalty,
            n.camat_params.pure_miss_penalty) ||
        dbl(q + "camat_params.miss_concurrency", m.camat_params.miss_concurrency,
            n.camat_params.miss_concurrency) ||
        dbl(q + "amat_value", m.amat_value, n.amat_value) ||
        dbl(q + "camat_value", m.camat_value, n.camat_value) ||
        dbl(q + "camat_direct", m.camat_direct, n.camat_direct) ||
        dbl(q + "apc", m.apc, n.apc) ||
        dbl(q + "concurrency_c", m.concurrency_c, n.concurrency_c))
      return os.str();
  }

  const sim::HierarchyStats& h = a.hierarchy;
  const sim::HierarchyStats& k = b.hierarchy;
  if (dbl("hierarchy.l1_miss_ratio", h.l1_miss_ratio, k.l1_miss_ratio) ||
      dbl("hierarchy.l2_miss_ratio", h.l2_miss_ratio, k.l2_miss_ratio) ||
      dbl("hierarchy.apc_l1", h.apc_l1, k.apc_l1) ||
      dbl("hierarchy.apc_l2", h.apc_l2, k.apc_l2) ||
      dbl("hierarchy.apc_mem", h.apc_mem, k.apc_mem) ||
      u64("hierarchy.l1_accesses", h.l1_accesses, k.l1_accesses) ||
      u64("hierarchy.l2_accesses", h.l2_accesses, k.l2_accesses) ||
      u64("hierarchy.dram_accesses", h.dram_accesses, k.dram_accesses) ||
      dbl("hierarchy.dram_row_hit_ratio", h.dram_row_hit_ratio, k.dram_row_hit_ratio) ||
      dbl("hierarchy.dram_average_latency", h.dram_average_latency, k.dram_average_latency) ||
      u64("hierarchy.l1_mshr_merges", h.l1_mshr_merges, k.l1_mshr_merges) ||
      u64("hierarchy.l1_mshr_full_stalls", h.l1_mshr_full_stalls, k.l1_mshr_full_stalls) ||
      dbl("hierarchy.noc_average_hops", h.noc_average_hops, k.noc_average_hops) ||
      u64("hierarchy.l1_writebacks", h.l1_writebacks, k.l1_writebacks) ||
      u64("hierarchy.l2_writebacks", h.l2_writebacks, k.l2_writebacks) ||
      u64("hierarchy.prefetches_issued", h.prefetches_issued, k.prefetches_issued) ||
      u64("hierarchy.prefetch_useful_hits", h.prefetch_useful_hits, k.prefetch_useful_hits) ||
      dbl("hierarchy.prefetch_accuracy", h.prefetch_accuracy, k.prefetch_accuracy) ||
      u64("hierarchy.coherence_invalidations", h.coherence_invalidations,
          k.coherence_invalidations) ||
      u64("hierarchy.coherence_owner_transfers", h.coherence_owner_transfers,
          k.coherence_owner_transfers) ||
      u64("hierarchy.coherence_upgrades", h.coherence_upgrades, k.coherence_upgrades))
    return os.str();
  return std::nullopt;
}

/// gen_trace may produce an empty trace; the simulator requires at least
/// one record per core, so pad with a single compute instruction.
Trace gen_nonempty_trace(Rng& rng, std::size_t max_records) {
  Trace trace = gen_trace(rng, max_records);
  if (trace.records.empty()) trace.records.push_back({InstrKind::kCompute, false, 0});
  return trace;
}

}  // namespace

OracleReport run_kernel_equivalence_oracle(const OracleOptions& options) {
  OracleReport report;
  report.family = "kernel";

  // --- event kernel vs per-cycle reference, bitwise -----------------------
  // Random configurations with coherence and prefetching forced on for a
  // share of the cases (the stock generator leaves both off), random
  // per-core traces, and — when telemetry is live — the demand-access
  // ledger sim.l1.hit + sim.l1.miss == reported accesses for each run.
  for (std::size_t i = 0; i < options.kernel_configs; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 50'000 + i));
    const std::string repro = repro_line(options.seed, 50'000 + i);
    sim::SystemConfig config = gen_system_config(rng);
    if (config.hierarchy.cores > 1 && rng.bernoulli(0.4)) config.hierarchy.coherence = true;
    config.hierarchy.l1_prefetch.kind =
        pick(rng, {sim::PrefetchKind::kNone, sim::PrefetchKind::kNone,
                   sim::PrefetchKind::kNextLine, sim::PrefetchKind::kStride});

    const std::size_t trace_count =
        1 + static_cast<std::size_t>(rng.uniform_below(config.hierarchy.cores));
    std::vector<Trace> traces;
    traces.reserve(trace_count);
    for (std::size_t t = 0; t < trace_count; ++t)
      traces.push_back(gen_nonempty_trace(rng, 512));

    if (C2B_OBS_ACTIVE()) obs::Registry::global().reset_values();
    const sim::SystemResult event_run = sim::simulate_system(config, traces);
    if (C2B_OBS_ACTIVE()) {
      std::uint64_t reported = 0;
      for (const sim::CoreResult& core : event_run.cores) reported += core.memory_accesses;
      obs::Registry& registry = obs::Registry::global();
      const std::uint64_t hits = registry.counter("sim.l1.hit").value();
      const std::uint64_t misses = registry.counter("sim.l1.miss").value();
      ++report.checks;
      if (hits + misses != reported) {
        std::ostringstream os;
        os << "kernel case #" << i << " ledger: sim.l1.hit " << hits << " + sim.l1.miss "
           << misses << " != reported accesses " << reported << "; repro: " << repro;
        report.failures.push_back(os.str());
      }
    }
    const sim::SystemResult reference_run = sim::simulate_system_reference(config, traces);

    ++report.checks;
    if (auto diff = diff_system_results(event_run, reference_run)) {
      report.failures.push_back("kernel case #" + std::to_string(i) + " (" +
                                print_system_config(config) + "): event vs reference " +
                                *diff + "; repro: " + repro);
    }
  }

  // --- streaming cursor vs materialized trace, bitwise --------------------
  // Catalog-workload generator streams replayed two ways: materialized via
  // TraceGenerator::generate and chunk-at-a-time via GeneratorTraceCursor
  // with a deliberately small chunk (many refills). Also asserts the
  // cursor's O(chunk) residency contract.
  const std::size_t streaming_cases = std::max<std::size_t>(2, options.kernel_configs / 4);
  for (std::size_t i = 0; i < streaming_cases; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 51'000 + i));
    const std::string repro = repro_line(options.seed, 51'000 + i);
    const sim::SystemConfig config = gen_system_config(rng);
    const WorkloadSpec spec = gen_workload_spec(rng);
    const double scale = pick(rng, {1.0, 2.0, 4.0});
    const std::uint64_t window = 2'000 + rng.uniform_below(6'000);
    const std::size_t chunk = pick<std::size_t>(rng, {64, 257, 1024});
    const std::uint64_t stream_seed = rng.next();

    const std::size_t n = config.hierarchy.cores;
    std::vector<Trace> traces;
    traces.reserve(n);
    std::vector<GeneratorTraceCursor> cursors;
    cursors.reserve(n);
    std::vector<TraceCursor*> cursor_ptrs;
    cursor_ptrs.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
      const std::uint64_t core_seed =
          Rng::derive_stream_seed(stream_seed, static_cast<std::uint64_t>(c));
      traces.push_back(spec.make_generator(scale, core_seed)->generate(window));
      cursors.emplace_back(spec.make_generator(scale, core_seed), window, chunk);
      cursor_ptrs.push_back(&cursors.back());
    }

    const sim::SystemResult materialized = sim::simulate_system(config, traces);
    const sim::SystemResult streamed = sim::simulate_system_streaming(config, cursor_ptrs);
    ++report.checks;
    if (auto diff = diff_system_results(streamed, materialized)) {
      report.failures.push_back("streaming case #" + std::to_string(i) + " (workload " +
                                spec.name + ", chunk " + std::to_string(chunk) +
                                "): streamed vs materialized " + *diff + "; repro: " + repro);
    }
    for (std::size_t c = 0; c < n; ++c) {
      if (cursors[c].max_resident_records() > chunk) {
        report.failures.push_back(
            "streaming case #" + std::to_string(i) + " core " + std::to_string(c) +
            " kept " + std::to_string(cursors[c].max_resident_records()) +
            " records resident (chunk " + std::to_string(chunk) + "); repro: " + repro);
      }
    }
  }
  return report;
}

OracleReport run_batch_equivalence_oracle(const OracleOptions& options) {
  OracleReport report;
  report.family = "batch";
  C2B_REQUIRE(!options.thread_counts.empty(), "batch oracle needs thread counts");
  ExecStateGuard guard;
  exec::SimCache& cache = exec::SimCache::global();

  for (std::size_t i = 0; i < options.batch_sets; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 60'000 + i));
    const DseScenario scenario = gen_dse_scenario(rng);
    const GridSpace space = make_design_space(scenario.axes);
    const std::string repro = repro_line(options.seed, 60'000 + i);

    // Random feasible design-point subset (~70% of the grid, at least one
    // point — gen_dse_scenario guarantees a feasible minimum exists).
    std::vector<std::vector<double>> points;
    space.for_each([&](std::size_t, const std::vector<double>& point) {
      if (!design_feasible(scenario.context, point)) return;
      if (rng.bernoulli(0.7)) points.push_back(point);
    });
    if (points.empty()) {
      space.for_each([&](std::size_t, const std::vector<double>& point) {
        if (points.empty() && design_feasible(scenario.context, point)) points.push_back(point);
      });
    }
    if (points.empty()) {
      report.failures.push_back("batch set #" + std::to_string(i) +
                                " found no feasible point (generator bug); repro: " + repro);
      continue;
    }

    // Per-point reference with the cache off: every design really
    // simulates, one at a time, through the unbatched path.
    cache.set_enabled(false);
    exec::set_thread_count(1);
    std::vector<double> ref_times(points.size(), 0.0);
    std::vector<std::uint64_t> ref_accesses(points.size(), 0);
    for (std::size_t j = 0; j < points.size(); ++j)
      ref_times[j] = simulate_design_time(scenario.context, points[j], &ref_accesses[j]);

    const auto diff_outcomes = [&](const std::vector<BatchSimOutcome>& outcomes)
        -> std::optional<std::string> {
      for (std::size_t j = 0; j < points.size(); ++j) {
        if (!bit_equal(outcomes[j].time, ref_times[j]))
          return "point " + std::to_string(j) + " time " + fmt(outcomes[j].time) +
                 " != per-point " + fmt(ref_times[j]);
        if (outcomes[j].memory_accesses != ref_accesses[j])
          return "point " + std::to_string(j) + " accesses " +
                 std::to_string(outcomes[j].memory_accesses) + " != per-point " +
                 std::to_string(ref_accesses[j]);
      }
      return std::nullopt;
    };

    // Batched replay at every thread count must reproduce the per-point
    // reference bitwise, account for every point exactly once, and keep
    // the telemetry ledger balanced.
    for (const std::size_t threads : options.thread_counts) {
      exec::set_thread_count(threads);
      if (C2B_OBS_ACTIVE()) obs::Registry::global().reset_values();
      BatchReplayStats stats;
      const std::vector<BatchSimOutcome> outcomes =
          simulate_design_times_batched(scenario.context, points, &stats);
      ++report.checks;
      if (auto diff = diff_outcomes(outcomes)) {
        report.failures.push_back("batch set #" + std::to_string(i) + " (" +
                                  print_dse_scenario(scenario) + ", " +
                                  std::to_string(points.size()) + " points) threads=" +
                                  std::to_string(threads) + ": " + *diff +
                                  "; repro: " + repro);
        break;
      }
      if (stats.members + stats.cache_hits != points.size() || stats.cache_hits != 0) {
        report.failures.push_back(
            "batch set #" + std::to_string(i) + " threads=" + std::to_string(threads) +
            ": accounting off (members " + std::to_string(stats.members) + " + hits " +
            std::to_string(stats.cache_hits) + " != " + std::to_string(points.size()) +
            " points with the cache disabled); repro: " + repro);
      }
      if (C2B_OBS_ACTIVE()) {
        std::uint64_t reported = 0;
        for (const BatchSimOutcome& o : outcomes) reported += o.memory_accesses;
        obs::Registry& registry = obs::Registry::global();
        const std::uint64_t hits = registry.counter("sim.l1.hit").value();
        const std::uint64_t misses = registry.counter("sim.l1.miss").value();
        const std::uint64_t replayed =
            registry.counter("exec.simcache.replayed_accesses").value();
        ++report.checks;
        if (hits + misses + replayed != reported) {
          std::ostringstream os;
          os << "batch set #" << i << " threads=" << threads << " ledger: sim.l1.hit "
             << hits << " + sim.l1.miss " << misses << " + replayed " << replayed
             << " != reported accesses " << reported << "; repro: " << repro;
          report.failures.push_back(os.str());
        }
      }
    }

    // Warm path: a batched run bulk-inserts its results; a second batched
    // run and per-point runs must replay those exact values.
    cache.set_enabled(true);
    cache.clear();
    exec::set_thread_count(options.thread_counts.back());
    BatchReplayStats cold_stats;
    const std::vector<BatchSimOutcome> cold =
        simulate_design_times_batched(scenario.context, points, &cold_stats);
    BatchReplayStats warm_stats;
    const std::vector<BatchSimOutcome> warm =
        simulate_design_times_batched(scenario.context, points, &warm_stats);
    ++report.checks;
    if (auto diff = diff_outcomes(cold)) {
      report.failures.push_back("batch set #" + std::to_string(i) +
                                " cold cached run diverged: " + *diff + "; repro: " + repro);
    } else if (auto warm_diff = diff_outcomes(warm)) {
      report.failures.push_back("batch set #" + std::to_string(i) +
                                " warm replay diverged: " + *warm_diff + "; repro: " + repro);
    } else if (warm_stats.cache_hits != points.size()) {
      report.failures.push_back(
          "batch set #" + std::to_string(i) + " warm run peeled only " +
          std::to_string(warm_stats.cache_hits) + " of " + std::to_string(points.size()) +
          " points from the cache; repro: " + repro);
    } else {
      std::uint64_t warm_per_point_accesses = 0;
      for (std::size_t j = 0; j < points.size(); ++j) {
        const double warm_time =
            simulate_design_time(scenario.context, points[j], &warm_per_point_accesses);
        if (!bit_equal(warm_time, ref_times[j])) {
          report.failures.push_back("batch set #" + std::to_string(i) + " point " +
                                    std::to_string(j) +
                                    ": per-point replay of the bulk-inserted value " +
                                    fmt(warm_time) + " != " + fmt(ref_times[j]) +
                                    "; repro: " + repro);
          break;
        }
      }
    }
  }
  return report;
}

OracleReport run_simd_equivalence_oracle(const OracleOptions& options) {
  OracleReport report;
  report.family = "simd";
  C2B_REQUIRE(!options.thread_counts.empty(), "simd oracle needs thread counts");

  // Whether the vectorized kernel will actually run (same policy as the
  // dispatcher): used only to decide if simd telemetry must be non-zero —
  // the bit-identity checks below hold either way, which is exactly what
  // the forced-scalar CI job relies on.
  const bool simd_on = [] {
#if defined(C2B_DISABLE_SIMD)
    return false;
#else
    const char* env = std::getenv("C2B_NO_SIMD");
    return env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0;
#endif
  }();

  const std::size_t widths[] = {2, 4, 8, 16};
  const std::uint64_t granularities[] = {1, 7, 4096};

  // --- vectorized vs scalar-lockstep vs per-cycle reference, bitwise ------
  // One random workload + core count per set; per width, a heterogeneous
  // member list (issue/ROB/FU/cache geometry all vary, trace streams
  // shared); the per-cycle reference runs once per (set, width) and every
  // (vectorized, scalar) x granularity combination must reproduce it
  // bitwise, member by member.
  for (std::size_t i = 0; i < options.simd_sets; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 70'000 + i));
    const std::string repro = repro_line(options.seed, 70'000 + i);
    const sim::SystemConfig proto = gen_system_config(rng);
    const std::uint32_t n = proto.hierarchy.cores;
    const WorkloadSpec spec = gen_workload_spec(rng);
    const double scale = pick(rng, {1.0, 2.0});
    const std::uint64_t window = 2'000 + rng.uniform_below(4'000);
    const std::uint64_t stream_seed = rng.next();

    // The exact streams every replay consumes, materialized once for the
    // reference kernel.
    std::vector<Trace> traces;
    traces.reserve(n);
    for (std::uint32_t c = 0; c < n; ++c)
      traces.push_back(
          spec.make_generator(scale, Rng::derive_stream_seed(stream_seed, c))->generate(window));

    const auto make_store = [&](TraceChunkStore& store, std::size_t readers) {
      for (std::uint32_t c = 0; c < n; ++c)
        store.add_stream(spec.make_generator(scale, Rng::derive_stream_seed(stream_seed, c)),
                         window);
      store.set_readers(static_cast<std::uint32_t>(readers));
    };

    for (const std::size_t width : widths) {
      // Heterogeneous member configs sharing the trace shape (core count).
      std::vector<sim::SystemConfig> configs;
      configs.reserve(width);
      for (std::size_t m = 0; m < width; ++m) {
        sim::SystemConfig config = proto;
        config.core.issue_width = pick<std::uint32_t>(rng, {1, 2, 4});
        config.core.rob_size =
            std::max(config.core.issue_width, pick<std::uint32_t>(rng, {16, 32, 64, 128}));
        config.core.functional_units = pick<std::uint32_t>(rng, {1, 2, 4, 8});
        const sim::CacheGeometry& l1 = proto.hierarchy.l1_geometry;
        config.hierarchy.l1_geometry.size_bytes = static_cast<std::uint64_t>(l1.line_bytes) *
                                                  l1.associativity *
                                                  pick<std::uint32_t>(rng, {4, 16, 64});
        const sim::CacheGeometry& l2 = proto.hierarchy.l2_geometry;
        config.hierarchy.l2_geometry.size_bytes = static_cast<std::uint64_t>(l2.line_bytes) *
                                                  l2.associativity *
                                                  pick<std::uint32_t>(rng, {64, 256, 1024});
        config.validate();
        configs.push_back(config);
      }

      std::vector<sim::SystemResult> reference;
      reference.reserve(width);
      for (std::size_t m = 0; m < width; ++m)
        reference.push_back(sim::simulate_system_reference(configs[m], traces));

      for (const std::uint64_t granularity : granularities) {
        for (const bool use_simd : {true, false}) {
          TraceChunkStore store;
          make_store(store, width);
          std::vector<ChunkCursor> cursors;
          cursors.reserve(width * n);
          std::vector<std::vector<TraceCursor*>> member_cursors(width);
          for (std::size_t m = 0; m < width; ++m) {
            member_cursors[m].reserve(n);
            for (std::uint32_t c = 0; c < n; ++c) {
              cursors.emplace_back(store, c);
              member_cursors[m].push_back(&cursors.back());
            }
          }
          sim::BatchedReplayOptions batch_options;
          batch_options.lockstep_records = granularity;
          batch_options.use_simd = use_simd;
          sim::BatchKernelStats kernel;
          batch_options.kernel_stats = &kernel;
          const std::vector<sim::SystemResult> results =
              sim::simulate_system_batched(configs, member_cursors, batch_options);

          const std::string what = std::string(use_simd ? "vectorized" : "scalar") +
                                   " width=" + std::to_string(width) +
                                   " lockstep=" + std::to_string(granularity);
          for (std::size_t m = 0; m < width; ++m) {
            ++report.checks;
            if (auto diff = diff_system_results(results[m], reference[m])) {
              report.failures.push_back("simd set #" + std::to_string(i) + " " + what +
                                        " member " + std::to_string(m) + " vs reference " +
                                        *diff + "; repro: " + repro);
              break;
            }
          }
          ++report.checks;
          if (use_simd && simd_on && kernel.simd_steps == 0) {
            report.failures.push_back("simd set #" + std::to_string(i) + " " + what +
                                      ": vectorized kernel reported zero steps; repro: " +
                                      repro);
          } else if (!use_simd && kernel.simd_steps != 0) {
            report.failures.push_back("simd set #" + std::to_string(i) + " " + what +
                                      ": scalar run reported simd steps; repro: " + repro);
          }
        }
      }
    }
  }

  // --- DSE driver: vectorized on vs off, bit-identical at every thread
  // count (also exercises prototype-generator cloning under the pool) -----
  ExecStateGuard guard;
  exec::SimCache& cache = exec::SimCache::global();
  for (std::size_t i = 0; i < std::max<std::size_t>(1, options.simd_sets / 2); ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 71'000 + i));
    const std::string repro = repro_line(options.seed, 71'000 + i);
    const DseScenario scenario = gen_dse_scenario(rng);
    const GridSpace space = make_design_space(scenario.axes);
    std::vector<std::vector<double>> points;
    space.for_each([&](std::size_t, const std::vector<double>& point) {
      if (design_feasible(scenario.context, point)) points.push_back(point);
    });
    if (points.empty()) continue;

    cache.set_enabled(false);
    exec::set_thread_count(1);
    DseContext scalar_context = scenario.context;
    scalar_context.use_simd = false;
    const std::vector<BatchSimOutcome> scalar_ref =
        simulate_design_times_batched(scalar_context, points, nullptr);

    for (const std::size_t threads : options.thread_counts) {
      exec::set_thread_count(threads);
      BatchReplayStats stats;
      const std::vector<BatchSimOutcome> vectorized =
          simulate_design_times_batched(scenario.context, points, &stats);
      ++report.checks;
      for (std::size_t j = 0; j < points.size(); ++j) {
        if (!bit_equal(vectorized[j].time, scalar_ref[j].time) ||
            vectorized[j].memory_accesses != scalar_ref[j].memory_accesses) {
          report.failures.push_back(
              "simd dse set #" + std::to_string(i) + " threads=" + std::to_string(threads) +
              " point " + std::to_string(j) + ": vectorized " + fmt(vectorized[j].time) +
              " != scalar " + fmt(scalar_ref[j].time) + "; repro: " + repro);
          break;
        }
      }
    }
  }
  return report;
}

OracleReport run_constraint_oracle(const OracleOptions& options) {
  OracleReport report;
  report.family = "constraint";
  C2B_REQUIRE(!options.thread_counts.empty(), "constraint oracle needs thread counts");
  ExecStateGuard guard;
  exec::SimCache& cache = exec::SimCache::global();

  for (std::size_t i = 0; i < options.constraint_sets; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 80'000 + i));
    const std::string repro = repro_line(options.seed, 80'000 + i);
    DseScenario scenario = gen_dse_scenario(rng);
    const GridSpace space = make_design_space(scenario.axes);

    // Anchor the budgets on the first area-feasible grid point: each budget
    // is that point's demand scaled by [1, 1.5), so the anchor stays
    // feasible (the space is never emptied) while tighter draws bisect the
    // rest of the grid and make the new constraints actually bite.
    std::vector<double> anchor;
    space.for_each([&](std::size_t, const std::vector<double>& point) {
      if (anchor.empty() && design_feasible(scenario.context, point)) anchor = point;
    });
    if (anchor.empty()) {
      report.failures.push_back("constraint set #" + std::to_string(i) +
                                " found no feasible point (generator bug); repro: " + repro);
      continue;
    }
    DseContext& context = scenario.context;
    const DesignPoint anchor_d = design_point_of(anchor);
    context.power_budget =
        context.cost.power.total(anchor_d, context.chip.shared_area) * rng.uniform(1.0, 1.5);
    context.bw_budget = context.cost.bandwidth.demand(anchor_d) * rng.uniform(1.0, 1.5);
    context.noc_budget = context.cost.noc.per_link_load(anchor_d) * rng.uniform(1.0, 1.5);

    // Ground truth, the dumb way: enumerate the full factorial grid
    // serially with the cache off, filter by the constraint set, simulate
    // every survivor one at a time, take the first-wins argmin, and keep
    // the non-dominated set by pairwise comparison.
    cache.set_enabled(false);
    exec::set_thread_count(1);
    const ConstraintSet set = design_constraints(context);
    struct TruthPoint {
      std::size_t flat = 0;
      double time = 0.0;
      double power = 0.0;
      double area = 0.0;
    };
    std::vector<double> truth_times(space.size(), std::numeric_limits<double>::infinity());
    std::vector<TruthPoint> truth_feasible;
    space.for_each([&](std::size_t flat, const std::vector<double>& point) {
      if (point[kAxisRob] < point[kAxisIssue]) return;
      const DesignPoint d = design_point_of(point);
      if (!set.feasible(d)) return;
      TruthPoint tp;
      tp.flat = flat;
      tp.time = simulate_design_time(context, point);
      tp.power = context.cost.power.total(d, context.chip.shared_area);
      tp.area = d.n_cores * (d.a0 + d.a1 + d.a2) + context.chip.shared_area;
      truth_times[flat] = tp.time;
      truth_feasible.push_back(tp);
    });
    if (truth_feasible.empty()) {
      report.failures.push_back("constraint set #" + std::to_string(i) +
                                " emptied the space despite the anchor; repro: " + repro);
      continue;
    }
    const std::size_t truth_best = static_cast<std::size_t>(
        std::min_element(truth_times.begin(), truth_times.end()) - truth_times.begin());

    auto truth_dominates = [](const TruthPoint& a, const TruthPoint& b) {
      if (a.time > b.time || a.power > b.power || a.area > b.area) return false;
      return a.time < b.time || a.power < b.power || a.area < b.area;
    };
    std::vector<TruthPoint> truth_frontier;
    for (std::size_t a = 0; a < truth_feasible.size(); ++a) {
      bool dominated = false;
      for (std::size_t b = 0; b < truth_feasible.size(); ++b)
        if (b != a && truth_dominates(truth_feasible[b], truth_feasible[a])) {
          dominated = true;
          break;
        }
      if (!dominated) truth_frontier.push_back(truth_feasible[a]);
    }
    std::sort(truth_frontier.begin(), truth_frontier.end(),
              [](const TruthPoint& a, const TruthPoint& b) {
                return std::tie(a.time, a.power, a.area, a.flat) <
                       std::tie(b.time, b.power, b.area, b.flat);
              });

    const auto diff_pareto = [&](const ParetoDseResult& pareto) -> std::optional<std::string> {
      if (pareto.feasible_count != truth_feasible.size())
        return "feasible_count " + std::to_string(pareto.feasible_count) + " != enumerated " +
               std::to_string(truth_feasible.size());
      if (pareto.frontier.size() != truth_frontier.size())
        return "frontier size " + std::to_string(pareto.frontier.size()) + " != enumerated " +
               std::to_string(truth_frontier.size());
      for (std::size_t p = 0; p < truth_frontier.size(); ++p) {
        const FrontierPoint& got = pareto.frontier[p];
        const TruthPoint& want = truth_frontier[p];
        if (got.flat_index != want.flat)
          return "frontier[" + std::to_string(p) + "] flat " +
                 std::to_string(got.flat_index) + " != " + std::to_string(want.flat);
        if (!bit_equal(got.time, want.time) || !bit_equal(got.power, want.power) ||
            !bit_equal(got.area, want.area))
          return "frontier[" + std::to_string(p) + "] (t,p,a) = (" + fmt(got.time) + ", " +
                 fmt(got.power) + ", " + fmt(got.area) + ") != (" + fmt(want.time) + ", " +
                 fmt(want.power) + ", " + fmt(want.area) + ")";
      }
      return std::nullopt;
    };

    // The constrained optimizer and the Pareto mode must reproduce the
    // enumeration bitwise at every thread count.
    for (const std::size_t threads : options.thread_counts) {
      exec::set_thread_count(threads);
      const FullDseResult full = run_full_dse(context, space);
      ++report.checks;
      if (full.best_index != truth_best ||
          !bit_equal(full.best_time, truth_times[truth_best])) {
        report.failures.push_back(
            "constraint set #" + std::to_string(i) + " (" + print_dse_scenario(scenario) +
            ") threads=" + std::to_string(threads) + ": constrained optimum " +
            std::to_string(full.best_index) + " (" + fmt(full.best_time) +
            ") != enumerated " + std::to_string(truth_best) + " (" +
            fmt(truth_times[truth_best]) + "); repro: " + repro);
        break;
      }
      const ParetoDseResult pareto = run_pareto_dse(context, space);
      ++report.checks;
      if (auto diff = diff_pareto(pareto)) {
        report.failures.push_back("constraint set #" + std::to_string(i) + " (" +
                                  print_dse_scenario(scenario) + ") threads=" +
                                  std::to_string(threads) + ": " + *diff +
                                  "; repro: " + repro);
        break;
      }
    }

    // Warm path: with the cache on, a second Pareto run replays every
    // simulation from the cache and must still match the enumeration.
    cache.set_enabled(true);
    cache.clear();
    exec::set_thread_count(options.thread_counts.back());
    const ParetoDseResult cold = run_pareto_dse(context, space);
    const ParetoDseResult warm = run_pareto_dse(context, space);
    ++report.checks;
    if (auto diff = diff_pareto(cold)) {
      report.failures.push_back("constraint set #" + std::to_string(i) +
                                " cold cached run diverged: " + *diff + "; repro: " + repro);
    } else if (auto warm_diff = diff_pareto(warm)) {
      report.failures.push_back("constraint set #" + std::to_string(i) +
                                " warm replay diverged: " + *warm_diff + "; repro: " + repro);
    } else if (warm.batch.cache_hits != warm.feasible_count) {
      report.failures.push_back(
          "constraint set #" + std::to_string(i) + " warm run peeled only " +
          std::to_string(warm.batch.cache_hits) + " of " +
          std::to_string(warm.feasible_count) + " points from the cache; repro: " + repro);
    }
  }
  return report;
}

OracleReport run_surrogate_oracle(const OracleOptions& options) {
  OracleReport report;
  report.family = "surrogate";
  C2B_REQUIRE(!options.thread_counts.empty(), "surrogate oracle needs thread counts");
  ExecStateGuard guard;
  exec::SimCache& cache = exec::SimCache::global();

  // Scenario set: one fixed multi-class space engineered so the pruner must
  // actually skip classes (several N values, area headroom that strands the
  // slow end of the N axis outside the band), plus random tiny scenarios.
  // The fixed case asserts classes_pruned >= 1 — without it, a pruner that
  // degenerates into "admit everything" would pass the identity checks
  // vacuously.
  struct SurrogateCase {
    DseScenario scenario;
    bool require_pruning = false;
    std::string label;
    std::string repro;
  };
  std::vector<SurrogateCase> cases;
  {
    SurrogateCase fixed;
    fixed.scenario.context.base = oracle_baseline();
    fixed.scenario.context.base.hierarchy.coherence = false;
    fixed.scenario.context.base.hierarchy.l2_geometry = {
        .size_bytes = 512 * 1024, .line_bytes = 64, .associativity = 8};
    fixed.scenario.context.workload = make_stencil_workload(96);
    fixed.scenario.context.instructions0 = 4'000;
    fixed.scenario.context.per_core_cap = 2'000;
    fixed.scenario.context.seed = 1'234;  // fixed: the space, not the draw, is the test
    fixed.scenario.context.chip.shared_area = 2.0;
    fixed.scenario.context.chip.total_area = 10.0;
    fixed.scenario.axes.a0 = {0.25, 0.5, 1.0, 2.0};
    fixed.scenario.axes.a1 = {0.125, 0.25, 0.5};
    fixed.scenario.axes.a2 = {0.25, 0.5, 1.0};
    fixed.scenario.axes.n = {1, 2, 3, 4, 6, 8, 12};
    fixed.scenario.axes.issue = {2, 4};
    fixed.scenario.axes.rob = {32, 64};
    fixed.require_pruning = true;
    fixed.label = "fixed";
    fixed.repro = repro_line(options.seed, 90'000);
    cases.push_back(std::move(fixed));
  }
  for (std::size_t i = 0; i < options.surrogate_sets; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 90'001 + i));
    SurrogateCase random;
    random.scenario = gen_dse_scenario(rng);
    random.label = "random #" + std::to_string(i);
    random.repro = repro_line(options.seed, 90'001 + i);
    cases.push_back(std::move(random));
  }

  for (const SurrogateCase& sc : cases) {
    const GridSpace space = make_design_space(sc.scenario.axes);
    DseContext exhaustive_context = sc.scenario.context;
    exhaustive_context.surrogate_enabled = false;
    DseContext surrogate_context = sc.scenario.context;
    surrogate_context.surrogate_enabled = true;

    // Ground truth: the exhaustive sweep, serial, cache off.
    cache.set_enabled(false);
    exec::set_thread_count(1);
    const FullDseResult truth_full = run_full_dse(exhaustive_context, space);
    const ParetoDseResult truth_pareto = run_pareto_dse(exhaustive_context, space);

    const auto diff_full = [&](const FullDseResult& got) -> std::optional<std::string> {
      if (got.best_index != truth_full.best_index ||
          !bit_equal(got.best_time, truth_full.best_time))
        return "optimum " + std::to_string(got.best_index) + " (" + fmt(got.best_time) +
               ") != exhaustive " + std::to_string(truth_full.best_index) + " (" +
               fmt(truth_full.best_time) + ")";
      if (got.feasible_count != truth_full.feasible_count)
        return "feasible_count " + std::to_string(got.feasible_count) + " != exhaustive " +
               std::to_string(truth_full.feasible_count);
      // Everything the surrogate did simulate must be bitwise what the
      // exhaustive sweep measured (pruned entries stay +infinity).
      for (std::size_t flat = 0; flat < got.times.size(); ++flat)
        if (std::isfinite(got.times[flat]) &&
            !bit_equal(got.times[flat], truth_full.times[flat]))
          return "times[" + std::to_string(flat) + "] " + fmt(got.times[flat]) +
                 " != exhaustive " + fmt(truth_full.times[flat]);
      return std::nullopt;
    };
    const auto diff_pareto = [&](const ParetoDseResult& got) -> std::optional<std::string> {
      if (got.feasible_count != truth_pareto.feasible_count)
        return "pareto feasible_count " + std::to_string(got.feasible_count) +
               " != exhaustive " + std::to_string(truth_pareto.feasible_count);
      if (got.frontier.size() != truth_pareto.frontier.size())
        return "frontier size " + std::to_string(got.frontier.size()) + " != exhaustive " +
               std::to_string(truth_pareto.frontier.size());
      for (std::size_t p = 0; p < truth_pareto.frontier.size(); ++p) {
        const FrontierPoint& got_p = got.frontier[p];
        const FrontierPoint& want = truth_pareto.frontier[p];
        if (got_p.flat_index != want.flat_index)
          return "frontier[" + std::to_string(p) + "] flat " +
                 std::to_string(got_p.flat_index) + " != " + std::to_string(want.flat_index);
        if (!bit_equal(got_p.time, want.time) || !bit_equal(got_p.power, want.power) ||
            !bit_equal(got_p.area, want.area))
          return "frontier[" + std::to_string(p) + "] (t,p,a) = (" + fmt(got_p.time) + ", " +
                 fmt(got_p.power) + ", " + fmt(got_p.area) + ") != (" + fmt(want.time) +
                 ", " + fmt(want.power) + ", " + fmt(want.area) + ")";
      }
      return std::nullopt;
    };
    // require_pruning applies to the plain sweep only: the 3-objective
    // Pareto frontier usually touches most trace classes (small-N points
    // hold the power/area corner), so Pareto mode legitimately admits far
    // more — identity is the contract there, class skipping is best-effort.
    const auto diff_stats = [&](const SurrogateStats& stats,
                                bool check_pruning) -> std::optional<std::string> {
      if (stats.classes_simulated + stats.classes_pruned != stats.classes_total)
        return "class accounting " + std::to_string(stats.classes_simulated) + " + " +
               std::to_string(stats.classes_pruned) +
               " != " + std::to_string(stats.classes_total);
      if (stats.points_simulated > stats.points_total)
        return "points_simulated " + std::to_string(stats.points_simulated) +
               " > points_total " + std::to_string(stats.points_total);
      if (check_pruning && sc.require_pruning && stats.classes_pruned == 0)
        return "expected at least one pruned class, every class was simulated";
      return std::nullopt;
    };
    const auto fail = [&](std::size_t threads, const std::string& what) {
      report.failures.push_back("surrogate " + sc.label + " (" +
                                print_dse_scenario(sc.scenario) + ") threads=" +
                                std::to_string(threads) + ": " + what +
                                "; repro: " + sc.repro);
    };

    // Cold cache: the pruned sweep must land on the exhaustive optimum and
    // frontier bitwise at every thread count.
    bool diverged = false;
    for (const std::size_t threads : options.thread_counts) {
      exec::set_thread_count(threads);
      const FullDseResult full = run_full_dse(surrogate_context, space);
      ++report.checks;
      if (auto diff = diff_full(full)) {
        fail(threads, *diff);
        diverged = true;
        break;
      }
      if (auto diff = diff_stats(full.surrogate, /*check_pruning=*/true)) {
        fail(threads, *diff);
        diverged = true;
        break;
      }
      const ParetoDseResult pareto = run_pareto_dse(surrogate_context, space);
      ++report.checks;
      if (auto diff = diff_pareto(pareto)) {
        fail(threads, *diff);
        diverged = true;
        break;
      }
      if (auto diff = diff_stats(pareto.surrogate, /*check_pruning=*/false)) {
        fail(threads, *diff);
        diverged = true;
        break;
      }
    }
    if (diverged) continue;

    // Warm path: cache on, a cold run then a replay — the surrogate's
    // scheduling decisions are pure functions of (bitwise-identical) sim
    // results, so both must still match the exhaustive ground truth.
    cache.set_enabled(true);
    cache.clear();
    exec::set_thread_count(options.thread_counts.back());
    const FullDseResult cold_full = run_full_dse(surrogate_context, space);
    const ParetoDseResult cold = run_pareto_dse(surrogate_context, space);
    const ParetoDseResult warm = run_pareto_dse(surrogate_context, space);
    ++report.checks;
    if (auto diff = diff_full(cold_full)) {
      fail(options.thread_counts.back(), "cold cached run diverged: " + *diff);
    } else if (auto diff = diff_pareto(cold)) {
      fail(options.thread_counts.back(), "cold cached pareto diverged: " + *diff);
    } else if (auto warm_diff = diff_pareto(warm)) {
      fail(options.thread_counts.back(), "warm replay diverged: " + *warm_diff);
    } else if (warm.surrogate.points_simulated != cold.surrogate.points_simulated ||
               warm.surrogate.classes_pruned != cold.surrogate.classes_pruned) {
      fail(options.thread_counts.back(),
           "warm replay took a different path: " +
               std::to_string(warm.surrogate.points_simulated) + " sims / " +
               std::to_string(warm.surrogate.classes_pruned) + " pruned vs cold " +
               std::to_string(cold.surrogate.points_simulated) + " / " +
               std::to_string(cold.surrogate.classes_pruned));
    }
  }
  return report;
}

OracleReport run_persistent_cache_oracle(const OracleOptions& options) {
  OracleReport report;
  report.family = "persistent_cache";
  C2B_REQUIRE(!options.thread_counts.empty(), "cache oracle needs thread counts");
  namespace fs = std::filesystem;
  ExecStateGuard guard;
  exec::SimCache& cache = exec::SimCache::global();
  // This family re-points the global cache's disk tier at scratch
  // directories; put back whatever the environment configured afterwards
  // (the only supported standing attachment).
  struct DiskTierRestore {
    ~DiskTierRestore() {
      exec::SimCache::global().detach_disk_tier();
      const char* dir = std::getenv("C2B_SIM_CACHE_DIR");
      if (dir != nullptr && dir[0] != '\0')
        exec::SimCache::global().attach_disk_tier(dir);
    }
  } restore;
  (void)restore;

  for (std::size_t i = 0; i < options.cache_sets; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, 90'000 + i));
    const DseScenario scenario = gen_dse_scenario(rng);
    const GridSpace space = make_design_space(scenario.axes);
    const std::string repro = repro_line(options.seed, 90'000 + i);
    const auto fail = [&](const std::string& what) {
      report.failures.push_back("persistent-cache (" + print_dse_scenario(scenario) +
                                "): " + what + "; repro: " + repro);
    };

    // Reference: no cache anywhere — the ground truth every cached variant
    // must reproduce bitwise.
    cache.detach_disk_tier();
    cache.set_enabled(false);
    const std::size_t ref_threads = options.thread_counts.back();
    exec::set_thread_count(ref_threads);
    const SweepFingerprint ref = fingerprint(run_full_dse(scenario.context, space));
    cache.set_enabled(true);

    std::error_code ec;
    const fs::path dir =
        fs::temp_directory_path(ec) /
        ("c2b-cache-oracle-" + std::to_string(static_cast<unsigned long>(::getpid())) +
         "-" + std::to_string(options.seed) + "-" + std::to_string(i));
    fs::remove_all(dir, ec);

    // Cold fill (first pass over the empty directory), then warm restarts:
    // drop the memory tier and re-attach the same directory — the
    // process-restart emulation — once per thread count.
    bool diverged = false;
    for (const std::size_t threads : options.thread_counts) {
      cache.detach_disk_tier();
      cache.clear();
      if (!cache.attach_disk_tier(dir.string())) {
        fail("attach_disk_tier('" + dir.string() + "') failed");
        diverged = true;
        break;
      }
      exec::set_thread_count(threads);
      const bool cold = cache.stats().disk_entries == 0;
      const SweepFingerprint fp = fingerprint(run_full_dse(scenario.context, space));
      ++report.checks;
      if (auto diff = compare_fingerprints(ref, ref_threads, fp, threads)) {
        fail(std::string(cold ? "cold" : "warm-restart") + " disk-backed run diverged: " +
             *diff);
        diverged = true;
        break;
      }
      cache.flush_disk();
      if (!cold && cache.stats().disk_hits == 0) {
        fail("warm restart at threads=" + std::to_string(threads) +
             " never hit the disk tier");
        diverged = true;
        break;
      }
    }

    // Warm in-memory replay on top of the populated tiers.
    if (!diverged) {
      const SweepFingerprint warm = fingerprint(run_full_dse(scenario.context, space));
      ++report.checks;
      if (auto diff = compare_fingerprints(ref, ref_threads, warm, ref_threads))
        fail("warm in-memory replay diverged: " + *diff);
    }

    // Corruption: flip a byte in the middle of every non-empty segment and
    // shear one tail mid-record. Re-attaching must count the damage as
    // drops and the next sweep must degrade to a (partially) cold run with
    // bitwise-identical results — never an error.
    if (!diverged) {
      cache.detach_disk_tier();
      bool mutated = false;
      for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec)) continue;
        const std::uintmax_t size = entry.file_size(ec);
        if (size == 0) continue;
        std::FILE* file = std::fopen(entry.path().c_str(), "r+b");
        if (file == nullptr) continue;
        const long pos = static_cast<long>(size / 2);
        std::fseek(file, pos, SEEK_SET);
        const int byte = std::fgetc(file);
        std::fseek(file, pos, SEEK_SET);
        std::fputc(byte == EOF ? 0xff : (byte ^ 0x5a), file);
        std::fclose(file);
        if (!mutated && size > 4) fs::resize_file(entry.path(), size - 3, ec);
        mutated = true;
      }
      cache.clear();
      if (!cache.attach_disk_tier(dir.string())) {
        fail("re-attach of corrupted directory failed (must degrade, not error)");
      } else {
        ++report.checks;
        if (mutated && cache.stats().disk_drops == 0)
          fail("corrupted records were not counted as drops");
        const SweepFingerprint fp = fingerprint(run_full_dse(scenario.context, space));
        ++report.checks;
        if (auto diff = compare_fingerprints(ref, ref_threads, fp, ref_threads))
          fail("corrupted cache directory changed results: " + *diff);
      }
    }

    cache.detach_disk_tier();
    cache.clear();
    fs::remove_all(dir, ec);
  }
  return report;
}

std::vector<OracleReport> run_all_oracles(const OracleOptions& options) {
  return {run_analytic_vs_sim_oracle(options),   run_determinism_oracle(options),
          run_invariant_oracle(options),         run_kernel_equivalence_oracle(options),
          run_batch_equivalence_oracle(options), run_simd_equivalence_oracle(options),
          run_constraint_oracle(options),        run_surrogate_oracle(options),
          run_persistent_cache_oracle(options)};
}

bool write_tolerance_bands_json(const std::string& path,
                                const std::vector<ToleranceBand>& bands) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "[\n";
  for (std::size_t i = 0; i < bands.size(); ++i) {
    const ToleranceBand& b = bands[i];
    out << "  {\"workload\": \"" << b.workload << "\", \"samples\": " << b.samples
        << ", \"mean_abs_rel_error\": " << std::setprecision(17) << b.mean_abs_rel_error
        << ", \"max_abs_rel_error\": " << b.max_abs_rel_error
        << ", \"mean_tolerance\": " << b.mean_tolerance
        << ", \"max_tolerance\": " << b.max_tolerance
        << ", \"passed\": " << (b.passed ? "true" : "false") << "}"
        << (i + 1 < bands.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return static_cast<bool>(out);
}

}  // namespace c2b::check
