#include "c2b/check/property.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "c2b/common/log.h"

namespace c2b::check {
namespace {

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

/// Counterexample file names must be stable and filesystem-safe.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_') c = '_';
  return out;
}

}  // namespace

CheckOptions options_from_env(CheckOptions base) {
  if (const auto seed = env_u64("C2B_CHECK_SEED")) base.seed = *seed;
  if (const auto cases = env_u64("C2B_CHECK_CASES"))
    base.cases = static_cast<std::size_t>(*cases);
  if (const auto only = env_u64("C2B_CHECK_CASE"))
    base.only_case = static_cast<std::size_t>(*only);
  if (const char* dir = std::getenv("C2B_CHECK_CORPUS"); dir != nullptr && *dir != '\0')
    base.corpus_dir = dir;
  return base;
}

std::string repro_line(std::uint64_t seed, std::size_t case_index) {
  return "C2B_CHECK_SEED=" + std::to_string(seed) +
         " C2B_CHECK_CASE=" + std::to_string(case_index);
}

std::string CheckResult::summary() const {
  if (passed)
    return "PASS " + property_name + " (" + std::to_string(cases_run) + " cases)";
  std::string out = "FAIL " + property_name + " — " +
                    (counterexample ? counterexample->message : std::string("?")) +
                    "\n  counterexample (" +
                    std::to_string(counterexample ? counterexample->shrink_steps : 0) +
                    " shrink steps): " +
                    (counterexample ? counterexample->value : std::string("?")) +
                    "\n  repro: " + repro;
  if (!corpus_path.empty()) out += "\n  corpus: " + corpus_path;
  return out;
}

std::string write_corpus_entry(const std::string& corpus_dir, const std::string& property_name,
                               const Counterexample& counterexample) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(corpus_dir, ec);
  if (ec) {
    C2B_LOG(LogLevel::kWarn, "check")
        << "cannot create corpus dir '" << corpus_dir << "': " << ec.message();
    return {};
  }
  const std::string path = (fs::path(corpus_dir) /
                            (sanitize(property_name) + "-seed" +
                             std::to_string(counterexample.seed) + "-case" +
                             std::to_string(counterexample.case_index) + ".txt"))
                               .string();
  std::ofstream out(path);
  if (!out) {
    C2B_LOG(LogLevel::kWarn, "check") << "cannot write corpus entry '" << path << "'";
    return {};
  }
  out << "property: " << property_name << "\n"
      << "repro: " << repro_line(counterexample.seed, counterexample.case_index) << "\n"
      << "shrink_steps: " << counterexample.shrink_steps << "\n"
      << "message: " << counterexample.message << "\n"
      << "counterexample:\n"
      << counterexample.value << "\n";
  return out ? path : std::string{};
}

std::vector<std::uint64_t> shrink_integer(std::uint64_t value) {
  std::vector<std::uint64_t> out;
  if (value == 0) return out;
  out.push_back(0);
  if (value > 1) out.push_back(value / 2);
  out.push_back(value - 1);
  return out;
}

std::vector<double> shrink_double(double value, double floor) {
  std::vector<double> out;
  if (!(value > floor)) return out;
  out.push_back(floor);
  const double mid = floor + (value - floor) / 2.0;
  if (mid > floor && mid < value) out.push_back(mid);
  const double rounded = std::floor(value);
  if (rounded > floor && rounded < value) out.push_back(rounded);
  return out;
}

}  // namespace c2b::check
