#include "c2b/check/generators.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "c2b/common/assert.h"

namespace c2b::check {
namespace {

/// 2^k for k uniform in [lo, hi].
std::uint64_t pow2_between(Rng& rng, unsigned lo, unsigned hi) {
  return std::uint64_t{1} << rng.uniform_int(lo, hi);
}

template <typename T>
T pick(Rng& rng, std::initializer_list<T> values) {
  const auto index = static_cast<std::size_t>(rng.uniform_below(values.size()));
  return *(values.begin() + static_cast<std::ptrdiff_t>(index));
}

}  // namespace

sim::SystemConfig gen_system_config(Rng& rng) {
  sim::SystemConfig config;
  config.core.issue_width = static_cast<std::uint32_t>(pick(rng, {1, 2, 4, 8}));
  config.core.rob_size = config.core.issue_width *
                         static_cast<std::uint32_t>(rng.uniform_int(1, 32));
  config.core.functional_units = static_cast<std::uint32_t>(rng.uniform_int(1, 8));

  sim::HierarchyConfig& h = config.hierarchy;
  h.cores = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  const std::uint32_t line = 64;
  h.l1_geometry.line_bytes = line;
  h.l1_geometry.associativity = static_cast<std::uint32_t>(pick(rng, {2, 4, 8}));
  h.l1_geometry.size_bytes = pow2_between(rng, 13, 16);  // 8-64 KiB
  h.l2_geometry.line_bytes = line;
  h.l2_geometry.associativity = static_cast<std::uint32_t>(pick(rng, {4, 8, 16}));
  h.l2_geometry.size_bytes = pow2_between(rng, 17, 20);  // 128 KiB - 1 MiB
  h.l1_hit_latency = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  h.l2_hit_latency = static_cast<std::uint32_t>(rng.uniform_int(8, 18));
  h.l1_banks = static_cast<std::uint32_t>(pick(rng, {1, 2, 4}));
  h.l1_ports_per_bank = static_cast<std::uint32_t>(rng.uniform_int(1, 2));
  h.l1_mshr_entries = static_cast<std::uint32_t>(rng.uniform_int(2, 16));
  h.l2_mshr_entries = static_cast<std::uint32_t>(rng.uniform_int(8, 32));
  config.validate();
  return config;
}

WorkloadSpec gen_workload_spec(Rng& rng) {
  // Catalog factories at deliberately small sizes: the oracles simulate
  // thousands of short windows, so working sets stay cache-scale.
  switch (rng.uniform_below(8)) {
    case 0:
      return make_stencil_workload(static_cast<std::size_t>(rng.uniform_int(48, 128)));
    case 1: {
      const std::size_t tile = pick(rng, {std::size_t{4}, std::size_t{8}});
      const std::size_t dim = tile * static_cast<std::size_t>(rng.uniform_int(3, 6));
      return make_tmm_workload(dim, tile);
    }
    case 2:
      return make_reduction_workload(static_cast<std::size_t>(pow2_between(rng, 10, 13)));
    case 3:
      return make_pointer_chase_workload(static_cast<std::size_t>(pow2_between(rng, 8, 11)));
    case 4:
      return make_gups_workload(static_cast<std::size_t>(pow2_between(rng, 8, 11)));
    case 5:
      return make_band_sparse_workload(static_cast<std::size_t>(pow2_between(rng, 9, 12)),
                                       static_cast<std::size_t>(rng.uniform_int(4, 16)));
    case 6: {
      const std::size_t block = pick(rng, {std::size_t{8}, std::size_t{16}});
      return make_transpose_workload(block * static_cast<std::size_t>(rng.uniform_int(4, 8)),
                                     block);
    }
    default:
      return make_frontier_workload(static_cast<std::size_t>(pow2_between(rng, 8, 11)));
  }
}

AreaSplit gen_area_split(Rng& rng, const ChipConstraints& chip, double budget) {
  const double min_total = chip.min_core_area + chip.min_l1_area + chip.min_l2_area;
  C2B_REQUIRE(budget >= min_total, "budget below the chip's minimum areas");
  // Dirichlet-ish: split the slack above the minimums by three uniform
  // weights, then spend a random fraction of it (total <= budget).
  const double slack = (budget - min_total) * rng.uniform(0.0, 1.0);
  double w0 = rng.uniform(0.05, 1.0);
  double w1 = rng.uniform(0.05, 1.0);
  double w2 = rng.uniform(0.05, 1.0);
  const double w = w0 + w1 + w2;
  AreaSplit split;
  split.a0 = chip.min_core_area + slack * w0 / w;
  split.a1 = chip.min_l1_area + slack * w1 / w;
  split.a2 = chip.min_l2_area + slack * w2 / w;
  return split;
}

Trace gen_trace(Rng& rng, std::size_t max_records) {
  Trace trace;
  const auto name_len = static_cast<std::size_t>(rng.uniform_below(24));
  for (std::size_t i = 0; i < name_len; ++i)
    trace.name.push_back(static_cast<char>('a' + rng.uniform_below(26)));
  const auto count = static_cast<std::size_t>(rng.uniform_below(max_records + 1));
  trace.records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    TraceRecord record;
    record.kind = static_cast<InstrKind>(rng.uniform_below(3));
    if (record.kind != InstrKind::kCompute) {
      record.address = rng.next();
      record.depends_on_prev_mem = rng.bernoulli(0.2);
    }
    trace.records.push_back(record);
  }
  return trace;
}

ScalingFunction gen_scaling_function(Rng& rng) {
  switch (rng.uniform_below(4)) {
    case 0:
      return ScalingFunction::fixed();
    case 1:
      return ScalingFunction::linear();
    case 2:
      return ScalingFunction::power(rng.uniform(0.0, 2.0));
    default:
      return ScalingFunction::fft_like(rng.uniform(4.0, 64.0));
  }
}

AppProfile gen_app_profile(Rng& rng) {
  AppProfile app;
  app.ic0 = rng.uniform(1e4, 1e7);
  app.f_mem = rng.uniform(0.05, 0.6);
  app.f_seq = rng.uniform(0.0, 0.3);
  app.overlap_ratio = rng.uniform(0.0, 0.9);
  app.working_set_lines0 = static_cast<double>(pow2_between(rng, 10, 16));
  app.g = gen_scaling_function(rng);
  app.hit_concurrency = rng.uniform(1.0, 8.0);
  app.miss_concurrency = rng.uniform(1.0, 16.0);
  app.pure_miss_fraction = rng.uniform(0.1, 1.0);
  app.pure_penalty_fraction = rng.uniform(0.1, 1.0);
  app.validate();
  return app;
}

MachineProfile gen_machine_profile(Rng& rng) {
  MachineProfile machine;
  machine.pollack.k0 = rng.uniform(0.5, 2.0);
  machine.pollack.phi0 = rng.uniform(0.05, 0.5);
  machine.l1_hit_time = rng.uniform(1.0, 4.0);
  machine.l2_latency = rng.uniform(8.0, 24.0);
  machine.memory_latency = machine.l2_latency + rng.uniform(60.0, 200.0);
  machine.l1_miss = MissModel{.alpha = rng.uniform(0.01, 0.2),
                              .beta = rng.uniform(0.2, 0.8),
                              .mr_cap = 0.9,
                              .mr_floor = 1e-4};
  machine.l2_miss = MissModel{.alpha = rng.uniform(0.1, 0.8),
                              .beta = rng.uniform(0.2, 0.8),
                              .mr_cap = 1.0,
                              .mr_floor = 1e-3};
  machine.chip.total_area = rng.uniform(32.0, 512.0);
  machine.chip.shared_area = rng.uniform(1.0, machine.chip.total_area / 8.0);
  machine.memory_contention = rng.uniform(0.0, 0.1);
  machine.validate();
  return machine;
}

DseScenario gen_dse_scenario(Rng& rng) {
  DseScenario scenario;
  scenario.context.base = gen_system_config(rng);
  // The DSE mapping overrides issue/rob/cores/cache sizes per design point;
  // keep the base template single-core and coherence-free so generated
  // per-design configs always validate.
  scenario.context.base.hierarchy.coherence = false;
  scenario.context.workload = gen_workload_spec(rng);
  scenario.context.instructions0 = static_cast<std::uint64_t>(rng.uniform_int(2000, 6000));
  scenario.context.per_core_cap = static_cast<std::uint64_t>(rng.uniform_int(1000, 3000));
  scenario.context.seed = rng.next();

  // 1-2 values per axis, anchored so the minimum combination always fits:
  // n_min * (a0_min + a1_min + a2_min) + shared <= total by construction.
  auto axis = [&](double lo, double hi) {
    std::vector<double> values{lo};
    if (rng.bernoulli(0.5)) values.push_back(hi);
    return values;
  };
  scenario.axes.a0 = axis(1.0, pick(rng, {2.0, 4.0}));
  scenario.axes.a1 = axis(0.5, 1.0);
  scenario.axes.a2 = axis(1.0, 2.0);
  scenario.axes.n = axis(1, 2);
  scenario.axes.issue = axis(2, 4);
  scenario.axes.rob = axis(32, 64);
  scenario.context.chip.shared_area = 1.0;
  scenario.context.chip.total_area =
      scenario.context.chip.shared_area + 2.5 * rng.uniform(1.2, 2.5);
  C2B_ASSERT(design_feasible(scenario.context,
                             {scenario.axes.a0[0], scenario.axes.a1[0], scenario.axes.a2[0],
                              scenario.axes.n[0], scenario.axes.issue[0],
                              scenario.axes.rob[0]}),
             "generated DSE scenario must contain a feasible design");
  return scenario;
}

std::vector<Trace> shrink_trace(const Trace& trace) {
  std::vector<Trace> out;
  const std::size_t n = trace.records.size();
  auto with_records = [&](std::vector<TraceRecord> records) {
    Trace smaller;
    smaller.name = trace.name;
    smaller.records = std::move(records);
    return smaller;
  };
  if (n > 0) {
    out.push_back(with_records({trace.records.begin(),
                                trace.records.begin() + static_cast<std::ptrdiff_t>(n / 2)}));
    out.push_back(with_records({trace.records.begin() + static_cast<std::ptrdiff_t>(n / 2),
                                trace.records.end()}));
    if (n > 1) {
      std::vector<TraceRecord> drop_front(trace.records.begin() + 1, trace.records.end());
      out.push_back(with_records(std::move(drop_front)));
      std::vector<TraceRecord> drop_back(trace.records.begin(), trace.records.end() - 1);
      out.push_back(with_records(std::move(drop_back)));
    }
    // Zero the addresses (often irrelevant to a structural failure).
    Trace zeroed = trace;
    bool changed = false;
    for (TraceRecord& record : zeroed.records)
      if (record.address != 0) {
        record.address = 0;
        changed = true;
      }
    if (changed) out.push_back(std::move(zeroed));
  }
  if (!trace.name.empty()) {
    Trace unnamed = trace;
    unnamed.name.clear();
    out.push_back(std::move(unnamed));
  }
  return out;
}

std::string print_trace(const Trace& trace) {
  std::ostringstream os;
  os << "Trace{name=\"" << trace.name << "\", records=" << trace.records.size();
  const std::size_t shown = std::min<std::size_t>(trace.records.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    const TraceRecord& r = trace.records[i];
    os << (i == 0 ? ", [" : " ") << static_cast<int>(r.kind) << ':' << r.address
       << (r.depends_on_prev_mem ? "!" : "");
  }
  if (shown > 0) os << (trace.records.size() > shown ? " ...]" : "]");
  os << '}';
  return os.str();
}

std::string print_area_split(const AreaSplit& split) {
  std::ostringstream os;
  os << "AreaSplit{a0=" << split.a0 << ", a1=" << split.a1 << ", a2=" << split.a2 << '}';
  return os.str();
}

std::string print_system_config(const sim::SystemConfig& config) {
  std::ostringstream os;
  os << "SystemConfig{cores=" << config.hierarchy.cores
     << ", issue=" << config.core.issue_width << ", rob=" << config.core.rob_size
     << ", fu=" << config.core.functional_units
     << ", l1=" << config.hierarchy.l1_geometry.size_bytes / 1024 << "KiB/"
     << config.hierarchy.l1_geometry.associativity << "w"
     << ", l2=" << config.hierarchy.l2_geometry.size_bytes / 1024 << "KiB/"
     << config.hierarchy.l2_geometry.associativity << "w}";
  return os.str();
}

std::string print_dse_scenario(const DseScenario& scenario) {
  auto axis = [](const std::vector<double>& values) {
    std::string out = "{";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(values[i]);
    }
    return out + "}";
  };
  std::ostringstream os;
  os << "DseScenario{workload=" << scenario.context.workload.name
     << ", ic0=" << scenario.context.instructions0
     << ", cap=" << scenario.context.per_core_cap << ", seed=" << scenario.context.seed
     << ", area=" << scenario.context.chip.total_area << ", a0=" << axis(scenario.axes.a0)
     << ", a1=" << axis(scenario.axes.a1) << ", a2=" << axis(scenario.axes.a2)
     << ", n=" << axis(scenario.axes.n) << ", issue=" << axis(scenario.axes.issue)
     << ", rob=" << axis(scenario.axes.rob) << '}';
  return os.str();
}

std::string print_app_profile(const AppProfile& app) {
  std::ostringstream os;
  os << "AppProfile{f_mem=" << app.f_mem << ", f_seq=" << app.f_seq
     << ", overlap=" << app.overlap_ratio << ", ws0=" << app.working_set_lines0
     << ", g=" << app.g.description() << ", C_H=" << app.hit_concurrency
     << ", C_M=" << app.miss_concurrency << ", pMR/MR=" << app.pure_miss_fraction
     << ", pAMP/AMP=" << app.pure_penalty_fraction << '}';
  return os.str();
}

}  // namespace c2b::check
