#include "c2b/laws/speedup.h"

#include <cmath>

#include "c2b/common/assert.h"

namespace c2b {
namespace {

void check_fraction(double f_seq) {
  C2B_REQUIRE(f_seq >= 0.0 && f_seq <= 1.0, "sequential fraction in [0,1]");
}

}  // namespace

double amdahl_speedup(double f_seq, double n) {
  check_fraction(f_seq);
  C2B_REQUIRE(n >= 1.0, "N >= 1");
  return 1.0 / (f_seq + (1.0 - f_seq) / n);
}

double gustafson_speedup(double f_seq, double n) {
  check_fraction(f_seq);
  C2B_REQUIRE(n >= 1.0, "N >= 1");
  return f_seq + (1.0 - f_seq) * n;
}

double sunni_speedup(double f_seq, double g_of_n, double n) {
  check_fraction(f_seq);
  C2B_REQUIRE(n >= 1.0, "N >= 1");
  C2B_REQUIRE(g_of_n > 0.0, "g(N) must be positive");
  const double numerator = f_seq + (1.0 - f_seq) * g_of_n;
  const double denominator = f_seq + (1.0 - f_seq) * g_of_n / n;
  return numerator / denominator;
}

double sunni_speedup(double f_seq, const ScalingFunction& g, double n) {
  return sunni_speedup(f_seq, g(n), n);
}

double scaled_problem_size(double base_problem_size, const ScalingFunction& g, double n) {
  C2B_REQUIRE(base_problem_size > 0.0, "problem size must be positive");
  return base_problem_size * g(n);
}

double PowerLawWorkload::work_for_memory(double memory) const {
  C2B_REQUIRE(memory > 0.0, "memory must be positive");
  return coefficient * std::pow(memory, exponent);
}

double PowerLawWorkload::memory_for_work(double work) const {
  C2B_REQUIRE(work > 0.0, "work must be positive");
  return std::pow(work / coefficient, 1.0 / exponent);
}

double PowerLawWorkload::g(double n) const {
  C2B_REQUIRE(n >= 1.0, "N >= 1");
  return std::pow(n, exponent);
}

PowerLawWorkload PowerLawWorkload::dense_matrix_multiply() {
  // W = 2n^3 and M = 3n^2  =>  n = sqrt(M/3)  =>  W = 2 (M/3)^{3/2}.
  return {.coefficient = 2.0 / std::pow(3.0, 1.5), .exponent = 1.5};
}

}  // namespace c2b
