#include "c2b/laws/scaling.h"

#include <cmath>
#include <sstream>

#include "c2b/common/assert.h"

namespace c2b {

ScalingFunction::ScalingFunction(std::function<double(double)> fn, std::string description,
                                 bool capacity_driven)
    : fn_(std::move(fn)), description_(std::move(description)), capacity_driven_(capacity_driven) {}

ScalingFunction ScalingFunction::fixed() {
  return ScalingFunction([](double) { return 1.0; }, "g(N) = 1 (fixed size, Amdahl)",
                         /*capacity_driven=*/false);
}

ScalingFunction ScalingFunction::linear() {
  return ScalingFunction([](double n) { return n; }, "g(N) = N (memory-linear, Gustafson)");
}

ScalingFunction ScalingFunction::power(double exponent) {
  C2B_REQUIRE(exponent >= 0.0, "scaling exponent must be non-negative");
  std::ostringstream os;
  os << "g(N) = N^" << exponent;
  return ScalingFunction([exponent](double n) { return std::pow(n, exponent); }, os.str(),
                         /*capacity_driven=*/exponent > 0.0);
}

ScalingFunction ScalingFunction::fft_like(double base_memory) {
  C2B_REQUIRE(base_memory > 1.0, "FFT-like scaling needs base memory > 1");
  const double log_m = std::log2(base_memory);
  std::ostringstream os;
  os << "g(N) = N(log2 N + log2 M)/log2 M, M = " << base_memory;
  return ScalingFunction(
      [log_m](double n) { return n * (std::log2(n) + log_m) / log_m; }, os.str());
}

ScalingFunction ScalingFunction::from_complexity(double computation_exponent,
                                                 double memory_exponent) {
  C2B_REQUIRE(memory_exponent > 0.0, "memory exponent must be positive");
  C2B_REQUIRE(computation_exponent > 0.0, "computation exponent must be positive");
  return power(computation_exponent / memory_exponent);
}

ScalingFunction ScalingFunction::custom(std::function<double(double)> fn, std::string description,
                                        bool capacity_driven) {
  C2B_REQUIRE(static_cast<bool>(fn), "custom scaling function must be callable");
  return ScalingFunction(std::move(fn), std::move(description), capacity_driven);
}

double ScalingFunction::operator()(double n) const {
  C2B_REQUIRE(n >= 1.0, "g(N) defined for N >= 1");
  return fn_(n);
}

double ScalingFunction::memory_scale(double n) const {
  C2B_REQUIRE(n >= 1.0, "memory scale defined for N >= 1");
  return capacity_driven_ ? n : 1.0;
}

double ScalingFunction::growth_exponent(double n) const {
  C2B_REQUIRE(n >= 1.0, "growth exponent defined for N >= 1");
  // d log g / d log N via central differences in log space. At the left
  // boundary fall back to a forward difference.
  const double h = 0.05;
  const double log_n = std::log(std::max(n, 1.0 + 1e-9));
  const double hi = std::exp(log_n + h);
  const double lo_raw = std::exp(log_n - h);
  const double lo = std::max(lo_raw, 1.0);
  const double g_hi = fn_(hi);
  const double g_lo = fn_(lo);
  C2B_ASSERT(g_hi > 0.0 && g_lo > 0.0, "g(N) must be positive");
  return (std::log(g_hi) - std::log(g_lo)) / (std::log(hi) - std::log(lo));
}

bool ScalingFunction::at_least_linear(double n_max) const {
  // Sample the growth exponent across the range; the paper's case split is
  // asymptotic, so we require linear-or-faster growth throughout.
  for (double n = 2.0; n <= n_max; n *= 2.0) {
    if (growth_exponent(n) < 1.0 - 1e-6) return false;
  }
  return true;
}

std::vector<Table1Entry> table1_entries() {
  std::vector<Table1Entry> rows;
  rows.push_back({"TMM (tiled matrix multiplication)", "N^3", "N^2", "N^{3/2}",
                  ScalingFunction::from_complexity(3.0, 2.0)});
  rows.push_back({"Band sparse matrix multiplication", "N", "N", "N", ScalingFunction::linear()});
  rows.push_back({"Stencil", "N", "N", "N", ScalingFunction::linear()});
  // FFT at the paper's normalization M = N: g(N) = N(log2 N + log2 N)/log2 N
  // = 2N, pinned to g(1) = 1 so the Sun-Ni boundary condition holds.
  rows.push_back({"FFT (fast Fourier transform)", "N", "N log2 N", "2N",
                  ScalingFunction::custom(
                      [](double n) { return n <= 1.0 ? 1.0 : 2.0 * n; },
                      "g(N) = 2N (FFT at M = N; g(1) pinned to 1)")});
  return rows;
}

}  // namespace c2b
