#include "c2b/common/table.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "c2b/common/assert.h"
#include "c2b/common/log.h"

namespace c2b {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  C2B_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<Cell> cells) {
  C2B_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::format_cell(const Cell& cell) const {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  if (const auto* integer = std::get_if<std::int64_t>(&cell)) return std::to_string(*integer);
  std::ostringstream os;
  os << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(widths[c])) << std::left << cells[c] << " |";
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rendered) line(row);
  rule();
  return os.str();
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(format_cell(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

bool Table::write_csv(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path file(path);
  if (file.has_parent_path()) std::filesystem::create_directories(file.parent_path(), ec);
  std::ofstream out(file);
  if (!out) {
    C2B_LOG(LogLevel::kWarn, "table") << "cannot write CSV to " << path;
    return false;
  }
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace c2b
