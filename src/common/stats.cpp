#include "c2b/common/stats.h"

#include <algorithm>
#include <cmath>

#include "c2b/common/assert.h"

namespace c2b {

void RunningStats::add(double x) noexcept {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geomean_of(const std::vector<double>& xs) {
  C2B_REQUIRE(!xs.empty(), "geomean of empty vector");
  double log_sum = 0.0;
  for (const double x : xs) {
    C2B_REQUIRE(x > 0.0, "geomean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double percentile_of(std::vector<double> xs, double p) {
  C2B_REQUIRE(!xs.empty(), "percentile of empty vector");
  C2B_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double mape(const std::vector<double>& predicted, const std::vector<double>& truth, double eps) {
  C2B_REQUIRE(predicted.size() == truth.size(), "mape requires equal-length vectors");
  double sum = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) < eps) continue;
    sum += std::abs(predicted[i] - truth[i]) / std::abs(truth[i]);
    ++used;
  }
  return used == 0 ? 0.0 : sum / static_cast<double>(used);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  C2B_REQUIRE(hi > lo, "histogram range must be non-empty");
  C2B_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x, std::uint64_t weight) noexcept {
  std::size_t bin = 0;
  if (x >= hi_) {
    bin = counts_.size() - 1;
  } else if (x > lo_) {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;
  }
  counts_[bin] += weight;
  total_ += weight;
}

std::uint64_t Histogram::bin_count(std::size_t bin) const {
  C2B_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  C2B_REQUIRE(bin < counts_.size(), "histogram bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::quantile(double fraction) const {
  C2B_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "quantile fraction in [0,1]");
  if (total_ == 0) return lo_;
  const double target = fraction * static_cast<double>(total_);
  double running = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = running + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          counts_[i] == 0 ? 0.0 : (target - running) / static_cast<double>(counts_[i]);
      return bin_low(i) + within * width_;
    }
    running = next;
  }
  return hi_;
}

}  // namespace c2b
