#include "c2b/common/rng.h"

#include <cmath>
#include <numbers>

namespace c2b {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t Rng::derive_stream_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Two chained splitmix64 steps: the first scrambles the base seed, the
  // second advances the scrambled state by the stream index. Collisions
  // would need the avalanche-mixed seeds of two bases to differ by an
  // exact multiple of the golden gamma — nothing like the systematic
  // collisions of linear schemes (seed + k * stream).
  std::uint64_t state = seed;
  const std::uint64_t mixed_seed = splitmix64(state);
  state = mixed_seed + stream * 0x9E3779B97F4A7C15ull;
  return splitmix64(state);
}

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::size_t Rng::zipf(std::size_t n, double s) noexcept {
  if (n <= 1) return 0;
  // Inverse-CDF sampling via rejection against the continuous bounding
  // distribution (Devroye). Exact for the discrete Zipf over [1, n].
  const double nd = static_cast<double>(n);
  if (s == 1.0) {
    // Harmonic special case: invert the log CDF.
    const double u = uniform();
    const double k = std::exp(u * std::log(nd + 1.0));
    const auto idx = static_cast<std::size_t>(k) - 1;
    return idx >= n ? n - 1 : idx;
  }
  const double one_minus_s = 1.0 - s;
  for (;;) {
    const double u = uniform();
    // Inverse of the continuous CDF F(x) = (x^{1-s} - 1) / ((n+1)^{1-s} - 1).
    const double top = std::pow(nd + 1.0, one_minus_s);
    const double x = std::pow(u * (top - 1.0) + 1.0, 1.0 / one_minus_s);
    const auto k = static_cast<std::size_t>(x);
    if (k >= 1 && k <= n) {
      // Accept with ratio of discrete pmf to continuous envelope; the
      // envelope is tight so acceptance is ~1 for s in (0, 4].
      const double ratio = std::pow(static_cast<double>(k) / x, s);
      if (uniform() <= ratio) return k - 1;
    }
  }
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

}  // namespace c2b
