#include "c2b/common/math_util.h"

#include "c2b/common/assert.h"

namespace c2b {

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  C2B_REQUIRE(count >= 2, "linspace needs at least 2 points");
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t count) {
  C2B_REQUIRE(lo > 0.0 && hi > 0.0, "logspace requires positive bounds");
  auto logs = linspace(std::log(lo), std::log(hi), count);
  for (double& x : logs) x = std::exp(x);
  logs.back() = hi;
  return logs;
}

std::vector<int> pow2_sweep(int lo, int hi) {
  C2B_REQUIRE(lo >= 1 && hi >= lo, "pow2_sweep requires 1 <= lo <= hi");
  std::vector<int> out;
  for (long long v = lo; v <= hi; v *= 2) out.push_back(static_cast<int>(v));
  if (out.empty() || out.back() != hi) out.push_back(hi);
  return out;
}

}  // namespace c2b
