#include "c2b/common/log.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string>

namespace c2b {
namespace {

std::mutex g_io_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

/// Initial threshold from the C2B_LOG_LEVEL environment variable
/// (DEBUG|INFO|WARN|ERROR|OFF, case-sensitive); unset or unrecognized
/// values keep the kWarn default.
LogLevel initial_threshold() noexcept {
  const char* env = std::getenv("C2B_LOG_LEVEL");
  if (env != nullptr) {
    for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                                 LogLevel::kError, LogLevel::kOff}) {
      if (std::strcmp(env, level_name(level)) == 0) return level;
    }
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel>& threshold_slot() noexcept {
  static std::atomic<LogLevel> threshold{initial_threshold()};
  return threshold;
}

/// Small sequential id per logging thread (readable, unlike the hash of
/// std::thread::id).
std::uint32_t this_thread_tag() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

}  // namespace

LogLevel log_threshold() noexcept {
  return threshold_slot().load(std::memory_order_relaxed);
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_slot().store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_threshold())) return;

  // ISO-8601 UTC timestamp, e.g. 2026-08-05T12:34:56Z.
  char stamp[32] = "0000-00-00T00:00:00Z";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
#else
  if (gmtime_r(&now, &utc) != nullptr)
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
#endif

  const std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "%s [%s] t%u %.*s: %.*s\n", stamp, level_name(level),
               this_thread_tag(), static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace c2b
