#include "c2b/common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace c2b {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_threshold())) return;
  const std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace c2b
