#include "c2b/metrics/amat.h"

namespace c2b {

double amat(const AmatParams& p) {
  C2B_REQUIRE(p.hit_time > 0.0, "hit time must be positive");
  C2B_REQUIRE(p.miss_rate >= 0.0 && p.miss_rate <= 1.0, "miss rate in [0,1]");
  C2B_REQUIRE(p.miss_penalty >= 0.0, "miss penalty must be non-negative");
  return p.hit_time + p.miss_rate * p.miss_penalty;
}

double camat(const CamatParams& p) {
  C2B_REQUIRE(p.hit_time > 0.0, "hit time must be positive");
  C2B_REQUIRE(p.hit_concurrency >= 1.0, "hit concurrency must be >= 1");
  C2B_REQUIRE(p.miss_concurrency >= 1.0, "miss concurrency must be >= 1");
  C2B_REQUIRE(p.pure_miss_rate >= 0.0 && p.pure_miss_rate <= 1.0, "pure miss rate in [0,1]");
  C2B_REQUIRE(p.pure_miss_penalty >= 0.0, "pure miss penalty must be non-negative");
  return p.hit_time / p.hit_concurrency +
         p.pure_miss_rate * p.pure_miss_penalty / p.miss_concurrency;
}

double concurrency(const AmatParams& a, const CamatParams& c) {
  const double denominator = camat(c);
  C2B_REQUIRE(denominator > 0.0, "C-AMAT must be positive");
  return amat(a) / denominator;
}

CamatParams camat_from_sequential(const AmatParams& p) {
  CamatParams c;
  c.hit_time = p.hit_time;
  c.hit_concurrency = 1.0;
  c.pure_miss_rate = p.miss_rate;
  c.pure_miss_penalty = p.miss_penalty;
  c.miss_concurrency = 1.0;
  return c;
}

double data_stall_amat(double f_mem, double amat_cycles) {
  C2B_REQUIRE(f_mem >= 0.0 && f_mem <= 1.0, "f_mem in [0,1]");
  C2B_REQUIRE(amat_cycles >= 0.0, "AMAT must be non-negative");
  return f_mem * amat_cycles;
}

double data_stall_camat(double f_mem, double camat_cycles, double overlap_ratio_cm) {
  C2B_REQUIRE(f_mem >= 0.0 && f_mem <= 1.0, "f_mem in [0,1]");
  C2B_REQUIRE(camat_cycles >= 0.0, "C-AMAT must be non-negative");
  C2B_REQUIRE(overlap_ratio_cm >= 0.0 && overlap_ratio_cm <= 1.0, "overlap ratio in [0,1]");
  return f_mem * camat_cycles * (1.0 - overlap_ratio_cm);
}

double recursive_camat(const std::vector<CamatLevel>& levels, double memory_camat) {
  C2B_REQUIRE(!levels.empty(), "need at least one cache level");
  C2B_REQUIRE(memory_camat > 0.0, "terminal memory C-AMAT must be positive");
  // Compose bottom-up: the deepest level's pure misses are served by DRAM.
  double below = memory_camat;
  for (std::size_t i = levels.size(); i-- > 0;) {
    const CamatLevel& level = levels[i];
    C2B_REQUIRE(level.hit_time > 0.0, "hit time must be positive");
    C2B_REQUIRE(level.hit_concurrency >= 1.0, "C_H >= 1");
    C2B_REQUIRE(level.pure_miss_rate >= 0.0 && level.pure_miss_rate <= 1.0, "pMR in [0,1]");
    C2B_REQUIRE(level.kappa >= 0.0, "kappa must be non-negative");
    below = level.hit_time / level.hit_concurrency +
            level.pure_miss_rate * level.kappa * below;
  }
  return below;
}

double cpu_time(double instruction_count, double cpi_exe, double stall_per_instruction,
                double cycle_time) {
  C2B_REQUIRE(instruction_count >= 0.0, "instruction count must be non-negative");
  C2B_REQUIRE(cpi_exe > 0.0, "CPI_exe must be positive");
  C2B_REQUIRE(stall_per_instruction >= 0.0, "stall must be non-negative");
  C2B_REQUIRE(cycle_time > 0.0, "cycle time must be positive");
  return instruction_count * (cpi_exe + stall_per_instruction) * cycle_time;
}

}  // namespace c2b
