#include "c2b/metrics/timeline.h"

#include <algorithm>
#include <map>

#include "c2b/common/assert.h"

namespace c2b {

TimelineMetrics analyze_timeline(const std::vector<TimelineAccess>& accesses) {
  C2B_REQUIRE(!accesses.empty(), "cannot analyze an empty timeline");

  // Sparse per-cycle activity counters: cycle -> (hit count, miss count).
  // A std::map keeps this robust to timelines with huge gaps; batches are
  // typically analyzed in windows so the map stays small.
  struct CycleActivity {
    std::uint32_t hits = 0;
    std::uint32_t misses = 0;
  };
  std::map<std::uint64_t, CycleActivity> activity;

  std::uint64_t total_hit_duration = 0;
  std::uint64_t total_miss_penalty = 0;
  std::uint64_t miss_count = 0;

  for (const TimelineAccess& access : accesses) {
    C2B_REQUIRE(access.hit_cycles > 0, "an access needs at least one hit/lookup cycle");
    total_hit_duration += access.hit_cycles;
    for (std::uint32_t i = 0; i < access.hit_cycles; ++i)
      ++activity[access.start_cycle + i].hits;
    if (access.miss_penalty_cycles > 0) {
      ++miss_count;
      total_miss_penalty += access.miss_penalty_cycles;
      const std::uint64_t miss_start = access.start_cycle + access.hit_cycles;
      for (std::uint32_t i = 0; i < access.miss_penalty_cycles; ++i)
        ++activity[miss_start + i].misses;
    }
  }

  TimelineMetrics m;
  m.accesses = accesses.size();
  m.misses = miss_count;

  for (const auto& [cycle, counters] : activity) {
    (void)cycle;
    ++m.memory_active_cycles;
    if (counters.hits > 0) {
      ++m.hit_cycle_count;
      m.hit_access_cycles += counters.hits;
    } else if (counters.misses > 0) {
      ++m.pure_miss_cycle_count;
      m.pure_miss_access_cycles += counters.misses;
    }
  }

  // Per-access pure-miss attribution (an access is a *pure miss* iff at
  // least one of its miss cycles is a pure-miss cycle), and pAMP counts the
  // per-access pure-miss cycles so that pMR*pAMP/C_M telescopes exactly to
  // pure-miss cycles / accesses.
  std::uint64_t per_access_pure_cycles = 0;
  for (const TimelineAccess& access : accesses) {
    if (access.miss_penalty_cycles == 0) continue;
    const std::uint64_t miss_start = access.start_cycle + access.hit_cycles;
    std::uint64_t pure_cycles = 0;
    for (std::uint32_t i = 0; i < access.miss_penalty_cycles; ++i) {
      const auto it = activity.find(miss_start + i);
      if (it != activity.end() && it->second.hits == 0) ++pure_cycles;
    }
    if (pure_cycles > 0) {
      ++m.pure_misses;
      per_access_pure_cycles += pure_cycles;
    }
  }

  const auto accesses_d = static_cast<double>(m.accesses);
  m.amat_params.hit_time = static_cast<double>(total_hit_duration) / accesses_d;
  m.amat_params.miss_rate = static_cast<double>(m.misses) / accesses_d;
  m.amat_params.miss_penalty =
      m.misses == 0 ? 0.0 : static_cast<double>(total_miss_penalty) / static_cast<double>(m.misses);
  m.amat_value = amat(m.amat_params);

  m.camat_params.hit_time = m.amat_params.hit_time;
  m.camat_params.hit_concurrency =
      m.hit_cycle_count == 0
          ? 1.0
          : static_cast<double>(m.hit_access_cycles) / static_cast<double>(m.hit_cycle_count);
  m.camat_params.pure_miss_rate = static_cast<double>(m.pure_misses) / accesses_d;
  m.camat_params.pure_miss_penalty =
      m.pure_misses == 0
          ? 0.0
          : static_cast<double>(per_access_pure_cycles) / static_cast<double>(m.pure_misses);
  m.camat_params.miss_concurrency =
      m.pure_miss_cycle_count == 0 ? 1.0
                                   : static_cast<double>(per_access_pure_cycles) /
                                         static_cast<double>(m.pure_miss_cycle_count);
  m.camat_value = camat(m.camat_params);
  m.camat_direct = static_cast<double>(m.memory_active_cycles) / accesses_d;
  m.apc = accesses_d / static_cast<double>(m.memory_active_cycles);
  m.concurrency_c = m.camat_value > 0.0 ? m.amat_value / m.camat_value : 1.0;
  return m;
}

std::vector<TimelineAccess> figure1_example_timeline() {
  // Cycle-by-cycle this reproduces the paper's Fig. 1: hit phases of
  // concurrency 2 (cycles 1-2), 4 (cycle 3), 3 (cycles 4-5), 1 (cycle 6),
  // and one 2-cycle pure-miss phase (cycles 7-8) belonging to access 3.
  return {
      {.start_cycle = 1, .hit_cycles = 3, .miss_penalty_cycles = 0},  // A1 hit 1-3
      {.start_cycle = 1, .hit_cycles = 3, .miss_penalty_cycles = 0},  // A2 hit 1-3
      {.start_cycle = 3, .hit_cycles = 3, .miss_penalty_cycles = 3},  // A3 lookup 3-5, miss 6-8
      {.start_cycle = 3, .hit_cycles = 3, .miss_penalty_cycles = 1},  // A4 lookup 3-5, miss 6
      {.start_cycle = 4, .hit_cycles = 3, .miss_penalty_cycles = 0},  // A5 hit 4-6
  };
}

}  // namespace c2b
