#include "c2b/aps/dse.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "c2b/common/assert.h"
#include "c2b/common/math_util.h"
#include "c2b/common/rng.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/obs/obs.h"
#include "c2b/trace/cursor.h"

namespace c2b {
namespace {

/// Round a byte capacity up to a power of two, clamped so the geometry
/// stays valid for the given line size and associativity. Rounding *up*
/// (not to nearest) guarantees the built cache never holds less than the
/// area budget paid for — nearest-rounding silently shrank capacities
/// whose log2 fraction was below 0.5 (e.g. 68 KiB -> 64 KiB).
std::uint64_t pow2_capacity(double bytes, std::uint32_t line_bytes, std::uint32_t assoc) {
  const std::uint64_t min_bytes = static_cast<std::uint64_t>(line_bytes) * assoc;
  if (bytes <= static_cast<double>(min_bytes)) return min_bytes;
  auto exponent = static_cast<unsigned>(std::lround(std::log2(bytes)));
  while ((static_cast<double>(std::uint64_t{1} << exponent)) < bytes) ++exponent;
  return std::max<std::uint64_t>(min_bytes, std::uint64_t{1} << exponent);
}

// --- canonical simulation-cache key ---------------------------------------
// Every field simulate_design_time's result depends on, spelled out
// exactly; see c2b/exec/sim_cache.h for the contract.

void key_append(std::string& key, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64 "|", v);
  key += buf;
}

void key_append(std::string& key, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g|", v);
  key += buf;
}

void key_append(std::string& key, const sim::SystemConfig& config) {
  key_append(key, std::uint64_t{config.core.issue_width});
  key_append(key, std::uint64_t{config.core.rob_size});
  key_append(key, std::uint64_t{config.core.functional_units});
  const sim::HierarchyConfig& h = config.hierarchy;
  key_append(key, std::uint64_t{h.cores});
  for (const sim::CacheGeometry& geometry : {h.l1_geometry, h.l2_geometry}) {
    key_append(key, geometry.size_bytes);
    key_append(key, std::uint64_t{geometry.line_bytes});
    key_append(key, std::uint64_t{geometry.associativity});
  }
  key_append(key, std::uint64_t{h.l1_hit_latency});
  key_append(key, std::uint64_t{h.l1_banks});
  key_append(key, std::uint64_t{h.l1_ports_per_bank});
  key_append(key, std::uint64_t{h.l1_mshr_entries});
  key_append(key, std::uint64_t{h.l2_hit_latency});
  key_append(key, std::uint64_t{h.l2_banks});
  key_append(key, std::uint64_t{h.l2_ports_per_bank});
  key_append(key, std::uint64_t{h.l2_mshr_entries});
  key_append(key, std::uint64_t{h.noc.nodes});
  key_append(key, std::uint64_t{h.noc.hop_latency});
  key_append(key, std::uint64_t{h.noc.injection_latency});
  key_append(key, h.noc.congestion_per_load);
  key_append(key, std::uint64_t{h.dram.banks});
  key_append(key, std::uint64_t{h.dram.lines_per_row});
  key_append(key, std::uint64_t{h.dram.t_cas});
  key_append(key, std::uint64_t{h.dram.t_rcd});
  key_append(key, std::uint64_t{h.dram.t_rp});
  key_append(key, std::uint64_t{h.dram.t_bus});
  key_append(key, std::uint64_t{h.perfect_memory ? 1u : 0u});
  key_append(key, static_cast<std::uint64_t>(h.l1_prefetch.kind));
  key_append(key, std::uint64_t{h.l1_prefetch.degree});
  key_append(key, std::uint64_t{h.l1_prefetch.stream_table});
  key_append(key, std::uint64_t{h.l1_prefetch.confidence});
  key_append(key, std::uint64_t{h.coherence ? 1u : 0u});
}

/// Empty when the workload carries no uid (hand-rolled spec: caching off).
std::string simulation_cache_key(const DseContext& context, const sim::SystemConfig& config) {
  if (context.workload.uid.empty()) return {};
  std::string key;
  key.reserve(256);
  key += context.workload.uid;
  key += '|';
  key_append(key, context.workload.f_seq);
  key += context.workload.g.description();
  key += '|';
  // description() alone can alias: ScalingFunction::custom accepts any
  // (fn, description) pair, so two numerically different laws may share a
  // label. Sampling g and memory_scale at fixed points pins the numeric
  // behavior into the key.
  for (const double n : {1.0, 2.0, 7.0, 64.0}) {
    key_append(key, context.workload.g(n));
    key_append(key, context.workload.g.memory_scale(n));
  }
  key_append(key, context.seed);
  key_append(key, context.instructions0);
  key_append(key, context.per_core_cap);
  key_append(key, config);
  return key;
}

}  // namespace

GridSpace make_design_space(const DseAxes& axes) {
  return GridSpace({GridAxis{"a0", axes.a0}, GridAxis{"a1", axes.a1}, GridAxis{"a2", axes.a2},
                    GridAxis{"n", axes.n}, GridAxis{"issue", axes.issue},
                    GridAxis{"rob", axes.rob}});
}

sim::SystemConfig config_for_design(const DseContext& context,
                                    const std::vector<double>& point) {
  C2B_REQUIRE(point.size() == 6, "design point must have 6 coordinates");
  const double a0 = point[kAxisA0];
  const double a1 = point[kAxisA1];
  const double a2 = point[kAxisA2];
  const auto n = static_cast<std::uint32_t>(std::lround(point[kAxisN]));
  const auto issue = static_cast<std::uint32_t>(std::lround(point[kAxisIssue]));
  const auto rob = static_cast<std::uint32_t>(std::lround(point[kAxisRob]));
  C2B_REQUIRE(n >= 1 && issue >= 1 && rob >= issue, "invalid discrete design values");

  sim::SystemConfig config = context.base;
  config.core.issue_width = issue;
  config.core.rob_size = rob;
  config.core.functional_units = static_cast<std::uint32_t>(
      clamp(std::lround(2.0 * std::sqrt(a0)), 1, 16));

  config.hierarchy.cores = n;
  const std::uint32_t line = config.hierarchy.l1_geometry.line_bytes;
  config.hierarchy.l1_geometry.size_bytes =
      pow2_capacity(context.chip.l1_capacity_lines(a1) * line, line,
                    config.hierarchy.l1_geometry.associativity);
  config.hierarchy.l2_geometry.size_bytes =
      pow2_capacity(context.chip.l2_capacity_lines(a2) * line * n, line,
                    config.hierarchy.l2_geometry.associativity);
  return config;
}

bool design_feasible(const DseContext& context, const std::vector<double>& point) {
  C2B_REQUIRE(point.size() == 6, "design point must have 6 coordinates");
  if (point[kAxisRob] < point[kAxisIssue]) return false;
  const double n = point[kAxisN];
  const double per_core = point[kAxisA0] + point[kAxisA1] + point[kAxisA2];
  return n * per_core + context.chip.shared_area <= context.chip.total_area + 1e-9;
}

double simulate_design_time(const DseContext& context, const std::vector<double>& point,
                            std::uint64_t* memory_accesses) {
  const sim::SystemConfig config = config_for_design(context, point);

  // Memoization: the result is a pure function of (config, workload, seed,
  // windows) — all encoded in the key. A hit returns the bit-identical
  // time and access count the original simulation produced.
  const std::string cache_key = simulation_cache_key(context, config);
  exec::SimCache& cache = exec::SimCache::global();
  if (!cache_key.empty()) {
    if (const auto cached = cache.find(cache_key)) {
      // Replayed accesses never reach the simulator's sim.l1.* counters;
      // this counter keeps the telemetry ledger balanced:
      //   sim.l1.hit + sim.l1.miss + exec.simcache.replayed_accesses
      //     == total reported memory accesses.
      C2B_COUNTER_ADD("exec.simcache.replayed_accesses", cached->memory_accesses);
      if (memory_accesses != nullptr) *memory_accesses += cached->memory_accesses;
      return cached->time;
    }
  }

  const auto n = config.hierarchy.cores;
  const double n_d = static_cast<double>(n);
  const ScalingFunction& g = context.workload.g;
  const double f_seq = context.workload.f_seq;

  // Sun-Ni scaled problem: IC = g(N) * IC0; footprint grows by
  // memory_scale(N) and is partitioned across the N cores.
  const double ic_total = g(n_d) * static_cast<double>(context.instructions0);
  const double serial_ic = f_seq * ic_total;
  const double parallel_ic_per_core = (1.0 - f_seq) * ic_total / n_d;
  const double per_core_footprint_scale = std::max(1.0, g.memory_scale(n_d) / n_d);

  double total_cycles = 0.0;
  std::uint64_t accesses = 0;

  // ---- Serial phase: one core, whole-footprint working set ----
  if (serial_ic >= 1.0) {
    const auto window = static_cast<std::uint64_t>(
        clamp(serial_ic, 1000.0, static_cast<double>(context.per_core_cap)));
    // Stream the generator through a chunked cursor instead of
    // materializing the window: same record stream (bit-identical result),
    // O(chunk) resident trace memory.
    GeneratorTraceCursor cursor(
        context.workload.make_generator(std::max(1.0, g.memory_scale(n_d)), context.seed),
        window);
    const sim::SystemResult result = sim::simulate_system_streaming(config, {&cursor});
    const double cpi = result.cores[0].cpi;
    total_cycles += cpi * serial_ic;
    accesses += result.cores[0].memory_accesses;
  }

  // ---- Parallel phase: SPMD across all n cores ----
  if (parallel_ic_per_core >= 1.0) {
    const auto window = static_cast<std::uint64_t>(
        clamp(parallel_ic_per_core, 1000.0, static_cast<double>(context.per_core_cap)));
    // Generators are seeded independently per core (splitmix-derived, so
    // (seed, core) pairs never alias) and stream chunk-at-a-time: peak
    // trace memory drops from O(cores * window) records to O(cores *
    // chunk) while the simulator consumes the identical streams.
    std::vector<GeneratorTraceCursor> cursors;
    cursors.reserve(n);
    std::vector<TraceCursor*> cursor_ptrs;
    cursor_ptrs.reserve(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      cursors.emplace_back(
          context.workload.make_generator(
              per_core_footprint_scale,
              Rng::derive_stream_seed(context.seed, static_cast<std::uint64_t>(c))),
          window);
      cursor_ptrs.push_back(&cursors.back());
    }
    const sim::SystemResult result = sim::simulate_system_streaming(config, cursor_ptrs);
    for (const sim::CoreResult& core : result.cores) accesses += core.memory_accesses;
    // Extrapolate the makespan linearly from the simulated window to the
    // full per-core share.
    const double scale = parallel_ic_per_core / static_cast<double>(window);
    total_cycles += static_cast<double>(result.cycles) * scale;
  }
  C2B_ASSERT(total_cycles > 0.0, "design produced zero execution time");
  // Time per unit work: divide by the work factor so rankings agree with
  // the throughput objective of case I (see header).
  const double time = total_cycles / g(n_d);
  if (!cache_key.empty()) cache.insert(cache_key, {time, accesses});
  if (memory_accesses != nullptr) *memory_accesses += accesses;
  return time;
}

}  // namespace c2b
