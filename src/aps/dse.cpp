#include "c2b/aps/dse.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "c2b/aps/surrogate.h"
#include "c2b/common/assert.h"
#include "c2b/common/math_util.h"
#include "c2b/common/rng.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/obs/journal.h"
#include "c2b/obs/obs.h"
#include "c2b/obs/progress.h"
#include "c2b/sim/system/batched.h"
#include "c2b/trace/chunk_store.h"
#include "c2b/trace/cursor.h"

namespace c2b {
namespace {

/// Round a byte capacity up to a power of two, clamped so the geometry
/// stays valid for the given line size and associativity. Rounding *up*
/// (not to nearest) guarantees the built cache never holds less than the
/// area budget paid for — nearest-rounding silently shrank capacities
/// whose log2 fraction was below 0.5 (e.g. 68 KiB -> 64 KiB).
std::uint64_t pow2_capacity(double bytes, std::uint32_t line_bytes, std::uint32_t assoc) {
  const std::uint64_t min_bytes = static_cast<std::uint64_t>(line_bytes) * assoc;
  if (bytes <= static_cast<double>(min_bytes)) return min_bytes;
  auto exponent = static_cast<unsigned>(std::lround(std::log2(bytes)));
  while ((static_cast<double>(std::uint64_t{1} << exponent)) < bytes) ++exponent;
  return std::max<std::uint64_t>(min_bytes, std::uint64_t{1} << exponent);
}

// --- canonical simulation-cache key ---------------------------------------
// Every field simulate_design_time's result depends on, spelled out
// exactly; see c2b/exec/sim_cache.h for the contract.

void key_append(std::string& key, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64 "|", v);
  key += buf;
}

void key_append(std::string& key, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g|", v);
  key += buf;
}

void key_append(std::string& key, const sim::SystemConfig& config) {
  key_append(key, std::uint64_t{config.core.issue_width});
  key_append(key, std::uint64_t{config.core.rob_size});
  key_append(key, std::uint64_t{config.core.functional_units});
  const sim::HierarchyConfig& h = config.hierarchy;
  key_append(key, std::uint64_t{h.cores});
  for (const sim::CacheGeometry& geometry : {h.l1_geometry, h.l2_geometry}) {
    key_append(key, geometry.size_bytes);
    key_append(key, std::uint64_t{geometry.line_bytes});
    key_append(key, std::uint64_t{geometry.associativity});
  }
  key_append(key, std::uint64_t{h.l1_hit_latency});
  key_append(key, std::uint64_t{h.l1_banks});
  key_append(key, std::uint64_t{h.l1_ports_per_bank});
  key_append(key, std::uint64_t{h.l1_mshr_entries});
  key_append(key, std::uint64_t{h.l2_hit_latency});
  key_append(key, std::uint64_t{h.l2_banks});
  key_append(key, std::uint64_t{h.l2_ports_per_bank});
  key_append(key, std::uint64_t{h.l2_mshr_entries});
  key_append(key, std::uint64_t{h.noc.nodes});
  key_append(key, std::uint64_t{h.noc.hop_latency});
  key_append(key, std::uint64_t{h.noc.injection_latency});
  key_append(key, h.noc.congestion_per_load);
  key_append(key, std::uint64_t{h.dram.banks});
  key_append(key, std::uint64_t{h.dram.lines_per_row});
  key_append(key, std::uint64_t{h.dram.t_cas});
  key_append(key, std::uint64_t{h.dram.t_rcd});
  key_append(key, std::uint64_t{h.dram.t_rp});
  key_append(key, std::uint64_t{h.dram.t_bus});
  key_append(key, std::uint64_t{h.perfect_memory ? 1u : 0u});
  key_append(key, static_cast<std::uint64_t>(h.l1_prefetch.kind));
  key_append(key, std::uint64_t{h.l1_prefetch.degree});
  key_append(key, std::uint64_t{h.l1_prefetch.stream_table});
  key_append(key, std::uint64_t{h.l1_prefetch.confidence});
  key_append(key, std::uint64_t{h.coherence ? 1u : 0u});
}

/// Empty when the workload carries no uid (hand-rolled spec: caching off).
/// Layout: the stream-determining prefix (trace_class_key) followed by the
/// timing-only config fields — so two keys share a prefix exactly when the
/// designs share trace streams.
std::string simulation_cache_key(const DseContext& context, const sim::SystemConfig& config) {
  if (context.workload.uid.empty()) return {};
  std::string key = trace_class_key(context, config.hierarchy.cores);
  key_append(key, config);
  return key;
}

/// The per-phase simulation setup simulate_design_time derives from
/// (context, N): instruction counts, footprint scales, and capped windows.
/// Shared by the per-point and batched paths so both simulate the exact
/// same streams; a window of 0 means the phase does not run.
struct PhasePlan {
  double n_d = 1.0;
  double g_n = 1.0;  ///< g(N), the work factor the time is normalized by
  double serial_ic = 0.0;
  double parallel_ic_per_core = 0.0;
  double serial_footprint_scale = 1.0;
  double per_core_footprint_scale = 1.0;
  std::uint64_t serial_window = 0;
  std::uint64_t parallel_window = 0;
};

PhasePlan make_phase_plan(const DseContext& context, std::uint32_t cores) {
  PhasePlan plan;
  plan.n_d = static_cast<double>(cores);
  const ScalingFunction& g = context.workload.g;
  const double f_seq = context.workload.f_seq;
  plan.g_n = g(plan.n_d);

  // Sun-Ni scaled problem: IC = g(N) * IC0; footprint grows by
  // memory_scale(N) and is partitioned across the N cores.
  const double ic_total = plan.g_n * static_cast<double>(context.instructions0);
  plan.serial_ic = f_seq * ic_total;
  plan.parallel_ic_per_core = (1.0 - f_seq) * ic_total / plan.n_d;
  plan.serial_footprint_scale = std::max(1.0, g.memory_scale(plan.n_d));
  plan.per_core_footprint_scale = std::max(1.0, g.memory_scale(plan.n_d) / plan.n_d);
  if (plan.serial_ic >= 1.0)
    plan.serial_window = static_cast<std::uint64_t>(
        clamp(plan.serial_ic, 1000.0, static_cast<double>(context.per_core_cap)));
  if (plan.parallel_ic_per_core >= 1.0)
    plan.parallel_window = static_cast<std::uint64_t>(
        clamp(plan.parallel_ic_per_core, 1000.0, static_cast<double>(context.per_core_cap)));
  return plan;
}

}  // namespace

std::string trace_class_key(const DseContext& context, std::uint32_t cores) {
  std::string key;
  key.reserve(256);
  key += context.workload.uid;
  key += '|';
  key_append(key, context.workload.f_seq);
  key += context.workload.g.description();
  key += '|';
  // description() alone can alias: ScalingFunction::custom accepts any
  // (fn, description) pair, so two numerically different laws may share a
  // label. Sampling g and memory_scale at fixed points — and at the actual
  // core count, which is what the windows and footprint scales are derived
  // from — pins the numeric behavior into the key.
  for (const double n : {1.0, 2.0, 7.0, 64.0}) {
    key_append(key, context.workload.g(n));
    key_append(key, context.workload.g.memory_scale(n));
  }
  const double n_d = static_cast<double>(cores);
  key_append(key, context.workload.g(n_d));
  key_append(key, context.workload.g.memory_scale(n_d));
  key_append(key, context.seed);
  key_append(key, context.instructions0);
  key_append(key, context.per_core_cap);
  key_append(key, std::uint64_t{cores});
  return key;
}

GridSpace make_design_space(const DseAxes& axes) {
  return GridSpace({GridAxis{"a0", axes.a0}, GridAxis{"a1", axes.a1}, GridAxis{"a2", axes.a2},
                    GridAxis{"n", axes.n}, GridAxis{"issue", axes.issue},
                    GridAxis{"rob", axes.rob}});
}

DseAxes make_large_axes() {
  DseAxes axes;
  axes.a0 = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0};
  axes.a1 = {0.125, 0.25, 0.375, 0.5, 0.75, 1.0, 1.5, 2.0};
  axes.a2 = {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0};
  // The dense core-count axis is what makes this preset surrogate-friendly:
  // each N is its own trace-equivalence class, and simulation cost grows
  // with N, so pruning the predicted-cold large-N classes is where the
  // wall-clock lives.
  axes.n = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
  axes.issue = {1, 2, 4, 8};
  axes.rob = {16, 32, 64, 128, 192, 256};
  return axes;
}

sim::SystemConfig config_for_design(const DseContext& context,
                                    const std::vector<double>& point) {
  C2B_REQUIRE(point.size() == 6, "design point must have 6 coordinates");
  const double a0 = point[kAxisA0];
  const double a1 = point[kAxisA1];
  const double a2 = point[kAxisA2];
  const auto n = static_cast<std::uint32_t>(std::lround(point[kAxisN]));
  const auto issue = static_cast<std::uint32_t>(std::lround(point[kAxisIssue]));
  const auto rob = static_cast<std::uint32_t>(std::lround(point[kAxisRob]));
  C2B_REQUIRE(n >= 1 && issue >= 1 && rob >= issue, "invalid discrete design values");

  sim::SystemConfig config = context.base;
  config.core.issue_width = issue;
  config.core.rob_size = rob;
  config.core.functional_units = static_cast<std::uint32_t>(
      clamp(std::lround(2.0 * std::sqrt(a0)), 1, 16));

  config.hierarchy.cores = n;
  const std::uint32_t line = config.hierarchy.l1_geometry.line_bytes;
  config.hierarchy.l1_geometry.size_bytes =
      pow2_capacity(context.chip.l1_capacity_lines(a1) * line, line,
                    config.hierarchy.l1_geometry.associativity);
  config.hierarchy.l2_geometry.size_bytes =
      pow2_capacity(context.chip.l2_capacity_lines(a2) * line * n, line,
                    config.hierarchy.l2_geometry.associativity);
  return config;
}

DesignPoint design_point_of(const std::vector<double>& point) {
  C2B_REQUIRE(point.size() == 6, "design point must have 6 coordinates");
  return DesignPoint{.n_cores = point[kAxisN],
                     .a0 = point[kAxisA0],
                     .a1 = point[kAxisA1],
                     .a2 = point[kAxisA2]};
}

ConstraintSet design_constraints(const DseContext& context) {
  ConstraintSet set;
  // Area first: its evaluate/budget/tolerance reproduce the historical
  // inline filter n*(a0+a1+a2) + Ac <= A + 1e-9 bit for bit, so a context
  // with every budget infinite behaves exactly like the pre-constraint-set
  // DSE (the regression guard in test_core_constraints pins this).
  set.add(make_area_constraint(context.chip));
  if (std::isfinite(context.power_budget))
    set.add(make_power_constraint(context.cost.power, context.chip.shared_area,
                                  context.power_budget));
  if (std::isfinite(context.bw_budget))
    set.add(make_bandwidth_constraint(context.cost.bandwidth, context.bw_budget));
  if (std::isfinite(context.noc_budget))
    set.add(make_noc_constraint(context.cost.noc, context.noc_budget));
  return set;
}

bool design_feasible(const DseContext& context, const std::vector<double>& point) {
  C2B_REQUIRE(point.size() == 6, "design point must have 6 coordinates");
  if (point[kAxisRob] < point[kAxisIssue]) return false;
  return design_constraints(context).feasible(design_point_of(point));
}

double simulate_design_time(const DseContext& context, const std::vector<double>& point,
                            std::uint64_t* memory_accesses) {
  const sim::SystemConfig config = config_for_design(context, point);

  // Memoization: the result is a pure function of (config, workload, seed,
  // windows) — all encoded in the key. A hit returns the bit-identical
  // time and access count the original simulation produced.
  const std::string cache_key = simulation_cache_key(context, config);
  exec::SimCache& cache = exec::SimCache::global();
  if (!cache_key.empty()) {
    if (const auto cached = cache.find(cache_key)) {
      // Replayed accesses never reach the simulator's sim.l1.* counters;
      // this counter keeps the telemetry ledger balanced:
      //   sim.l1.hit + sim.l1.miss + exec.simcache.replayed_accesses
      //     == total reported memory accesses.
      C2B_COUNTER_ADD("exec.simcache.replayed_accesses", cached->memory_accesses);
      if (memory_accesses != nullptr) *memory_accesses += cached->memory_accesses;
      return cached->time;
    }
  }

  const auto n = config.hierarchy.cores;
  const PhasePlan plan = make_phase_plan(context, n);

  double total_cycles = 0.0;
  std::uint64_t accesses = 0;

  // ---- Serial phase: one core, whole-footprint working set ----
  if (plan.serial_window != 0) {
    // Stream the generator through a chunked cursor instead of
    // materializing the window: same record stream (bit-identical result),
    // O(chunk) resident trace memory.
    GeneratorTraceCursor cursor(
        context.workload.make_generator(plan.serial_footprint_scale, context.seed),
        plan.serial_window);
    const sim::SystemResult result = sim::simulate_system_streaming(config, {&cursor});
    const double cpi = result.cores[0].cpi;
    total_cycles += cpi * plan.serial_ic;
    accesses += result.cores[0].memory_accesses;
  }

  // ---- Parallel phase: SPMD across all n cores ----
  if (plan.parallel_window != 0) {
    // Generators are seeded independently per core (splitmix-derived, so
    // (seed, core) pairs never alias) and stream chunk-at-a-time: peak
    // trace memory drops from O(cores * window) records to O(cores *
    // chunk) while the simulator consumes the identical streams.
    std::vector<GeneratorTraceCursor> cursors;
    cursors.reserve(n);
    std::vector<TraceCursor*> cursor_ptrs;
    cursor_ptrs.reserve(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      cursors.emplace_back(
          context.workload.make_generator(
              plan.per_core_footprint_scale,
              Rng::derive_stream_seed(context.seed, static_cast<std::uint64_t>(c))),
          plan.parallel_window);
      cursor_ptrs.push_back(&cursors.back());
    }
    const sim::SystemResult result = sim::simulate_system_streaming(config, cursor_ptrs);
    for (const sim::CoreResult& core : result.cores) accesses += core.memory_accesses;
    // Extrapolate the makespan linearly from the simulated window to the
    // full per-core share.
    const double scale = plan.parallel_ic_per_core / static_cast<double>(plan.parallel_window);
    total_cycles += static_cast<double>(result.cycles) * scale;
  }
  C2B_ASSERT(total_cycles > 0.0, "design produced zero execution time");
  // Time per unit work: divide by the work factor so rankings agree with
  // the throughput objective of case I (see header).
  const double time = total_cycles / plan.g_n;
  if (!cache_key.empty()) cache.insert(cache_key, {time, accesses});
  if (memory_accesses != nullptr) *memory_accesses += accesses;
  return time;
}

namespace {

/// Members of one work unit: indices into the caller's point list, all in
/// the same trace-equivalence class. Bounded so the K simulator instances'
/// working sets stay cache-resident and classes still split into enough
/// units to feed the thread pool.
constexpr std::size_t kMaxBatchMembers = 16;

struct BatchUnit {
  std::vector<std::size_t> members;
  std::size_t class_index = 0;  ///< which trace-equivalence class this unit belongs to
};

/// Constructed-but-never-pulled generators for one trace-equivalence class,
/// built once and clone()d by every unit of the class. Construction is the
/// expensive part of a stream (e.g. PointerChaseGenerator's Fisher-Yates
/// permutation build); a clone of a pristine prototype replays the same
/// records for a fraction of the cost, and cloning from a const prototype
/// is thread-safe (pure copy). Only built for classes with >= 2 units —
/// a lone unit constructs its generators directly either way.
struct ClassPrototypes {
  std::unique_ptr<TraceGenerator> serial;                  ///< null when unneeded/unclonable
  std::vector<std::unique_ptr<TraceGenerator>> parallel;   ///< one per core, nulls allowed
};

struct BatchUnitResult {
  std::vector<BatchSimOutcome> outcomes;  ///< parallel to the unit's members
  std::uint64_t chunks_shared = 0;
  std::uint64_t regen_avoided_accesses = 0;
  sim::BatchKernelStats kernel;
};

/// Simulate one unit: generate each phase's streams once into a shared
/// chunk store and replay all members over them in lockstep. The phase
/// structure, windows, and extrapolation mirror simulate_design_time
/// line for line (via the shared PhasePlan); only the cursor type differs,
/// which the kernel's results are provably insensitive to.
BatchUnitResult run_batch_unit(const DseContext& context,
                               const std::vector<sim::SystemConfig>& configs,
                               const BatchUnit& unit, const ClassPrototypes* prototypes) {
  const std::size_t k = unit.members.size();
  const std::uint32_t n = configs[unit.members.front()].hierarchy.cores;
  const PhasePlan plan = make_phase_plan(context, n);

  // Clone the class prototype when one exists (and is clonable); fall back
  // to constructing from scratch. Both produce bit-identical streams.
  const auto serial_generator = [&]() -> std::unique_ptr<TraceGenerator> {
    if (prototypes != nullptr && prototypes->serial != nullptr)
      if (auto cloned = prototypes->serial->clone()) return cloned;
    return context.workload.make_generator(plan.serial_footprint_scale, context.seed);
  };
  const auto parallel_generator = [&](std::uint32_t c) -> std::unique_ptr<TraceGenerator> {
    if (prototypes != nullptr && c < prototypes->parallel.size() &&
        prototypes->parallel[c] != nullptr)
      if (auto cloned = prototypes->parallel[c]->clone()) return cloned;
    return context.workload.make_generator(
        plan.per_core_footprint_scale,
        Rng::derive_stream_seed(context.seed, static_cast<std::uint64_t>(c)));
  };

  std::vector<sim::SystemConfig> member_configs;
  member_configs.reserve(k);
  for (const std::size_t index : unit.members) member_configs.push_back(configs[index]);

  std::vector<double> total_cycles(k, 0.0);
  BatchUnitResult out;
  out.outcomes.resize(k);

  const auto fold_store_stats = [&out](const TraceChunkStore& store) {
    out.chunks_shared += store.stats().chunks_shared;
    out.regen_avoided_accesses += store.stats().regen_avoided_accesses;
  };

  sim::BatchedReplayOptions options;
  options.lockstep_records = context.lockstep_records;
  options.use_simd = context.use_simd;
  options.kernel_stats = &out.kernel;

  // ---- Serial phase: one shared stream, K single-core members ----
  if (plan.serial_window != 0) {
    TraceChunkStore store;
    const std::size_t stream = store.add_stream(serial_generator(), plan.serial_window);
    store.set_readers(static_cast<std::uint32_t>(k));
    std::vector<ChunkCursor> cursors;
    cursors.reserve(k);
    std::vector<std::vector<TraceCursor*>> member_cursors(k);
    for (std::size_t m = 0; m < k; ++m) {
      cursors.emplace_back(store, stream);
      member_cursors[m] = {&cursors.back()};
    }
    const std::vector<sim::SystemResult> results =
        sim::simulate_system_batched(member_configs, member_cursors, options);
    for (std::size_t m = 0; m < k; ++m) {
      const double cpi = results[m].cores[0].cpi;
      total_cycles[m] += cpi * plan.serial_ic;
      out.outcomes[m].memory_accesses += results[m].cores[0].memory_accesses;
    }
    fold_store_stats(store);
  }

  // ---- Parallel phase: n shared streams, K n-core members ----
  if (plan.parallel_window != 0) {
    TraceChunkStore store;
    for (std::uint32_t c = 0; c < n; ++c)
      store.add_stream(parallel_generator(c), plan.parallel_window);
    store.set_readers(static_cast<std::uint32_t>(k));
    std::vector<ChunkCursor> cursors;
    cursors.reserve(k * n);
    std::vector<std::vector<TraceCursor*>> member_cursors(k);
    for (std::size_t m = 0; m < k; ++m) {
      member_cursors[m].reserve(n);
      for (std::uint32_t c = 0; c < n; ++c) {
        cursors.emplace_back(store, c);
        member_cursors[m].push_back(&cursors.back());
      }
    }
    const std::vector<sim::SystemResult> results =
        sim::simulate_system_batched(member_configs, member_cursors, options);
    const double scale = plan.parallel_ic_per_core / static_cast<double>(plan.parallel_window);
    for (std::size_t m = 0; m < k; ++m) {
      for (const sim::CoreResult& core : results[m].cores)
        out.outcomes[m].memory_accesses += core.memory_accesses;
      total_cycles[m] += static_cast<double>(results[m].cycles) * scale;
    }
    fold_store_stats(store);
  }

  for (std::size_t m = 0; m < k; ++m) {
    C2B_ASSERT(total_cycles[m] > 0.0, "design produced zero execution time");
    out.outcomes[m].time = total_cycles[m] / plan.g_n;
  }
  return out;
}

}  // namespace

std::vector<BatchSimOutcome> simulate_design_times_batched(const DseContext& context,
                                                           const std::vector<std::vector<double>>& points,
                                                           BatchReplayStats* stats) {
  C2B_SPAN("aps/batched_replay");
  BatchReplayStats local;
  std::vector<BatchSimOutcome> outcomes(points.size());
  if (points.empty()) {
    if (stats != nullptr) *stats = local;
    return outcomes;
  }

  obs::RunJournal* const journal = obs::active_journal();
  if (obs::ProgressMeter* progress = obs::active_progress())
    progress->add_total(static_cast<double>(points.size()));
  // Per-point peel flags, tracked only while recording so the hot path
  // stays untouched without a journal.
  std::vector<unsigned char> peeled;
  if (journal != nullptr) peeled.assign(points.size(), 0);

  // Peel sim-cache hits up front so only genuinely new designs reach the
  // batching machinery; classify the misses by core count. Within one
  // context the trace-equivalence key varies only through N (see
  // trace_class_key), so N *is* the class — std::map keeps class order
  // deterministic and independent of the point order hash.
  std::vector<sim::SystemConfig> configs;
  configs.reserve(points.size());
  std::vector<std::string> keys(points.size());
  exec::SimCache& cache = exec::SimCache::global();
  std::map<std::uint32_t, std::vector<std::size_t>> classes;
  for (std::size_t i = 0; i < points.size(); ++i) {
    configs.push_back(config_for_design(context, points[i]));
    keys[i] = simulation_cache_key(context, configs[i]);
  }
  // One bulk probe for the whole sweep: find_many takes each shard lock
  // once (and the disk-tier index lock once) instead of once per point.
  std::uint64_t peel_disk_hits = 0;
  const auto cached = cache.find_many(keys, &peel_disk_hits);
  local.cache_hits_disk = static_cast<std::size_t>(peel_disk_hits);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (cached[i].has_value()) {
      C2B_COUNTER_ADD("exec.simcache.replayed_accesses", cached[i]->memory_accesses);
      outcomes[i] = {cached[i]->time, cached[i]->memory_accesses};
      keys[i].clear();  // nothing to insert later
      ++local.cache_hits;
      if (!peeled.empty()) peeled[i] = 1;
      continue;
    }
    classes[configs[i].hierarchy.cores].push_back(i);
  }

  if (journal != nullptr)
    journal->emit(obs::JournalEvent("cache_peel")
                      .count("points", points.size())
                      .count("hits", local.cache_hits)
                      .count("disk_hits", local.cache_hits_disk)
                      .count("misses", points.size() - local.cache_hits));
  if (local.cache_hits > 0)
    if (obs::ProgressMeter* progress = obs::active_progress())
      progress->advance(static_cast<double>(local.cache_hits));

  // Split each class into bounded units, greedily taking the largest
  // power of two <= min(remaining, kMaxBatchMembers) so unit widths are
  // powers of two wherever the class size allows (the vectorized kernel's
  // preferred lane counts; 36 -> 16,16,4). The layout depends only on the
  // point list (never on thread count), so the units — and therefore every
  // simulated stream pairing — are deterministic.
  std::vector<BatchUnit> units;
  std::size_t class_count = 0;
  for (const auto& [cores, members] : classes) {
    (void)cores;
    const std::size_t class_index = class_count++;
    ++local.classes;
    local.members += members.size();
    std::size_t begin = 0;
    while (begin < members.size()) {
      std::size_t take = kMaxBatchMembers;
      while (take > members.size() - begin) take >>= 1;
      const std::size_t end = begin + take;
      units.push_back(BatchUnit{{members.begin() + static_cast<std::ptrdiff_t>(begin),
                                 members.begin() + static_cast<std::ptrdiff_t>(end)},
                                class_index});
      begin = end;
    }
  }

  // Build per-class prototype generators for classes spanning >= 2 units:
  // each unit then clone()s the pristine prototypes instead of re-running
  // the expensive generator construction (dominant in profile for e.g.
  // pointer-chase permutation builds). Built on the pool — one task per
  // class — before the unit sweep; unit tasks only read the prototypes.
  std::vector<std::size_t> units_per_class(class_count, 0);
  for (const BatchUnit& unit : units) ++units_per_class[unit.class_index];
  std::vector<std::uint32_t> class_cores;
  class_cores.reserve(class_count);
  for (const auto& [cores, members] : classes) {
    (void)members;
    class_cores.push_back(cores);
  }
  const std::vector<ClassPrototypes> prototypes =
      exec::ThreadPool::global().parallel_map<ClassPrototypes>(
          class_count, [&](std::size_t class_index) {
            ClassPrototypes protos;
            if (units_per_class[class_index] < 2) return protos;
            const PhasePlan plan = make_phase_plan(context, class_cores[class_index]);
            if (plan.serial_window != 0)
              protos.serial = context.workload.make_generator(plan.serial_footprint_scale,
                                                              context.seed);
            if (plan.parallel_window != 0) {
              protos.parallel.reserve(class_cores[class_index]);
              for (std::uint32_t c = 0; c < class_cores[class_index]; ++c)
                protos.parallel.push_back(context.workload.make_generator(
                    plan.per_core_footprint_scale,
                    Rng::derive_stream_seed(context.seed, static_cast<std::uint64_t>(c))));
            }
            return protos;
          });

  // Scheduled events go out serially in unit order (the layout above is
  // thread-count independent, so this stream is deterministic).
  if (journal != nullptr)
    for (std::size_t u = 0; u < units.size(); ++u)
      journal->emit(
          obs::JournalEvent("class_scheduled")
              .count("unit", u)
              .count("cores", configs[units[u].members.front()].hierarchy.cores)
              .count("members", units[u].members.size()));

  // One unit per pool task; parallel_map keeps results in unit order, and
  // each unit only writes its own slot, so the reduction below is serial
  // and index-ordered — the same determinism shape as the PR 2 sweeps.
  const std::vector<BatchUnitResult> unit_results =
      exec::ThreadPool::global().parallel_map<BatchUnitResult>(
          units.size(), [&](std::size_t u) {
            const auto start = std::chrono::steady_clock::now();
            BatchUnitResult result =
                run_batch_unit(context, configs, units[u], &prototypes[units[u].class_index]);
            const double wall_ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            C2B_HISTOGRAM_RECORD("aps.batch.unit_wall_ms", 0.0, 250.0, 50, wall_ms);
            // Completed events come from pool workers: per-event order is
            // arbitrary, but the (unit, cores, members, config) multiset is
            // identical for every thread count (wall_ms is wall clock and
            // of course is not).
            if (obs::RunJournal* active = obs::active_journal()) {
              const BatchUnit& unit = units[u];
              const std::vector<double>& point = points[unit.members.front()];
              char config_buf[96];
              std::snprintf(config_buf, sizeof config_buf,
                            "n=%.0f a0=%g a1=%g a2=%g issue=%.0f rob=%.0f",
                            point[kAxisN], point[kAxisA0], point[kAxisA1],
                            point[kAxisA2], point[kAxisIssue], point[kAxisRob]);
              active->emit(
                  obs::JournalEvent("class_completed")
                      .count("unit", u)
                      .count("cores", configs[unit.members.front()].hierarchy.cores)
                      .count("members", unit.members.size())
                      .num("wall_ms", wall_ms)
                      .str("config", config_buf));
              active->snapshot_metrics();
            }
            if (obs::ProgressMeter* progress = obs::active_progress())
              progress->advance(static_cast<double>(units[u].members.size()));
            return result;
          });

  std::vector<std::pair<std::string, exec::SimCache::Value>> inserts;
  inserts.reserve(points.size());
  for (std::size_t u = 0; u < units.size(); ++u) {
    const BatchUnit& unit = units[u];
    const BatchUnitResult& result = unit_results[u];
    for (std::size_t m = 0; m < unit.members.size(); ++m) {
      const std::size_t index = unit.members[m];
      outcomes[index] = result.outcomes[m];
      if (!keys[index].empty())
        inserts.emplace_back(std::move(keys[index]),
                             exec::SimCache::Value{result.outcomes[m].time,
                                                   result.outcomes[m].memory_accesses});
    }
    local.chunks_shared += result.chunks_shared;
    local.regen_avoided_accesses += result.regen_avoided_accesses;
    local.simd_steps += result.kernel.simd_steps;
    local.simd_peels += result.kernel.simd_peels;
    local.simd_lanes_active += result.kernel.simd_lanes_active;
  }
  cache.insert_many(inserts);

  // Per-point outcomes, emitted serially in point order after the scatter —
  // this is the stream `c2b report` builds its objective heatmap from.
  if (journal != nullptr)
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::vector<double>& point = points[i];
      journal->emit(obs::JournalEvent("point")
                        .num("n", point[kAxisN])
                        .num("a0", point[kAxisA0])
                        .num("a1", point[kAxisA1])
                        .num("a2", point[kAxisA2])
                        .num("issue", point[kAxisIssue])
                        .num("rob", point[kAxisRob])
                        .num("objective", outcomes[i].time)
                        .count("cached", peeled[i]));
    }

  C2B_COUNTER_ADD("exec.batch.classes", local.classes);
  C2B_COUNTER_ADD("exec.batch.members", local.members);
  C2B_COUNTER_ADD("exec.batch.chunks_shared", local.chunks_shared);
  C2B_COUNTER_ADD("exec.batch.regen_avoided_accesses", local.regen_avoided_accesses);
  // exec.batch.simd.* are bumped inside the vectorized kernel itself.
  if (stats != nullptr) *stats = local;
  return outcomes;
}

namespace {

/// j strictly dominates i under minimize-(time, power, area): no worse in
/// every coordinate and strictly better in at least one. Points equal in
/// all three dominate nothing, so exact ties survive together.
bool dominates(const FrontierPoint& a, const FrontierPoint& b) {
  if (a.time > b.time || a.power > b.power || a.area > b.area) return false;
  return a.time < b.time || a.power < b.power || a.area < b.area;
}

/// A frontier point "binds" a constraint when its demand sits within 5%
/// relative slack of the budget — the resource the designer would have to
/// grow to move that point.
constexpr double kBindingSlackFraction = 0.05;

}  // namespace

ParetoDseResult run_pareto_dse(const DseContext& context, const GridSpace& space) {
  C2B_SPAN("aps/pareto_dse");
  ParetoDseResult result;
  result.grid_points = space.size();
  const ConstraintSet set = design_constraints(context);
  result.usage.reserve(set.size());
  for (const Constraint& constraint : set.constraints())
    result.usage.push_back(ConstraintUsage{constraint.name, constraint.budget, 0, 0});

  // Plan: the same serial factorial filter run_full_dse uses, but checking
  // every constraint per point so each one's rejection count is exact (a
  // point violating several budgets is charged to each).
  std::vector<std::size_t> flats;
  std::vector<std::vector<double>> points;
  {
    obs::PhaseScope phase("plan");
    space.for_each([&](std::size_t flat, const std::vector<double>& point) {
      if (point[kAxisRob] < point[kAxisIssue]) return;
      const DesignPoint d = design_point_of(point);
      bool feasible = true;
      for (std::size_t c = 0; c < set.size(); ++c) {
        if (!set.constraints()[c].satisfied(d)) {
          ++result.usage[c].infeasible;
          feasible = false;
        }
      }
      if (!feasible) return;
      flats.push_back(flat);
      points.push_back(point);
    });
  }
  result.feasible_count = flats.size();
  result.simulations = flats.size();
  C2B_REQUIRE(result.feasible_count > 0, "no feasible design in the space");

  // The analytic objective coordinates are cheap; compute them for every
  // feasible point up front — the surrogate's dominance pruning needs them
  // before any simulation happens, and the frontier attachment reuses them.
  std::vector<double> powers(points.size());
  std::vector<double> areas(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const DesignPoint d = design_point_of(points[i]);
    powers[i] = context.cost.power.total(d, context.chip.shared_area);
    areas[i] = d.n_cores * (d.a0 + d.a1 + d.a2) + context.chip.shared_area;
  }

  // Sweep: identical engine, identical streams, identical cache keys as the
  // plain DSE — a Pareto run after a plain run is all cache hits. With the
  // surrogate enabled, classes confidently dominated by the simulated
  // frontier are skipped; `simulated` marks which outcomes are real.
  std::vector<BatchSimOutcome> outcomes;
  std::vector<std::uint8_t> simulated;  // empty = every point was simulated
  {
    obs::PhaseScope phase("sweep");
    if (context.surrogate_enabled) {
      const SurrogateObjectives objectives{powers, areas};
      SurrogateSweepResult sweep = surrogate_sweep(context, points, &objectives);
      outcomes = std::move(sweep.outcomes);
      simulated = std::move(sweep.simulated);
      result.batch = sweep.batch;
      result.surrogate = sweep.stats;
      result.simulations = sweep.stats.points_simulated;
    } else {
      outcomes = simulate_design_times_batched(context, points, &result.batch);
    }
  }

  // Frontier: attach the analytic power/area coordinates to each simulated
  // time and keep the non-dominated set. O(n^2) pairwise on the feasible
  // list — serial and index-ordered, so the frontier is a pure function of
  // the grid and bit-identical at any thread count.
  obs::PhaseScope phase("frontier");
  std::vector<FrontierPoint> candidates;
  candidates.reserve(flats.size());
  for (std::size_t i = 0; i < flats.size(); ++i) {
    if (!simulated.empty() && !simulated[i]) continue;  // surrogate-pruned
    FrontierPoint fp;
    fp.flat_index = flats[i];
    fp.point = points[i];
    fp.time = outcomes[i].time;
    fp.power = powers[i];
    fp.area = areas[i];
    candidates.push_back(std::move(fp));
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (j != i && dominates(candidates[j], candidates[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.frontier.push_back(candidates[i]);
  }
  std::sort(result.frontier.begin(), result.frontier.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.power != b.power) return a.power < b.power;
              if (a.area != b.area) return a.area < b.area;
              return a.flat_index < b.flat_index;
            });

  for (const FrontierPoint& fp : result.frontier) {
    const DesignPoint d = design_point_of(fp.point);
    for (std::size_t c = 0; c < set.size(); ++c) {
      const Constraint& constraint = set.constraints()[c];
      if (constraint.budget > 0.0 &&
          constraint.evaluate(d) >= (1.0 - kBindingSlackFraction) * constraint.budget)
        ++result.usage[c].binding;
    }
  }

  if (obs::RunJournal* journal = obs::active_journal()) {
    for (const FrontierPoint& fp : result.frontier)
      journal->emit(obs::JournalEvent("frontier_point")
                        .num("n", fp.point[kAxisN])
                        .num("a0", fp.point[kAxisA0])
                        .num("a1", fp.point[kAxisA1])
                        .num("a2", fp.point[kAxisA2])
                        .num("issue", fp.point[kAxisIssue])
                        .num("rob", fp.point[kAxisRob])
                        .num("time", fp.time)
                        .num("power", fp.power)
                        .num("area", fp.area));
    for (const ConstraintUsage& usage : result.usage)
      journal->emit(obs::JournalEvent("constraint")
                        .str("name", usage.name)
                        .num("budget", usage.budget)
                        .count("infeasible", usage.infeasible)
                        .count("binding", usage.binding));
    journal->emit(obs::JournalEvent("pareto_summary")
                      .count("frontier", result.frontier.size())
                      .count("feasible", result.feasible_count)
                      .count("grid_points", result.grid_points));
  }
  C2B_COUNTER_ADD("aps.pareto.frontier_points", result.frontier.size());
  return result;
}

}  // namespace c2b
