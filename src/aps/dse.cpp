#include "c2b/aps/dse.h"

#include <algorithm>
#include <cmath>

#include "c2b/common/assert.h"
#include "c2b/common/math_util.h"

namespace c2b {
namespace {

/// Round a byte capacity to the nearest power of two, clamped so the
/// geometry stays valid for the given line size and associativity.
std::uint64_t pow2_capacity(double bytes, std::uint32_t line_bytes, std::uint32_t assoc) {
  const std::uint64_t min_bytes = static_cast<std::uint64_t>(line_bytes) * assoc;
  if (bytes <= static_cast<double>(min_bytes)) return min_bytes;
  const double log2v = std::log2(bytes);
  const auto rounded = static_cast<unsigned>(std::lround(log2v));
  return std::max<std::uint64_t>(min_bytes, std::uint64_t{1} << rounded);
}

}  // namespace

GridSpace make_design_space(const DseAxes& axes) {
  return GridSpace({GridAxis{"a0", axes.a0}, GridAxis{"a1", axes.a1}, GridAxis{"a2", axes.a2},
                    GridAxis{"n", axes.n}, GridAxis{"issue", axes.issue},
                    GridAxis{"rob", axes.rob}});
}

sim::SystemConfig config_for_design(const DseContext& context,
                                    const std::vector<double>& point) {
  C2B_REQUIRE(point.size() == 6, "design point must have 6 coordinates");
  const double a0 = point[kAxisA0];
  const double a1 = point[kAxisA1];
  const double a2 = point[kAxisA2];
  const auto n = static_cast<std::uint32_t>(std::lround(point[kAxisN]));
  const auto issue = static_cast<std::uint32_t>(std::lround(point[kAxisIssue]));
  const auto rob = static_cast<std::uint32_t>(std::lround(point[kAxisRob]));
  C2B_REQUIRE(n >= 1 && issue >= 1 && rob >= issue, "invalid discrete design values");

  sim::SystemConfig config = context.base;
  config.core.issue_width = issue;
  config.core.rob_size = rob;
  config.core.functional_units = static_cast<std::uint32_t>(
      clamp(std::lround(2.0 * std::sqrt(a0)), 1, 16));

  config.hierarchy.cores = n;
  const std::uint32_t line = config.hierarchy.l1_geometry.line_bytes;
  config.hierarchy.l1_geometry.size_bytes =
      pow2_capacity(context.chip.l1_capacity_lines(a1) * line, line,
                    config.hierarchy.l1_geometry.associativity);
  config.hierarchy.l2_geometry.size_bytes =
      pow2_capacity(context.chip.l2_capacity_lines(a2) * line * n, line,
                    config.hierarchy.l2_geometry.associativity);
  return config;
}

bool design_feasible(const DseContext& context, const std::vector<double>& point) {
  C2B_REQUIRE(point.size() == 6, "design point must have 6 coordinates");
  if (point[kAxisRob] < point[kAxisIssue]) return false;
  const double n = point[kAxisN];
  const double per_core = point[kAxisA0] + point[kAxisA1] + point[kAxisA2];
  return n * per_core + context.chip.shared_area <= context.chip.total_area + 1e-9;
}

double simulate_design_time(const DseContext& context, const std::vector<double>& point,
                            std::uint64_t* memory_accesses) {
  const sim::SystemConfig config = config_for_design(context, point);
  const auto n = config.hierarchy.cores;
  const double n_d = static_cast<double>(n);
  const ScalingFunction& g = context.workload.g;
  const double f_seq = context.workload.f_seq;

  // Sun-Ni scaled problem: IC = g(N) * IC0; footprint grows by
  // memory_scale(N) and is partitioned across the N cores.
  const double ic_total = g(n_d) * static_cast<double>(context.instructions0);
  const double serial_ic = f_seq * ic_total;
  const double parallel_ic_per_core = (1.0 - f_seq) * ic_total / n_d;
  const double per_core_footprint_scale = std::max(1.0, g.memory_scale(n_d) / n_d);

  double total_cycles = 0.0;

  // ---- Serial phase: one core, whole-footprint working set ----
  if (serial_ic >= 1.0) {
    const auto window = static_cast<std::uint64_t>(
        clamp(serial_ic, 1000.0, static_cast<double>(context.per_core_cap)));
    auto generator = context.workload.make_generator(std::max(1.0, g.memory_scale(n_d)),
                                                     context.seed);
    const Trace trace = generator->generate(window);
    const sim::SystemResult result = sim::simulate_single_core(config, trace);
    const double cpi = result.cores[0].cpi;
    total_cycles += cpi * serial_ic;
    if (memory_accesses != nullptr) *memory_accesses += result.cores[0].memory_accesses;
  }

  // ---- Parallel phase: SPMD across all n cores ----
  if (parallel_ic_per_core >= 1.0) {
    const auto window = static_cast<std::uint64_t>(
        clamp(parallel_ic_per_core, 1000.0, static_cast<double>(context.per_core_cap)));
    std::vector<Trace> traces;
    traces.reserve(n);
    for (std::uint32_t c = 0; c < n; ++c) {
      auto generator =
          context.workload.make_generator(per_core_footprint_scale, context.seed + 17 * c + 1);
      traces.push_back(generator->generate(window));
    }
    const sim::SystemResult result = sim::simulate_system(config, traces);
    if (memory_accesses != nullptr)
      for (const sim::CoreResult& core : result.cores) *memory_accesses += core.memory_accesses;
    // Extrapolate the makespan linearly from the simulated window to the
    // full per-core share.
    const double scale = parallel_ic_per_core / static_cast<double>(window);
    total_cycles += static_cast<double>(result.cycles) * scale;
  }
  C2B_ASSERT(total_cycles > 0.0, "design produced zero execution time");
  // Time per unit work: divide by the work factor so rankings agree with
  // the throughput objective of case I (see header).
  return total_cycles / g(n_d);
}

}  // namespace c2b
