#include "c2b/aps/aps.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>

#include "c2b/aps/surrogate.h"

#include "c2b/common/assert.h"
#include "c2b/common/math_util.h"
#include "c2b/common/log.h"
#include "c2b/obs/journal.h"
#include "c2b/obs/obs.h"

namespace c2b {

FullDseResult run_full_dse(const DseContext& context, const GridSpace& space) {
  C2B_SPAN("aps/full_dse");
  FullDseResult result;
  result.times.assign(space.size(), std::numeric_limits<double>::infinity());
  // Feasibility is cheap: filter serially, then hand the whole work list to
  // the batched replay engine, which groups it into trace-equivalence
  // classes and schedules those on the thread pool. Outcomes come back in
  // work-list order, so the scatter below is serial and bit-identical at
  // any thread count.
  std::vector<std::size_t> flats;
  std::vector<std::vector<double>> points;
  {
    obs::PhaseScope phase("plan");
    space.for_each([&](std::size_t flat, const std::vector<double>& point) {
      if (!design_feasible(context, point)) return;
      flats.push_back(flat);
      points.push_back(point);
    });
  }
  obs::PhaseScope phase("sweep");
  result.feasible_count = flats.size();
  C2B_REQUIRE(result.feasible_count > 0, "no feasible design in the space");
  if (context.surrogate_enabled) {
    SurrogateSweepResult sweep = surrogate_sweep(context, points);
    for (std::size_t i = 0; i < flats.size(); ++i) {
      if (!sweep.simulated[i]) continue;  // pruned: stays +infinity
      result.times[flats[i]] = sweep.outcomes[i].time;
      C2B_COUNTER_INC("aps.full_dse.simulations");
    }
    result.batch = sweep.batch;
    result.surrogate = sweep.stats;
    result.simulations = sweep.stats.points_simulated;
  } else {
    const std::vector<BatchSimOutcome> outcomes =
        simulate_design_times_batched(context, points, &result.batch);
    for (std::size_t i = 0; i < flats.size(); ++i) {
      result.times[flats[i]] = outcomes[i].time;
      C2B_COUNTER_INC("aps.full_dse.simulations");
    }
    result.simulations = flats.size();
  }
  result.best_index = static_cast<std::size_t>(
      std::min_element(result.times.begin(), result.times.end()) - result.times.begin());
  result.best_time = result.times[result.best_index];
  return result;
}

C2BoundModel build_calibrated_model(const DseContext& context, const Characterization& c) {
  AppProfile app = c.app;
  app.ic0 = static_cast<double>(context.instructions0);
  // Concurrency the design can rely on: the detector's C_M includes merged
  // secondary misses riding in-flight primaries, which will not survive a
  // cache shrink; clamp to the MSHR-bounded MLP (and C_H to the port-level
  // parallelism) so area sensitivity is not wished away.
  app.miss_concurrency =
      std::min(app.miss_concurrency,
               static_cast<double>(context.base.hierarchy.l1_mshr_entries));
  app.hit_concurrency =
      std::min(app.hit_concurrency,
               static_cast<double>(context.base.hierarchy.l1_banks *
                                   context.base.hierarchy.l1_ports_per_bank));

  MachineProfile machine;
  // Pollack anchored at the baseline core: the simulator maps core area to
  // functional units as fu = 2 sqrt(A0), so the characterized CPI_exe was
  // measured at a0_base = (fu/2)^2; pick (k0, phi0) with
  // CPI_exe(a0_base) == measured.
  const double cpi_exe = std::max(0.05, c.cpi_exe);
  const double fu_base = static_cast<double>(context.base.core.functional_units);
  const double a0_base = std::max(0.25, (fu_base / 2.0) * (fu_base / 2.0));
  machine.pollack.phi0 = 0.25 * cpi_exe;
  machine.pollack.k0 = 0.75 * cpi_exe * std::sqrt(a0_base);
  machine.l1_hit_time = static_cast<double>(context.base.hierarchy.l1_hit_latency);
  machine.l2_latency = static_cast<double>(context.base.hierarchy.l2_hit_latency) +
                       2.0 * context.base.hierarchy.noc.hop_latency;
  machine.memory_latency =
      static_cast<double>(context.base.hierarchy.dram.t_rcd + context.base.hierarchy.dram.t_cas +
                          context.base.hierarchy.dram.t_bus) +
      machine.l2_latency;
  // The stack-distance fit is MR(S) = alpha_fit * S^-beta with S in absolute
  // lines; MissModel expects the normalized form MR = alpha * (S/WS)^-beta,
  // so alpha = alpha_fit * WS^-beta (the miss ratio when the cache matches
  // the working set). The L2's *local* miss curve is the stack curve at the
  // L2 capacity relative to the traffic already filtered by the baseline
  // L1: alpha_l2 = (c1_base / WS)^beta.
  {
    const double beta = std::max(0.1, c.l1_power_law.beta);
    const double alpha_fit = std::max(1e-6, c.l1_power_law.alpha);
    const double ws0 = std::max(1.0, app.working_set_lines0);
    const double c1_base_lines =
        static_cast<double>(context.base.hierarchy.l1_geometry.lines());
    const double alpha_l1 =
        clamp(alpha_fit * std::pow(ws0, -beta), 1e-4, 1.0);
    const double alpha_l2 = clamp(std::pow(c1_base_lines / ws0, beta), 1e-3, 1.0);
    machine.l1_miss = MissModel{.alpha = alpha_l1, .beta = beta, .mr_cap = 1.0,
                                .mr_floor = 1e-4};
    machine.l2_miss = MissModel{.alpha = alpha_l2, .beta = beta, .mr_cap = 1.0,
                                .mr_floor = 1e-3};
  }
  machine.chip = context.chip;
  // Shared memory controllers queue with aggregate off-chip traffic; without
  // this term the analytic model sees no cost to shrinking caches at high N.
  machine.memory_contention = 0.05;

  // Calibrate the stall scale so the analytic CPI reproduces the measured
  // CPI at the baseline configuration (areas implied by the base caches).
  {
    const ChipConstraints& chip = machine.chip;
    const double a1_base = std::max(
        chip.min_l1_area, static_cast<double>(context.base.hierarchy.l1_geometry.size_bytes) /
                              1024.0 / chip.l1_kib_per_area);
    const double a2_base = std::max(
        chip.min_l2_area, static_cast<double>(context.base.hierarchy.l2_geometry.size_bytes) /
                              1024.0 / chip.l2_kib_per_area);
    const C2BoundModel probe(app, machine);
    const double analytic_stall =
        probe.evaluate({.n_cores = 1.0, .a0 = a0_base, .a1 = a1_base, .a2 = a2_base})
            .stall_per_instruction;
    const double measured_stall = std::max(1e-6, c.measured_cpi - cpi_exe);
    if (analytic_stall > 1e-12) app.stall_scale = measured_stall / analytic_stall;
  }
  return C2BoundModel(app, machine);
}

ApsResult run_aps(const DseContext& context, const GridSpace& space, const ApsOptions& options) {
  C2B_SPAN("aps/run_aps");
  ApsResult result;

  // ---- Step 1: characterization (Fig. 6 lines 1-3) ----
  {
    obs::PhaseScope phase("characterize");
    result.characterization = characterize(context.workload, context.base, options.characterize);
    result.simulations += result.characterization.simulation_runs;
    result.memory_accesses += result.characterization.memory_accesses;
    if (auto* journal = obs::active_journal())
      journal->emit(obs::JournalEvent("characterized")
                        .str("app", context.workload.name)
                        .num("measured_cpi", result.characterization.measured_cpi)
                        .num("cpi_exe", result.characterization.cpi_exe)
                        .num("camat", result.characterization.camat.camat_value)
                        .count("simulation_runs", result.characterization.simulation_runs)
                        .count("memory_accesses", result.characterization.memory_accesses));
  }

  // ---- Step 2: analytic optimization (Fig. 6 lines 4-13) ----
  {
    C2B_SPAN("aps/analytic_solve");
    obs::PhaseScope phase("analytic_solve");
    OptimizerOptions opt;
    opt.n_max = static_cast<long long>(
        *std::max_element(space.axis(kAxisN).values.begin(), space.axis(kAxisN).values.end()));
    const C2BoundOptimizer optimizer(build_calibrated_model(context, result.characterization),
                                     opt);
    result.analytic = optimizer.optimize();
    if (auto* journal = obs::active_journal())
      journal->emit(
          obs::JournalEvent("solver")
              .num("n_cores", result.analytic.best.design.n_cores)
              .num("a0", result.analytic.best.design.a0)
              .num("a1", result.analytic.best.design.a1)
              .num("a2", result.analytic.best.design.a2)
              .num("lambda", result.analytic.lambda)
              .count("lagrange_converged", result.analytic.lagrange_converged ? 1 : 0)
              .count("case", static_cast<std::uint64_t>(result.analytic.opt_case))
              .count("core_counts_scanned", result.analytic.per_core_count.size()));
  }

  // ---- Step 3: snap to the grid and simulate the narrowed region ----
  // Snap the analytic (A0, A1, A2, N) to the nearest *feasible* grid point
  // (log-scale per-axis distance; the analytic solve works in continuous
  // area space and may sit beyond the buildable axis ranges, in which case
  // the snap clamps to the closest chip that actually exists).
  // N is the model's primary output ("once these fundamental parameters are
  // fixed, the skeleton of CMP becomes clear"), so the snap is hierarchical:
  // match the core count first, then the area split — a mismatched cache
  // axis must never drag the snap onto a different skeleton.
  const DesignPoint& best = result.analytic.best.design;
  const std::array<double, 4> target{best.a0, best.a1, best.a2, best.n_cores};
  constexpr double kCoreCountWeight = 1e3;
  double best_distance = std::numeric_limits<double>::infinity();
  std::size_t snapped = 0;
  space.for_each([&](std::size_t flat, const std::vector<double>& point) {
    if (!design_feasible(context, point)) return;
    double distance = 0.0;
    for (std::size_t axis = 0; axis < 4; ++axis) {
      const double diff = std::log(point[axis]) - std::log(std::max(1e-6, target[axis]));
      distance += (axis == kAxisN ? kCoreCountWeight : 1.0) * diff * diff;
    }
    if (distance < best_distance) {
      best_distance = distance;
      snapped = flat;
    }
  });
  C2B_REQUIRE(std::isfinite(best_distance), "no feasible grid point to snap to");
  result.snapped_index = snapped;

  // The region APS simulates (Fig. 6 line 15, "adjacent regions in the
  // design space nearby the solution"): the analytic solve pins N and A0;
  // simulation refines the cache split (a radius-r neighborhood over the
  // A1/A2 axes, where the power-law model is coarsest) times the full
  // issue x ROB cross it never modeled at all.
  const auto snapped_idx = space.indices(result.snapped_index);
  std::unordered_set<std::size_t> region;
  const std::size_t issue_count = space.axis(kAxisIssue).values.size();
  const std::size_t rob_count = space.axis(kAxisRob).values.size();
  const auto radius = static_cast<std::ptrdiff_t>(std::max<std::size_t>(
      1, options.neighborhood_radius));
  auto clipped = [&](std::size_t axis, std::ptrdiff_t delta) {
    const auto base = static_cast<std::ptrdiff_t>(snapped_idx[axis]);
    const auto size = static_cast<std::ptrdiff_t>(space.axis(axis).values.size());
    const std::ptrdiff_t moved = std::clamp<std::ptrdiff_t>(base + delta, 0, size - 1);
    return static_cast<std::size_t>(moved);
  };
  for (std::ptrdiff_t da1 = -radius; da1 <= radius; ++da1) {
    for (std::ptrdiff_t da2 = -radius; da2 <= radius; ++da2) {
      for (std::size_t i = 0; i < issue_count; ++i) {
        for (std::size_t r = 0; r < rob_count; ++r) {
          auto idx = snapped_idx;
          idx[kAxisA1] = clipped(kAxisA1, da1);
          idx[kAxisA2] = clipped(kAxisA2, da2);
          idx[kAxisIssue] = i;
          idx[kAxisRob] = r;
          region.insert(space.flat_index(idx));
        }
      }
    }
  }

  C2B_SPAN("aps/neighborhood_sim");
  obs::PhaseScope phase("neighborhood_sim");
  // Feasibility is cheap: filter serially into a sorted work list, then
  // hand the candidates to the batched replay engine (the neighborhood
  // shares trace streams across its whole issue x ROB x cache-split cross,
  // so one class typically covers it). Outcomes land in work-list order,
  // so the reduction below (strict-< best pick, access totals) is the
  // serial loop verbatim — bit-identical at any thread count.
  std::vector<std::size_t> candidates(region.begin(), region.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [&](std::size_t flat) {
                                    return !design_feasible(context, space.point(flat));
                                  }),
                   candidates.end());
  std::vector<std::vector<double>> candidate_points;
  candidate_points.reserve(candidates.size());
  for (const std::size_t flat : candidates) candidate_points.push_back(space.point(flat));
  const std::vector<BatchSimOutcome> outcomes =
      simulate_design_times_batched(context, candidate_points, &result.batch);
  C2B_COUNTER_ADD("aps.neighborhood.simulations", candidates.size());

  result.best_time = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    result.memory_accesses += outcomes[i].memory_accesses;
    ++result.simulations;
    result.simulated_indices.push_back(candidates[i]);
    if (outcomes[i].time < result.best_time) {
      result.best_time = outcomes[i].time;
      result.best_index = candidates[i];
    }
  }
  C2B_REQUIRE(!result.simulated_indices.empty(), "APS simulated no designs");
  result.narrowing_factor =
      static_cast<double>(space.size()) / static_cast<double>(result.simulated_indices.size());
  return result;
}

double design_regret(const FullDseResult& truth, std::size_t index) {
  C2B_REQUIRE(index < truth.times.size(), "design index out of range");
  C2B_REQUIRE(truth.best_time > 0.0, "ground truth must be populated");
  return (truth.times[index] - truth.best_time) / truth.best_time;
}

AnnDseResult run_ann_dse(const GridSpace& space, const FullDseResult& truth,
                         double target_regret, const AnnDseOptions& options) {
  C2B_REQUIRE(truth.times.size() == space.size(), "truth/space mismatch");
  AnnDseResult result;
  Rng rng(options.seed);

  // Feature vectors for every grid point (queried repeatedly).
  std::vector<Vector> features(space.size());
  for (std::size_t flat = 0; flat < space.size(); ++flat) features[flat] = space.point(flat);

  // Candidate pool: feasible designs only (infeasible ones are not chips).
  std::vector<std::size_t> pool;
  pool.reserve(space.size());
  for (std::size_t i = 0; i < space.size(); ++i)
    if (std::isfinite(truth.times[i])) pool.push_back(i);
  C2B_REQUIRE(!pool.empty(), "no feasible designs to train on");
  // Random draw order (sampling without replacement).
  for (std::size_t i = pool.size() - 1; i > 0; --i)
    std::swap(pool[i], pool[rng.uniform_below(i + 1)]);

  std::vector<Vector> train_x;
  std::vector<double> train_y;
  std::size_t drawn = 0;
  auto draw = [&](std::size_t count) {
    while (count-- > 0 && drawn < pool.size()) {
      const std::size_t flat = pool[drawn++];
      train_x.push_back(features[flat]);
      // Learn log-time: multiplicative structure, relative-error friendly.
      train_y.push_back(std::log(truth.times[flat]));
    }
  };

  draw(options.initial_samples);
  const std::size_t cap = std::min(options.max_samples, pool.size());
  while (true) {
    MlpConfig config;
    config.layer_sizes.push_back(features[0].size());
    for (const std::size_t h : options.hidden_layers) config.layer_sizes.push_back(h);
    config.layer_sizes.push_back(1);
    config.seed = options.seed + train_x.size();
    Mlp mlp(config);
    mlp.fit(train_x, train_y, options.epochs_per_round);

    // Predict over every feasible design; pick the predicted best.
    std::size_t predicted_best = pool[0];
    double predicted_best_value = std::numeric_limits<double>::infinity();
    double rel_error_sum = 0.0;
    for (const std::size_t flat : pool) {
      const double log_pred = mlp.predict(features[flat]);
      if (log_pred < predicted_best_value) {
        predicted_best_value = log_pred;
        predicted_best = flat;
      }
      const double pred = std::exp(log_pred);
      rel_error_sum += std::fabs(pred - truth.times[flat]) / truth.times[flat];
    }
    result.simulations = train_x.size();
    result.best_index = predicted_best;
    result.best_time = truth.times[predicted_best];
    result.mean_relative_error = rel_error_sum / static_cast<double>(pool.size());

    if (design_regret(truth, predicted_best) <= target_regret) {
      result.reached_target = true;
      break;
    }
    if (train_x.size() >= cap) break;
    draw(options.batch_size);
  }
  return result;
}

}  // namespace c2b
