#include "c2b/aps/characterize.h"

#include <algorithm>
#include <cmath>

#include "c2b/common/assert.h"
#include "c2b/common/math_util.h"
#include "c2b/obs/obs.h"

namespace c2b {
namespace {

/// Merge per-simpoint detector metrics into one weighted TimelineMetrics.
TimelineMetrics weighted_merge(const std::vector<TimelineMetrics>& parts,
                               const std::vector<double>& weights) {
  C2B_ASSERT(parts.size() == weights.size() && !parts.empty(), "bad merge input");
  TimelineMetrics merged;
  double hit_time = 0, ch = 0, pmr = 0, pamp = 0, cm = 0, mr = 0, amp = 0;
  double camat_direct = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const TimelineMetrics& m = parts[i];
    const double w = weights[i];
    merged.accesses += m.accesses;
    merged.misses += m.misses;
    merged.pure_misses += m.pure_misses;
    merged.memory_active_cycles += m.memory_active_cycles;
    hit_time += w * m.camat_params.hit_time;
    ch += w * m.camat_params.hit_concurrency;
    pmr += w * m.camat_params.pure_miss_rate;
    pamp += w * m.camat_params.pure_miss_penalty;
    cm += w * m.camat_params.miss_concurrency;
    mr += w * m.amat_params.miss_rate;
    amp += w * m.amat_params.miss_penalty;
    camat_direct += w * m.camat_direct;
  }
  merged.camat_params = {.hit_time = hit_time,
                         .hit_concurrency = std::max(1.0, ch),
                         .pure_miss_rate = clamp(pmr, 0.0, 1.0),
                         .pure_miss_penalty = pamp,
                         .miss_concurrency = std::max(1.0, cm)};
  merged.amat_params = {.hit_time = hit_time, .miss_rate = clamp(mr, 0.0, 1.0),
                        .miss_penalty = amp};
  merged.amat_value = amat(merged.amat_params);
  merged.camat_value = camat(merged.camat_params);
  merged.camat_direct = camat_direct;
  merged.apc = merged.camat_direct > 0.0 ? 1.0 / merged.camat_direct : 0.0;
  merged.concurrency_c =
      merged.camat_value > 0.0 ? merged.amat_value / merged.camat_value : 1.0;
  return merged;
}

}  // namespace

Characterization characterize(const WorkloadSpec& spec, const sim::SystemConfig& baseline,
                              const CharacterizeOptions& options) {
  C2B_REQUIRE(options.instructions >= 1000, "characterization window too small");
  C2B_SPAN("aps/characterize");
  Characterization out;

  auto generator = spec.make_generator(1.0, options.seed);
  const Trace trace = generator->generate(options.instructions);

  // ---- Which windows to simulate ----
  std::vector<Trace> windows;
  std::vector<double> weights;
  if (options.use_simpoints) {
    const SimPointResult sp = pick_simpoints(trace, options.simpoint);
    for (const SimPoint& p : sp.points) {
      windows.push_back(extract_interval(trace, p.interval_index,
                                         options.simpoint.interval_length));
      weights.push_back(p.weight);
    }
  } else {
    windows.push_back(trace);
    weights.push_back(1.0);
  }

  // ---- Simulate each window on the real and on the perfect hierarchy ----
  std::vector<TimelineMetrics> metrics;
  double cpi_real = 0.0, cpi_perfect = 0.0, f_mem = 0.0;
  sim::SystemConfig perfect = baseline;
  perfect.hierarchy.perfect_memory = true;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const sim::SystemResult real = sim::simulate_single_core(baseline, windows[i]);
    const sim::SystemResult ideal = sim::simulate_single_core(perfect, windows[i]);
    out.simulation_runs += 2;
    C2B_COUNTER_ADD("aps.characterize.simulations", 2);
    out.simulated_instructions += windows[i].records.size();
    out.memory_accesses +=
        real.cores[0].memory_accesses + ideal.cores[0].memory_accesses;
    metrics.push_back(real.cores[0].camat);
    cpi_real += weights[i] * real.cores[0].cpi;
    cpi_perfect += weights[i] * ideal.cores[0].cpi;
    f_mem += weights[i] * real.cores[0].f_mem;
    if (i == 0) out.hierarchy = real.hierarchy;
  }
  out.camat = weighted_merge(metrics, weights);
  out.measured_cpi = cpi_real;
  out.cpi_exe = cpi_perfect;

  // ---- Stack-distance miss curve over the whole trace ----
  StackDistanceAnalyzer stack(baseline.hierarchy.l1_geometry.line_bytes);
  stack.consume(trace);
  out.l1_power_law = fit_miss_power_law(stack.miss_ratio_curve());

  // ---- Assemble the AppProfile ----
  AppProfile app;
  app.ic0 = static_cast<double>(spec.base_instructions);
  app.f_mem = f_mem;
  app.f_seq = spec.f_seq;
  app.g = spec.g;
  app.working_set_lines0 = std::max<double>(
      1.0, static_cast<double>(trace.distinct_lines(baseline.hierarchy.l1_geometry.line_bytes)));
  app.hit_concurrency = out.camat.camat_params.hit_concurrency;
  app.miss_concurrency = out.camat.camat_params.miss_concurrency;

  const double mr = out.camat.amat_params.miss_rate;
  const double amp = out.camat.amat_params.miss_penalty;
  app.pure_miss_fraction =
      mr > 0.0 ? clamp(out.camat.camat_params.pure_miss_rate / mr, 0.0, 1.0) : 0.6;
  app.pure_penalty_fraction =
      amp > 0.0 ? clamp(out.camat.camat_params.pure_miss_penalty / amp, 0.0, 1.5) : 0.8;

  // Overlap ratio (Eq. 7 rearranged): the share of the concurrent stall the
  // OoO core hides behind computation.
  const double camat_v = out.camat.camat_value;
  if (f_mem > 0.0 && camat_v > 0.0) {
    const double apparent_stall = std::max(0.0, cpi_real - cpi_perfect);
    app.overlap_ratio = clamp(1.0 - apparent_stall / (f_mem * camat_v), 0.0, 1.0);
  } else {
    app.overlap_ratio = 0.0;
  }
  out.app = app;
  return out;
}

}  // namespace c2b
