#include "c2b/aps/surrogate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "c2b/ann/mlp.h"
#include "c2b/common/assert.h"
#include "c2b/common/rng.h"
#include "c2b/obs/journal.h"
#include "c2b/obs/obs.h"

namespace c2b {
namespace {

// Training-schedule constants. The first fit gets the long budget (the net
// starts from Xavier noise); later rounds warm-start from the previous
// weights and only need to absorb the newly admitted class. Both fits stop
// early on an MSE plateau (Mlp::fit), so these are ceilings.
constexpr int kWarmupEpochs = 300;
constexpr int kRoundEpochs = 120;
/// Stream-seed salt for the surrogate's MLP, distinct from every other
/// derive_stream_seed consumer (check oracles use 7e3..9e4, run_ann_dse
/// uses the raw option seed).
constexpr std::uint64_t kSurrogateSeedSalt = 7'777'000;
/// Exact fallback sizing: at least this many points, or 1% of the space,
/// whichever is larger — plus the predicted-best member of every pruned
/// class (added separately so no class goes entirely unverified).
constexpr std::size_t kFallbackMin = 32;
constexpr std::size_t kFallbackFraction = 100;
/// Fit-cost ceiling: past this many streamed samples, each round trains on
/// a deterministic strided subsample instead of the full set. Without the
/// cap a sweep whose landscape is flat across classes (nothing prunable,
/// everything admitted) would spend more time in backprop than the
/// exhaustive sweep spends simulating.
constexpr std::size_t kTrainCap = 2048;

/// The MLP sees log2 coordinates: every axis (areas, N, issue, ROB) is
/// sampled at near-power-of-two steps, so the log2 grid is close to
/// uniform and the min/max scaler wastes no range on the 16x spread.
Vector features_of(const std::vector<double>& point) {
  Vector f(point.size());
  for (std::size_t d = 0; d < point.size(); ++d) f[d] = std::log2(point[d]);
  return f;
}

std::uint32_t cores_of(const std::vector<double>& point) {
  return static_cast<std::uint32_t>(std::lround(point[kAxisN]));
}

struct ClassState {
  std::uint32_t cores = 0;
  std::vector<std::size_t> members;  ///< indices into the point list
  bool admitted = false;
};

/// A simulated point's objective coordinates, for Pareto-mode pruning.
struct SimPoint {
  double time = 0.0;
  double power = 0.0;
  double area = 0.0;
};

bool sim_dominates(const SimPoint& a, const SimPoint& b) {
  if (a.time > b.time || a.power > b.power || a.area > b.area) return false;
  return a.time < b.time || a.power < b.power || a.area < b.area;
}

}  // namespace

SurrogateSweepResult surrogate_sweep(const DseContext& context,
                                     const std::vector<std::vector<double>>& points,
                                     const SurrogateObjectives* pareto) {
  C2B_SPAN("aps/surrogate_sweep");
  SurrogateSweepResult result;
  result.outcomes.resize(points.size());
  result.simulated.assign(points.size(), 0);
  result.stats.points_total = points.size();
  if (points.empty()) return result;
  if (pareto) {
    C2B_REQUIRE(pareto->power.size() == points.size() && pareto->area.size() == points.size(),
                "Pareto objectives must parallel the point list");
  }

  // Group by trace-equivalence class. Within one context the class key
  // varies only through N (see trace_class_key), so the core count *is*
  // the class; a std::map keeps the round ordering deterministic.
  std::map<std::uint32_t, std::vector<std::size_t>> by_cores;
  for (std::size_t i = 0; i < points.size(); ++i) by_cores[cores_of(points[i])].push_back(i);
  std::vector<ClassState> classes;
  classes.reserve(by_cores.size());
  for (auto& [cores, members] : by_cores)
    classes.push_back(ClassState{cores, std::move(members), false});
  result.stats.classes_total = classes.size();

  // Training set: (log2 point -> log time) in the order results streamed
  // in — a pure function of prior simulation results, so identical at any
  // thread count.
  std::vector<Vector> train_x;
  std::vector<double> train_y;
  auto simulate = [&](const std::vector<std::size_t>& indices) {
    if (indices.empty()) return;
    std::vector<std::vector<double>> subset;
    subset.reserve(indices.size());
    for (const std::size_t idx : indices) subset.push_back(points[idx]);
    BatchReplayStats round_batch;
    const std::vector<BatchSimOutcome> outcomes =
        simulate_design_times_batched(context, subset, &round_batch);
    result.batch.merge(round_batch);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const std::size_t idx = indices[k];
      result.outcomes[idx] = outcomes[k];
      result.simulated[idx] = 1;
      if (outcomes[k].time > 0.0) {
        train_x.push_back(features_of(points[idx]));
        train_y.push_back(std::log(outcomes[k].time));
      }
    }
    result.stats.points_simulated += indices.size();
  };

  // --- warmup: a strided exact sample from every class ---------------------
  const std::size_t warmup = std::max<std::size_t>(1, context.surrogate_warmup);
  std::vector<std::size_t> warmup_indices;
  for (const ClassState& cls : classes) {
    const std::size_t take = std::min(warmup, cls.members.size());
    const std::size_t stride = cls.members.size() / take;
    for (std::size_t j = 0; j < take; ++j) warmup_indices.push_back(cls.members[j * stride]);
  }
  simulate(warmup_indices);
  result.stats.warmup_sims = warmup_indices.size();

  MlpConfig mlp_config;
  mlp_config.layer_sizes = {points[0].size(), 16, 16, 1};
  mlp_config.seed = Rng::derive_stream_seed(context.seed, kSurrogateSeedSalt);
  Mlp model(mlp_config);
  auto refit = [&](int epochs) {
    if (train_x.size() <= kTrainCap) {
      model.fit(train_x, train_y, epochs);
      return;
    }
    // Strided subsample over the streamed order: pure function of the
    // sample count, so retraining stays thread-count independent.
    const std::size_t stride = (train_x.size() + kTrainCap - 1) / kTrainCap;
    std::vector<Vector> sub_x;
    std::vector<double> sub_y;
    sub_x.reserve(kTrainCap);
    sub_y.reserve(kTrainCap);
    for (std::size_t k = 0; k < train_x.size(); k += stride) {
      sub_x.push_back(train_x[k]);
      sub_y.push_back(train_y[k]);
    }
    model.fit(sub_x, sub_y, epochs);
  };
  refit(kWarmupEpochs);
  ++result.stats.rounds;

  const double band = std::max(0.0, context.surrogate_band);
  const double admit_factor = 1.0 + band;

  // Per-round scratch, refreshed from the current model: predicted time for
  // every unsimulated point (+inf where simulated, so mins ignore them).
  std::vector<double> predicted(points.size(), std::numeric_limits<double>::infinity());
  auto repredict = [&]() {
    std::vector<std::size_t> pending;
    std::vector<Vector> feats;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (result.simulated[i]) {
        predicted[i] = std::numeric_limits<double>::infinity();
      } else {
        pending.push_back(i);
        feats.push_back(features_of(points[i]));
      }
    }
    const std::vector<double> log_pred = model.predict_batch(feats);
    for (std::size_t k = 0; k < pending.size(); ++k)
      predicted[pending[k]] = std::exp(log_pred[k]);
    return pending;
  };

  double incumbent = std::numeric_limits<double>::infinity();
  std::vector<SimPoint> frontier;
  auto refresh_incumbent = [&]() {
    incumbent = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < points.size(); ++i)
      if (result.simulated[i]) incumbent = std::min(incumbent, result.outcomes[i].time);
    if (!pareto) return;
    std::vector<SimPoint> sims;
    for (std::size_t i = 0; i < points.size(); ++i)
      if (result.simulated[i])
        sims.push_back(SimPoint{result.outcomes[i].time, pareto->power[i], pareto->area[i]});
    frontier.clear();
    for (std::size_t a = 0; a < sims.size(); ++a) {
      bool dominated = false;
      for (std::size_t b = 0; b < sims.size(); ++b)
        if (b != a && sim_dominates(sims[b], sims[a])) {
          dominated = true;
          break;
        }
      if (!dominated) frontier.push_back(sims[a]);
    }
  };

  // A point is confidently prunable when its *inflated-by-the-band* truth
  // would still lose: plain mode against the incumbent time, Pareto mode
  // against some frontier point that is no worse in power and area. Ties
  // and near-ties always fall inside the band, so equal-coordinate frontier
  // members are never pruned away.
  auto prunable = [&](std::size_t i) {
    if (!pareto) return predicted[i] > incumbent * admit_factor;
    for (const SimPoint& s : frontier)
      if (s.power <= pareto->power[i] && s.area <= pareto->area[i] &&
          s.time * admit_factor <= predicted[i])
        return true;
    return false;
  };

  // --- scheduling rounds: admit the most promising class, retrain ----------
  for (;;) {
    repredict();
    refresh_incumbent();
    std::size_t best_class = classes.size();
    double best_pred = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (classes[c].admitted) continue;
      double class_pred = std::numeric_limits<double>::infinity();
      bool keepable = false;
      for (const std::size_t idx : classes[c].members) {
        if (result.simulated[idx]) continue;
        if (!prunable(idx)) {
          keepable = true;
          class_pred = std::min(class_pred, predicted[idx]);
        }
      }
      if (keepable && class_pred < best_pred) {
        best_pred = class_pred;
        best_class = c;
      }
    }
    if (best_class == classes.size()) break;  // every remaining class is outside the band

    ClassState& cls = classes[best_class];
    cls.admitted = true;
    std::vector<std::size_t> todo;
    for (const std::size_t idx : cls.members)
      if (!result.simulated[idx]) todo.push_back(idx);
    simulate(todo);
    refit(kRoundEpochs);
    ++result.stats.rounds;
    if (obs::RunJournal* journal = obs::active_journal())
      journal->emit(obs::JournalEvent("surrogate_round")
                        .count("round", result.stats.rounds)
                        .num("class_n", static_cast<double>(cls.cores))
                        .count("class_members", todo.size())
                        .num("predicted_best", best_pred)
                        .num("incumbent", incumbent)
                        .count("trained_samples", train_y.size()));
  }

  // --- exact fallback pass --------------------------------------------------
  // Re-rank what is left under the final model and simulate the predicted
  // neighborhood of the optimum for real: the global top K plus the
  // predicted-best member of every pruned class. This is what turns the
  // band from a heuristic into a checked one — the reported optimum can
  // only come from a simulated point.
  const std::vector<std::size_t> pending = repredict();
  refresh_incumbent();
  if (!pending.empty()) {
    std::vector<std::size_t> ranked = pending;
    std::sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
      if (predicted[a] != predicted[b]) return predicted[a] < predicted[b];
      return a < b;
    });
    const std::size_t top_k =
        std::min(ranked.size(), std::max(kFallbackMin, points.size() / kFallbackFraction));
    std::vector<std::uint8_t> take(points.size(), 0);
    for (std::size_t k = 0; k < top_k; ++k) take[ranked[k]] = 1;
    for (const ClassState& cls : classes) {
      if (cls.admitted) continue;
      std::size_t best_idx = points.size();
      for (const std::size_t idx : cls.members) {
        if (result.simulated[idx]) continue;
        if (best_idx == points.size() || predicted[idx] < predicted[best_idx]) best_idx = idx;
      }
      if (best_idx != points.size()) take[best_idx] = 1;
    }
    std::vector<std::size_t> fallback;
    for (std::size_t i = 0; i < points.size(); ++i)
      if (take[i]) fallback.push_back(i);
    simulate(fallback);
    result.stats.fallback_sims = fallback.size();
  }

  // --- accounting + final model quality ------------------------------------
  for (const ClassState& cls : classes) {
    bool full = true;
    for (const std::size_t idx : cls.members)
      if (!result.simulated[idx]) {
        full = false;
        break;
      }
    if (cls.admitted || full)
      ++result.stats.classes_simulated;
    else
      ++result.stats.classes_pruned;
  }
  result.stats.trained_samples = train_y.size();

  // Final-model mean relative error in the *time* domain over everything
  // simulated (fallback points included, which the net never trained on).
  {
    std::vector<Vector> eval_x;
    std::vector<std::size_t> eval_idx;
    for (std::size_t i = 0; i < points.size(); ++i)
      if (result.simulated[i] && result.outcomes[i].time > 0.0) {
        eval_x.push_back(features_of(points[i]));
        eval_idx.push_back(i);
      }
    if (!eval_x.empty()) {
      const std::vector<double> log_pred = model.predict_batch(eval_x);
      double sum = 0.0;
      for (std::size_t k = 0; k < eval_idx.size(); ++k) {
        const double truth = result.outcomes[eval_idx[k]].time;
        sum += std::fabs(std::exp(log_pred[k]) - truth) / truth;
      }
      result.stats.mre = sum / static_cast<double>(eval_idx.size());
    }
  }

  C2B_COUNTER_ADD("exec.surrogate.trained_samples", result.stats.trained_samples);
  C2B_COUNTER_ADD("exec.surrogate.classes_pruned", result.stats.classes_pruned);
  C2B_COUNTER_ADD("exec.surrogate.classes_simulated", result.stats.classes_simulated);
  C2B_COUNTER_ADD("exec.surrogate.fallback_sims", result.stats.fallback_sims);
  C2B_GAUGE_SET("exec.surrogate.mre", result.stats.mre);
  if (obs::RunJournal* journal = obs::active_journal())
    journal->emit(obs::JournalEvent("surrogate_summary")
                      .count("classes_total", result.stats.classes_total)
                      .count("classes_simulated", result.stats.classes_simulated)
                      .count("classes_pruned", result.stats.classes_pruned)
                      .count("points_total", result.stats.points_total)
                      .count("points_simulated", result.stats.points_simulated)
                      .count("warmup_sims", result.stats.warmup_sims)
                      .count("fallback_sims", result.stats.fallback_sims)
                      .count("trained_samples", result.stats.trained_samples)
                      .count("rounds", result.stats.rounds)
                      .num("mre", result.stats.mre));
  return result;
}

}  // namespace c2b
