#include "c2b/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <sstream>

#include "c2b/common/log.h"
#include "c2b/obs/registry.h"

namespace c2b::obs {
namespace {

constexpr std::size_t kDefaultCapacity = 1 << 16;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread ring of closed spans. The owning thread writes; collectors
/// read under the buffer mutex (uncontended except during export).
struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t id, std::size_t capacity)
      : thread_id(id), ring(capacity) {}

  std::uint32_t thread_id;
  std::uint32_t depth = 0;          ///< open recorded spans on this thread
  std::uint64_t span_counter = 0;   ///< for the sampling period
  std::uint64_t written = 0;        ///< total events ever recorded
  std::vector<TraceEvent> ring;
  std::mutex mutex;

  void record(const TraceEvent& event) {
    const std::lock_guard<std::mutex> lock(mutex);
    ring[written % ring.size()] = event;
    ++written;
  }
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  ///< outlive their threads
  std::uint32_t next_thread_id = 0;
  std::atomic<std::uint32_t> sample_period{1};
  std::atomic<std::size_t> capacity{kDefaultCapacity};
  std::uint64_t epoch_ns = now_ns();
};

TraceState& state() {
  static TraceState s;
  return s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    auto b = std::make_shared<ThreadBuffer>(s.next_thread_id++,
                                            s.capacity.load(std::memory_order_relaxed));
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

std::string json_escape(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    const char ch = *p;
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
      out += buf;
    } else {
      out += ch;
    }
  }
  return out;
}

}  // namespace

void set_span_sample_period(std::uint32_t period) noexcept {
  state().sample_period.store(period == 0 ? 1 : period, std::memory_order_relaxed);
}

std::uint32_t span_sample_period() noexcept {
  return state().sample_period.load(std::memory_order_relaxed);
}

void set_trace_buffer_capacity(std::size_t events) noexcept {
  state().capacity.store(events == 0 ? 1 : events, std::memory_order_relaxed);
}

std::vector<TraceEvent> collect_trace_events() {
  TraceState& s = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    buffers = s.buffers;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    const std::uint64_t kept = std::min<std::uint64_t>(buffer->written, buffer->ring.size());
    const std::uint64_t first = buffer->written - kept;
    for (std::uint64_t i = 0; i < kept; ++i)
      events.push_back(buffer->ring[(first + i) % buffer->ring.size()]);
  }
  std::sort(events.begin(), events.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.start_ns < b.start_ns;
  });
  return events;
}

std::uint64_t dropped_trace_events() noexcept {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::uint64_t dropped = 0;
  for (const auto& buffer : s.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    if (buffer->written > buffer->ring.size()) dropped += buffer->written - buffer->ring.size();
  }
  return dropped;
}

void clear_trace_events() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& buffer : s.buffers) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->written = 0;
  }
}

std::string chrome_trace_json() {
  const std::vector<TraceEvent> events = collect_trace_events();
  std::ostringstream os;
  // Chrome's ts/dur are microseconds; keep ns precision as a zero-padded
  // fractional part.
  auto microseconds = [&os](std::uint64_t ns) {
    os << ns / 1000 << '.' << std::setw(3) << std::setfill('0') << ns % 1000
       << std::setfill(' ');
  };
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"c2b\",\"ph\":\"X\""
       << ",\"pid\":1,\"tid\":" << e.thread_id << ",\"ts\":";
    microseconds(e.start_ns);
    os << ",\"dur\":";
    microseconds(e.duration_ns);
    os << ",\"args\":{\"depth\":" << e.depth;
    if (e.has_arg) os << ",\"v\":" << e.arg;
    os << "}}";
  }
  os << "]}";
  return os.str();
}

bool write_chrome_trace(const std::string& path) {
  std::error_code ec;
  const std::filesystem::path file(path);
  if (file.has_parent_path()) std::filesystem::create_directories(file.parent_path(), ec);
  std::ofstream out(file);
  if (!out) {
    C2B_LOG(LogLevel::kWarn, "obs") << "cannot write trace to " << path;
    return false;
  }
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

namespace detail {

std::uint64_t begin_span() noexcept {
  if (!enabled()) return 0;
  ThreadBuffer& buffer = local_buffer();
  const std::uint32_t period = span_sample_period();
  if (period > 1 && buffer.span_counter++ % period != 0) return 0;
  ++buffer.depth;
  // +1 reserves 0 as the "not recording" token (the clock can return 0).
  return now_ns() + 1;
}

void end_span(const char* name, std::uint64_t token, std::uint64_t arg,
              bool has_arg) noexcept {
  if (token == 0) return;
  ThreadBuffer& buffer = local_buffer();
  if (buffer.depth > 0) --buffer.depth;
  TraceEvent event;
  event.name = name;
  const std::uint64_t start = token - 1;
  const std::uint64_t epoch = state().epoch_ns;
  event.start_ns = start > epoch ? start - epoch : 0;
  const std::uint64_t end = now_ns();
  event.duration_ns = end > start ? end - start : 0;
  event.thread_id = buffer.thread_id;
  event.depth = buffer.depth;
  event.arg = arg;
  event.has_arg = has_arg;
  buffer.record(event);
}

}  // namespace detail
}  // namespace c2b::obs
