#include "c2b/obs/export.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "c2b/common/log.h"

namespace c2b::obs {
namespace {

const char* kind_name(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
      out += buf;
    } else {
      out += ch;
    }
  }
  return out;
}

/// JSON has no Inf/NaN literals; metrics should never produce them, but a
/// malformed dump must not poison the whole file.
void json_number(std::ostringstream& os, double value) {
  if (std::isfinite(value)) {
    os << value;
  } else {
    os << "null";
  }
}

}  // namespace

Table metrics_table(const Registry& registry) {
  Table table({"metric", "kind", "count", "value", "mean", "stddev", "min", "max"}, 9);
  for (const MetricSample& s : registry.snapshot()) {
    table.add_row({s.name, std::string(kind_name(s.kind)),
                   static_cast<std::int64_t>(s.count), s.value, s.mean, s.stddev, s.min,
                   s.max});
  }
  return table;
}

bool write_metrics_csv(const std::string& path, const Registry& registry) {
  return metrics_table(registry).write_csv(path);
}

std::string metrics_json(const Registry& registry) {
  const std::vector<MetricSample> samples = registry.snapshot();
  std::ostringstream os;
  os.precision(17);

  auto emit_section = [&](const char* section, MetricSample::Kind kind, auto&& body) {
    os << '"' << section << "\":{";
    bool first = true;
    for (const MetricSample& s : samples) {
      if (s.kind != kind) continue;
      if (!first) os << ',';
      first = false;
      os << '"' << json_escape(s.name) << "\":";
      body(s);
    }
    os << '}';
  };

  os << '{';
  emit_section("counters", MetricSample::Kind::kCounter,
               [&](const MetricSample& s) { os << s.count; });
  os << ',';
  emit_section("gauges", MetricSample::Kind::kGauge,
               [&](const MetricSample& s) { json_number(os, s.value); });
  os << ',';
  emit_section("histograms", MetricSample::Kind::kHistogram, [&](const MetricSample& s) {
    os << "{\"count\":" << s.count << ",\"sum\":";
    json_number(os, s.value);
    os << ",\"mean\":";
    json_number(os, s.mean);
    os << ",\"stddev\":";
    json_number(os, s.stddev);
    os << ",\"min\":";
    json_number(os, s.min);
    os << ",\"max\":";
    json_number(os, s.max);
    os << ",\"p50\":";
    json_number(os, s.p50);
    os << ",\"p90\":";
    json_number(os, s.p90);
    os << ",\"p99\":";
    json_number(os, s.p99);
    os << ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [low, count] : s.buckets) {
      if (!first_bucket) os << ',';
      first_bucket = false;
      os << "{\"low\":";
      json_number(os, low);
      os << ",\"count\":" << count << '}';
    }
    os << "]}";
  });
  os << '}';
  return os.str();
}

bool write_metrics_json(const std::string& path, const Registry& registry) {
  std::error_code ec;
  const std::filesystem::path file(path);
  if (file.has_parent_path()) std::filesystem::create_directories(file.parent_path(), ec);
  std::ofstream out(file);
  if (!out) {
    C2B_LOG(LogLevel::kWarn, "obs") << "cannot write metrics to " << path;
    return false;
  }
  out << metrics_json(registry);
  return static_cast<bool>(out);
}

}  // namespace c2b::obs
