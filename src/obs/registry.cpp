#include "c2b/obs/registry.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "c2b/common/assert.h"

namespace c2b::obs {
namespace {

std::atomic<bool> g_enabled{true};

/// Relaxed CAS-min/max over an atomic<double>.
void atomic_min(std::atomic<double>& slot, double x) noexcept {
  double current = slot.load(std::memory_order_relaxed);
  while (x < current &&
         !slot.compare_exchange_weak(current, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double x) noexcept {
  double current = slot.load(std::memory_order_relaxed);
  while (x > current &&
         !slot.compare_exchange_weak(current, x, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

ConcurrentHistogram::ConcurrentHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  C2B_REQUIRE(hi > lo, "histogram needs hi > lo");
  C2B_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

void ConcurrentHistogram::record(double x, std::uint64_t weight) noexcept {
  const double offset = (x - lo_) / width_;
  std::size_t bin = 0;
  if (offset > 0.0) {
    bin = std::min(counts_.size() - 1, static_cast<std::size_t>(offset));
  }
  counts_[bin].fetch_add(weight, std::memory_order_relaxed);
  count_.fetch_add(weight, std::memory_order_relaxed);
  const double w = static_cast<double>(weight);
  sum_.fetch_add(w * x, std::memory_order_relaxed);
  sum_squares_.fetch_add(w * x * x, std::memory_order_relaxed);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

double ConcurrentHistogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

std::uint64_t ConcurrentHistogram::bin_count(std::size_t bin) const noexcept {
  return bin < counts_.size() ? counts_[bin].load(std::memory_order_relaxed) : 0;
}

double ConcurrentHistogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double ConcurrentHistogram::stddev() const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double m = mean();
  const double variance =
      sum_squares_.load(std::memory_order_relaxed) / static_cast<double>(n) - m * m;
  return variance > 0.0 ? std::sqrt(variance) : 0.0;
}

double ConcurrentHistogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double ConcurrentHistogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double ConcurrentHistogram::percentile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const double in_bin =
        static_cast<double>(counts_[bin].load(std::memory_order_relaxed));
    if (in_bin == 0.0) continue;
    if (cumulative + in_bin >= target) {
      const double frac = (target - cumulative) / in_bin;
      const double estimate = bin_low(bin) + frac * width_;
      // Clamp to observed range: edge buckets absorb out-of-range samples,
      // so their geometric span can exceed what was actually recorded.
      return std::min(max(), std::max(min(), estimate));
    }
    cumulative += in_bin;
  }
  return max();  // racing writers: fall back to the observed maximum
}

void ConcurrentHistogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  sum_squares_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

ConcurrentHistogram& Registry::histogram(std::string_view name, double lo, double hi,
                                         std::size_t bins) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<ConcurrentHistogram>(lo, hi, bins))
             .first;
  return *it->second;
}

std::vector<MetricSample> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = name;
    s.count = counter->value();
    s.value = static_cast<double>(s.count);
    out.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = name;
    s.value = gauge->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = name;
    s.count = histogram->count();
    s.value = histogram->sum();
    s.mean = histogram->mean();
    s.stddev = histogram->stddev();
    s.min = histogram->min();
    s.max = histogram->max();
    s.p50 = histogram->percentile(0.50);
    s.p90 = histogram->percentile(0.90);
    s.p99 = histogram->percentile(0.99);
    s.buckets.reserve(histogram->bins());
    for (std::size_t b = 0; b < histogram->bins(); ++b)
      s.buckets.emplace_back(histogram->bin_low(b), histogram->bin_count(b));
    out.push_back(std::move(s));
  }
  return out;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

}  // namespace c2b::obs
