#include "c2b/obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

namespace c2b::obs {
namespace {

std::string format_duration(double ms) {
  char buf[48];
  if (ms >= 120'000.0)
    std::snprintf(buf, sizeof buf, "%dm %02ds", static_cast<int>(ms / 60'000.0),
                  static_cast<int>(ms / 1000.0) % 60);
  else if (ms >= 1000.0)
    std::snprintf(buf, sizeof buf, "%.2f s", ms / 1000.0);
  else
    std::snprintf(buf, sizeof buf, "%.2f ms", ms);
  return buf;
}

}  // namespace

double exact_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(position);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

RunReport build_report(const std::vector<JournalRecord>& records,
                       JournalReadStats stats) {
  RunReport report;
  report.read_stats = stats;

  std::map<std::string, std::size_t> phase_index;
  for (const JournalRecord& record : records) {
    report.total_wall_ms = std::max(report.total_wall_ms, record.ts_ms);
    if (record.type == "run_begin" || record.type == "sweep_config") {
      report.command = record.str("command", report.command);
      report.workload = record.str("workload", report.workload);
      report.workload_uid = record.str("workload_uid", report.workload_uid);
      report.threads = record.num("threads", report.threads);
    } else if (record.type == "batch_stats") {
      report.chunks_shared += record.num("chunks_shared");
      report.regen_avoided_accesses += record.num("regen_avoided_accesses");
      report.simd_steps += record.num("simd_steps");
      report.simd_peels += record.num("simd_peels");
      report.simd_lanes_active += record.num("simd_lanes_active");
    } else if (record.type == "run_end") {
      report.saw_run_end = true;
      report.total_wall_ms = std::max(report.total_wall_ms, record.ts_ms);
      report.points = record.num("points", report.points);
      report.cache_hits = record.num("cache_hits", report.cache_hits);
      report.chunks_shared = record.num("chunks_shared", report.chunks_shared);
      report.regen_avoided_accesses =
          record.num("regen_avoided_accesses", report.regen_avoided_accesses);
      report.simd_steps = record.num("simd_steps", report.simd_steps);
      report.simd_peels = record.num("simd_peels", report.simd_peels);
      report.simd_lanes_active = record.num("simd_lanes_active", report.simd_lanes_active);
    } else if (record.type == "phase_end") {
      const std::string name = record.str("name", "?");
      const auto [it, inserted] = phase_index.emplace(name, report.phases.size());
      if (inserted) report.phases.push_back({name, 0.0, 0});
      RunReport::Phase& phase = report.phases[it->second];
      phase.wall_ms += record.num("wall_ms");
      ++phase.count;
    } else if (record.type == "class_completed") {
      RunReport::ClassStat entry;
      entry.cores = record.num("cores");
      entry.members = record.num("members");
      entry.wall_ms = record.num("wall_ms");
      entry.config = record.str("config");
      report.simulated_members += entry.members;
      report.simulated_wall_ms += entry.wall_ms;
      report.classes.push_back(std::move(entry));
    } else if (record.type == "cache_peel") {
      report.points += record.num("points");
      report.cache_hits += record.num("hits");
      report.cache_hits_disk += record.num("disk_hits");
    } else if (record.type == "cache_tiers") {
      report.cache_tiers_seen = true;
      report.disk_attached = record.num("disk_attached") != 0.0;
      report.mem_hits = record.num("mem_hits");
      report.mem_misses = record.num("misses");
      report.mem_entries = record.num("mem_entries");
      report.evictions = record.num("evictions");
      report.disk_hits = record.num("disk_hits");
      report.disk_misses = record.num("disk_misses");
      report.disk_entries = record.num("disk_entries");
      report.disk_flushes = record.num("disk_flushes");
      report.disk_drops = record.num("disk_drops");
    } else if (record.type == "point") {
      RunReport::PointSample sample;
      sample.n_cores = record.num("n");
      sample.a0 = record.num("a0");
      sample.a1 = record.num("a1");
      sample.a2 = record.num("a2");
      sample.objective = record.num("objective");
      sample.cached = record.num("cached") != 0.0;
      report.explored.push_back(sample);
    } else if (record.type == "frontier_point") {
      RunReport::FrontierSample sample;
      sample.n_cores = record.num("n");
      sample.a0 = record.num("a0");
      sample.a1 = record.num("a1");
      sample.a2 = record.num("a2");
      sample.time = record.num("time");
      sample.power = record.num("power");
      sample.area = record.num("area");
      report.frontier.push_back(sample);
    } else if (record.type == "constraint") {
      RunReport::ConstraintStat stat;
      stat.name = record.str("name", "?");
      stat.budget = record.num("budget");
      stat.infeasible = record.num("infeasible");
      stat.binding = record.num("binding");
      report.constraints.push_back(std::move(stat));
    } else if (record.type == "pareto_summary") {
      report.pareto_feasible = record.num("feasible", report.pareto_feasible);
      report.pareto_grid_points = record.num("grid_points", report.pareto_grid_points);
    } else if (record.type == "surrogate_round") {
      RunReport::SurrogateRound round;
      round.round = record.num("round");
      round.class_n = record.num("class_n");
      round.class_members = record.num("class_members");
      round.predicted_best = record.num("predicted_best");
      round.incumbent = record.num("incumbent");
      round.trained_samples = record.num("trained_samples");
      report.surrogate_rounds.push_back(round);
    } else if (record.type == "surrogate_summary") {
      report.surrogate_seen = true;
      report.surrogate_classes_total = record.num("classes_total");
      report.surrogate_classes_simulated = record.num("classes_simulated");
      report.surrogate_classes_pruned = record.num("classes_pruned");
      report.surrogate_points_total = record.num("points_total");
      report.surrogate_points_simulated = record.num("points_simulated");
      report.surrogate_warmup_sims = record.num("warmup_sims");
      report.surrogate_fallback_sims = record.num("fallback_sims");
      report.surrogate_trained_samples = record.num("trained_samples");
      report.surrogate_rounds_total = record.num("rounds");
      report.surrogate_mre = record.num("mre");
    }
  }

  std::vector<double> walls;
  walls.reserve(report.classes.size());
  for (const RunReport::ClassStat& entry : report.classes) walls.push_back(entry.wall_ms);
  report.class_wall_p50 = exact_quantile(walls, 0.50);
  report.class_wall_p90 = exact_quantile(walls, 0.90);
  report.class_wall_p99 = exact_quantile(walls, 0.99);

  if (report.simulated_members > 0.0 && report.cache_hits > 0.0) {
    const double per_member_ms = report.simulated_wall_ms / report.simulated_members;
    report.est_saved_ms = report.cache_hits * per_member_ms;
    // Attribute savings per tier: a disk hit and a memory hit each peel one
    // simulation, so the split follows the hit counts.
    const double disk_hits = std::min(report.cache_hits_disk, report.cache_hits);
    report.est_saved_disk_ms = disk_hits * per_member_ms;
    report.est_saved_mem_ms = report.est_saved_ms - report.est_saved_disk_ms;
    if (report.simulated_wall_ms > 0.0)
      report.batch_speedup =
          (report.simulated_wall_ms + report.est_saved_ms) / report.simulated_wall_ms;
  }

  std::stable_sort(report.classes.begin(), report.classes.end(),
                   [](const RunReport::ClassStat& a, const RunReport::ClassStat& b) {
                     return a.wall_ms > b.wall_ms;
                   });
  return report;
}

std::string render_report(const RunReport& report, std::size_t top_k) {
  std::string out;
  char line[256];

  out += "== run ==\n";
  std::snprintf(line, sizeof line, "  command      %s\n",
                report.command.empty() ? "?" : report.command.c_str());
  out += line;
  if (!report.workload.empty()) {
    std::snprintf(line, sizeof line, "  workload     %s (uid %s)\n",
                  report.workload.c_str(),
                  report.workload_uid.empty() ? "?" : report.workload_uid.c_str());
    out += line;
  }
  std::snprintf(line, sizeof line, "  threads      %.0f\n", report.threads);
  out += line;
  std::snprintf(line, sizeof line, "  wall time    %s%s\n",
                format_duration(report.total_wall_ms).c_str(),
                report.saw_run_end ? "" : "  [no run_end: journal ends mid-run]");
  out += line;
  if (report.read_stats.skipped > 0) {
    std::snprintf(line, sizeof line,
                  "  reader       %zu lines, %zu torn/corrupt skipped\n",
                  report.read_stats.lines, report.read_stats.skipped);
    out += line;
  }

  if (!report.phases.empty()) {
    out += "\n== phase time breakdown ==\n";
    for (const RunReport::Phase& phase : report.phases) {
      const double pct = report.total_wall_ms > 0.0
                             ? 100.0 * phase.wall_ms / report.total_wall_ms
                             : 0.0;
      std::snprintf(line, sizeof line, "  %-18s %12s  %5.1f%%  (x%zu)\n",
                    phase.name.c_str(), format_duration(phase.wall_ms).c_str(), pct,
                    phase.count);
      out += line;
    }
  }

  out += "\n== cache/batch effectiveness ==\n";
  std::snprintf(line, sizeof line, "  design points          %.0f\n", report.points);
  out += line;
  std::snprintf(line, sizeof line, "  cache hits peeled      %.0f (%.1f%%)\n",
                report.cache_hits,
                report.points > 0.0 ? 100.0 * report.cache_hits / report.points : 0.0);
  out += line;
  std::snprintf(line, sizeof line, "  simulated members      %.0f in %zu classes\n",
                report.simulated_members, report.classes.size());
  out += line;
  std::snprintf(line, sizeof line, "  chunks shared          %.0f\n",
                report.chunks_shared);
  out += line;
  std::snprintf(line, sizeof line, "  regen avoided          %.0f accesses\n",
                report.regen_avoided_accesses);
  out += line;
  if (report.simd_steps > 0.0) {
    std::snprintf(line, sizeof line,
                  "  simd kernel            %.0f steps | %.0f peeled records | "
                  "%.0f lane-rounds\n",
                  report.simd_steps, report.simd_peels, report.simd_lanes_active);
    out += line;
  }
  std::snprintf(line, sizeof line,
                "  est. cache savings     %s  (%.2fx speedup attribution)\n",
                format_duration(report.est_saved_ms).c_str(), report.batch_speedup);
  out += line;

  if (report.cache_tiers_seen || report.cache_hits_disk > 0.0) {
    out += "\n== cache ==\n";
    std::snprintf(line, sizeof line,
                  "  memory tier            %.0f hits | %.0f entries | %.0f evictions\n",
                  report.mem_hits, report.mem_entries, report.evictions);
    out += line;
    if (report.disk_attached) {
      std::snprintf(line, sizeof line,
                    "  disk tier              %.0f hits / %.0f misses | %.0f entries | "
                    "%.0f flushes | %.0f drops\n",
                    report.disk_hits, report.disk_misses, report.disk_entries,
                    report.disk_flushes, report.disk_drops);
      out += line;
    } else {
      out += "  disk tier              not attached\n";
    }
    std::snprintf(line, sizeof line, "  misses (all tiers)     %.0f\n",
                  report.mem_misses);
    out += line;
    std::snprintf(line, sizeof line,
                  "  sweep peels            %.0f from memory, %.0f from disk\n",
                  report.cache_hits - report.cache_hits_disk, report.cache_hits_disk);
    out += line;
    if (report.est_saved_ms > 0.0) {
      std::snprintf(line, sizeof line,
                    "  est. savings by tier   %s memory + %s disk\n",
                    format_duration(report.est_saved_mem_ms).c_str(),
                    format_duration(report.est_saved_disk_ms).c_str());
      out += line;
    }
    if (report.disk_drops > 0.0) {
      std::snprintf(line, sizeof line,
                    "  WARNING: %.0f corrupt/stale disk records dropped "
                    "(self-healing; affected keys re-simulate)\n",
                    report.disk_drops);
      out += line;
    }
  }

  if (!report.classes.empty()) {
    out += "\n== per-class sim time ==\n";
    std::snprintf(line, sizeof line, "  p50 %s | p90 %s | p99 %s\n",
                  format_duration(report.class_wall_p50).c_str(),
                  format_duration(report.class_wall_p90).c_str(),
                  format_duration(report.class_wall_p99).c_str());
    out += line;
    const std::size_t shown = std::min(top_k, report.classes.size());
    std::snprintf(line, sizeof line, "  top %zu slowest classes:\n", shown);
    out += line;
    for (std::size_t i = 0; i < shown; ++i) {
      const RunReport::ClassStat& entry = report.classes[i];
      std::snprintf(line, sizeof line, "    %12s  cores=%-3.0f members=%-3.0f %s\n",
                    format_duration(entry.wall_ms).c_str(), entry.cores,
                    entry.members, entry.config.c_str());
      out += line;
    }
  }

  if (!report.explored.empty()) {
    double best = report.explored.front().objective;
    RunReport::PointSample best_point = report.explored.front();
    for (const RunReport::PointSample& sample : report.explored)
      if (sample.objective < best) {
        best = sample.objective;
        best_point = sample;
      }
    out += "\n== explored space ==\n";
    std::snprintf(line, sizeof line, "  points  %zu\n", report.explored.size());
    out += line;
    std::snprintf(line, sizeof line,
                  "  best    objective=%.6g at n=%.0f a0=%g a1=%g a2=%g\n", best,
                  best_point.n_cores, best_point.a0, best_point.a1, best_point.a2);
    out += line;
  }

  if (!report.frontier.empty() || !report.constraints.empty()) {
    out += "\n== pareto frontier ==\n";
    std::snprintf(line, sizeof line, "  frontier  %zu point(s), %.0f feasible of %.0f grid\n",
                  report.frontier.size(), report.pareto_feasible,
                  report.pareto_grid_points);
    out += line;
    for (const RunReport::FrontierSample& sample : report.frontier) {
      std::snprintf(line, sizeof line,
                    "    n=%.0f a0=%g a1=%g a2=%g  time=%.6g power=%.4g area=%.4g\n",
                    sample.n_cores, sample.a0, sample.a1, sample.a2, sample.time,
                    sample.power, sample.area);
      out += line;
    }
    for (const RunReport::ConstraintStat& stat : report.constraints) {
      std::snprintf(line, sizeof line,
                    "  %-10s budget %-10.4g rejected %-6.0f binding %.0f\n",
                    stat.name.c_str(), stat.budget, stat.infeasible, stat.binding);
      out += line;
    }
  }

  if (report.surrogate_seen || !report.surrogate_rounds.empty()) {
    out += "\n== surrogate ==\n";
    const double class_pct =
        report.surrogate_classes_total > 0.0
            ? 100.0 * report.surrogate_classes_simulated / report.surrogate_classes_total
            : 0.0;
    const double point_pct =
        report.surrogate_points_total > 0.0
            ? 100.0 * report.surrogate_points_simulated / report.surrogate_points_total
            : 0.0;
    std::snprintf(line, sizeof line,
                  "  classes   %.0f total | %.0f simulated (%.1f%%) | %.0f pruned\n",
                  report.surrogate_classes_total, report.surrogate_classes_simulated,
                  class_pct, report.surrogate_classes_pruned);
    out += line;
    std::snprintf(line, sizeof line,
                  "  points    %.0f total | %.0f simulated (%.1f%%)\n",
                  report.surrogate_points_total, report.surrogate_points_simulated,
                  point_pct);
    out += line;
    std::snprintf(line, sizeof line,
                  "  sims      %.0f warmup | %.0f fallback | %.0f trained samples\n",
                  report.surrogate_warmup_sims, report.surrogate_fallback_sims,
                  report.surrogate_trained_samples);
    out += line;
    std::snprintf(line, sizeof line, "  model     %.0f round(s), final MRE %.2f%%\n",
                  report.surrogate_rounds_total, 100.0 * report.surrogate_mre);
    out += line;
    for (const RunReport::SurrogateRound& round : report.surrogate_rounds) {
      std::snprintf(line, sizeof line,
                    "    round %-3.0f admitted n=%-4.0f (%.0f members)  predicted %.6g "
                    "vs incumbent %.6g\n",
                    round.round, round.class_n, round.class_members, round.predicted_best,
                    round.incumbent);
      out += line;
    }
  }
  return out;
}

std::string heatmap_csv(const RunReport& report) {
  if (report.explored.empty()) return {};
  // cell key: (n_cores, (a1, a2)) -> min objective across every other axis
  std::map<std::pair<double, double>, bool> splits;  // ordered column set
  std::map<double, std::map<std::pair<double, double>, double>> rows;
  for (const RunReport::PointSample& sample : report.explored) {
    const std::pair<double, double> split{sample.a1, sample.a2};
    splits[split] = true;
    auto& row = rows[sample.n_cores];
    const auto it = row.find(split);
    if (it == row.end() || sample.objective < it->second)
      row[split] = sample.objective;
  }

  std::string csv = "n_cores";
  char cell[64];
  for (const auto& [split, unused] : splits) {
    (void)unused;
    std::snprintf(cell, sizeof cell, ",a1=%g/a2=%g", split.first, split.second);
    csv += cell;
  }
  csv += '\n';
  for (const auto& [n_cores, row] : rows) {
    std::snprintf(cell, sizeof cell, "%g", n_cores);
    csv += cell;
    for (const auto& [split, unused] : splits) {
      (void)unused;
      csv += ',';
      const auto it = row.find(split);
      if (it != row.end()) {
        std::snprintf(cell, sizeof cell, "%.9g", it->second);
        csv += cell;
      }
    }
    csv += '\n';
  }
  return csv;
}

}  // namespace c2b::obs
