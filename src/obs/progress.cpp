#include "c2b/obs/progress.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

namespace c2b::obs {
namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string format_duration(double ms) {
  char buf[48];
  if (ms >= 120'000.0)
    std::snprintf(buf, sizeof buf, "%dm %02ds", static_cast<int>(ms / 60'000.0),
                  static_cast<int>(ms / 1000.0) % 60);
  else if (ms >= 1000.0)
    std::snprintf(buf, sizeof buf, "%.1f s", ms / 1000.0);
  else
    std::snprintf(buf, sizeof buf, "%.1f ms", ms);
  return buf;
}

#if !defined(C2B_OBS_DISABLED)
// Thread-local for the same reason as g_active_journal: each concurrent
// job installs its own meter, and the pool propagates it per batch.
thread_local ProgressMeter* g_active_progress = nullptr;
#endif

}  // namespace

#if !defined(C2B_OBS_DISABLED)
ProgressMeter* active_progress() noexcept { return g_active_progress; }
void set_active_progress(ProgressMeter* meter) noexcept { g_active_progress = meter; }
#endif

ProgressMeter::ProgressMeter(Options options)
    : options_(options),
      out_(options.out != nullptr ? options.out : stderr),
      epoch_ns_(now_ns()),
      segment_start_ns_(epoch_ns_) {}

ProgressMeter::ProgressMeter() : ProgressMeter(Options{}) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::accrue_locked(std::uint64_t now) {
  if (!stack_.empty() && now > segment_start_ns_)
    phases_[stack_.back()].wall_ms +=
        static_cast<double>(now - segment_start_ns_) / 1e6;
  segment_start_ns_ = now;
}

void ProgressMeter::add_total(double weight) {
  const std::lock_guard<std::mutex> lock(mutex_);
  total_ += weight;
  // The throughput clock starts when work is first announced, not when the
  // first unit lands — otherwise a sweep whose first completion arrives
  // late (or all at once) reports an absurd rate.
  if (first_advance_ns_ == 0) first_advance_ns_ = now_ns();
}

void ProgressMeter::advance(double weight) {
  const std::uint64_t now = now_ns();
  const std::lock_guard<std::mutex> lock(mutex_);
  completed_ += weight;
  if (first_advance_ns_ == 0) first_advance_ns_ = now;
  if (now - last_render_ns_ >= options_.interval_ms * 1'000'000) render_locked(now);
}

void ProgressMeter::begin_phase(const char* name) {
  const std::uint64_t now = now_ns();
  const std::lock_guard<std::mutex> lock(mutex_);
  accrue_locked(now);
  std::size_t index = phases_.size();
  for (std::size_t i = 0; i < phases_.size(); ++i)
    if (phases_[i].name == name) {
      index = i;
      break;
    }
  if (index == phases_.size()) phases_.push_back({name, 0.0});
  stack_.push_back(index);
  render_locked(now);
}

void ProgressMeter::end_phase(const char* name) {
  (void)name;  // phases are strictly nested; the innermost one ends
  const std::uint64_t now = now_ns();
  const std::lock_guard<std::mutex> lock(mutex_);
  accrue_locked(now);
  if (!stack_.empty()) stack_.pop_back();
}

std::vector<ProgressMeter::PhaseTime> ProgressMeter::phase_attribution() const {
  const std::uint64_t now = now_ns();
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PhaseTime> out = phases_;
  if (!stack_.empty() && now > segment_start_ns_)
    out[stack_.back()].wall_ms +=
        static_cast<double>(now - segment_start_ns_) / 1e6;
  return out;
}

double ProgressMeter::completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

double ProgressMeter::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void ProgressMeter::render_locked(std::uint64_t now) {
  last_render_ns_ = now;
  const double elapsed_s =
      first_advance_ns_ == 0
          ? 0.0
          : static_cast<double>(now - first_advance_ns_) / 1e9;
  const double rate = elapsed_s > 0.0 ? completed_ / elapsed_s : 0.0;

  char line[192];
  const char* phase = stack_.empty() ? "-" : phases_[stack_.back()].name.c_str();
  if (total_ > 0.0) {
    const double pct = std::min(100.0, 100.0 * completed_ / total_);
    std::string eta = "--";
    if (rate > 0.0 && completed_ < total_)
      eta = format_duration(1000.0 * (total_ - completed_) / rate);
    std::snprintf(line, sizeof line,
                  "[c2b] %s: %.0f/%.0f units (%.1f%%) | %.1f units/s | ETA %s",
                  phase, completed_, total_, pct, rate, eta.c_str());
  } else {
    std::snprintf(line, sizeof line, "[c2b] %s: %.0f units | %.1f units/s", phase,
                  completed_, rate);
  }

  const std::size_t size = std::strlen(line);
  std::fputc('\r', out_);
  std::fputs(line, out_);
  for (std::size_t i = size; i < last_line_size_; ++i) std::fputc(' ', out_);
  std::fflush(out_);
  last_line_size_ = size;
  rendered_ = true;
}

void ProgressMeter::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!rendered_) return;
  std::fputc('\r', out_);
  for (std::size_t i = 0; i < last_line_size_; ++i) std::fputc(' ', out_);
  std::fputc('\r', out_);
  std::fflush(out_);
  rendered_ = false;
  last_line_size_ = 0;
}

std::string ProgressMeter::summary() const {
  const std::vector<PhaseTime> phases = phase_attribution();
  const std::uint64_t now = now_ns();

  double attributed_ms = 0.0;
  for (const PhaseTime& phase : phases) attributed_ms += phase.wall_ms;
  double completed = 0.0, total = 0.0, elapsed_ms = 0.0, active_s = 0.0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    completed = completed_;
    total = total_;
    elapsed_ms = static_cast<double>(now - epoch_ns_) / 1e6;
    if (first_advance_ns_ != 0)
      active_s = static_cast<double>(now - first_advance_ns_) / 1e9;
  }

  std::string out = "per-phase wall-clock attribution:\n";
  char line[192];
  for (const PhaseTime& phase : phases) {
    const double pct = elapsed_ms > 0.0 ? 100.0 * phase.wall_ms / elapsed_ms : 0.0;
    std::snprintf(line, sizeof line, "  %-18s %12s  %5.1f%%\n", phase.name.c_str(),
                  format_duration(phase.wall_ms).c_str(), pct);
    out += line;
  }
  const double other_ms = std::max(0.0, elapsed_ms - attributed_ms);
  std::snprintf(line, sizeof line, "  %-18s %12s  %5.1f%%\n", "(untracked)",
                format_duration(other_ms).c_str(),
                elapsed_ms > 0.0 ? 100.0 * other_ms / elapsed_ms : 0.0);
  out += line;
  std::snprintf(line, sizeof line, "  %-18s %12s\n", "total",
                format_duration(elapsed_ms).c_str());
  out += line;
  if (completed > 0.0) {
    const double rate = active_s > 0.0 ? completed / active_s : 0.0;
    std::snprintf(line, sizeof line,
                  "throughput: %.0f of %.0f units completed, %.1f units/s\n",
                  completed, total, rate);
    out += line;
  }
  return out;
}

}  // namespace c2b::obs
