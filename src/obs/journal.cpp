#include "c2b/obs/journal.h"

#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "c2b/common/log.h"
#include "c2b/obs/progress.h"
#include "c2b/obs/registry.h"
#include "c2b/obs/trace.h"

namespace c2b::obs {
namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Shortest round-trip decimal for a double (std::to_chars), "null" for
/// non-finite values (JSON has no Inf/NaN literals).
void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, result.ptr);
}

void append_escaped(std::string& out, std::string_view text) {
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      out += buf;
    } else {
      out += ch;
    }
  }
}

#if !defined(C2B_OBS_DISABLED)
// Thread-local: concurrent jobs (c2b serve) each install their own journal
// on the thread driving the job; ThreadPool::parallel_for propagates the
// submitting thread's obs context to whichever worker runs a chunk, so
// emissions from inside a sweep land in that job's journal. Single-job CLI
// runs behave exactly as before (install on main, sweeps propagate).
thread_local RunJournal* g_active_journal = nullptr;
#endif

}  // namespace

#if !defined(C2B_OBS_DISABLED)
RunJournal* active_journal() noexcept { return g_active_journal; }
void set_active_journal(RunJournal* journal) noexcept { g_active_journal = journal; }
#endif

// ---------------------------------------------------------------------------
// JournalEvent

JournalEvent& JournalEvent::str(std::string_view key, std::string_view value) {
  fields_ += ",\"";
  fields_ += key;
  fields_ += "\":\"";
  append_escaped(fields_, value);
  fields_ += '"';
  return *this;
}

JournalEvent& JournalEvent::num(std::string_view key, double value) {
  fields_ += ",\"";
  fields_ += key;
  fields_ += "\":";
  append_number(fields_, value);
  return *this;
}

JournalEvent& JournalEvent::count(std::string_view key, std::uint64_t value) {
  fields_ += ",\"";
  fields_ += key;
  fields_ += "\":";
  char buf[24];
  const auto result = std::to_chars(buf, buf + sizeof buf, value);
  fields_.append(buf, result.ptr);
  return *this;
}

// ---------------------------------------------------------------------------
// RunJournal

struct RunJournal::Impl {
  std::string path;
  Options options;
  std::FILE* file = nullptr;
  std::uint64_t epoch_ns = 0;

  std::mutex mutex;
  std::vector<std::string> buffer;   ///< complete lines awaiting flush
  std::uint64_t written = 0;         ///< events accepted (buffered or flushed)
  std::uint64_t dropped = 0;         ///< events lost to I/O failure
  std::uint64_t last_snapshot_ns = 0;

  /// Write every buffered line; lines the OS refuses are dropped (counted),
  /// never re-queued — the buffer bound is a hard memory guarantee. stdio
  /// may accept fwrite into its own buffer and only fail at fflush (e.g.
  /// disk full), so a failed fflush charges this round's surviving lines to
  /// the drop counter too — better to over-count drops than to report a
  /// clean journal that is missing its tail.
  void flush_locked() {
    std::uint64_t pending = 0;
    for (const std::string& line : buffer) {
      if (std::fwrite(line.data(), 1, line.size(), file) != line.size())
        ++dropped;
      else
        ++pending;
    }
    buffer.clear();
    if (std::fflush(file) != 0) dropped += pending;
  }
};

RunJournal::RunJournal() : impl_(new Impl) {}

RunJournal::~RunJournal() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->flush_locked();
  }
  if (impl_->file != nullptr) std::fclose(impl_->file);
  delete impl_;
}

std::unique_ptr<RunJournal> RunJournal::open(const std::string& path) {
  return open(path, Options{});
}

std::unique_ptr<RunJournal> RunJournal::open(const std::string& path, Options options) {
  std::error_code ec;
  const std::filesystem::path file(path);
  if (file.has_parent_path()) std::filesystem::create_directories(file.parent_path(), ec);
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    C2B_LOG(LogLevel::kWarn, "obs") << "cannot open run journal " << path;
    return nullptr;
  }
  std::unique_ptr<RunJournal> journal(new RunJournal());
  journal->impl_->path = path;
  journal->impl_->options = options;
  if (journal->impl_->options.buffer_events == 0) journal->impl_->options.buffer_events = 1;
  journal->impl_->file = out;
  journal->impl_->epoch_ns = now_ns();
  return journal;
}

void RunJournal::emit(const JournalEvent& event) {
  const double ts_ms = static_cast<double>(now_ns() - impl_->epoch_ns) / 1e6;
  std::string line;
  line.reserve(32 + event.type().size() + event.fields().size());
  line += "{\"type\":\"";
  append_escaped(line, event.type());
  line += "\",\"ts_ms\":";
  append_number(line, ts_ms);
  line += event.fields();
  line += "}\n";

  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->buffer.push_back(std::move(line));
  ++impl_->written;
  if (impl_->buffer.size() >= impl_->options.buffer_events) impl_->flush_locked();
}

void RunJournal::snapshot_metrics(bool force) {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    const std::uint64_t now = now_ns();
    const std::uint64_t interval_ns = impl_->options.metrics_interval_ms * 1'000'000;
    if (!force && impl_->last_snapshot_ns != 0 &&
        now - impl_->last_snapshot_ns < interval_ns)
      return;
    impl_->last_snapshot_ns = now;
  }
  // Snapshot outside the journal mutex (the registry takes its own lock).
  JournalEvent event("metrics");
  for (const MetricSample& sample : Registry::global().snapshot()) {
    switch (sample.kind) {
      case MetricSample::Kind::kCounter:
        event.count(sample.name, sample.count);
        break;
      case MetricSample::Kind::kGauge:
        event.num(sample.name, sample.value);
        break;
      case MetricSample::Kind::kHistogram:
        event.count(sample.name + ".count", sample.count);
        event.num(sample.name + ".mean", sample.mean);
        break;
    }
  }
  emit(event);
}

void RunJournal::flush() {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->flush_locked();
}

std::uint64_t RunJournal::written_events() const noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->written;
}

std::uint64_t RunJournal::dropped_events() const noexcept {
  const std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->dropped;
}

double RunJournal::elapsed_ms() const {
  return static_cast<double>(now_ns() - impl_->epoch_ns) / 1e6;
}

const std::string& RunJournal::path() const noexcept { return impl_->path; }

// ---------------------------------------------------------------------------
// PhaseScope

PhaseScope::PhaseScope(const char* name) : name_(name) {
  RunJournal* journal = active_journal();
  ProgressMeter* progress = active_progress();
  if (journal == nullptr && progress == nullptr) return;
  start_ns_ = now_ns();
  if (journal != nullptr) journal->emit(JournalEvent("phase_begin").str("name", name_));
  if (progress != nullptr) progress->begin_phase(name_);
}

PhaseScope::~PhaseScope() {
  if (start_ns_ == 0) return;
  const double wall_ms = static_cast<double>(now_ns() - start_ns_) / 1e6;
  // Re-query: the journal/meter could have been uninstalled mid-phase.
  if (RunJournal* journal = active_journal()) {
    journal->emit(JournalEvent("phase_end").str("name", name_).num("wall_ms", wall_ms));
    journal->snapshot_metrics();
  }
  if (ProgressMeter* progress = active_progress()) progress->end_phase(name_);
}

// ---------------------------------------------------------------------------
// Reader

bool JournalRecord::has(const std::string& key) const {
  return numbers.count(key) > 0 || strings.count(key) > 0;
}

double JournalRecord::num(const std::string& key, double fallback) const {
  const auto it = numbers.find(key);
  return it == numbers.end() ? fallback : it->second;
}

std::string JournalRecord::str(const std::string& key, const std::string& fallback) const {
  const auto it = strings.find(key);
  return it == strings.end() ? fallback : it->second;
}

namespace {

/// Cursor over one line; every parse_* returns false on malformed input
/// (including truncation), which the caller reports as a skipped line.
struct LineCursor {
  std::string_view text;
  std::size_t pos = 0;

  bool done() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }
  bool expect(char ch) {
    if (done() || text[pos] != ch) return false;
    ++pos;
    return true;
  }
  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (!done()) {
      const char ch = text[pos++];
      if (ch == '"') return true;
      if (ch == '\\') {
        if (done()) return false;
        const char esc = text[pos++];
        if (esc == 'u') {
          if (pos + 4 > text.size()) return false;
          unsigned value = 0;
          for (int i = 0; i < 4; ++i) {
            const char hex = text[pos++];
            value <<= 4;
            if (hex >= '0' && hex <= '9') value |= static_cast<unsigned>(hex - '0');
            else if (hex >= 'a' && hex <= 'f') value |= static_cast<unsigned>(hex - 'a' + 10);
            else if (hex >= 'A' && hex <= 'F') value |= static_cast<unsigned>(hex - 'A' + 10);
            else return false;
          }
          // The writer only emits \u00XX for control bytes; anything wider
          // would need UTF-8 encoding, which journal content never carries.
          if (value > 0xFF) return false;
          out += static_cast<char>(value);
        } else if (esc == '"' || esc == '\\' || esc == '/') {
          out += esc;
        } else if (esc == 'n') {
          out += '\n';
        } else if (esc == 't') {
          out += '\t';
        } else if (esc == 'r') {
          out += '\r';
        } else {
          return false;
        }
      } else {
        out += ch;
      }
    }
    return false;  // ran out before the closing quote: torn line
  }

  bool parse_number(double& out) {
    const std::size_t begin = pos;
    while (!done() && text[pos] != ',' && text[pos] != '}') ++pos;
    std::string_view token = text.substr(begin, pos - begin);
    while (!token.empty() && (token.back() == ' ' || token.back() == '\t'))
      token.remove_suffix(1);
    if (token == "null") {
      out = std::numeric_limits<double>::quiet_NaN();
      return true;
    }
    if (token.empty()) return false;
    const std::string buffer(token);  // strtod needs a terminator
    char* end = nullptr;
    out = std::strtod(buffer.c_str(), &end);
    return end == buffer.c_str() + buffer.size();
  }
};

}  // namespace

bool parse_journal_line(std::string_view line, JournalRecord& out) {
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n' ||
                           line.back() == ' ' || line.back() == '\t'))
    line.remove_suffix(1);
  LineCursor cursor{line};
  cursor.skip_ws();
  if (!cursor.expect('{')) return false;
  out = JournalRecord{};
  bool closed = false;
  while (!closed) {
    cursor.skip_ws();
    std::string key;
    if (!cursor.parse_string(key)) return false;
    cursor.skip_ws();
    if (!cursor.expect(':')) return false;
    cursor.skip_ws();
    if (!cursor.done() && cursor.peek() == '"') {
      std::string value;
      if (!cursor.parse_string(value)) return false;
      if (key == "type") out.type = std::move(value);
      else out.strings[std::move(key)] = std::move(value);
    } else {
      double value = 0.0;
      if (!cursor.parse_number(value)) return false;
      if (key == "ts_ms") out.ts_ms = value;
      else out.numbers[std::move(key)] = value;
    }
    cursor.skip_ws();
    if (cursor.expect('}')) closed = true;
    else if (!cursor.expect(',')) return false;
  }
  cursor.skip_ws();
  return cursor.done() && !out.type.empty();
}

std::vector<JournalRecord> read_journal(const std::string& path, JournalReadStats* stats) {
  JournalReadStats local;
  std::vector<JournalRecord> records;
  std::ifstream in(path);
  std::string line;
  while (in && std::getline(in, line)) {
    if (line.empty()) continue;
    ++local.lines;
    JournalRecord record;
    if (parse_journal_line(line, record)) {
      ++local.parsed;
      records.push_back(std::move(record));
    } else {
      ++local.skipped;
    }
  }
  if (stats != nullptr) *stats = local;
  return records;
}

// ---------------------------------------------------------------------------
// Drop counters

std::vector<DropCounter> drop_counters(const RunJournal* journal) {
  std::vector<DropCounter> out;
  out.push_back({"obs.span_ring", dropped_trace_events()});
  if (journal != nullptr) out.push_back({"obs.journal", journal->dropped_events()});
  return out;
}

}  // namespace c2b::obs
