#include "c2b/ann/mlp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "c2b/common/assert.h"

namespace c2b {

void FeatureScaler::fit(const std::vector<Vector>& samples) {
  C2B_REQUIRE(!samples.empty(), "cannot fit a scaler on no samples");
  const std::size_t dim = samples[0].size();
  lo_.assign(dim, std::numeric_limits<double>::infinity());
  hi_.assign(dim, -std::numeric_limits<double>::infinity());
  for (const Vector& s : samples) {
    C2B_REQUIRE(s.size() == dim, "inconsistent sample dimension");
    for (std::size_t d = 0; d < dim; ++d) {
      lo_[d] = std::min(lo_[d], s[d]);
      hi_[d] = std::max(hi_[d], s[d]);
    }
  }
}

Vector FeatureScaler::transform(const Vector& x) const {
  Vector out;
  transform_into(x, out);
  return out;
}

void FeatureScaler::transform_into(const Vector& x, Vector& out) const {
  C2B_REQUIRE(fitted(), "scaler not fitted");
  C2B_REQUIRE(x.size() == lo_.size(), "dimension mismatch");
  out.resize(x.size());
  for (std::size_t d = 0; d < x.size(); ++d) {
    const double span = hi_[d] - lo_[d];
    out[d] = span <= 0.0 ? 0.0 : 2.0 * (x[d] - lo_[d]) / span - 1.0;
  }
}

Mlp::Mlp(const MlpConfig& config) : config_(config), rng_(config.seed) {
  C2B_REQUIRE(config_.layer_sizes.size() >= 2, "MLP needs input and output layers");
  C2B_REQUIRE(config_.layer_sizes.back() == 1, "this MLP predicts a single scalar");
  for (std::size_t l = 0; l + 1 < config_.layer_sizes.size(); ++l) {
    const std::size_t fan_in = config_.layer_sizes[l];
    const std::size_t fan_out = config_.layer_sizes[l + 1];
    Matrix w(fan_out, fan_in + 1);  // +1 bias column
    // Xavier/Glorot initialization keeps tanh activations in range.
    const double scale = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (std::size_t r = 0; r < w.rows(); ++r)
      for (std::size_t c = 0; c < w.cols(); ++c) w(r, c) = rng_.uniform(-scale, scale);
    weights_.push_back(std::move(w));
    velocity_.emplace_back(fan_out, fan_in + 1, 0.0);
  }
}

double Mlp::activate(double x) const {
  switch (config_.hidden_activation) {
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kRelu:
      return x > 0.0 ? x : 0.0;
    case Activation::kIdentity:
      return x;
  }
  return x;
}

double Mlp::activate_derivative(double activated) const {
  switch (config_.hidden_activation) {
    case Activation::kTanh:
      return 1.0 - activated * activated;
    case Activation::kRelu:
      return activated > 0.0 ? 1.0 : 0.0;
    case Activation::kIdentity:
      return 1.0;
  }
  return 1.0;
}

Vector Mlp::forward(const Vector& scaled_input, std::vector<Vector>* layer_outputs) const {
  Vector current = scaled_input;
  if (layer_outputs) layer_outputs->push_back(current);
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const Matrix& w = weights_[l];
    Vector next(w.rows(), 0.0);
    for (std::size_t r = 0; r < w.rows(); ++r) {
      double sum = w(r, w.cols() - 1);  // bias
      for (std::size_t c = 0; c + 1 < w.cols(); ++c) sum += w(r, c) * current[c];
      // Hidden layers use the configured activation; the output is linear.
      next[r] = (l + 1 == weights_.size()) ? sum : activate(sum);
    }
    current = std::move(next);
    if (layer_outputs) layer_outputs->push_back(current);
  }
  return current;
}

void Mlp::backward(const Vector& scaled_input, const std::vector<Vector>& layer_outputs,
                   double error) {
  (void)scaled_input;
  // delta for the linear output layer is just the error.
  Vector delta{error};
  for (std::size_t l = weights_.size(); l-- > 0;) {
    const Vector& input = layer_outputs[l];
    Matrix& w = weights_[l];
    Matrix& v = velocity_[l];

    // Pre-compute delta for the layer below before mutating weights.
    Vector next_delta;
    if (l > 0) {
      next_delta.assign(input.size(), 0.0);
      for (std::size_t c = 0; c < input.size(); ++c) {
        double sum = 0.0;
        for (std::size_t r = 0; r < w.rows(); ++r) sum += w(r, c) * delta[r];
        next_delta[c] = sum * activate_derivative(input[c]);
      }
    }

    const double lr = config_.learning_rate;
    for (std::size_t r = 0; r < w.rows(); ++r) {
      for (std::size_t c = 0; c < w.cols(); ++c) {
        const double x = (c + 1 == w.cols()) ? 1.0 : input[c];
        const double grad = delta[r] * x + config_.l2_penalty * w(r, c);
        v(r, c) = config_.momentum * v(r, c) - lr * grad;
        w(r, c) += v(r, c);
      }
    }
    delta = std::move(next_delta);
  }
}

double Mlp::train_epoch(const std::vector<Vector>& inputs, const std::vector<double>& targets) {
  C2B_REQUIRE(inputs.size() == targets.size() && !inputs.empty(), "bad training batch");
  C2B_REQUIRE(scaler_.fitted(), "call fit() (which fits the scaler) before train_epoch()");

  std::vector<std::size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = order.size() - 1; i > 0; --i)
    std::swap(order[i], order[rng_.uniform_below(i + 1)]);

  double squared_error = 0.0;
  std::vector<Vector> layer_outputs;
  for (const std::size_t idx : order) {
    const Vector x = scaler_.transform(inputs[idx]);
    const double target_norm = (targets[idx] - target_mean_) / target_scale_;
    layer_outputs.clear();
    const Vector out = forward(x, &layer_outputs);
    const double error = out[0] - target_norm;
    squared_error += error * error * target_scale_ * target_scale_;
    backward(x, layer_outputs, error);
  }
  return squared_error / static_cast<double>(inputs.size());
}

void Mlp::fit(const std::vector<Vector>& inputs, const std::vector<double>& targets, int epochs) {
  C2B_REQUIRE(inputs.size() == targets.size() && !inputs.empty(), "bad training set");
  scaler_.fit(inputs);
  // Normalize targets to zero mean / unit scale for stable gradients.
  double mean = 0.0;
  for (const double t : targets) mean += t;
  mean /= static_cast<double>(targets.size());
  double spread = 0.0;
  for (const double t : targets) spread = std::max(spread, std::fabs(t - mean));
  target_mean_ = mean;
  target_scale_ = spread > 0.0 ? spread : 1.0;

  double best = std::numeric_limits<double>::infinity();
  int stale = 0;
  for (int e = 0; e < epochs; ++e) {
    const double mse = train_epoch(inputs, targets);
    if (mse < best * 0.999) {
      best = mse;
      stale = 0;
    } else if (++stale > 50) {
      break;  // plateau
    }
  }
}

double Mlp::predict(const Vector& input) const {
  const Vector out = forward(scaler_.transform(input), nullptr);
  return out[0] * target_scale_ + target_mean_;
}

std::vector<double> Mlp::predict_batch(const std::vector<Vector>& inputs) const {
  // Same arithmetic in the same order as forward(), but the scaled input
  // and the two layer buffers are allocated once and reused across the
  // batch (forward() allocates a fresh vector per layer per query).
  std::vector<double> out(inputs.size());
  std::size_t widest = 0;
  for (const std::size_t width : config_.layer_sizes) widest = std::max(widest, width);
  Vector scaled;
  Vector current(widest, 0.0);
  Vector next(widest, 0.0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    scaler_.transform_into(inputs[i], scaled);
    std::copy(scaled.begin(), scaled.end(), current.begin());
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      const Matrix& w = weights_[l];
      for (std::size_t r = 0; r < w.rows(); ++r) {
        double sum = w(r, w.cols() - 1);  // bias
        for (std::size_t c = 0; c + 1 < w.cols(); ++c) sum += w(r, c) * current[c];
        next[r] = (l + 1 == weights_.size()) ? sum : activate(sum);
      }
      std::swap(current, next);
    }
    out[i] = current[0] * target_scale_ + target_mean_;
  }
  return out;
}

double Mlp::mean_relative_error(const std::vector<Vector>& inputs,
                                const std::vector<double>& targets) const {
  C2B_REQUIRE(inputs.size() == targets.size() && !inputs.empty(), "bad evaluation set");
  double sum = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (std::fabs(targets[i]) < kMreEpsilon) continue;  // see kMreEpsilon's contract
    sum += std::fabs(predict(inputs[i]) - targets[i]) / std::fabs(targets[i]);
    ++used;
  }
  return used == 0 ? 0.0 : sum / static_cast<double>(used);
}

}  // namespace c2b
