#pragma once

// Derivative-free minimizers used by the C²-Bound optimizer:
//  * golden-section for 1-D continuous searches (optimal N along a ray),
//  * Nelder–Mead for the low-dimensional continuous area split (A0, A1, A2),
//  * integer line minimization for discrete core counts.

#include <functional>
#include <string>

#include "c2b/linalg/matrix.h"

namespace c2b {

using ScalarFn = std::function<double(double)>;
using MultiFn = std::function<double(const Vector&)>;

struct ScalarMinResult {
  double x = 0.0;
  double value = 0.0;
  int evaluations = 0;
};

/// Golden-section search over [lo, hi] for a (quasi-)unimodal function.
/// For non-unimodal functions it still returns a local minimum inside the
/// bracket.
ScalarMinResult golden_section_minimize(const ScalarFn& f, double lo, double hi,
                                        double tolerance = 1e-8, int max_iterations = 200);

/// Exhaustive minimum of f over integers [lo, hi] (inclusive). Exact; used
/// when the core-count axis is small enough to scan, which keeps the
/// case-split logic trivially correct.
struct IntMinResult {
  long long x = 0;
  double value = 0.0;
};
IntMinResult integer_minimize(const std::function<double(long long)>& f, long long lo,
                              long long hi);

struct NelderMeadOptions {
  int max_iterations = 2000;
  double tolerance = 1e-10;      ///< spread of simplex values at convergence
  double initial_step = 0.1;     ///< relative size of the initial simplex
};

struct NelderMeadResult {
  Vector x;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Standard Nelder–Mead simplex descent (reflect/expand/contract/shrink).
NelderMeadResult nelder_mead_minimize(const MultiFn& f, Vector x0,
                                      const NelderMeadOptions& options = {});

/// Scalar root bracketing + bisection; used for capacity-bound inversion
/// (Section V: max Z s.t. Y(Z) <= X) where Y is monotone but not closed-form
/// invertible.
struct BisectResult {
  double x = 0.0;
  double fx = 0.0;
  bool converged = false;
};
BisectResult bisect_root(const ScalarFn& f, double lo, double hi, double tolerance = 1e-12,
                         int max_iterations = 200);

}  // namespace c2b
