#pragma once

// Damped Newton's method for square nonlinear systems F(x) = 0, with a
// central-difference numeric Jacobian. This is the "efficient solver for the
// nonlinear equation set" the paper's Fig. 5 methodology calls for: the
// stationarity conditions of the Lagrangian (Eq. 13) are assembled into a
// residual vector and driven to zero here.

#include <functional>

#include "c2b/linalg/matrix.h"

namespace c2b {

/// Residual of a square system: maps x (n entries) to F(x) (n entries).
using ResidualFn = std::function<Vector(const Vector&)>;

struct NewtonOptions {
  int max_iterations = 100;
  double tolerance = 1e-10;        ///< stop when ||F||_inf below this
  double step_tolerance = 1e-14;   ///< stop when ||dx||_inf below this
  double fd_step = 1e-6;           ///< relative finite-difference step
  int max_backtracks = 40;         ///< Armijo-style halving steps
  double min_damping = 1e-12;      ///< abort the line search below this
};

struct NewtonResult {
  Vector x;                  ///< final iterate
  double residual_norm = 0;  ///< ||F(x)||_inf at the final iterate
  int iterations = 0;
  bool converged = false;
  std::string message;
};

/// Central-difference Jacobian of `f` at `x`.
Matrix numeric_jacobian(const ResidualFn& f, const Vector& x, double rel_step = 1e-6);

/// Solve F(x) = 0 starting from `x0`. Each iteration solves J dx = -F via LU
/// and backtracks on the step until the residual norm decreases (simple but
/// robust globalization). Never throws on non-convergence — inspect
/// `converged`; throws only on malformed input.
NewtonResult newton_solve(const ResidualFn& f, Vector x0, const NewtonOptions& options = {});

}  // namespace c2b
