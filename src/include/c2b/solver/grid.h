#pragma once

// Cartesian-product sweeps over discrete design spaces. The full-factorial
// DSE (the paper's 10^6-point ground truth), the APS neighborhood
// refinement, and the ANN training-pool enumeration all iterate design
// points through this one mechanism.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "c2b/common/assert.h"

namespace c2b {

/// One named discrete axis of a design space (e.g. "N" -> {1,2,4,...,512}).
struct GridAxis {
  std::string name;
  std::vector<double> values;
};

/// A rectangular discrete design space: the cross product of its axes.
class GridSpace {
 public:
  GridSpace() = default;
  explicit GridSpace(std::vector<GridAxis> axes);

  std::size_t axis_count() const noexcept { return axes_.size(); }
  const GridAxis& axis(std::size_t i) const;
  /// Index of the named axis; throws if absent.
  std::size_t axis_index(const std::string& name) const;

  /// Total number of points (product of axis sizes).
  std::size_t size() const noexcept { return total_; }

  /// Decode a flat index into one value per axis.
  std::vector<double> point(std::size_t flat_index) const;
  /// Per-axis value indices for a flat index.
  std::vector<std::size_t> indices(std::size_t flat_index) const;
  /// Inverse of indices().
  std::size_t flat_index(const std::vector<std::size_t>& idx) const;

  /// Visit every point: fn(flat_index, values).
  void for_each(const std::function<void(std::size_t, const std::vector<double>&)>& fn) const;

  /// Visit the flat-index range [begin, end): fn(flat_index, values).
  /// Throws when begin > end or end > size(). This is the chunked form the
  /// parallel sweeps use — each worker walks its own contiguous slice with
  /// the odometer, so nobody materializes all flat indices up front.
  void for_each(std::size_t begin, std::size_t end,
                const std::function<void(std::size_t, const std::vector<double>&)>& fn) const;

  /// Flat indices of the axis-aligned neighborhood around `center` with the
  /// given per-axis radius (in value-index steps), clipped at the borders.
  /// This is the "adjacent regions in the design space" the APS algorithm
  /// (Fig. 6, line 15) simulates.
  std::vector<std::size_t> neighborhood(std::size_t center, std::size_t radius) const;

  /// Flat index of the grid point nearest (per-axis, relative error) to a
  /// continuous point, used to snap the analytic optimum onto the grid.
  std::size_t nearest(const std::vector<double>& continuous_point) const;

 private:
  std::vector<GridAxis> axes_;
  std::size_t total_ = 0;
};

}  // namespace c2b
