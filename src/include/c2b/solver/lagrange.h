#pragma once

// Lagrange-multiplier assembly for equality-constrained minimization:
//     min f(x)  s.t.  g_k(x) = 0, k = 0..m-1
// The stationarity conditions  ∇f + Σ λ_k ∇g_k = 0,  g(x) = 0  are packed
// into one square residual and solved with the Newton machinery. This is
// exactly the Eq. (13) structure of the paper:
//     L(A1, A2, λ, N) = J_D + λ [N(A0+A1+A2) + Ac − A].

#include <functional>
#include <vector>

#include "c2b/solver/newton.h"

namespace c2b {

/// Objective/constraint signature for the Lagrange machinery.
using ScalarField = std::function<double(const Vector&)>;

struct LagrangeResult {
  Vector x;                ///< stationary point (primal variables)
  Vector lambda;           ///< multipliers, one per constraint
  double objective = 0.0;  ///< f at the stationary point
  bool converged = false;
  int iterations = 0;
};

/// Find a stationary point of the Lagrangian starting from (x0, lambda0 = 0).
/// Returns a KKT point for equality constraints; the caller decides whether
/// it is a min/max (the C²-Bound optimizer checks the g(N) case split per
/// the paper's Fig. 6 before interpreting the point).
LagrangeResult lagrange_stationary_point(const ScalarField& objective,
                                         const std::vector<ScalarField>& constraints, Vector x0,
                                         const NewtonOptions& newton = {},
                                         double gradient_step = 1e-6);

/// Finite-difference gradient of a scalar field (central differences).
Vector numeric_gradient(const ScalarField& f, const Vector& x, double rel_step = 1e-6);

}  // namespace c2b
