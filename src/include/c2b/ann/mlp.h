#pragma once

// Feed-forward neural network with backpropagation — the machine-learning
// DSE baseline the paper compares APS against (Ipek et al. [2]). A small
// MLP is trained on (design point -> performance) samples and queried over
// the whole space; the active-learning driver in src/aps grows the training
// set until the prediction error matches APS's, counting how many
// simulations that takes (the paper's 613).

#include <cstddef>
#include <vector>

#include "c2b/common/rng.h"
#include "c2b/linalg/matrix.h"

namespace c2b {

enum class Activation { kTanh, kRelu, kIdentity };

struct MlpConfig {
  std::vector<std::size_t> layer_sizes;  ///< e.g. {6, 16, 16, 1}
  Activation hidden_activation = Activation::kTanh;
  double learning_rate = 0.01;
  double momentum = 0.9;
  double l2_penalty = 1e-5;
  std::uint64_t seed = 7;
};

/// Min/max feature scaling to [-1, 1], fitted on the training set and
/// applied to every query (constant features map to 0). The map is affine
/// per dimension, so any training sample round-trips exactly:
/// x == lo + (transform(x) + 1) / 2 * (hi - lo).
class FeatureScaler {
 public:
  void fit(const std::vector<Vector>& samples);
  Vector transform(const Vector& x) const;
  /// Allocation-free transform for hot loops: writes into `out` (resized to
  /// x.size()); bitwise-identical to transform().
  void transform_into(const Vector& x, Vector& out) const;
  bool fitted() const noexcept { return !lo_.empty(); }

 private:
  Vector lo_, hi_;
};

class Mlp {
 public:
  explicit Mlp(const MlpConfig& config);

  /// One SGD epoch over the batch (shuffled); returns the epoch's mean
  /// squared error on raw (unscaled) targets.
  double train_epoch(const std::vector<Vector>& inputs, const std::vector<double>& targets);

  /// Train until `epochs` or an MSE plateau; inputs are raw design points —
  /// the scaler and target normalization are fitted internally.
  void fit(const std::vector<Vector>& inputs, const std::vector<double>& targets, int epochs);

  double predict(const Vector& input) const;

  /// Batched prediction, bitwise-identical to calling predict() per input
  /// but reusing one layer-output scratch buffer across the whole batch
  /// instead of allocating two vectors per layer per call — the space-wide
  /// surrogate ranking queries the net 10^5-10^6 times per round.
  std::vector<double> predict_batch(const std::vector<Vector>& inputs) const;

  /// Targets with |truth| below this are skipped by mean_relative_error —
  /// a relative error against a (near-)zero denominator is unbounded noise,
  /// not signal. Documented here so callers know a zero-valued target never
  /// produces inf/NaN.
  static constexpr double kMreEpsilon = 1e-12;

  /// Mean relative error |pred - truth| / |truth| over a labeled set;
  /// targets with |truth| < kMreEpsilon are skipped (0.0 if all are).
  double mean_relative_error(const std::vector<Vector>& inputs,
                             const std::vector<double>& targets) const;

  const MlpConfig& config() const noexcept { return config_; }

  /// Trained weight matrices, layer l shaped (out, in+1) with a trailing
  /// bias column — exposed so determinism tests can assert that equal
  /// (seed, training set) pairs yield bitwise-equal nets.
  const std::vector<Matrix>& weights() const noexcept { return weights_; }

 private:
  Vector forward(const Vector& scaled_input, std::vector<Vector>* layer_outputs) const;
  void backward(const Vector& scaled_input, const std::vector<Vector>& layer_outputs,
                double error);
  double activate(double x) const;
  double activate_derivative(double activated) const;

  MlpConfig config_;
  std::vector<Matrix> weights_;  ///< weights_[l]: (out, in+1) with bias column
  std::vector<Matrix> velocity_;
  FeatureScaler scaler_;
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
  mutable Rng rng_;
};

}  // namespace c2b
