#pragma once

// SimPoint-style representative-interval selection (substitute for [26]).
//
// The trace is split into fixed-length intervals; each interval is reduced
// to a feature vector (instruction mix + address-region histogram — our
// stand-in for basic-block vectors); k-means clusters the vectors; the
// interval nearest each centroid is the cluster's simulation point, weighted
// by cluster population. Characterizing only the simulation points instead
// of the whole trace is what makes APS characterization cheap.

#include <cstddef>
#include <vector>

#include "c2b/common/rng.h"
#include "c2b/trace/trace.h"

namespace c2b {

struct SimPointOptions {
  std::uint64_t interval_length = 100000;  ///< instructions per interval
  std::size_t max_clusters = 8;            ///< k upper bound (BIC-free cap)
  std::size_t address_bins = 16;           ///< address-region histogram width
  int kmeans_iterations = 50;
  std::uint64_t seed = 42;
};

struct SimPoint {
  std::size_t interval_index = 0;  ///< which interval represents the cluster
  double weight = 0.0;             ///< fraction of intervals in the cluster
};

struct SimPointResult {
  std::vector<SimPoint> points;                 ///< one per non-empty cluster
  std::vector<std::size_t> interval_cluster;    ///< cluster id per interval
  std::size_t interval_count = 0;
};

/// Interval feature vector: [f_compute, f_load, f_store, region histogram...].
std::vector<double> interval_features(const TraceRecord* begin, const TraceRecord* end,
                                      std::size_t address_bins);

/// Pick representative intervals of `trace`. Intervals shorter than half the
/// interval length at the tail are dropped. Requires at least one interval.
SimPointResult pick_simpoints(const Trace& trace, const SimPointOptions& options = {});

/// Reconstruct a weighted sub-trace: the concatenation of the chosen
/// intervals (weights retained in `SimPointResult::points` for estimators).
Trace extract_interval(const Trace& trace, std::size_t interval_index,
                       std::uint64_t interval_length);

/// Weighted scalar estimate from per-simpoint measurements:
/// sum_i weight_i * value_i (weights sum to 1).
double simpoint_weighted_estimate(const SimPointResult& result,
                                  const std::vector<double>& per_point_values);

}  // namespace c2b
