#pragma once

// Binary trace serialization. Traces can be expensive to generate (or may
// come from an external profiler); this module persists them in a compact,
// versioned, endianness-pinned format:
//
//   header:  magic "C2BT", u32 version, u64 record count, name length+bytes
//   records: u8 kind | u8 flags (bit0 = depends_on_prev_mem) | u64 address
//   trailer: u64 FNV-1a64 checksum over every preceding byte (format v2)
//
// Readers validate the magic/version, record count, and trailing checksum;
// a truncated or corrupted file — any flipped byte, including ones the
// field decoders would accept — produces a clean exception naming the
// failing byte offset, never a partial trace.

#include <iosfwd>
#include <string>

#include "c2b/trace/trace.h"

namespace c2b {

inline constexpr std::uint32_t kTraceFormatVersion = 2;

/// Serialize to a stream / file. Throws std::runtime_error on I/O failure.
void write_trace(std::ostream& out, const Trace& trace);
void save_trace(const std::string& path, const Trace& trace);

/// Deserialize from a stream / file. Throws std::runtime_error on malformed
/// input (bad magic, unsupported version, truncation, invalid record kind).
Trace read_trace(std::istream& in);
Trace load_trace(const std::string& path);

}  // namespace c2b
