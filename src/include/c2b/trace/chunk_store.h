#pragma once

// Shared, ref-counted trace chunk store for batched replay.
//
// Within one DSE/APS trace-equivalence class every member consumes
// bit-identical record streams (same workload/seed/footprint/window); only
// the simulated hardware differs. TraceChunkStore generates each chunk of
// such a stream exactly once and hands it to K ChunkCursor readers. A chunk
// stays resident until every reader has consumed past it, then it is freed,
// so residency is O(spread between the fastest and slowest reader), which
// the lockstep driver (simulate_system_batched) bounds to ~one chunk.
//
// Each chunk carries a precomputed compute-run table (SoA sidecar): entry i
// is the length of the run of consecutive kCompute records starting at i,
// capped at the chunk boundary. That keeps ChunkCursor::compute_run() O(1)
// per call and, because the cap is a *lower bound* on the true run length,
// the kernel's compute fast path stays correct (TraceCursor contract).
//
// The store is NOT thread-safe: one batch (store + K cursors + K simulator
// instances) runs on a single thread; parallelism lives above it, across
// batches, on the exec thread pool.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "c2b/trace/trace.h"
#include "c2b/trace/cursor.h"

namespace c2b {

/// Aggregate accounting for one store's lifetime (used for the
/// exec.batch.* telemetry and for tests).
struct ChunkStoreStats {
  std::uint64_t chunks_generated = 0;   ///< chunks produced across all streams
  std::uint64_t records_generated = 0;  ///< records produced across all streams
  /// Sum over released chunks of (readers - 1): how many times a resident
  /// chunk was consumed by an *additional* reader instead of regenerated.
  std::uint64_t chunks_shared = 0;
  /// Records a 2nd..Kth reader consumed without regeneration.
  std::uint64_t regen_avoided_records = 0;
  /// The memory-access (load/store) subset of regen_avoided_records — the
  /// unit the telemetry ledger counts in.
  std::uint64_t regen_avoided_accesses = 0;
  /// High-water mark of records resident across all streams at once.
  std::size_t max_resident_records = 0;
};

class ChunkCursor;

class TraceChunkStore {
 public:
  static constexpr std::size_t kDefaultChunkRecords = GeneratorTraceCursor::kDefaultChunkRecords;

  explicit TraceChunkStore(std::size_t chunk_records = kDefaultChunkRecords);

  TraceChunkStore(const TraceChunkStore&) = delete;
  TraceChunkStore& operator=(const TraceChunkStore&) = delete;

  /// Register a stream: exactly the first `count` records of
  /// `generator->next()` after a reset() (bit-identical to
  /// GeneratorTraceCursor over the same generator). Returns the stream id.
  std::size_t add_stream(std::unique_ptr<TraceGenerator> generator, std::uint64_t count);

  /// Declare how many ChunkCursor readers will consume *each* stream end to
  /// end. Must be called before the first read; chunks are freed once all
  /// `readers` cursors have consumed past them.
  void set_readers(std::uint32_t readers);

  std::size_t stream_count() const noexcept { return streams_.size(); }
  std::uint64_t stream_length(std::size_t stream) const;
  std::size_t chunk_capacity() const noexcept { return chunk_; }
  std::uint32_t readers() const noexcept { return readers_; }

  const ChunkStoreStats& stats() const noexcept { return stats_; }

 private:
  friend class ChunkCursor;

  struct Chunk {
    std::uint64_t base = 0;  ///< stream offset of records[0]
    std::uint32_t readers_passed = 0;
    std::uint64_t memory_records = 0;  ///< loads + stores in this chunk
    std::vector<TraceRecord> records;
    /// compute_run[i] = consecutive kCompute records starting at i, capped
    /// at the chunk end (a valid lower bound for TraceCursor::compute_run).
    std::vector<std::uint32_t> compute_run;
  };

  struct Stream {
    std::unique_ptr<TraceGenerator> generator;
    std::uint64_t total = 0;     ///< stream length (fixed)
    std::uint64_t produced = 0;  ///< records generated so far
    std::uint64_t released = 0;  ///< records already freed (all offsets < released)
    std::deque<Chunk> window;    ///< resident chunks, ascending base
  };

  /// Resident chunk containing stream offset `offset`, generating forward
  /// on demand. Precondition: offset < total and offset >= released.
  const Chunk& chunk_at(std::size_t stream, std::uint64_t offset);

  /// A reader finished the resident chunk with this base; free chunks whose
  /// readers have all passed.
  void pass_chunk(std::size_t stream, std::uint64_t chunk_base);

  void generate_next_chunk(Stream& s);

  std::size_t chunk_;
  std::uint32_t readers_ = 1;
  bool reads_started_ = false;
  std::vector<Stream> streams_;
  std::size_t resident_records_ = 0;
  ChunkStoreStats stats_;
};

/// TraceCursor over one store stream. Multiple ChunkCursors on the same
/// stream share its resident chunks; each cursor reports its passage so the
/// store can free chunks behind the slowest reader. reset() is only valid
/// while the cursor is still at the start of the stream (consumed chunks
/// may already be freed); the simulator kernel never resets mid-stream.
class ChunkCursor final : public TraceCursor {
 public:
  ChunkCursor(TraceChunkStore& store, std::size_t stream);

  const TraceRecord* peek() override;
  void advance() override;
  std::size_t compute_run(std::size_t limit) override;
  void skip(std::size_t count) override;
  void reset() override;

  std::uint64_t stream_length() const noexcept { return total_; }
  std::uint64_t position() const noexcept { return offset_; }

 private:
  /// Make chunk_ the resident chunk containing offset_ (nullptr at EOS).
  void ensure_chunk();
  /// Called when offset_ reaches the end of chunk_: report passage, drop ref.
  void finish_chunk();

  TraceChunkStore* store_;
  std::size_t stream_;
  std::uint64_t total_;
  std::uint64_t offset_ = 0;
  const TraceChunkStore::Chunk* chunk_ = nullptr;
  std::uint64_t chunk_end_ = 0;  ///< stream offset one past chunk_'s last record
};

}  // namespace c2b
