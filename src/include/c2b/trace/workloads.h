#pragma once

// Named workload catalog: ties together a trace generator, the application's
// sequential fraction, its g(N) scaling law, and a size knob. These are the
// reproduction's stand-ins for the paper's SPLASH-2/PARSEC benchmarks; each
// factory documents which paper workload it emulates and why the knobs
// preserve the relevant behavior.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "c2b/laws/scaling.h"
#include "c2b/trace/generators.h"

namespace c2b {

struct WorkloadSpec {
  std::string name;
  std::string emulates;  ///< which paper workload/role this stands in for
  /// Canonical identity for memoization: name plus the factory's size
  /// parameters. Two specs with equal uid must be behaviorally identical —
  /// same generators AND same f_seq / g — or cached simulation results
  /// would replay across genuinely different workloads. (The DSE cache key
  /// additionally folds in f_seq and numeric samples of g as a backstop,
  /// but mutating a catalog spec in place should also clear or change its
  /// uid.) Factories fill it; empty disables result caching for hand-rolled
  /// specs.
  std::string uid;
  double f_seq = 0.05;                          ///< non-parallelizable work fraction
  ScalingFunction g = ScalingFunction::fixed();  ///< capacity scaling law
  std::uint64_t base_instructions = 1'000'000;  ///< IC_0 at N = 1

  /// Build a fresh generator at problem scale `scale` >= 1 (the working set
  /// grows with scale according to the workload's memory complexity).
  std::function<std::unique_ptr<TraceGenerator>(double scale, std::uint64_t seed)>
      make_generator;
};

/// Table I row 1: tiled dense matrix multiply, g(N) = N^{3/2}.
WorkloadSpec make_tmm_workload(std::size_t base_matrix_dim = 64, std::size_t tile_dim = 8);

/// Table I row 3: 5-point stencil, g(N) = N.
WorkloadSpec make_stencil_workload(std::size_t base_grid_dim = 256);

/// Table I row 4: radix-2 FFT, g(N) = 2N at M = N.
WorkloadSpec make_fft_workload(unsigned base_log2_n = 14);

/// Table I row 2: band sparse SpMV, g(N) = N.
WorkloadSpec make_band_sparse_workload(std::size_t base_rows = 1 << 15, std::size_t band = 8);

/// Fig. 7 "application 1": large f_seq, dependent accesses (C ~ 1).
WorkloadSpec make_pointer_chase_workload(std::size_t base_lines = 1 << 15);

/// Fluidanimate-like: large, Zipf-skewed working set with phase changes
/// between irregular particle access and regular grid sweeps — the paper's
/// Fig. 12 case study subject. High MLP, small f_seq, near-linear g.
WorkloadSpec make_fluidanimate_like_workload(std::size_t base_lines = 1 << 17);

/// GUPS-like random update over a huge table: zero locality, full MLP;
/// the big-data extreme of Section V's memory-bound case.
WorkloadSpec make_gups_workload(std::size_t base_table_lines = 1 << 17);

/// Streaming reduction: sequential, prefetch-friendly, g(N) = N.
WorkloadSpec make_reduction_workload(std::size_t base_elements = 1 << 18);

/// Blocked matrix transpose: one strided side, one streaming side.
WorkloadSpec make_transpose_workload(std::size_t base_matrix_dim = 512,
                                     std::size_t block_dim = 16);

/// BFS-like frontier expansion: alternating sequential and random bursts.
WorkloadSpec make_frontier_workload(std::size_t base_vertices = 1 << 15);

/// The full catalog (used by the APC figure and by tests that sweep
/// behaviors).
std::vector<WorkloadSpec> workload_catalog();

}  // namespace c2b
