#pragma once

// Synthetic kernel trace generators. Each reproduces the address pattern
// and instruction mix of a kernel family the paper leans on (Table I and
// the PARSEC/SPLASH-2 evaluation): tiled matrix multiply, stencil, FFT
// butterflies, band-sparse SpMV, pointer chasing, and a Zipf-skewed
// big-data stream standing in for fluidanimate's large working set.
//
// All generators emit an interleaving of kCompute records and kLoad/kStore
// records with concrete byte addresses, deterministically from their
// parameters + seed, so every experiment is reproducible.

#include <memory>

#include "c2b/common/rng.h"
#include "c2b/trace/trace.h"

namespace c2b {

namespace detail {

/// Refill-buffer base: subclasses produce one loop-nest step per refill.
class BufferedGenerator : public TraceGenerator {
 public:
  TraceRecord next() final;
  void reset() final;
  const std::string& name() const noexcept final { return name_; }

 protected:
  explicit BufferedGenerator(std::string name) : name_(std::move(name)) {}
  /// Append the next batch of records to `out`; called when drained.
  virtual void refill(std::vector<TraceRecord>& out) = 0;
  /// Restore generator state to the beginning of the stream.
  virtual void rewind() = 0;

  static TraceRecord compute() { return {.kind = InstrKind::kCompute}; }
  static TraceRecord load(std::uint64_t address) {
    return {.kind = InstrKind::kLoad, .address = address};
  }
  static TraceRecord store(std::uint64_t address) {
    return {.kind = InstrKind::kStore, .address = address};
  }
  static TraceRecord dependent_load(std::uint64_t address) {
    return {.kind = InstrKind::kLoad, .depends_on_prev_mem = true, .address = address};
  }

 private:
  std::string name_;
  std::vector<TraceRecord> buffer_;
  std::size_t position_ = 0;
};

}  // namespace detail

/// Tiled dense matrix multiply C += A*B (paper Table I row 1; W ~ n^3,
/// M ~ n^2, g(N) = N^{3/2}). Emits the exact address stream of the
/// (ii,jj,kk)(i,j,k) tiled loop nest over double elements.
class TiledMatMulGenerator final : public detail::BufferedGenerator {
 public:
  TiledMatMulGenerator(std::size_t matrix_dim, std::size_t tile_dim,
                       std::uint64_t base_address = 0);

  std::unique_ptr<TraceGenerator> clone() const override {
    return std::make_unique<TiledMatMulGenerator>(*this);
  }

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  std::size_t n_;
  std::size_t tile_;
  std::uint64_t base_a_, base_b_, base_c_;
  // Loop-nest odometer: tile indices then intra-tile indices.
  std::size_t ii_ = 0, jj_ = 0, kk_ = 0, i_ = 0, j_ = 0, k_ = 0;
};

/// 5-point Jacobi stencil over an n x n grid (Table I row 3; g(N) = N).
class StencilGenerator final : public detail::BufferedGenerator {
 public:
  explicit StencilGenerator(std::size_t grid_dim, std::uint64_t base_address = 0);

  std::unique_ptr<TraceGenerator> clone() const override {
    return std::make_unique<StencilGenerator>(*this);
  }

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  std::size_t n_;
  std::uint64_t base_in_, base_out_;
  std::size_t i_ = 1, j_ = 1;
};

/// Radix-2 FFT butterfly address pattern over 2^log2_n complex doubles
/// (Table I row 4; g(N) = 2N at M = N).
class FftGenerator final : public detail::BufferedGenerator {
 public:
  explicit FftGenerator(unsigned log2_n, std::uint64_t base_address = 0);

  std::unique_ptr<TraceGenerator> clone() const override {
    return std::make_unique<FftGenerator>(*this);
  }

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  unsigned log2_n_;
  std::size_t n_;
  std::uint64_t base_;
  unsigned stage_ = 0;
  std::size_t group_ = 0, butterfly_ = 0;
};

/// Band sparse matrix-vector product y = A x with semi-bandwidth `band`
/// (Table I row 2; g(N) = N).
class BandSparseGenerator final : public detail::BufferedGenerator {
 public:
  BandSparseGenerator(std::size_t rows, std::size_t band, std::uint64_t base_address = 0);

  std::unique_ptr<TraceGenerator> clone() const override {
    return std::make_unique<BandSparseGenerator>(*this);
  }

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  std::size_t rows_, band_;
  std::uint64_t base_vals_, base_x_, base_y_;
  std::size_t row_ = 0;
};

/// Dependent pointer chase over a random permutation of `lines` cache
/// lines: minimal locality AND minimal memory concurrency (every load
/// depends on the previous one). The low-C extreme of the paper's Fig. 7.
class PointerChaseGenerator final : public detail::BufferedGenerator {
 public:
  PointerChaseGenerator(std::size_t lines, unsigned computes_per_access, std::uint64_t seed,
                        std::uint64_t base_address = 0);

  std::unique_ptr<TraceGenerator> clone() const override {
    return std::make_unique<PointerChaseGenerator>(*this);
  }

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  /// Immutable after construction; clones share it (building the Sattolo
  /// cycle is the expensive part of construction, so prototype-clone
  /// batched sweeps must not redo or recopy it per clone).
  std::shared_ptr<const std::vector<std::uint32_t>> permutation_;
  unsigned computes_per_access_;
  std::uint64_t base_;
  std::size_t current_ = 0;
};

/// Zipf-skewed independent access stream over a large working set with a
/// tunable f_mem and write ratio; stands in for fluidanimate-style
/// big-working-set irregular behavior. High memory-level parallelism
/// (accesses are independent), tunable locality via the Zipf exponent.
class ZipfStreamGenerator final : public detail::BufferedGenerator {
 public:
  struct Params {
    std::size_t working_set_lines = 1 << 16;
    double zipf_exponent = 0.8;   ///< higher -> more locality
    double f_mem = 0.3;           ///< fraction of memory instructions
    double write_ratio = 0.3;     ///< stores among memory accesses
    std::uint64_t seed = 1;
    std::uint64_t base_address = 0;
  };

  explicit ZipfStreamGenerator(const Params& params);

  std::unique_ptr<TraceGenerator> clone() const override {
    return std::make_unique<ZipfStreamGenerator>(*this);
  }

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  Params params_;
  Rng rng_;
  /// Permutation so hot lines are scattered. Immutable after construction;
  /// clones share it instead of recopying the working-set-sized table.
  std::shared_ptr<const std::vector<std::uint32_t>> hot_order_;
};

/// GUPS-style random update: load-modify-store to uniformly random lines
/// over a huge table. The classic bandwidth/latency stress case (RandomAccess
/// of the HPC Challenge suite); near-zero locality but full independence, so
/// concurrency is all that keeps it moving.
class GupsGenerator final : public detail::BufferedGenerator {
 public:
  GupsGenerator(std::size_t table_lines, std::uint64_t seed, std::uint64_t base_address = 0);

  std::unique_ptr<TraceGenerator> clone() const override {
    return std::make_unique<GupsGenerator>(*this);
  }

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  std::size_t table_lines_;
  std::uint64_t seed_;
  Rng rng_;
  std::uint64_t base_;
};

/// Streaming reduction: one sequential read pass with an accumulator —
/// perfectly prefetchable, compute-light, g(N) = N.
class ReductionGenerator final : public detail::BufferedGenerator {
 public:
  explicit ReductionGenerator(std::size_t elements, std::uint64_t base_address = 0);

  std::unique_ptr<TraceGenerator> clone() const override {
    return std::make_unique<ReductionGenerator>(*this);
  }

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  std::size_t elements_;
  std::uint64_t base_;
  std::size_t index_ = 0;
};

/// Blocked matrix transpose: reads rows, writes columns — one side streams,
/// the other strides by the full row, stressing set-conflict behavior.
class TransposeGenerator final : public detail::BufferedGenerator {
 public:
  TransposeGenerator(std::size_t matrix_dim, std::size_t block_dim,
                     std::uint64_t base_address = 0);

  std::unique_ptr<TraceGenerator> clone() const override {
    return std::make_unique<TransposeGenerator>(*this);
  }

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  std::size_t n_, block_;
  std::uint64_t base_in_, base_out_;
  std::size_t bi_ = 0, bj_ = 0, i_ = 0, j_ = 0;
};

/// BFS-like frontier expansion: reads a sequential frontier array, then a
/// burst of random neighbor lookups per vertex — alternating regular and
/// irregular access within one kernel, like graph analytics.
class FrontierGenerator final : public detail::BufferedGenerator {
 public:
  struct Params {
    std::size_t vertices = 1 << 16;     ///< graph size in vertices (1 line each)
    unsigned neighbors_per_vertex = 6;  ///< random lookups per frontier entry
    std::uint64_t seed = 1;
    std::uint64_t base_address = 0;
  };
  explicit FrontierGenerator(const Params& params);

  std::unique_ptr<TraceGenerator> clone() const override {
    return std::make_unique<FrontierGenerator>(*this);
  }

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  Params params_;
  Rng rng_;
  std::uint64_t base_frontier_, base_adjacency_;
  std::size_t frontier_index_ = 0;
};

/// Concatenates child generators in a repeating schedule of fixed-length
/// phases, reproducing the paper's "behavior changes phase by phase"
/// observation (Section IV).
class PhasedGenerator final : public detail::BufferedGenerator {
 public:
  struct Phase {
    std::shared_ptr<TraceGenerator> generator;
    std::uint64_t length = 0;  ///< instructions before switching
  };

  explicit PhasedGenerator(std::vector<Phase> phases);

  /// Deep clone: children are cloned too (phases share mutable child
  /// state, so a shallow copy would alias it). Returns nullptr when any
  /// child is not clonable.
  std::unique_ptr<TraceGenerator> clone() const override;

 private:
  void refill(std::vector<TraceRecord>& out) override;
  void rewind() override;

  std::vector<Phase> phases_;
  std::size_t phase_index_ = 0;
  std::uint64_t emitted_in_phase_ = 0;
};

}  // namespace c2b
