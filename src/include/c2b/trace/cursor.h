#pragma once

// Streaming trace replay. The simulator's issue loop consumes instructions
// strictly in program order, one at a time, and only ever needs to look at
// the *next* record — so a pull cursor with peek/advance semantics is
// enough to drive it, and generator-backed workloads no longer need a
// materialized std::vector<TraceRecord> per core. The contract the kernel
// relies on:
//
//  * peek() returns the next unconsumed record (stable until advance())
//    or nullptr once the stream is exhausted;
//  * advance() consumes exactly the record peek() returned;
//  * compute_run(limit) counts consecutive kCompute records starting at
//    the cursor without consuming them — it may return fewer than the
//    true run length (bounded by internal buffering), never more, so the
//    kernel's compute fast path stays correct at chunk boundaries;
//  * skip(count) consumes `count` records (the caller must know they
//    exist, e.g. from compute_run);
//  * reset() rewinds to the beginning of the identical stream.
//
// GeneratorTraceCursor keeps at most one chunk of records resident, which
// is what makes DSE replay memory O(chunk) instead of O(window) per core.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "c2b/trace/trace.h"

namespace c2b {

class TraceCursor {
 public:
  virtual ~TraceCursor() = default;

  /// Next unconsumed record, or nullptr at end of stream. The pointer is
  /// valid until the next advance()/skip()/reset() call.
  virtual const TraceRecord* peek() = 0;

  /// Consume the record peek() returned. Precondition: peek() != nullptr.
  virtual void advance() = 0;

  /// Length of the run of consecutive kCompute records starting at the
  /// cursor, capped at `limit` and at the internal buffer boundary (a
  /// lower bound on the true run length). Does not consume.
  virtual std::size_t compute_run(std::size_t limit) = 0;

  /// Consume `count` records. Precondition: the stream holds at least
  /// `count` more records.
  virtual void skip(std::size_t count) = 0;

  /// Rewind to the start of the identical record stream.
  virtual void reset() = 0;
};

/// Cursor over an already-materialized trace (not owned).
class VectorTraceCursor final : public TraceCursor {
 public:
  explicit VectorTraceCursor(const Trace& trace) : records_(&trace.records) {}
  explicit VectorTraceCursor(const std::vector<TraceRecord>& records) : records_(&records) {}

  const TraceRecord* peek() override {
    return pos_ < records_->size() ? records_->data() + pos_ : nullptr;
  }
  void advance() override { ++pos_; }
  std::size_t compute_run(std::size_t limit) override {
    std::size_t run = 0;
    const std::size_t end = records_->size();
    for (std::size_t i = pos_; i < end && run < limit; ++i, ++run)
      if ((*records_)[i].kind != InstrKind::kCompute) break;
    return run;
  }
  void skip(std::size_t count) override { pos_ += count; }
  void reset() override { pos_ = 0; }

 private:
  const std::vector<TraceRecord>* records_;
  std::size_t pos_ = 0;
};

/// Cursor that pulls records from a TraceGenerator chunk-at-a-time. The
/// stream is exactly the first `count` records of generator->next() after a
/// reset() — bit-identical to TraceGenerator::generate(count), with at most
/// `chunk_records` of them resident at any moment.
class GeneratorTraceCursor final : public TraceCursor {
 public:
  static constexpr std::size_t kDefaultChunkRecords = 4096;

  GeneratorTraceCursor(std::unique_ptr<TraceGenerator> generator, std::uint64_t count,
                       std::size_t chunk_records = kDefaultChunkRecords);

  const TraceRecord* peek() override;
  void advance() override;
  std::size_t compute_run(std::size_t limit) override;
  void skip(std::size_t count) override;
  void reset() override;

  /// Records in the stream (fixed at construction).
  std::uint64_t stream_length() const noexcept { return total_; }
  /// Configured resident-window bound.
  std::size_t chunk_capacity() const noexcept { return chunk_; }
  /// Largest number of records resident at once so far (<= chunk_capacity).
  std::size_t max_resident_records() const noexcept { return max_resident_; }

 private:
  /// Refill the (exhausted) buffer with the next chunk of the stream.
  void refill();
  bool buffer_exhausted() const noexcept { return pos_ >= buffer_.size(); }

  std::unique_ptr<TraceGenerator> generator_;
  std::uint64_t total_;
  std::size_t chunk_;
  std::uint64_t produced_ = 0;  ///< records pulled from the generator so far
  std::vector<TraceRecord> buffer_;
  std::size_t pos_ = 0;
  std::size_t max_resident_ = 0;
};

}  // namespace c2b
