#pragma once

// LRU stack-distance (reuse-distance) analysis.
//
// For a fully-associative LRU cache of S lines, an access hits iff its
// stack distance is < S, so one pass over a trace yields the entire
// miss-ratio-vs-capacity curve (Mattson et al.). The C²-Bound core uses
// these curves to make C-AMAT a function of the cache areas A1/A2 and of
// the capacity-scaled working set; this is the measured counterpart of the
// analytic power-law miss model.
//
// Implementation: classic Bennett–Kruskal algorithm — a Fenwick tree over
// trace positions counts distinct lines touched since the previous access
// to the same line. O(log n) per access, O(n) memory in the window size.

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "c2b/trace/trace.h"

namespace c2b {

/// Sentinel distance for first-touch (cold) accesses.
inline constexpr std::uint64_t kColdMiss = std::numeric_limits<std::uint64_t>::max();

/// Streaming stack-distance computation over cache-line granules.
class StackDistanceAnalyzer {
 public:
  explicit StackDistanceAnalyzer(std::uint32_t line_bytes = 64);

  /// Record one access; returns its stack distance (distinct lines touched
  /// since the last access to this line), or kColdMiss for a first touch.
  std::uint64_t access(std::uint64_t byte_address);

  /// Feed every memory access of a trace.
  void consume(const Trace& trace);

  std::uint64_t access_count() const noexcept { return time_; }
  std::uint64_t cold_miss_count() const noexcept { return cold_misses_; }

  /// Histogram of observed distances, bucketed by power of two:
  /// bucket[i] counts distances in [2^i, 2^{i+1}).
  const std::vector<std::uint64_t>& distance_histogram_pow2() const noexcept {
    return histogram_;
  }

  /// Miss ratio of a fully-associative LRU cache with `lines` lines
  /// (cold misses always count as misses). Exact, from raw distances.
  double miss_ratio_for(std::uint64_t lines) const;

  /// The miss-ratio curve at power-of-two capacities [1, 2, 4, ... 2^k]
  /// covering every observed distance. Returned as (lines, miss_ratio).
  std::vector<std::pair<std::uint64_t, double>> miss_ratio_curve() const;

 private:
  void fenwick_add(std::size_t position, std::int64_t delta);
  std::int64_t fenwick_prefix_sum(std::size_t position) const;

  std::uint32_t line_bytes_;
  std::uint64_t time_ = 0;
  std::uint64_t cold_misses_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> last_access_;  ///< line -> last time
  std::vector<std::int64_t> fenwick_;                             ///< 1-based BIT
  std::vector<std::uint64_t> histogram_;                          ///< pow2 buckets
  std::vector<std::uint64_t> raw_distance_counts_;  ///< exact counts up to a cap
  static constexpr std::size_t kExactCap = 1 << 22;
};

/// Fit alpha, beta of the power-law miss model MR(S) = min(1, alpha * S^-beta)
/// to a measured curve (least squares in log space over the non-saturated
/// points). Returns {alpha, beta}.
struct PowerLawFit {
  double alpha = 1.0;
  double beta = 0.5;
};
PowerLawFit fit_miss_power_law(const std::vector<std::pair<std::uint64_t, double>>& curve);

}  // namespace c2b
