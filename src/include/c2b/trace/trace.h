#pragma once

// Instruction-trace representation shared by the generators, the phase
// picker, and the cycle-level simulator. A trace is a stream of retired
// instructions; memory instructions carry a byte address. This is the
// substitute for the paper's SPLASH-2 / PARSEC SimPoint traces: the
// generators below expose the knobs those benchmarks matter through
// (f_mem, locality, working set, phase structure).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace c2b {

enum class InstrKind : std::uint8_t { kCompute = 0, kLoad = 1, kStore = 2 };

struct TraceRecord {
  InstrKind kind = InstrKind::kCompute;
  /// True when this memory access consumes the value of the previous memory
  /// access (pointer chasing): the core cannot overlap it, which is what
  /// drives memory concurrency C toward 1 for such codes.
  bool depends_on_prev_mem = false;
  std::uint64_t address = 0;  ///< byte address; meaningful for load/store only
};

/// A materialized trace window plus its provenance.
struct Trace {
  std::string name;
  std::vector<TraceRecord> records;

  std::uint64_t instruction_count() const noexcept { return records.size(); }
  std::uint64_t memory_access_count() const noexcept;
  /// Fraction of instructions that access memory (the paper's f_mem).
  double f_mem() const noexcept;
  /// Number of distinct cache lines touched (working-set proxy).
  std::uint64_t distinct_lines(std::uint32_t line_bytes = 64) const;
};

/// Pull-based generator interface; all generators are deterministic given
/// their construction parameters and seed.
class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;
  /// Produce the next retired instruction.
  virtual TraceRecord next() = 0;
  /// Restart the stream from the beginning (same sequence).
  virtual void reset() = 0;
  virtual const std::string& name() const noexcept = 0;

  /// Independent copy of this generator, or nullptr when the concrete type
  /// does not support cloning (callers must fall back to reconstructing).
  /// A clone of a generator that has not produced records yet replays the
  /// exact stream a freshly constructed twin would; cloning from a const
  /// prototype is a pure copy, so it is safe from concurrent threads as
  /// long as nobody pulls records from the prototype.
  virtual std::unique_ptr<TraceGenerator> clone() const { return nullptr; }

  /// Materialize `count` records into a Trace.
  Trace generate(std::uint64_t count);
};

}  // namespace c2b
