#pragma once

// AMAT / C-AMAT / APC formula layer (paper Eqs. 1–3 and Section V).
//
// AMAT   = H + MR * AMP                         (Eq. 1)
// C-AMAT = H/C_H + pMR * pAMP / C_M             (Eq. 2)
// C      = AMAT / C-AMAT                        (Eq. 3), C >= 1
// APC    = accesses per memory-active cycle; C-AMAT = 1/APC.
//
// These pure functions take parameter structs so they can be fed either from
// the timeline analyzer (measured) or from the analytic cache model
// (predicted); both producers share the same consumer code.

#include <vector>

#include "c2b/common/assert.h"

namespace c2b {

/// Parameters of the sequential AMAT model (Eq. 1).
struct AmatParams {
  double hit_time = 1.0;      ///< H, cycles per hit
  double miss_rate = 0.0;     ///< MR in [0, 1]
  double miss_penalty = 0.0;  ///< AMP, average penalty cycles per miss
};

/// Parameters of the concurrent C-AMAT model (Eq. 2).
struct CamatParams {
  double hit_time = 1.0;          ///< H, cycles per hit (same as AMAT's H)
  double hit_concurrency = 1.0;   ///< C_H >= 1
  double pure_miss_rate = 0.0;    ///< pMR in [0, MR]
  double pure_miss_penalty = 0.0; ///< pAMP, pure-miss cycles per pure miss
  double miss_concurrency = 1.0;  ///< C_M >= 1
};

/// Eq. (1).
[[nodiscard]] double amat(const AmatParams& p);

/// Eq. (2).
[[nodiscard]] double camat(const CamatParams& p);

/// Eq. (3): data-access concurrency C = AMAT / C-AMAT (>= 1 in practice).
[[nodiscard]] double concurrency(const AmatParams& a, const CamatParams& c);

/// Degenerate check: with C_H = C_M = 1, pMR = MR, pAMP = AMP, C-AMAT
/// collapses to AMAT (the paper's "AMAT is a special case of C-AMAT").
[[nodiscard]] CamatParams camat_from_sequential(const AmatParams& p);

/// APC (accesses per memory-active cycle); APC = 1 / C-AMAT.
[[nodiscard]] inline double apc_from_camat(double camat_cycles) {
  C2B_REQUIRE(camat_cycles > 0.0, "C-AMAT must be positive");
  return 1.0 / camat_cycles;
}

/// Classic sequential data-stall time per instruction (Eq. 6):
/// stall = f_mem * AMAT ... valid only when no concurrency exists.
[[nodiscard]] double data_stall_amat(double f_mem, double amat_cycles);

/// Concurrency-aware stall contribution used in Eq. (7):
/// f_mem * C-AMAT * (1 - overlap_ratio_cm), where overlap_ratio_cm is the
/// fraction of pure-miss-induced stall hidden behind computation.
[[nodiscard]] double data_stall_camat(double f_mem, double camat_cycles, double overlap_ratio_cm);

/// Eq. (5)/(7): total time = IC * (CPI_exe + stall_per_instruction) * cycle.
[[nodiscard]] double cpu_time(double instruction_count, double cpi_exe,
                              double stall_per_instruction, double cycle_time = 1.0);

/// One layer of the recursive multi-level C-AMAT formulation
/// (Sun & Wang [15]): the pure-miss penalty of layer i is the next layer's
/// C-AMAT scaled by the inter-layer overlap factor kappa_i, so
///     C-AMAT_i = H_i / C_H_i + pMR_i * kappa_i * C-AMAT_{i+1}.
/// This is how the paper's "memory system means the whole hierarchy" cashes
/// out: one formula per level, composed bottom-up from DRAM.
struct CamatLevel {
  double hit_time = 1.0;         ///< H_i
  double hit_concurrency = 1.0;  ///< C_H_i
  double pure_miss_rate = 0.0;   ///< pMR_i
  double kappa = 1.0;            ///< inter-layer overlap factor (<= 1 hides)
};

/// Compose the hierarchy top-down: levels[0] is L1; `memory_camat` is the
/// terminal access time below the last cache level (DRAM C-AMAT). Returns
/// the application-visible C-AMAT_1.
[[nodiscard]] double recursive_camat(const std::vector<CamatLevel>& levels,
                                     double memory_camat);

}  // namespace c2b
