#pragma once

// Cycle-timeline analysis of concurrent memory accesses (paper Fig. 1).
//
// An access occupies `hit_cycles` consecutive cycles of hit/lookup activity
// starting at `start_cycle`; if it misses, `miss_penalty_cycles` of miss
// activity follow immediately. From a set of such (possibly overlapping)
// accesses the analyzer derives every quantity in Eqs. (1)–(3):
//
//  * hit cycle           — a cycle with >= 1 access in hit activity
//  * pure-miss cycle     — a cycle with >= 1 miss activity and NO hit activity
//  * C_H                 — hit access-cycles / distinct hit cycles
//  * C_M                 — pure-miss access-cycles / distinct pure-miss cycles
//  * pure miss           — a missed access with >= 1 pure-miss cycle
//  * pMR                 — pure misses / accesses
//  * pAMP                — pure-miss cycles per pure miss
//
// With these definitions the identity
//     C-AMAT = memory-active cycles / accesses = 1 / APC
// holds exactly; the property tests sweep random timelines to verify it.
//
// The same analyzer backs both offline trace analysis and the on-line
// HCD/MCD detector model in src/sim/detector (which reproduces these numbers
// incrementally with bounded hardware state).

#include <cstdint>
#include <vector>

#include "c2b/metrics/amat.h"

namespace c2b {

/// One memory access on the cycle timeline.
struct TimelineAccess {
  std::uint64_t start_cycle = 0;
  std::uint32_t hit_cycles = 1;          ///< lookup/hit activity duration (H)
  std::uint32_t miss_penalty_cycles = 0; ///< 0 for a hit
};

/// All quantities derivable from one timeline.
struct TimelineMetrics {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t pure_misses = 0;

  std::uint64_t hit_cycle_count = 0;        ///< distinct cycles with hit activity
  std::uint64_t hit_access_cycles = 0;      ///< Σ per-cycle hit concurrency
  std::uint64_t pure_miss_cycle_count = 0;  ///< distinct pure-miss cycles
  std::uint64_t pure_miss_access_cycles = 0;
  std::uint64_t memory_active_cycles = 0;   ///< cycles with any activity

  AmatParams amat_params;    ///< measured H (mean), MR, AMP
  CamatParams camat_params;  ///< measured H, C_H, pMR, pAMP, C_M

  double amat_value = 0.0;
  double camat_value = 0.0;   ///< via Eq. (2) from camat_params
  double camat_direct = 0.0;  ///< memory-active cycles / accesses (identity)
  double apc = 0.0;           ///< accesses / memory-active cycles
  double concurrency_c = 1.0; ///< Eq. (3)
};

/// Analyze a batch of accesses. The accesses need not be sorted.
/// Throws std::invalid_argument on an empty batch or zero-length hits.
TimelineMetrics analyze_timeline(const std::vector<TimelineAccess>& accesses);

/// The paper's Fig. 1 worked example (5 accesses, H = 3): A1/A2 hit at cycle
/// 1, A3/A4 at cycle 3 (A3 misses with a 3-cycle penalty, A4 with 1), A5
/// hits at cycle 4. Yields AMAT = 3.8, C-AMAT = 1.6, C_H = 5/2, C_M = 1,
/// pMR = 1/5, pAMP = 2.
std::vector<TimelineAccess> figure1_example_timeline();

}  // namespace c2b
