#pragma once

// Parallel speedup laws (paper Section II-B).
//
// Sun-Ni's memory-bounded speedup (Eq. 4):
//     S(N) = [f_seq + (1 - f_seq) g(N)] / [f_seq + (1 - f_seq) g(N) / N]
// with the special cases g = 1 (Amdahl) and g = N (Gustafson).

#include "c2b/laws/scaling.h"

namespace c2b {

/// Amdahl's law: fixed problem size.
[[nodiscard]] double amdahl_speedup(double f_seq, double n);

/// Gustafson's law: problem scales linearly with N.
[[nodiscard]] double gustafson_speedup(double f_seq, double n);

/// Sun-Ni's law, Eq. (4), with an explicit g(N) value.
[[nodiscard]] double sunni_speedup(double f_seq, double g_of_n, double n);

/// Sun-Ni's law with a ScalingFunction.
[[nodiscard]] double sunni_speedup(double f_seq, const ScalingFunction& g, double n);

/// The scaled problem size W' = g(N) * W (Section II-B).
[[nodiscard]] double scaled_problem_size(double base_problem_size, const ScalingFunction& g,
                                         double n);

/// Memory->problem-size map W = h(M) = a M^b and its g(N) = N^b derivation;
/// kept as an explicit object so tests can verify g(N) = h(N M)/h(M) for the
/// paper's dense-matrix example (W = (2M/3)^{3/2}).
struct PowerLawWorkload {
  double coefficient = 1.0;  ///< a
  double exponent = 1.0;     ///< b

  [[nodiscard]] double work_for_memory(double memory) const;  ///< h(M)
  [[nodiscard]] double memory_for_work(double work) const;    ///< h^{-1}(W)
  [[nodiscard]] double g(double n) const;                     ///< h(N M)/h(M) = N^b

  /// Dense matrix multiplication from the paper: W = 2n^3, M = 3n^2, hence
  /// h(M) = 2 (M/3)^{3/2}, i.e. a = 2/3^{3/2}, b = 3/2. (The paper prints
  /// W = (2M/3)^{3/2}, whose constant is slightly off; the constant cancels
  /// in g(N) = N^{3/2} either way.)
  static PowerLawWorkload dense_matrix_multiply();
};

}  // namespace c2b
