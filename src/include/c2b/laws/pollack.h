#pragma once

// Pollack's rule (paper Eq. 11): single-core performance grows with the
// square root of core complexity/area, so
//     CPI_exe(A0) = k0 * A0^{-1/2} + phi0.
// phi0 is the asymptotic CPI floor of an arbitrarily large core; k0 scales
// how quickly added area buys ILP.

#include <cmath>

#include "c2b/common/assert.h"

namespace c2b {

struct PollackCore {
  double k0 = 1.0;    ///< area-sensitivity coefficient (> 0)
  double phi0 = 0.2;  ///< CPI floor (>= 0)

  /// Eq. (11): CPI_exe at core area a0 (> 0), in arbitrary area units.
  [[nodiscard]] double cpi_exe(double a0) const {
    C2B_REQUIRE(a0 > 0.0, "core area must be positive");
    C2B_REQUIRE(k0 > 0.0 && phi0 >= 0.0, "invalid Pollack parameters");
    return k0 / std::sqrt(a0) + phi0;
  }

  /// Relative single-core performance vs. a unit-area core (sqrt rule).
  [[nodiscard]] double relative_performance(double a0) const {
    return cpi_exe(1.0) / cpi_exe(a0);
  }

  /// Area needed to reach a target CPI (inverse of cpi_exe); throws if the
  /// target is at or below the phi0 floor.
  [[nodiscard]] double area_for_cpi(double target_cpi) const {
    C2B_REQUIRE(target_cpi > phi0, "target CPI below the Pollack floor is unreachable");
    const double root = k0 / (target_cpi - phi0);
    return root * root;
  }
};

}  // namespace c2b
