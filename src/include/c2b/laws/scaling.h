#pragma once

// Problem-size scaling functions g(N) (paper Section II-B, Table I).
//
// g(N) = h(N*M) / h(M) is the factor by which the problem grows when the
// aggregate memory grows N-fold, where W = h(M) maps memory footprint to
// work. For power-law h(x) = a x^b, g(N) = N^b independent of M; for
// FFT-like h(x) = a x log2 x the factor depends on the base memory size M
// and equals 2N at the paper's normalization point M = N.

#include <functional>
#include <string>
#include <vector>

namespace c2b {

/// g(N): parallel problem-size increase factor under N-fold memory.
class ScalingFunction {
 public:
  /// g(N) = 1 — fixed problem size (Amdahl regime).
  static ScalingFunction fixed();
  /// g(N) = N — memory-linear scaling (Gustafson regime).
  static ScalingFunction linear();
  /// g(N) = N^b for any rational exponent b >= 0.
  static ScalingFunction power(double exponent);
  /// FFT-like h(M) = M log2 M: g(N) = N (log2 N + log2 M) / log2 M.
  /// `base_memory` is M (> 1). At M = N this is the paper's g(N) = 2N.
  static ScalingFunction fft_like(double base_memory);
  /// Derive from complexity pair: W ~ n^comp, M ~ n^mem  =>  g(N) = N^{comp/mem}.
  /// (Table I: TMM comp=3 mem=2 -> N^{3/2}; stencil/band-sparse 1/1 -> N.)
  static ScalingFunction from_complexity(double computation_exponent, double memory_exponent);
  /// Arbitrary user-supplied g; must satisfy g(1) = 1 and g > 0.
  /// `capacity_driven` selects memory_scale(N) = N (default) vs 1.
  static ScalingFunction custom(std::function<double(double)> fn, std::string description,
                                bool capacity_driven = true);

  /// Evaluate g at a (possibly fractional) core/memory multiple n >= 1.
  double operator()(double n) const;

  /// Total data-footprint growth factor h^{-1}(g(N) W0) / h^{-1}(W0) at the
  /// same point: how much the problem's *memory* grows when its work grows
  /// by g(N). For every capacity-driven law (power with b > 0, linear, FFT)
  /// this is N — the problem is sized to fill the N-fold memory; for the
  /// fixed law it is 1. The C²-Bound miss model uses this to derive the
  /// per-core working set ws0 * memory_scale(N) / N.
  double memory_scale(double n) const;

  /// Local growth exponent d(log g)/d(log N) at n; the paper's case split
  /// "g(N) >= O(N)" is `growth_exponent(n) >= 1`.
  double growth_exponent(double n) const;

  /// True when g grows at least linearly over [1, n_max] (case I of the APS
  /// algorithm: optimize W/T). False -> case II (minimize T).
  bool at_least_linear(double n_max = 1024.0) const;

  const std::string& description() const noexcept { return description_; }

 private:
  ScalingFunction(std::function<double(double)> fn, std::string description,
                  bool capacity_driven = true);

  std::function<double(double)> fn_;
  std::string description_;
  bool capacity_driven_ = true;  ///< memory_scale = N (true) or 1 (false)
};

/// One row of the paper's Table I.
struct Table1Entry {
  std::string application;
  std::string computation;  ///< complexity as printed in the paper
  std::string memory;
  std::string g_formula;    ///< the paper's g(N) column
  ScalingFunction g;
};

/// The four applications of Table I with their derived g(N). The FFT row is
/// materialized at the paper's normalization M = N (so g(N) = 2N, pinned to
/// g(1) = 1); use ScalingFunction::fft_like for a fixed base memory instead.
std::vector<Table1Entry> table1_entries();

}  // namespace c2b
