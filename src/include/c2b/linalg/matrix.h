#pragma once

// Dense row-major matrix with the small set of operations the Newton /
// Lagrange machinery needs: arithmetic, norms, LU solves. Sized for the
// library's use case (systems of a handful of unknowns up to ANN weight
// matrices of a few thousand entries) — clarity over BLAS-level tuning,
// but contiguous storage and cache-friendly loops throughout.

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "c2b/common/assert.h"

namespace c2b {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested braces: Matrix m{{1,2},{3,4}};
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    C2B_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    C2B_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  /// Raw contiguous storage (row-major) for tight loops.
  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) noexcept { return a *= s; }
  friend Matrix operator*(double s, Matrix a) noexcept { return a *= s; }

  Matrix transposed() const;

  /// Matrix-matrix product (ikj loop order for cache friendliness).
  friend Matrix operator*(const Matrix& a, const Matrix& b);
  /// Matrix-vector product.
  friend Vector operator*(const Matrix& a, const Vector& x);

  double frobenius_norm() const noexcept;
  double max_abs() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Vector helpers.
double dot(const Vector& a, const Vector& b);
double norm2(const Vector& v) noexcept;
double norm_inf(const Vector& v) noexcept;
Vector axpy(double alpha, const Vector& x, const Vector& y);  // alpha*x + y

/// LU factorization with partial pivoting of a square matrix.
/// Throws std::runtime_error on (numerical) singularity.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  /// Solve A x = b for one right-hand side.
  Vector solve(const Vector& b) const;
  /// Solve with a matrix right-hand side (columns solved independently).
  Matrix solve(const Matrix& b) const;

  double determinant() const noexcept;

 private:
  Matrix lu_;
  std::vector<std::size_t> pivot_;
  int pivot_sign_ = 1;
};

/// Convenience one-shot solve of A x = b.
Vector lu_solve(Matrix a, const Vector& b);

}  // namespace c2b
