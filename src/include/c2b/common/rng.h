#pragma once

// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All stochastic components in the library (trace generators, ANN weight
// initialization, k-means seeding, noise injection) take an explicit Rng so
// experiments are reproducible from a single seed.

#include <cstdint>
#include <vector>

#include "c2b/common/assert.h"

namespace c2b {

/// xoshiro256** 1.0 by Blackman & Vigna — excellent statistical quality and
/// ~1 ns per draw; state is seeded via splitmix64 so any 64-bit seed works.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Exponential with given rate (lambda > 0).
  double exponential(double rate) noexcept;

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Geometric-like Zipf/power-law sample over [0, n): P(k) ∝ (k+1)^-s.
  /// Used by trace generators to produce realistic reuse-distance skew.
  std::size_t zipf(std::size_t n, double s) noexcept;

  /// Sample an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Split off an independent stream (for per-core generators).
  Rng split() noexcept { return Rng(next() ^ 0xA0761D6478BD642Full); }

  /// Derive a per-stream seed from a base seed with splitmix64 finalization
  /// mixing both words. Linear schemes such as `seed + 17 * stream` collide
  /// systematically (e.g. (seed=18, stream=0) == (seed=1, stream=1)); the
  /// mixed derivation has no such structural collisions.
  static std::uint64_t derive_stream_seed(std::uint64_t seed, std::uint64_t stream) noexcept;

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace c2b
