#pragma once

// Streaming and batch descriptive statistics used by the simulator counters,
// the DSE error accounting, and the benchmark harnesses.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace c2b {

/// Welford online accumulator: numerically stable mean/variance plus
/// min/max/sum in a single pass; mergeable for parallel reductions.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator (Chan et al. parallel update).
  void merge(const RunningStats& other) noexcept;

  void reset() noexcept { *this = RunningStats(); }

  std::size_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (M2/n); 0 for fewer than 2 samples.
  double variance() const noexcept;
  /// Sample variance (M2/(n-1)); 0 for fewer than 2 samples.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch helpers (copy-free where possible).
double mean_of(const std::vector<double>& xs) noexcept;
double geomean_of(const std::vector<double>& xs);  // requires all > 0
/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile_of(std::vector<double> xs, double p);

/// Mean absolute percentage error between predictions and ground truth,
/// expressed as a fraction (0.0596 == 5.96%). Entries with |truth| < eps are
/// skipped to avoid division blowup.
double mape(const std::vector<double>& predicted, const std::vector<double>& truth,
            double eps = 1e-12);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins. Used for reuse-distance and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1) noexcept;
  std::uint64_t bin_count(std::size_t bin) const;
  std::size_t bin_count_size() const noexcept { return counts_.size(); }
  double bin_low(std::size_t bin) const;
  std::uint64_t total() const noexcept { return total_; }
  /// Value below which `fraction` of the mass lies (interpolated).
  double quantile(double fraction) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace c2b
