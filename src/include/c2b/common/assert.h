#pragma once

// Lightweight contract-checking macros used across the library.
//
// C2B_REQUIRE  — precondition check, always on (throws std::invalid_argument).
// C2B_ASSERT   — internal invariant check, always on (throws std::logic_error).
//
// Both are kept enabled in release builds: this library is an analytical /
// simulation tool where a silently-wrong number is far more expensive than
// the cost of a predictable branch.

#include <sstream>
#include <stdexcept>
#include <string>

namespace c2b::detail {

[[noreturn]] inline void throw_require_failure(const char* expr, const char* file, int line,
                                               const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert_failure(const char* expr, const char* file, int line,
                                              const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace c2b::detail

#define C2B_REQUIRE(expr, msg)                                                \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::c2b::detail::throw_require_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                         \
  } while (false)

#define C2B_ASSERT(expr, msg)                                                \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::c2b::detail::throw_assert_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                        \
  } while (false)
