#pragma once

// Small numeric helpers shared across modules.

#include <cmath>
#include <cstddef>
#include <vector>

namespace c2b {

/// Relative-plus-absolute tolerance comparison suitable for quantities that
/// may legitimately be zero.
inline bool almost_equal(double a, double b, double rel = 1e-9, double abs = 1e-12) noexcept {
  const double diff = std::fabs(a - b);
  if (diff <= abs) return true;
  return diff <= rel * std::max(std::fabs(a), std::fabs(b));
}

/// Linearly spaced vector of `count` points over [lo, hi] inclusive.
std::vector<double> linspace(double lo, double hi, std::size_t count);

/// Log-spaced vector of `count` points over [lo, hi] inclusive (lo, hi > 0).
std::vector<double> logspace(double lo, double hi, std::size_t count);

/// Integer geometric sweep: 1, 2, 4, ... capped at hi (used for core-count
/// axes in the figure reproductions).
std::vector<int> pow2_sweep(int lo, int hi);

inline double clamp(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// True if `value` is a power of two (> 0).
constexpr bool is_pow2(std::size_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// floor(log2(value)) for value > 0.
constexpr unsigned floor_log2(std::size_t value) noexcept {
  unsigned result = 0;
  while (value >>= 1) ++result;
  return result;
}

}  // namespace c2b
