#pragma once

// Console table and CSV writers. Every bench binary prints the paper's
// rows/series through these so the reproduction output is uniform and easy
// to diff or re-plot.

#include <string>
#include <variant>
#include <vector>

namespace c2b {

/// One table cell: text, integer, or floating point (printed with a
/// per-table precision).
using Cell = std::variant<std::string, std::int64_t, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int precision = 4);

  Table& add_row(std::vector<Cell> cells);
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render as an aligned, boxed console table.
  std::string to_string() const;
  /// Render as RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string to_csv() const;
  /// Write CSV to a path, creating parent directories. Returns false (and
  /// logs) on I/O failure rather than throwing — bench output should not die
  /// on a read-only filesystem.
  bool write_csv(const std::string& path) const;

 private:
  std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace c2b
