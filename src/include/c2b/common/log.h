#pragma once

// Minimal leveled logger. Thread-safe at the line level; writes to stderr so
// stdout stays clean for experiment tables and CSV output.

#include <sstream>
#include <string_view>

namespace c2b {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped. Defaults to kWarn so
/// library users see problems but not chatter.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

/// Emit one log line (used by the C2B_LOG macro; callable directly too).
void log_line(LogLevel level, std::string_view component, std::string_view message);

namespace detail {

class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, component_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace c2b

#define C2B_LOG(level, component)                        \
  if (static_cast<int>(level) < static_cast<int>(::c2b::log_threshold())) { \
  } else                                                 \
    ::c2b::detail::LogStream(level, component)
