#pragma once

// The C²-Bound model proper (paper Section III).
//
// Ties together:
//   * an application profile (characterized from traces: f_mem, f_seq,
//     overlap ratio, concurrency structure, working set, g(N)),
//   * a machine profile (Pollack core, hierarchy latencies, miss models,
//     chip area constraints),
// and evaluates the execution-time objective
//
//   J_D = IC0 * (CPI_exe(A0) + f_mem * C-AMAT(A1, A2, N) * (1 - ov))
//             * (f_seq + g(N) (1 - f_seq) / N)                     (Eq. 10)
//
// plus the throughput W/T = g(N) * IC0 / J_D used in case I of the APS
// algorithm. C-AMAT is assembled from the analytic miss models per Eq. (2);
// CPI_exe from Pollack's rule (Eq. 11); areas obey Eq. (12).

#include "c2b/core/chip.h"
#include "c2b/core/miss_model.h"
#include "c2b/laws/pollack.h"
#include "c2b/laws/scaling.h"
#include "c2b/metrics/amat.h"

namespace c2b {

/// Application-side inputs (everything APS characterization produces).
struct AppProfile {
  double ic0 = 1e6;             ///< dynamic instructions at N = 1
  double f_mem = 0.3;           ///< memory instructions per instruction
  double f_seq = 0.02;          ///< sequential (non-parallelizable) fraction
  double overlap_ratio = 0.3;   ///< Eq. (7) compute/memory-stall overlap
  double working_set_lines0 = 1 << 15;  ///< footprint at N = 1, in lines
  ScalingFunction g = ScalingFunction::power(1.5);

  // Concurrency structure measured by the detector (hardware- and
  // program-dependent, area-independent to first order).
  double hit_concurrency = 2.0;       ///< C_H
  double miss_concurrency = 2.0;      ///< C_M
  double pure_miss_fraction = 0.6;    ///< pMR / MR
  double pure_penalty_fraction = 0.8; ///< pAMP / AMP

  /// APS calibration anchor: the analytic stall term of Eq. (10) is
  /// multiplied by this factor so that, at the characterized baseline
  /// configuration, the model's CPI reproduces the measured CPI exactly.
  /// The miss power laws then drive only the *relative* change across the
  /// design space — the paper's "derive program-specific model parameters
  /// from traces" made explicit. 1.0 = no calibration.
  double stall_scale = 1.0;

  void validate() const;
};

/// Machine-side inputs.
struct MachineProfile {
  PollackCore pollack{.k0 = 1.0, .phi0 = 0.25};
  double l1_hit_time = 3.0;       ///< H, cycles
  double l2_latency = 18.0;       ///< L1-miss service from L2 (incl. NoC)
  double memory_latency = 140.0;  ///< L2-miss service from DRAM
  MissModel l1_miss{.alpha = 0.04, .beta = 0.5, .mr_cap = 0.8, .mr_floor = 1e-4};
  MissModel l2_miss{.alpha = 0.5, .beta = 0.6, .mr_cap = 1.0, .mr_floor = 1e-3};
  ChipConstraints chip{};
  double cycle_time = 1.0;
  /// Off-chip queueing coefficient: the effective DRAM penalty is inflated
  /// by 1 + memory_contention * (N-1) * f_mem * MR1 * MR2_local — all N
  /// cores share the memory controllers, so per-miss delay grows with the
  /// chip's aggregate off-chip traffic. Divided down by C_M inside Eq. (2),
  /// this is what makes W/T saturate early at C = 1 (paper Fig. 10: "about
  /// one hundred cores are enough") while higher concurrency keeps scaling.
  /// 0 disables contention (single-core studies, unit tests).
  double memory_contention = 0.0;

  void validate() const;
};

/// Everything the model derives for one design point.
struct Evaluation {
  DesignPoint design;
  double cpi_exe = 0.0;
  double l1_miss_rate = 0.0;
  double l2_local_miss_rate = 0.0;
  AmatParams amat_params;
  CamatParams camat_params;
  double amat = 0.0;
  double camat = 0.0;
  double concurrency_c = 1.0;  ///< AMAT / C-AMAT
  double stall_per_instruction = 0.0;
  double execution_time = 0.0;  ///< J_D (Eq. 10)
  double problem_size = 0.0;    ///< W = g(N) * IC0
  double throughput = 0.0;      ///< W / T
  double speedup_vs_serial = 0.0;
};

class C2BoundModel {
 public:
  C2BoundModel(AppProfile app, MachineProfile machine);

  /// Per-core working set at core count n (lines): ws0 * mem_scale(n) / n.
  double per_core_working_set(double n) const;

  /// The analytic C-AMAT at a design point (Eq. 2 assembled from the miss
  /// models); exposed separately for tests and for the figure harnesses.
  CamatParams camat_at(const DesignPoint& d) const;

  /// Full evaluation of Eq. (10) and derived quantities at a design point.
  /// Requires a1/a2/a0 positive; does NOT require area feasibility (the
  /// optimizer enforces Eq. 12; raw evaluation is useful for sweeps).
  Evaluation evaluate(const DesignPoint& d) const;

  /// Eq. (8) generalized form J_D = sum_i g(i) T_i / i with parallel degree
  /// ramping 1..N (the paper's "generalized version"); T_i is the
  /// sequential time of stage i's work share.
  double generalized_objective(const DesignPoint& d, int stages) const;

  const AppProfile& app() const noexcept { return app_; }
  const MachineProfile& machine() const noexcept { return machine_; }

 private:
  double contention_multiplier(double n, double mr1, double mr2_local) const;

  AppProfile app_;
  MachineProfile machine_;
};

}  // namespace c2b
