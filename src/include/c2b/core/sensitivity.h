#pragma once

// Elasticity analysis of the C²-Bound objective.
//
// For a design point d and each model parameter x, the elasticity
//     e_x = (x / T) * dT/dx  ~=  % change in execution time per % change in x
// says which bound actually binds: a latency-bound design has large
// |e_{C_M}| and |e_{memory_latency}|; a capacity-bound one large |e_{A1/A2}|
// and |e_{working set}|; a compute-bound one large |e_{A0}|. This is the
// quantitative form of the paper's Section V discussion ("which layer of a
// memory hierarchy is the primary performance bound"), and doubles as a
// design-debugging tool: the optimizer's answer plus *why*.

#include <string>
#include <vector>

#include "c2b/core/c2bound.h"

namespace c2b {

struct Elasticity {
  std::string parameter;
  double value = 0.0;       ///< parameter's current value
  double elasticity = 0.0;  ///< d(log T) / d(log x) at the design point
};

/// All parameter elasticities of execution time at `d`, sorted by
/// decreasing |elasticity|. `rel_step` is the relative perturbation used
/// for the central differences.
std::vector<Elasticity> time_elasticities(const C2BoundModel& model, const DesignPoint& d,
                                          double rel_step = 0.02);

/// The dominant bound at a design point, from the elasticity profile.
enum class BindingBound {
  kCompute,      ///< core area / CPI_exe dominates
  kMemLatency,   ///< memory latency / concurrency dominates
  kMemCapacity,  ///< cache capacity / working set dominates
};
BindingBound classify_binding_bound(const std::vector<Elasticity>& elasticities);

const char* to_string(BindingBound bound);

}  // namespace c2b
