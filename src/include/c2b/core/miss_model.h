#pragma once

// Analytic cache-capacity -> miss-rate model.
//
// The C²-Bound objective (Eq. 10) needs C-AMAT as a *function of the areas*
// A1, A2 and of the capacity-scaled working set. We use the classic
// power-law miss curve ("square-root rule" for beta = 0.5):
//
//     MR(S, W) = mr_floor                        for S >= W
//     MR(S, W) = min(mr_cap, alpha * (S/W)^-beta) otherwise
//
// with S the cache capacity in lines and W the working set in lines.
// alpha/beta are fitted per workload from the stack-distance curve the
// trace substrate measures (fit_miss_power_law), closing the loop between
// the analytic model and the simulator.

#include "c2b/common/assert.h"
#include "c2b/common/math_util.h"

namespace c2b {

struct MissModel {
  double alpha = 0.05;    ///< miss ratio at S == W before flooring
  double beta = 0.5;      ///< capacity sensitivity
  double mr_cap = 1.0;    ///< upper clamp (compulsory+conflict saturation)
  double mr_floor = 0.0;  ///< cold-miss floor once the working set fits

  /// Miss ratio for a cache of `capacity_lines` against `working_set_lines`.
  [[nodiscard]] double miss_rate(double capacity_lines, double working_set_lines) const {
    C2B_REQUIRE(capacity_lines > 0.0, "capacity must be positive");
    C2B_REQUIRE(working_set_lines > 0.0, "working set must be positive");
    C2B_REQUIRE(alpha >= 0.0 && beta >= 0.0, "invalid miss-model parameters");
    if (capacity_lines >= working_set_lines) return mr_floor;
    const double mr = alpha * std::pow(capacity_lines / working_set_lines, -beta);
    return clamp(mr, mr_floor, mr_cap);
  }
};

}  // namespace c2b
