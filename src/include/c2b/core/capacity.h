#pragma once

// Section V: on-chip-memory-bounded problem size.
//
//     max Z   s.t.   Y(Z) <= X
//
// where Z is the problem size, Y(Z) the (monotone) working-set size, and X
// the on-chip memory (LLC for inclusive hierarchies). Applications whose
// real problem size b exceeds the bound a are memory-bound: performance is
// limited by the processor<->DRAM rate and is sensitive to capacity and
// concurrency; otherwise they are processor-bound.

#include <functional>

namespace c2b {

/// Monotone non-decreasing working-set model Y(Z) (lines as a function of
/// problem size).
using WorkingSetFn = std::function<double(double)>;

/// Largest Z in [z_lo, z_hi] with Y(Z) <= on_chip_lines (bisection; exact to
/// `tolerance` in Z). Returns z_lo if even the smallest problem overflows.
double capacity_bounded_problem_size(const WorkingSetFn& working_set, double on_chip_lines,
                                     double z_lo = 1.0, double z_hi = 1e15,
                                     double tolerance = 1e-6);

enum class BoundRegime {
  kProcessorBound,  ///< working set fits on chip: capacity-insensitive
  kMemoryBound,     ///< working set overflows: capacity/concurrency-sensitive
};

/// Classify a real problem size b against the capacity bound a.
BoundRegime classify_problem(double real_problem_size, double capacity_bounded_size);

/// Convenience: classify directly from the working-set model.
BoundRegime classify_workload(const WorkingSetFn& working_set, double on_chip_lines,
                              double real_problem_size);

}  // namespace c2b
