#pragma once

// Physical chip model (paper Eq. 12 and Fig. 3):
//     A = N (A0 + A1 + A2) + Ac
// A0 core logic, A1 private L1, A2 per-core L2 slice, Ac shared functions
// (interconnect, memory controllers, test/debug). Area is in abstract
// "area units"; cache densities convert area to capacity.

#include <cstdint>

#include "c2b/common/assert.h"

namespace c2b {

/// One candidate design: core count plus the per-core area split.
struct DesignPoint {
  double n_cores = 1.0;
  double a0 = 1.0;  ///< core logic area
  double a1 = 0.5;  ///< private L1 area
  double a2 = 1.0;  ///< per-core L2 slice area

  double per_core_area() const noexcept { return a0 + a1 + a2; }
};

struct ChipConstraints {
  double total_area = 256.0;   ///< A
  double shared_area = 16.0;   ///< Ac
  double l1_kib_per_area = 16.0;  ///< L1 density (KiB of cache per area unit)
  double l2_kib_per_area = 48.0;  ///< L2 density (denser than L1)
  std::uint32_t line_bytes = 64;

  double min_core_area = 0.25;  ///< smallest buildable core
  double min_l1_area = 0.05;
  double min_l2_area = 0.05;

  void validate() const;

  /// Area available per core at core count n: (A - Ac) / n.
  [[nodiscard]] double per_core_budget(double n) const;

  /// Eq. (12) residual: N(A0+A1+A2) + Ac - A (zero when feasible with
  /// equality).
  [[nodiscard]] double area_residual(const DesignPoint& d) const;

  [[nodiscard]] bool feasible(const DesignPoint& d, double tolerance = 1e-6) const;

  /// Convert cache areas to capacities in lines.
  [[nodiscard]] double l1_capacity_lines(double a1) const;
  [[nodiscard]] double l2_capacity_lines(double a2) const;

  /// Largest integer core count that leaves every core its minimum areas.
  [[nodiscard]] long long max_cores() const;
};

}  // namespace c2b
