#pragma once

// The C²-Bound DSE optimizer (paper Section III-C and the APS algorithm's
// analytic half, Fig. 6 lines 5-13):
//
//   min  J_D (Eq. 10)     s.t.  N (A0+A1+A2) + Ac = A (Eq. 12)
//
// solved by a case split on the scaling law:
//   case I  (g(N) >= O(N)):  no finite N minimizes time — maximize W/T;
//   case II (g(N) <  O(N)):  minimize execution time T.
//
// For a fixed N the area split is continuous: the inner problem
// (A0, A1, A2) on the simplex A0+A1+A2 = (A-Ac)/N is solved with
// Nelder–Mead (robust) and optionally polished with the Eq. (13) Lagrange
// stationarity system via Newton (exactly the paper's method); the outer
// integer N is scanned exactly. The optimizer returns the winning design,
// the per-N frontier (for the figures), and the area-price multiplier λ.

#include <functional>
#include <vector>

#include "c2b/core/c2bound.h"
#include "c2b/core/constraints.h"
#include "c2b/linalg/matrix.h"

namespace c2b {

enum class OptimizationCase {
  kMinimizeTime,        ///< case II: g < O(N)
  kMaximizeThroughput,  ///< case I: g >= O(N)
};

struct OptimizerOptions {
  long long n_min = 1;
  long long n_max = 0;  ///< 0 -> derive from chip minimum areas (capped below)
  long long n_cap = 1024;
  bool lagrange_polish = true;
  int nelder_mead_restarts = 3;
  /// Additional resource ceilings beyond the Eq. (12) area equality (power,
  /// bandwidth, NoC, ... — see c2b/core/constraints.h). Violating splits are
  /// penalized in the inner search and core counts whose best split still
  /// violates a member are skipped in the outer scan. An empty set (the
  /// default) reproduces the area-only optimizer exactly.
  ConstraintSet constraints;
  /// Invoked on every design the inner search actually evaluates: each
  /// Nelder–Mead candidate past the bound-penalty gate, accepted Lagrange
  /// polishes, and the per-N winners. Every such design satisfies Eq. (12)
  /// (the area-conservation invariant the check oracles assert). Restarts
  /// run on the thread pool, so the observer MUST be thread-safe.
  std::function<void(const DesignPoint&)> iterate_observer;
};

struct OptimalDesign {
  Evaluation best;
  OptimizationCase opt_case = OptimizationCase::kMinimizeTime;
  /// The Eq. (13) multiplier at the optimum (marginal cost of area), when
  /// the Lagrange polish converged.
  double lambda = 0.0;
  bool lagrange_converged = false;
  /// Best-allocation evaluation at every scanned core count (the frontier
  /// Figs. 8-11 plot).
  std::vector<Evaluation> per_core_count;
};

class C2BoundOptimizer {
 public:
  explicit C2BoundOptimizer(C2BoundModel model, OptimizerOptions options = {});

  /// Best feasible area split at a fixed core count (inner problem). For a
  /// fixed N, min T and max W/T coincide (W depends only on N), so the
  /// inner problem always minimizes J_D.
  Evaluation best_allocation(long long n_cores) const;

  /// Full case-split optimization (Fig. 6 lines 5-13).
  OptimalDesign optimize() const;

  /// Which case the application's g(N) falls into.
  OptimizationCase classify() const;

  const C2BoundModel& model() const noexcept { return model_; }

 private:
  struct PolishResult {
    DesignPoint design;
    double lambda = 0.0;
    bool converged = false;
  };
  PolishResult lagrange_polish(const DesignPoint& start) const;

  C2BoundModel model_;
  OptimizerOptions options_;
};

}  // namespace c2b
