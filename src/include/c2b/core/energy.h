#pragma once

// Energy-aware extension of C²-Bound (paper Section VII future work: "the
// object function in Eq. (10) can be reshaped to achieve a balance among
// performance, power, energy and temperature"; lineage of Woo & Lee [7]
// and Cho & Melhem [34]).
//
// Energy model (abstract energy units):
//   * core dynamic:  EPI(A0) = epi_base * A0^epi_area_exponent per
//     instruction — bigger OoO cores burn superlinearly more per op;
//   * cache dynamic: per-access energy grows with sqrt(capacity) (bitline/
//     wordline scaling), separately for L1 and the L2 slice;
//   * DRAM dynamic:  flat per off-chip access;
//   * static:        leakage_per_area_cycle * occupied area * runtime.
// Combined with the Eq. (10) time model this yields E, EDP, ED²P and a
// time/energy Pareto front over core counts.

#include <vector>

#include "c2b/core/c2bound.h"
#include "c2b/core/optimizer.h"

namespace c2b {

struct EnergyModel {
  double epi_base = 1.0;            ///< core energy/instruction at A0 = 1
  double epi_area_exponent = 0.5;   ///< EPI ~ A0^this
  double l1_access_base = 0.2;      ///< per L1 access at 1 KiB
  double l2_access_base = 0.6;      ///< per L2 access at 1 KiB
  double cache_energy_exponent = 0.5;  ///< per-access ~ capacity^this (KiB)
  double dram_access_energy = 60.0;    ///< per off-chip line transfer
  double leakage_per_area_cycle = 2e-4;  ///< static power per area unit

  void validate() const;
};

struct EnergyEvaluation {
  Evaluation performance;  ///< the plain Eq. (10) evaluation
  double core_dynamic = 0.0;
  double l1_dynamic = 0.0;
  double l2_dynamic = 0.0;
  double dram_dynamic = 0.0;
  double static_energy = 0.0;
  double total_energy = 0.0;
  double average_power = 0.0;  ///< total_energy / execution_time
  double edp = 0.0;            ///< energy * time
  double ed2p = 0.0;           ///< energy * time^2
};

enum class DesignObjective { kTime, kEnergy, kEdp, kEd2p };

class EnergyAwareModel {
 public:
  EnergyAwareModel(C2BoundModel model, EnergyModel energy);

  /// Full performance + energy evaluation of a design point.
  EnergyEvaluation evaluate(const DesignPoint& d) const;

  /// Scalar value of the chosen objective at a design point (lower better).
  double objective_value(const DesignPoint& d, DesignObjective objective) const;

  const C2BoundModel& model() const noexcept { return model_; }
  const EnergyModel& energy_model() const noexcept { return energy_; }

 private:
  C2BoundModel model_;
  EnergyModel energy_;
};

struct EnergyOptimum {
  EnergyEvaluation best;
  DesignObjective objective = DesignObjective::kEdp;
  std::vector<EnergyEvaluation> per_core_count;
};

/// One non-dominated (time, energy) trade point.
struct ParetoPoint {
  EnergyEvaluation eval;
};

class EnergyAwareOptimizer {
 public:
  explicit EnergyAwareOptimizer(EnergyAwareModel model, OptimizerOptions options = {});

  /// Best area split at fixed N under the chosen objective.
  EnergyEvaluation best_allocation(long long n_cores, DesignObjective objective) const;

  /// Scan N under the chosen objective (all objectives are minimized; the
  /// g(N) case split does not apply to energy metrics, which remain
  /// bounded even for superlinear g).
  EnergyOptimum optimize(DesignObjective objective) const;

  /// Time/energy Pareto front over core counts: each N's time-optimal and
  /// energy-optimal allocations enter the candidate pool; dominated points
  /// are filtered. Sorted by execution time.
  std::vector<ParetoPoint> pareto_front() const;

 private:
  EnergyAwareModel model_;
  OptimizerOptions options_;
};

}  // namespace c2b
