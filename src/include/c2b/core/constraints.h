#pragma once

// Multi-resource constraint sets (ROADMAP item 3; lineage of Yavits et
// al.'s cache-hierarchy optimization under power/bandwidth/NoC co-equal
// resources). The paper optimizes under the single Eq. (12) silicon-area
// budget; real many-core design points are jointly limited by power,
// off-chip bandwidth, and NoC bisection capacity. Each resource is one
// declarative Constraint { name, evaluate(design) -> demand, budget }:
// the optimizer and the DSE grid filter consume the *set*, so a new
// resource plugs in without touching either.
//
// Demand models (abstract units, all analytic — a constraint must be
// evaluable on the full factorial grid before anything is simulated,
// exactly like the Eq. (12) filter):
//   * power:      per-core dynamic ~ A0^exponent (Pollack-style EPI growth,
//                 same shape as EnergyModel), per-KiB-equivalent cache
//                 dynamic per area unit, leakage over the occupied area
//                 (including Ac), plus a constant uncore term;
//   * bandwidth:  off-chip line traffic = N cores x access rate x off-chip
//                 miss rate, with the miss rate following the same
//                 capacity power law the miss curves use (MR ~ A2^-beta);
//                 the natural budget is the DRAM bus's line throughput,
//                 1000 / t_bus lines per kilocycle (see DramConfig);
//   * NoC:        per-bisection-link load of a sqrt(N) x sqrt(N) mesh —
//                 L1-miss traffic that crosses the chip bisection, divided
//                 by the sqrt(N) links crossing it (MeshNoc geometry).
//
// Every model's demand is non-negative, power is monotone non-decreasing
// in N, and bandwidth demand is monotone in the miss rate — properties
// the `constraint` PBT suite pins down (tests/test_core_constraints.cpp).

#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "c2b/core/chip.h"

namespace c2b {

/// One resource ceiling: demand(design) must stay within budget. The
/// default budget is +infinity (unconstrained); `tolerance` absorbs
/// floating-point noise at the boundary — the area factory uses 1e-9 so
/// the set reproduces the historical Eq. (12) grid filter bit for bit.
struct Constraint {
  std::string name;
  std::function<double(const DesignPoint&)> evaluate;  ///< resource demand
  double budget = std::numeric_limits<double>::infinity();
  double tolerance = 1e-9;

  [[nodiscard]] double slack(const DesignPoint& d) const { return budget - evaluate(d); }
  [[nodiscard]] bool satisfied(const DesignPoint& d) const {
    return evaluate(d) <= budget + tolerance;
  }
};

/// An ordered collection of constraints; a design is feasible iff every
/// member is satisfied. Order is preserved (binding statistics and journal
/// events report per-constraint, by position).
class ConstraintSet {
 public:
  void add(Constraint constraint);
  [[nodiscard]] bool feasible(const DesignPoint& d) const;
  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }
  [[nodiscard]] bool empty() const noexcept { return constraints_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return constraints_.size(); }

 private:
  std::vector<Constraint> constraints_;
};

/// Chip power demand (abstract power units). Monotone non-decreasing in
/// N: every term either scales with N or is constant.
struct PowerModel {
  double core_dynamic_base = 1.0;   ///< per-core dynamic at A0 = 1
  double core_area_exponent = 0.5;  ///< per-core dynamic ~ A0^this
  double l1_dynamic_per_area = 0.3;
  double l2_dynamic_per_area = 0.2;
  double leakage_per_area = 0.05;  ///< static power per occupied area unit
  double uncore_power = 0.5;       ///< constant shared-logic term

  void validate() const;

  [[nodiscard]] double core_dynamic(const DesignPoint& d) const;
  [[nodiscard]] double cache_dynamic(const DesignPoint& d) const;
  [[nodiscard]] double static_power(const DesignPoint& d, double shared_area) const;
  /// Total chip power demand including leakage over Ac.
  [[nodiscard]] double total(const DesignPoint& d, double shared_area) const;
};

/// Off-chip bandwidth demand in DRAM lines per kilocycle. The off-chip
/// miss rate follows the capacity power law MR(A2) = base * A2^-beta
/// (clamped to [0, 1]); demand = N x access rate x MR. Monotone
/// non-decreasing in the miss rate and non-increasing in A2.
struct BandwidthModel {
  double accesses_per_kilocycle_per_core = 300.0;
  double base_miss_rate = 0.2;     ///< off-chip miss rate at A2 = 1
  double capacity_exponent = 0.5;  ///< MR ~ A2^-this
  double min_cache_area = 0.05;    ///< clamp floor for the power law

  void validate() const;

  [[nodiscard]] double miss_rate(double a2) const;
  /// Demand at the model's own miss_rate(A2).
  [[nodiscard]] double demand(const DesignPoint& d) const;
  /// Demand at an externally supplied off-chip miss rate in [0, 1] —
  /// exposed so the monotonicity property is testable directly.
  [[nodiscard]] double demand_at_miss_rate(const DesignPoint& d, double miss_rate) const;
};

/// Mesh-bisection NoC load in lines per kilocycle per bisection link. A
/// sqrt(N) x sqrt(N) mesh (MeshNoc geometry) has ceil(sqrt(N)) links
/// crossing its bisection; under uniform slice interleaving a fraction of
/// the L1-miss traffic crosses it. The L1 miss rate follows the same
/// capacity power law in A1.
struct NocCapacityModel {
  double accesses_per_kilocycle_per_core = 300.0;
  double base_l1_miss_rate = 0.3;  ///< L1 miss rate at A1 = 1
  double capacity_exponent = 0.5;  ///< MR ~ A1^-this
  double bisection_fraction = 0.5; ///< share of L1-miss traffic crossing
  double min_cache_area = 0.05;

  void validate() const;

  [[nodiscard]] double l1_miss_rate(double a1) const;
  [[nodiscard]] double bisection_links(double n_cores) const;
  /// Per-bisection-link load (compare against a per-link capacity budget).
  [[nodiscard]] double per_link_load(const DesignPoint& d) const;
};

/// The demand models a DSE context carries alongside its budgets.
struct ConstraintModels {
  PowerModel power{};
  BandwidthModel bandwidth{};
  NocCapacityModel noc{};

  void validate() const;
};

/// Eq. (12) as a constraint: demand = N (A0+A1+A2) + Ac, budget = A,
/// tolerance 1e-9 — bit-for-bit the historical single-budget grid filter.
Constraint make_area_constraint(const ChipConstraints& chip);
Constraint make_power_constraint(const PowerModel& model, double shared_area, double budget);
Constraint make_bandwidth_constraint(const BandwidthModel& model, double budget);
Constraint make_noc_constraint(const NocCapacityModel& model, double budget);

}  // namespace c2b
