#pragma once

// Asymmetric CMP extension of C²-Bound (paper Section VII: "The extension
// of C²-Bound to asymmetric CMP DSE is straightforward"; design style of
// Hill & Marty [6]).
//
// The chip carries ONE big core plus n small cores. Following Hill-Marty,
// the big core's area is r "small-core units"; the per-core area split
// between core logic / L1 / L2 slice is shared by both core types (one
// simplex of fractions), so a design is (n, r, f1, f2) and the Eq. (12)
// budget divides as
//
//     unit u = (A - Ac) / (n + r),   small core = u,   big core = r * u.
//
// Execution model:
//   * the sequential fraction runs on the big core alone;
//   * the parallel, capacity-scaled fraction g(N) (N = n + 1 compute/memory
//     units) runs on all cores, completing at their aggregate instruction
//     throughput  1/(CPI_big + stall_big) + n / (CPI_small + stall_small).
// Both phases use the same analytic C-AMAT machinery as the symmetric
// model, evaluated at each core type's own cache areas.

#include "c2b/core/c2bound.h"
#include "c2b/core/optimizer.h"

namespace c2b {

struct AsymmetricDesign {
  long long n_small = 1;    ///< number of small cores (the big core is extra)
  double big_core_ratio = 4.0;  ///< r: big core area in small-core units
  double l1_fraction = 0.2;     ///< f1 of each core's area
  double l2_fraction = 0.4;     ///< f2 of each core's area

  double core_fraction() const noexcept { return 1.0 - l1_fraction - l2_fraction; }
};

struct AsymmetricEvaluation {
  AsymmetricDesign design;
  DesignPoint big;    ///< resolved areas of the big core
  DesignPoint small;  ///< resolved areas of one small core
  double cpi_big = 0.0;
  double cpi_small = 0.0;
  double camat_big = 0.0;
  double camat_small = 0.0;
  double serial_time = 0.0;
  double parallel_time = 0.0;
  double execution_time = 0.0;
  double problem_size = 0.0;
  double throughput = 0.0;
  /// Speedup over running the same scaled problem on the big core alone.
  double speedup_vs_big_serial = 0.0;
};

class AsymmetricC2BoundModel {
 public:
  AsymmetricC2BoundModel(AppProfile app, MachineProfile machine);

  /// Evaluate one asymmetric design (throws if the areas collapse below the
  /// chip minimums).
  AsymmetricEvaluation evaluate(const AsymmetricDesign& d) const;

  const AppProfile& app() const noexcept { return model_.app(); }
  const MachineProfile& machine() const noexcept { return model_.machine(); }
  const C2BoundModel& symmetric_model() const noexcept { return model_; }

 private:
  C2BoundModel model_;
};

struct AsymmetricOptimum {
  AsymmetricEvaluation best;
  OptimizationCase opt_case = OptimizationCase::kMinimizeTime;
  std::vector<AsymmetricEvaluation> per_small_count;  ///< frontier over n
};

/// Optimize (r, f1, f2) per small-core count and scan n like the symmetric
/// optimizer, with the same g(N)-driven case split.
class AsymmetricOptimizer {
 public:
  explicit AsymmetricOptimizer(AsymmetricC2BoundModel model, OptimizerOptions options = {});

  AsymmetricEvaluation best_allocation(long long n_small) const;
  AsymmetricOptimum optimize() const;

 private:
  AsymmetricC2BoundModel model_;
  OptimizerOptions options_;
};

}  // namespace c2b
