#pragma once

// Multi-application core partitioning (paper Fig. 7): divide a CMP's N
// cores among concurrently-running applications so demand matches supply.
// An application with a large sequential fraction and low memory
// concurrency gains little from extra cores (diminishing marginal
// utility); one with small f_seq and high C soaks them up productively.
//
// The allocator greedily hands cores to the application with the largest
// marginal throughput gain — optimal when per-app utility is concave in
// the core count, which Sun-Ni speedups with f_seq > 0 are.

#include <string>
#include <vector>

#include "c2b/core/c2bound.h"

namespace c2b {

struct TaskProfile {
  std::string name;
  AppProfile app;
  double priority = 1.0;  ///< weight in the aggregate objective
};

struct TaskAllocation {
  std::string name;
  long long cores = 0;
  double throughput = 0.0;       ///< at the allocated core count
  double marginal_gain = 0.0;    ///< utility gained by the last core granted
  double concurrency_c = 1.0;    ///< the app's C at its allocation
};

struct MultiTaskResult {
  std::vector<TaskAllocation> allocations;
  double aggregate_utility = 0.0;
};

/// Partition `total_cores` among the tasks (each gets >= 1). Utility of a
/// task with n cores is priority * throughput(n) from the C²-Bound model
/// under an even area split of the chip (each task's partition behaves as a
/// proportionally-sized chip).
MultiTaskResult allocate_cores(const std::vector<TaskProfile>& tasks,
                               const MachineProfile& machine, long long total_cores);

}  // namespace c2b
