#pragma once

// Directory-based cache coherence for the private L1s (MESI-flavored).
//
// The shared L2 is inclusive and each line's home slice keeps a directory
// entry: a sharer bitmask over cores plus the identity of an exclusive
// owner when some L1 holds the line modified. The timing hierarchy asks
// the directory what a read or write implies (invalidations to fan out,
// an owner to fetch dirty data from) and charges NoC latency accordingly;
// the directory updates its bookkeeping in the same call.
//
// States are tracked per (line, core) implicitly:
//   owner set            -> that core holds M/E;
//   sharers, no owner    -> S in every listed core;
//   no entry             -> uncached in all L1s (L2/DRAM only).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "c2b/common/assert.h"

namespace c2b::sim {

class Directory {
 public:
  static constexpr std::uint32_t kMaxCores = 64;
  static constexpr std::uint32_t kNoOwner = 0xFFFFFFFF;

  explicit Directory(std::uint32_t cores);

  struct ReadOutcome {
    bool owner_transfer = false;     ///< a remote M copy must be downgraded
    std::uint32_t previous_owner = kNoOwner;
  };
  /// Core `core` reads `line`: records it as a sharer; if another core held
  /// the line modified, reports the required owner->requestor transfer and
  /// downgrades the owner to sharer.
  ReadOutcome on_read(std::uint32_t core, std::uint64_t line);

  struct WriteOutcome {
    std::uint64_t invalidated_mask = 0;  ///< cores whose S copy died
    bool owner_transfer = false;         ///< a remote M copy was stolen
    std::uint32_t previous_owner = kNoOwner;
  };
  /// Core `core` writes `line`: becomes exclusive owner; every other sharer
  /// is invalidated (their mask is returned so the caller can drop the L1
  /// copies and charge the NoC fan-out).
  WriteOutcome on_write(std::uint32_t core, std::uint64_t line);

  /// Core `core` evicted `line` from its L1 (silent eviction of S/M).
  void on_evict(std::uint32_t core, std::uint64_t line);

  /// Is this core currently recorded as holding the line (any state)?
  bool is_sharer(std::uint32_t core, std::uint64_t line) const;
  /// Current exclusive owner, or kNoOwner.
  std::uint32_t owner_of(std::uint64_t line) const;
  /// Number of cores holding the line.
  std::uint32_t sharer_count(std::uint64_t line) const;

  // Statistics.
  std::uint64_t invalidations_sent() const noexcept { return invalidations_; }
  std::uint64_t ownership_transfers() const noexcept { return transfers_; }
  std::uint64_t upgrade_requests() const noexcept { return upgrades_; }
  std::size_t tracked_lines() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t sharers = 0;         ///< bit per core
    std::uint32_t owner = kNoOwner;    ///< valid only while a core holds M
  };

  void check_core(std::uint32_t core) const;

  std::uint32_t cores_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t invalidations_ = 0;
  std::uint64_t transfers_ = 0;
  std::uint64_t upgrades_ = 0;
};

}  // namespace c2b::sim
