#pragma once

// Hardware prefetching for the private L1s.
//
// Two classic policies over the miss stream (no PCs in our traces, so
// detection is address-stream based, like early tagged/stream prefetchers):
//   * next-line: on a miss to line X, fetch X+1 .. X+degree;
//   * stride:    a small table of recent miss streams; when a stream's
//     delta repeats (confidence >= threshold), fetch ahead along it.
//
// Prefetches matter to C-AMAT in both directions: a useful prefetch turns
// a future pure miss into a hit (raising APC), while a useless one burns
// L2/DRAM bandwidth and can evict live lines — the ablation bench
// quantifies both edges.

#include <cstdint>
#include <vector>

#include "c2b/common/assert.h"

namespace c2b::sim {

enum class PrefetchKind : std::uint8_t { kNone, kNextLine, kStride };

struct PrefetcherConfig {
  PrefetchKind kind = PrefetchKind::kNone;
  std::uint32_t degree = 2;          ///< lines fetched ahead per trigger
  std::uint32_t stream_table = 8;    ///< tracked streams (stride kind)
  std::uint32_t confidence = 2;      ///< repeats before a stride stream fires
};

/// Address-stream prefetch engine for one core. Feed it every L1 miss line;
/// it returns the lines to fetch (possibly empty).
class Prefetcher {
 public:
  explicit Prefetcher(const PrefetcherConfig& config);

  /// Observe a demand miss to `line`; returns candidate prefetch lines.
  std::vector<std::uint64_t> on_miss(std::uint64_t line);

  std::uint64_t triggers() const noexcept { return triggers_; }
  const PrefetcherConfig& config() const noexcept { return config_; }

 private:
  struct Stream {
    std::uint64_t last_line = 0;
    std::int64_t stride = 0;
    std::uint32_t hits = 0;  ///< consecutive stride confirmations
    bool valid = false;
    std::uint64_t lru = 0;
  };

  PrefetcherConfig config_;
  std::vector<Stream> streams_;
  std::uint64_t clock_ = 0;
  std::uint64_t triggers_ = 0;
};

}  // namespace c2b::sim
