#pragma once

// Set-associative cache tag array with selectable replacement policy
// (true-LRU, tree-PLRU, random), dirty-line tracking for write-back
// traffic, plus the structures that give a modern cache its *concurrency*:
// banked/ported access scheduling (hit concurrency, C_H) and miss status
// holding registers (miss concurrency, C_M). This is the simulator's
// substitute for the cache models of GEM5 — deliberately detailed exactly
// where C-AMAT is sensitive.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "c2b/common/assert.h"

namespace c2b::sim {

enum class ReplacementPolicy : std::uint8_t {
  kLru,       ///< true LRU (per-way timestamps)
  kTreePlru,  ///< tree pseudo-LRU (requires power-of-two associativity)
  kRandom,    ///< xorshift victim selection (deterministic per array)
};

struct CacheGeometry {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 8;

  std::uint64_t lines() const { return size_bytes / line_bytes; }
  std::uint64_t sets() const { return lines() / associativity; }
  void validate() const;
};

/// Tag array: probe/fill under the configured replacement policy.
/// Addresses are byte addresses; set indexing uses the line number's low
/// bits.
class CacheArray {
 public:
  /// `victim_stream` seeds the kRandom xorshift state per instance (via
  /// Rng::derive_stream_seed), so arrays in a multi-cache configuration
  /// replay decorrelated victim streams while staying deterministic for a
  /// given (geometry, policy, stream) triple.
  explicit CacheArray(const CacheGeometry& geometry,
                      ReplacementPolicy policy = ReplacementPolicy::kLru,
                      std::uint64_t victim_stream = 0);

  /// Probe for the line containing `byte_address`; on hit the recency state
  /// updates and, if `mark_dirty`, the line becomes dirty. True on hit.
  bool probe(std::uint64_t byte_address, bool mark_dirty = false);

  /// Probe without updating recency (for inspection/tests).
  bool contains(std::uint64_t byte_address) const;
  /// Dirty state of a resident line (false if absent).
  bool is_dirty(std::uint64_t byte_address) const;

  struct Evicted {
    std::uint64_t address = 0;  ///< line-aligned byte address
    bool dirty = false;         ///< needs write-back
  };

  /// Insert the line (most-recently-used); returns the displaced victim if
  /// a valid line was evicted. `dirty` marks the incoming line (write
  /// allocate).
  std::optional<Evicted> fill(std::uint64_t byte_address, bool dirty = false);

  /// Invalidate a line if present (coherence). The dirty payload, if any,
  /// is the caller's problem (the directory models the forward).
  bool invalidate(std::uint64_t byte_address);

  const CacheGeometry& geometry() const noexcept { return geometry_; }
  ReplacementPolicy policy() const noexcept { return policy_; }

  std::uint64_t probe_count() const noexcept { return probes_; }
  std::uint64_t hit_count() const noexcept { return hits_; }
  std::uint64_t dirty_evictions() const noexcept { return dirty_evictions_; }
  double miss_ratio() const noexcept {
    return probes_ == 0 ? 0.0 : 1.0 - static_cast<double>(hits_) / static_cast<double>(probes_);
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t last_used = 0;  ///< LRU timestamp
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t line_of(std::uint64_t byte_address) const {
    return byte_address / geometry_.line_bytes;
  }
  std::size_t set_of(std::uint64_t line) const { return line % geometry_.sets(); }
  std::uint64_t tag_of(std::uint64_t line) const { return line / geometry_.sets(); }

  Way* find_way(std::uint64_t byte_address);
  const Way* find_way(std::uint64_t byte_address) const;
  /// Victim way index within a set per the policy (prefers invalid ways).
  std::uint32_t pick_victim(std::size_t set);
  /// Policy bookkeeping on a touch of way `way` in `set`.
  void note_use(std::size_t set, std::uint32_t way);

  CacheGeometry geometry_;
  ReplacementPolicy policy_;
  std::vector<Way> ways_;            ///< ways_[set * assoc + way], stable slots
  std::vector<std::uint64_t> plru_;  ///< per-set PLRU bit tree (bit i = node i)
  std::uint64_t clock_ = 0;   ///< LRU timestamp source
  std::uint64_t rng_state_;   ///< xorshift for kRandom, stream-seeded per instance
  std::uint64_t probes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t dirty_evictions_ = 0;
};

/// Multi-bank, multi-port cycle scheduler: up to `ports` accesses per bank
/// per cycle; excess requests slip to the next cycle. This is the hardware
/// feature that makes C_H > 1 possible while still being finite.
class BankPortScheduler {
 public:
  BankPortScheduler(std::uint32_t banks, std::uint32_t ports_per_bank);

  /// Reserve a slot on the bank serving `line` at or after `earliest`;
  /// returns the cycle in which the access starts.
  std::uint64_t schedule(std::uint64_t line, std::uint64_t earliest);

  std::uint32_t banks() const noexcept { return static_cast<std::uint32_t>(state_.size()); }
  /// Total cycles requests spent waiting for a port (contention measure).
  std::uint64_t contention_cycles() const noexcept { return contention_cycles_; }

 private:
  struct BankState {
    std::uint64_t cycle = 0;   ///< cycle the port counter refers to
    std::uint32_t used = 0;    ///< ports consumed in that cycle
  };
  std::vector<BankState> state_;
  std::uint32_t ports_;
  std::uint64_t contention_cycles_ = 0;
};

/// Miss status holding registers: bound the number of outstanding misses
/// (non-blocking cache). Secondary misses to an in-flight line merge.
class MshrFile {
 public:
  explicit MshrFile(std::uint32_t entries);

  struct Grant {
    std::uint64_t start_cycle = 0;  ///< when the miss can begin service
    bool merged = false;            ///< piggybacked on an in-flight miss
    std::uint64_t merged_completion = 0;  ///< valid when merged
  };

  /// Request an entry for a miss to `line` observed at `cycle`. If the line
  /// is already in flight the request merges and completes with the primary
  /// miss. If the file is full, service is delayed until the earliest entry
  /// retires.
  Grant request(std::uint64_t line, std::uint64_t cycle);

  /// Record the primary miss's completion cycle (fills the entry's slot
  /// until then).
  void complete(std::uint64_t line, std::uint64_t completion_cycle);

  std::uint32_t capacity() const noexcept { return capacity_; }
  std::uint64_t full_stall_events() const noexcept { return full_stalls_; }
  std::uint64_t merge_count() const noexcept { return merges_; }
  /// Entries currently tracking an outstanding miss (occupancy telemetry).
  std::size_t in_flight() const noexcept { return entries_.size(); }

 private:
  void retire_before(std::uint64_t cycle);

  struct Entry {
    std::uint64_t line = 0;
    std::uint64_t completion = 0;  ///< 0 while unknown (service in progress)
  };
  std::vector<Entry> entries_;  ///< live entries, allocation order (small)
  std::uint32_t capacity_;
  /// Earliest known completion across entries_ (0 when none is known),
  /// maintained incrementally so the hot path can prove retire_before() is
  /// a no-op — and skip its scan — without touching the entries.
  std::uint64_t earliest_completion_ = 0;
  std::uint64_t full_stalls_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace c2b::sim
