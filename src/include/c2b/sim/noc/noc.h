#pragma once

// 2-D mesh network-on-chip latency model. Cores and LLC slices sit on a
// square mesh (Fig. 3's schematic); a request from core c to the LLC slice
// owning a line pays per-hop router latency for the Manhattan distance plus
// a small serialization term. A simple aggregate-load factor models
// congestion without a flit-level simulation — enough fidelity for the
// AMP/pAMP terms C²-Bound consumes.

#include <cstdint>

#include "c2b/common/assert.h"

namespace c2b::sim {

struct NocConfig {
  std::uint32_t nodes = 16;        ///< mesh size (rounded up to a square)
  std::uint32_t hop_latency = 2;   ///< cycles per router+link hop
  std::uint32_t injection_latency = 1;
  double congestion_per_load = 0.25;  ///< extra cycles per unit average load
  void validate() const;
};

class MeshNoc {
 public:
  explicit MeshNoc(const NocConfig& config);

  /// One-way latency from `src_node` to `dst_node` at the current load.
  std::uint64_t latency(std::uint32_t src_node, std::uint32_t dst_node) const;

  /// Round-trip latency (request + response) plus bookkeeping of traffic.
  std::uint64_t round_trip(std::uint32_t src_node, std::uint32_t dst_node);

  /// Home LLC slice of a line under static address interleaving.
  std::uint32_t slice_of(std::uint64_t line) const { return line % config_.nodes; }

  /// Average hops weighted by observed traffic.
  double average_hops() const noexcept;
  std::uint64_t message_count() const noexcept { return messages_; }

  std::uint32_t side() const noexcept { return side_; }

 private:
  std::uint32_t hops_between(std::uint32_t a, std::uint32_t b) const;

  NocConfig config_;
  std::uint32_t side_;
  std::uint64_t messages_ = 0;
  std::uint64_t total_hops_ = 0;
};

}  // namespace c2b::sim
