#pragma once

// The seed per-cycle C-AMAT detector, retained verbatim as the
// differential baseline for the interval-sweep CamatDetector (see
// detector.h). It models every live cycle as a (hits, misses) slot in a
// dense ring and pays O(hit + penalty) slot updates per access — exactly
// the cost profile the production detector replaces, which is why the
// per-cycle reference kernel (system_reference.cpp) keeps using it: the
// bench_sim_kernel before/after ratio then measures the real seed hot
// path, and `c2b check --family kernel` proves the two detector
// implementations agree on every finalized metric.
//
// Do not "improve" this class; its value is being boring.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "c2b/metrics/timeline.h"

namespace c2b::sim {

class ReferenceCamatDetector {
 public:
  /// Report one memory access: hit/lookup activity in
  /// [start, start+hit_cycles) and, if a miss, miss activity in
  /// [start+hit_cycles, start+hit_cycles+miss_penalty_cycles).
  void record_access(std::uint64_t start_cycle, std::uint32_t hit_cycles,
                     std::uint32_t miss_penalty_cycles);

  /// Fold all cycles strictly below `watermark` into the running counters.
  void advance(std::uint64_t watermark);

  /// Finalize everything and return the full metrics snapshot.
  TimelineMetrics finalize();

  std::uint64_t finalized_accesses() const noexcept { return finalized_accesses_; }
  std::uint64_t live_cycle_window() const noexcept { return window_count_; }

 private:
  struct CycleActivity {
    std::uint32_t hits = 0;
    std::uint32_t misses = 0;
  };
  struct PendingMiss {
    std::uint64_t miss_start = 0;
    std::uint32_t miss_cycles = 0;
  };

  /// Live cycle table: a dense power-of-two ring over [window_base_,
  /// window_base_ + window_count_). Invariant: slots outside the live
  /// range are zeroed, so extending the window is just a size bump.
  CycleActivity& cycle_slot(std::uint64_t cycle);
  const CycleActivity* find_cycle(std::uint64_t cycle) const;
  void grow_window(std::size_t needed);

  std::vector<CycleActivity> window_;  ///< pow2 ring storage
  std::size_t window_head_ = 0;        ///< slot of window_base_
  std::size_t window_count_ = 0;       ///< live slots
  std::uint64_t window_base_ = 0;
  bool window_anchored_ = false;  ///< window_base_ valid once first access seen
  std::vector<PendingMiss> pending_misses_;

  // Finalized accumulators.
  std::uint64_t finalized_accesses_ = 0;
  std::uint64_t total_hit_duration_ = 0;
  std::uint64_t total_miss_penalty_ = 0;
  std::uint64_t miss_count_ = 0;
  std::uint64_t pure_miss_count_ = 0;
  std::uint64_t per_access_pure_cycles_ = 0;
  std::uint64_t hit_cycle_count_ = 0;
  std::uint64_t hit_access_cycles_ = 0;
  std::uint64_t pure_miss_cycle_count_ = 0;
  std::uint64_t pure_miss_access_cycles_ = 0;
  std::uint64_t memory_active_cycles_ = 0;
};

}  // namespace c2b::sim
