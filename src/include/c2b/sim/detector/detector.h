#pragma once

// On-line C-AMAT analyzer (paper Fig. 4).
//
// The hardware the paper sketches has two halves:
//  * HCD (Hit Concurrency Detector) — counts the total hit cycles and
//    per-cycle hit concurrency, and tells the MCD whether a cycle has any
//    hit activity;
//  * MCD (Miss Concurrency Detector) — with the HCD's hit information and
//    the MSHR's miss information, counts pure-miss cycles and attributes
//    them to in-flight misses.
//
// This class is the software model of that unit: the core reports each
// access's (start, hit-duration, miss-penalty) as it issues, and the
// detector folds cycles into running counters once they pass a finalize
// watermark. Its finalized numbers match the offline analyze_timeline()
// exactly (tested property), and match the seed per-cycle implementation
// (ReferenceCamatDetector) bit for bit (tested differentially and by the
// kernel-equivalence oracle).
//
// Unlike the seed implementation — which kept a dense (hits, misses) slot
// per live cycle and paid O(hit + penalty) slot increments per access,
// the dominant simulator cost on stall-heavy workloads — this detector is
// interval-based: record_access() appends the hit span and miss span as
// [start, end) intervals in O(1), and advance() classifies whole constant-
// concurrency segments at once with a boundary sweep. Every counter it
// accumulates is an exact integer sum over cycles, so equal counts give
// bit-identical finalized doubles.
//
// Why the sweep is exact (same numbers as the per-cycle reference):
//  * A miss's own span contributes miss activity to every cycle of
//    [miss_start, miss_end), so "pure" cycles of that miss (no hit
//    activity, some miss activity) are exactly the span cycles not
//    covered by any hit interval: pure = span - hit_coverage(span).
//    All hit intervals that can overlap the span exist when the miss is
//    finalized, because finalization requires miss_end <= watermark and
//    every future access starts at or after the watermark.
//  * Per-cycle classification (hit cycle / pure-miss cycle / idle) and
//    the per-cycle sums (hits, misses) are piecewise constant between
//    interval endpoints, so summing segment_length * concurrency over
//    sweep segments reproduces the per-cycle totals exactly.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "c2b/metrics/timeline.h"

namespace c2b::sim {

namespace detail {

/// The finalized integer counters every detector implementation
/// accumulates; metric assembly is shared so the production and reference
/// detectors cannot drift in the integer -> double step.
struct DetectorCounters {
  std::uint64_t accesses = 0;
  std::uint64_t total_hit_duration = 0;
  std::uint64_t total_miss_penalty = 0;
  std::uint64_t misses = 0;
  std::uint64_t pure_misses = 0;
  std::uint64_t per_access_pure_cycles = 0;
  std::uint64_t hit_cycle_count = 0;
  std::uint64_t hit_access_cycles = 0;
  std::uint64_t pure_miss_cycle_count = 0;
  std::uint64_t pure_miss_access_cycles = 0;
  std::uint64_t memory_active_cycles = 0;
};

TimelineMetrics assemble_detector_metrics(const DetectorCounters& counters);

}  // namespace detail

class CamatDetector {
 public:
  /// Report one memory access: hit/lookup activity in
  /// [start, start+hit_cycles) and, if a miss, miss activity in
  /// [start+hit_cycles, start+hit_cycles+miss_penalty_cycles).
  void record_access(std::uint64_t start_cycle, std::uint32_t hit_cycles,
                     std::uint32_t miss_penalty_cycles);

  /// Fold all cycles strictly below `watermark` into the running counters.
  /// Only call with watermarks <= the start of every future access (the
  /// core guarantees this: accesses start at or after their issue cycle).
  void advance(std::uint64_t watermark);

  /// Finalize everything and return the full metrics snapshot.
  TimelineMetrics finalize();

  /// Running counters (valid for finalized cycles; cheap to poll, which is
  /// what the phase-adaptive reconfiguration example does).
  std::uint64_t finalized_accesses() const noexcept { return counters_.accesses; }
  /// Span of cycles still carrying live (unclassified) activity.
  std::uint64_t live_cycle_window() const noexcept {
    return max_live_end_ > swept_base_ ? max_live_end_ - swept_base_ : 0;
  }

 private:
  struct Interval {
    std::uint64_t start = 0;
    std::uint64_t end = 0;  ///< exclusive
  };
  struct PendingMiss {
    std::uint64_t miss_start = 0;
    std::uint32_t miss_cycles = 0;
  };
  struct Boundary {
    std::uint64_t cycle = 0;
    std::int32_t hit_delta = 0;
    std::int32_t miss_delta = 0;
  };

  /// Rebuild hit_union_ / hit_union_prefix_ from the live hit intervals.
  void build_hit_union();
  /// Cycles of [start, end) covered by the union of live hit intervals.
  std::uint64_t hit_coverage(std::uint64_t start, std::uint64_t end) const;
  /// Classify [swept_base_, upto) segment-by-segment and drop/trim the
  /// intervals that fall entirely below it.
  void sweep_classification(std::uint64_t upto);

  /// Live (unclassified) activity intervals. Unordered pools: the sweep
  /// sorts boundary events per advance, so out-of-order starts (bank
  /// scheduling can reorder them) need no special casing. Compaction is
  /// in place — steady state allocates nothing.
  std::vector<Interval> hit_intervals_;
  std::vector<Interval> miss_intervals_;
  /// In-flight misses awaiting pure/overlapped classification.
  std::vector<PendingMiss> pending_misses_;
  std::uint64_t swept_base_ = 0;    ///< all cycles below are classified
  std::uint64_t max_live_end_ = 0;  ///< max end over intervals ever recorded

  // Scratch buffers reused across advance() calls.
  std::vector<Interval> hit_union_;            ///< disjoint, sorted by start
  std::vector<std::uint64_t> hit_union_prefix_;  ///< covered cycles before entry i
  std::vector<Boundary> boundaries_;

  detail::DetectorCounters counters_;
};

/// Union-of-intervals busy-cycle counter for one memory level; divides into
/// the access count to give APC_i (Fig. 13). Intervals may arrive slightly
/// out of order; overlap with already-covered cycles is not double counted
/// (starts are clamped to the covered frontier, which is exact when
/// intervals arrive sorted by start — the simulator's issue order).
class ApcCounter {
 public:
  void add_interval(std::uint64_t start, std::uint64_t end);

  std::uint64_t accesses() const noexcept { return accesses_; }
  std::uint64_t busy_cycles() const noexcept { return busy_cycles_; }
  /// Accesses per memory-active cycle at this level.
  double apc() const noexcept {
    return busy_cycles_ == 0 ? 0.0
                             : static_cast<double>(accesses_) / static_cast<double>(busy_cycles_);
  }

 private:
  std::uint64_t accesses_ = 0;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t frontier_ = 0;  ///< first cycle not yet covered
};

}  // namespace c2b::sim
