#pragma once

// On-line C-AMAT analyzer (paper Fig. 4).
//
// The hardware the paper sketches has two halves:
//  * HCD (Hit Concurrency Detector) — counts the total hit cycles and
//    per-cycle hit concurrency, and tells the MCD whether a cycle has any
//    hit activity;
//  * MCD (Miss Concurrency Detector) — with the HCD's hit information and
//    the MSHR's miss information, counts pure-miss cycles and attributes
//    them to in-flight misses.
//
// This class is the software model of that unit: the core reports each
// access's (start, hit-duration, miss-penalty) as it issues, and the
// detector folds cycles into running counters once they pass a finalize
// watermark, keeping only a bounded window of live cycle state — as a
// hardware table would. Its finalized numbers match the offline
// analyze_timeline() exactly (tested property).

#include <cstdint>
#include <deque>

#include "c2b/metrics/timeline.h"

namespace c2b::sim {

class CamatDetector {
 public:
  /// Report one memory access: hit/lookup activity in
  /// [start, start+hit_cycles) and, if a miss, miss activity in
  /// [start+hit_cycles, start+hit_cycles+miss_penalty_cycles).
  void record_access(std::uint64_t start_cycle, std::uint32_t hit_cycles,
                     std::uint32_t miss_penalty_cycles);

  /// Fold all cycles strictly below `watermark` into the running counters.
  /// Only call with watermarks <= the start of every future access (the
  /// core guarantees this by finalizing at issue time minus max latency).
  void advance(std::uint64_t watermark);

  /// Finalize everything and return the full metrics snapshot.
  TimelineMetrics finalize();

  /// Running counters (valid for finalized cycles; cheap to poll, which is
  /// what the phase-adaptive reconfiguration example does).
  std::uint64_t finalized_accesses() const noexcept { return finalized_accesses_; }
  std::uint64_t live_cycle_window() const noexcept { return window_.size(); }

 private:
  struct CycleActivity {
    std::uint32_t hits = 0;
    std::uint32_t misses = 0;
  };
  struct PendingMiss {
    std::uint64_t miss_start = 0;
    std::uint32_t miss_cycles = 0;
  };

  /// Live cycle table: a dense ring over [window_base_, window_base_ +
  /// window_.size()). O(1) per touched cycle — the hardware analogue is a
  /// small SRAM of per-cycle counters; a tree here would make every miss
  /// penalty cycle cost a log-time allocation.
  CycleActivity& cycle_slot(std::uint64_t cycle);
  const CycleActivity* find_cycle(std::uint64_t cycle) const;

  std::deque<CycleActivity> window_;
  std::uint64_t window_base_ = 0;
  bool window_anchored_ = false;  ///< window_base_ valid once first access seen
  std::deque<PendingMiss> pending_misses_;

  // Finalized accumulators (the paper's lightweight counters).
  std::uint64_t finalized_accesses_ = 0;
  std::uint64_t total_hit_duration_ = 0;
  std::uint64_t total_miss_penalty_ = 0;
  std::uint64_t miss_count_ = 0;
  std::uint64_t pure_miss_count_ = 0;
  std::uint64_t per_access_pure_cycles_ = 0;
  std::uint64_t hit_cycle_count_ = 0;
  std::uint64_t hit_access_cycles_ = 0;
  std::uint64_t pure_miss_cycle_count_ = 0;
  std::uint64_t pure_miss_access_cycles_ = 0;
  std::uint64_t memory_active_cycles_ = 0;
};

/// Union-of-intervals busy-cycle counter for one memory level; divides into
/// the access count to give APC_i (Fig. 13). Intervals may arrive slightly
/// out of order; overlap with already-covered cycles is not double counted
/// (starts are clamped to the covered frontier, which is exact when
/// intervals arrive sorted by start — the simulator's issue order).
class ApcCounter {
 public:
  void add_interval(std::uint64_t start, std::uint64_t end);

  std::uint64_t accesses() const noexcept { return accesses_; }
  std::uint64_t busy_cycles() const noexcept { return busy_cycles_; }
  /// Accesses per memory-active cycle at this level.
  double apc() const noexcept {
    return busy_cycles_ == 0 ? 0.0
                             : static_cast<double>(accesses_) / static_cast<double>(busy_cycles_);
  }

 private:
  std::uint64_t accesses_ = 0;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t frontier_ = 0;  ///< first cycle not yet covered
};

}  // namespace c2b::sim
