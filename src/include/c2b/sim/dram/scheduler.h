#pragma once

// Trace-driven DRAM command scheduling study (the DRAMSim2 role the
// integrated timing model cannot play: reordering requests).
//
// The integrated DramModel resolves each access immediately in arrival
// order (FCFS per bank). Real controllers reorder: FR-FCFS serves row-
// buffer hits first and only then the oldest request, trading fairness for
// row locality. This module replays a recorded request trace under a
// chosen policy with a finite reorder queue and reports per-request
// latencies — quantifying what the in-order approximation leaves on the
// table, and supplying AMP inputs for the analytic model.

#include <cstdint>
#include <vector>

#include "c2b/sim/dram/dram.h"

namespace c2b::sim {

enum class DramPolicy : std::uint8_t {
  kFcfs,    ///< strictly oldest-first
  kFrFcfs,  ///< row hits first, then oldest-first
};

struct DramRequest {
  std::uint64_t line = 0;
  std::uint64_t arrival = 0;
};

struct DramCompletion {
  std::uint64_t start = 0;  ///< column command issue cycle
  std::uint64_t done = 0;   ///< data burst complete
};

struct DramScheduleStats {
  std::uint64_t requests = 0;
  std::uint64_t row_hits = 0;
  double mean_latency = 0.0;     ///< done - arrival, averaged
  double p95_latency = 0.0;
  std::uint64_t makespan = 0;    ///< last completion cycle
  double row_hit_ratio() const noexcept {
    return requests == 0 ? 0.0 : static_cast<double>(row_hits) / static_cast<double>(requests);
  }
};

struct DramScheduleResult {
  std::vector<DramCompletion> completions;  ///< parallel to the input order
  DramScheduleStats stats;
};

struct DramSchedulerConfig {
  DramConfig timing{};
  DramPolicy policy = DramPolicy::kFrFcfs;
  std::uint32_t queue_depth = 16;  ///< reorder window (requests visible at once)
};

/// Replay `requests` (any order; sorted internally by arrival) under the
/// configured policy and timing. Deterministic.
DramScheduleResult schedule_dram_trace(const DramSchedulerConfig& config,
                                       std::vector<DramRequest> requests);

}  // namespace c2b::sim
