#pragma once

// DRAM timing model (the reproduction's DRAMSim2 substitute).
//
// Models the features off-chip latency is actually made of: per-bank row
// buffers (open-page policy), activate/precharge/CAS timing, bank-level
// parallelism, and a shared data bus that serializes bursts. Latencies are
// in core cycles. The model is a timing calculator: access(line, arrival)
// returns the completion cycle and updates bank/bus state, which is exactly
// the granularity the C-AMAT machinery observes.

#include <cstdint>
#include <vector>

#include "c2b/common/assert.h"

namespace c2b::sim {

struct DramConfig {
  std::uint32_t banks = 8;
  std::uint32_t lines_per_row = 128;  ///< row-buffer size in cache lines
  std::uint32_t t_cas = 22;           ///< column access (core cycles)
  std::uint32_t t_rcd = 22;           ///< activate -> column
  std::uint32_t t_rp = 22;            ///< precharge
  std::uint32_t t_bus = 4;            ///< data-burst bus occupancy
  void validate() const;
};

struct DramStats {
  std::uint64_t accesses = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_conflicts = 0;  ///< open row had to be closed first
  std::uint64_t row_empty = 0;      ///< bank had no open row
  std::uint64_t total_latency = 0;  ///< sum of (completion - arrival)
  std::uint64_t busy_cycle_estimate = 0;  ///< bus busy cycles (for APC_3)

  double row_hit_ratio() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(row_hits) / static_cast<double>(accesses);
  }
  double average_latency() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(total_latency) / static_cast<double>(accesses);
  }
};

class DramModel {
 public:
  explicit DramModel(const DramConfig& config);

  /// Service a line-fill request arriving at `arrival_cycle`; returns the
  /// cycle the critical word is back at the LLC.
  std::uint64_t access(std::uint64_t line, std::uint64_t arrival_cycle);

  const DramStats& stats() const noexcept { return stats_; }
  const DramConfig& config() const noexcept { return config_; }

  /// Unloaded latency of a row-buffer hit / empty / conflict access (used by
  /// the analytic model to seed AMP estimates).
  std::uint64_t row_hit_latency() const noexcept { return config_.t_cas + config_.t_bus; }
  std::uint64_t row_empty_latency() const noexcept {
    return config_.t_rcd + config_.t_cas + config_.t_bus;
  }
  std::uint64_t row_conflict_latency() const noexcept {
    return config_.t_rp + config_.t_rcd + config_.t_cas + config_.t_bus;
  }

 private:
  struct BankState {
    std::uint64_t open_row = 0;
    bool has_open_row = false;
    std::uint64_t ready_cycle = 0;  ///< bank can accept a new column op
  };

  DramConfig config_;
  std::vector<BankState> banks_;
  std::uint64_t bus_free_ = 0;
  DramStats stats_;
};

}  // namespace c2b::sim
