#pragma once

// Two-level memory hierarchy with per-core private L1s, a shared NoC-sliced
// L2 (LLC), and a DRAM backend — the Intel-Core-i7-like setup of the
// paper's Section IV. Every concurrency feature C-AMAT measures is modeled:
// banked/ported L1 and L2 (hit concurrency), MSHR-bounded non-blocking
// misses (miss concurrency), bank-parallel DRAM with a serializing bus,
// and NoC hop latency between a core and a line's home slice.
//
// The hierarchy is a timing calculator: access() resolves a request's full
// path immediately, updating the resource-availability state (bank ports,
// MSHRs, row buffers, bus) so later requests observe the contention. Dirty
// victims write back through the hierarchy as off-critical-path traffic
// that still occupies L2 slots and DRAM bank/bus time.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include <optional>

#include "c2b/sim/cache/cache.h"
#include "c2b/sim/cache/coherence.h"
#include "c2b/sim/cache/prefetch.h"
#include "c2b/sim/detector/detector.h"
#include "c2b/sim/dram/dram.h"
#include "c2b/sim/noc/noc.h"

namespace c2b::sim {

struct HierarchyConfig {
  std::uint32_t cores = 1;

  CacheGeometry l1_geometry{.size_bytes = 32 * 1024, .line_bytes = 64, .associativity = 8};
  std::uint32_t l1_hit_latency = 3;
  std::uint32_t l1_banks = 4;
  std::uint32_t l1_ports_per_bank = 2;
  std::uint32_t l1_mshr_entries = 8;

  /// Total shared L2 capacity (all slices together).
  CacheGeometry l2_geometry{.size_bytes = 2 * 1024 * 1024, .line_bytes = 64, .associativity = 16};
  std::uint32_t l2_hit_latency = 12;
  std::uint32_t l2_banks = 16;
  std::uint32_t l2_ports_per_bank = 1;
  std::uint32_t l2_mshr_entries = 32;

  NocConfig noc{};
  DramConfig dram{};

  /// When true every access is an L1 hit — used to measure CPI_exe.
  bool perfect_memory = false;

  /// Per-core L1 prefetching over the miss stream.
  PrefetcherConfig l1_prefetch{};

  /// Directory-based coherence over the private L1s (MESI-flavored).
  /// Writes to shared lines pay an upgrade round trip and invalidate the
  /// other copies; reads of remotely-modified lines fetch from the owner.
  /// Requires cores <= 64 when enabled.
  bool coherence = false;

  void validate() const;
};

enum class ServiceLevel : std::uint8_t { kL1 = 1, kL2 = 2, kMemory = 3 };

struct AccessOutcome {
  std::uint64_t start_cycle = 0;       ///< L1 lookup begins (after port arbitration)
  std::uint64_t completion_cycle = 0;  ///< data available to the core
  std::uint32_t hit_cycles = 0;        ///< L1 lookup duration (H)
  std::uint32_t miss_penalty_cycles = 0;  ///< completion - lookup end
  ServiceLevel level = ServiceLevel::kL1;
};

struct HierarchyStats {
  double l1_miss_ratio = 0.0;
  double l2_miss_ratio = 0.0;  ///< local: misses per L2 access
  double apc_l1 = 0.0;
  double apc_l2 = 0.0;
  double apc_mem = 0.0;
  std::uint64_t l1_accesses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t dram_accesses = 0;
  double dram_row_hit_ratio = 0.0;
  double dram_average_latency = 0.0;
  std::uint64_t l1_mshr_merges = 0;
  std::uint64_t l1_mshr_full_stalls = 0;
  double noc_average_hops = 0.0;
  std::uint64_t l1_writebacks = 0;  ///< dirty L1 victims pushed to L2
  std::uint64_t l2_writebacks = 0;  ///< dirty L2 victims pushed to DRAM
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetch_useful_hits = 0;  ///< hits on prefetched lines
  double prefetch_accuracy = 0.0;          ///< useful / issued
  // Coherence (zero when disabled).
  std::uint64_t coherence_invalidations = 0;
  std::uint64_t coherence_owner_transfers = 0;
  std::uint64_t coherence_upgrades = 0;
};

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const HierarchyConfig& config);

  /// Resolve one access from `core` at or after `cycle`. With coherence
  /// enabled, writes to shared lines pay upgrade/invalidation fan-out and
  /// reads of remotely-modified lines pay an owner forward; otherwise reads
  /// and writes time identically.
  AccessOutcome access(std::uint32_t core, std::uint64_t address, bool is_write,
                       std::uint64_t cycle);

  HierarchyStats stats() const;
  const HierarchyConfig& config() const noexcept { return config_; }

 private:
  HierarchyConfig config_;

  // Per-core private L1s.
  std::vector<CacheArray> l1_;
  std::vector<BankPortScheduler> l1_sched_;
  std::vector<MshrFile> l1_mshr_;

  // Shared L2 (one logical array; slicing shows up as NoC distance + banks).
  CacheArray l2_;
  BankPortScheduler l2_sched_;
  MshrFile l2_mshr_;
  std::uint64_t l2_accesses_ = 0;
  std::uint64_t l2_misses_ = 0;
  std::uint64_t l1_writebacks_ = 0;
  std::uint64_t l2_writebacks_ = 0;

  // Prefetch engines and the not-yet-referenced prefetched lines per core.
  std::vector<Prefetcher> prefetchers_;
  std::vector<std::unordered_set<std::uint64_t>> prefetched_pending_;
  std::uint64_t prefetches_issued_ = 0;
  std::uint64_t prefetch_useful_ = 0;

  /// Bring `line` into core's L1 speculatively, charging L2/DRAM resources
  /// but never blocking the demand access that triggered it.
  void issue_prefetch(std::uint32_t core, std::uint64_t line, std::uint64_t at_cycle);

  MeshNoc noc_;
  DramModel dram_;
  std::optional<Directory> directory_;

  ApcCounter apc_l1_;
  ApcCounter apc_l2_;
  ApcCounter apc_mem_;
};

}  // namespace c2b::sim
