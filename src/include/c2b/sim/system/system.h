#pragma once

// Trace-driven chip-multiprocessor simulator: N out-of-order cores (issue
// width + reorder buffer occupancy model) over the shared MemoryHierarchy,
// with a per-core on-line C-AMAT detector. This is the reproduction's
// GEM5 substitute: detailed exactly in the dimensions the paper's model
// consumes (CPI_exe, f_mem, C-AMAT and its five components, per-level APC,
// overlap ratio), and fast enough to ground-truth a full factorial DSE.
//
// Core model: in-order issue of up to `issue_width` instructions per cycle
// into a `rob_size` reorder buffer, out-of-order completion, in-order
// retirement of up to `issue_width` per cycle. Compute instructions
// complete next cycle (pipelined units); memory instructions complete when
// the hierarchy returns data. A memory instruction flagged
// depends_on_prev_mem cannot issue before the previous memory access
// completes (pointer chasing — the C -> 1 regime). Idle stretches are
// skipped event-style, so memory-bound simulations stay fast.

#include <cstdint>
#include <vector>

#include "c2b/metrics/timeline.h"
#include "c2b/sim/system/hierarchy.h"
#include "c2b/trace/cursor.h"
#include "c2b/trace/trace.h"

namespace c2b::sim {

struct CoreConfig {
  std::uint32_t issue_width = 4;
  std::uint32_t rob_size = 128;
  /// Compute functional units: at most this many kCompute instructions can
  /// issue per cycle. This is how core area buys single-thread performance
  /// in the simulator (more area -> more FUs, with Pollack-style
  /// diminishing returns applied by the DSE mapping).
  std::uint32_t functional_units = 4;
  void validate() const;
};

struct SystemConfig {
  CoreConfig core{};
  HierarchyConfig hierarchy{};
  void validate() const;
};

struct CoreResult {
  std::uint64_t instructions = 0;
  std::uint64_t memory_accesses = 0;
  std::uint64_t cycles = 0;  ///< retirement cycle of the last instruction
  double cpi = 0.0;
  double f_mem = 0.0;
  TimelineMetrics camat;  ///< measured by the per-core detector
};

struct SystemResult {
  std::vector<CoreResult> cores;
  std::uint64_t cycles = 0;  ///< max over cores (makespan)
  HierarchyStats hierarchy;

  double total_instructions() const noexcept;
  double aggregate_ipc() const noexcept;
  /// Instruction-weighted mean CPI across cores.
  double mean_cpi() const noexcept;
};

/// Run every core to the end of its trace. Cores without a trace (fewer
/// traces than cores) idle. Throws on invalid configuration.
SystemResult simulate_system(const SystemConfig& config, const std::vector<Trace>& per_core_traces);

/// Streaming form of simulate_system: one cursor per core, consumed as the
/// simulation advances. Bit-identical to the materialized overload when the
/// cursors yield the same record streams; peak trace memory is whatever the
/// cursors keep resident (O(chunk) for GeneratorTraceCursor).
SystemResult simulate_system_streaming(const SystemConfig& config,
                                       const std::vector<TraceCursor*>& cursors);

/// The seed per-cycle kernel, retained verbatim as the differential
/// baseline for the event-driven kernel (`c2b check --family kernel` and
/// the perf-labeled equivalence stress tests compare every SystemResult
/// field bitwise against it). Not for production use — it walks every
/// cycle and materialized traces only.
SystemResult simulate_system_reference(const SystemConfig& config,
                                       const std::vector<Trace>& per_core_traces);

/// Single-core convenience wrapper.
SystemResult simulate_single_core(const SystemConfig& config, const Trace& trace);

}  // namespace c2b::sim
