#pragma once

// Batched multi-config replay.
//
// SystemReplay is the PR 4 event-driven kernel (simulate_system_streaming)
// reshaped into a resumable object: all loop state lives in the object, and
// advance_until() processes events until the run finishes or the cursors
// have consumed a target number of trace records. Pausing between events is
// invisible to the simulation — the event heap fully determines what runs
// next — so a SystemReplay driven in any number of advance_until() slices
// produces a SystemResult bit-identical to one simulate_system_streaming()
// call over the same config and cursors.
//
// simulate_system_batched drives K replays over shared ChunkCursor streams
// in lockstep: every member is advanced to a common, monotonically growing
// record target before any member moves past it. Members therefore stay
// within ~one chunk of each other (TraceCursor::compute_run never overruns
// the resident chunk), the chunk store's resident window stays O(chunk) per
// stream, and each generated chunk is consumed by all K members while hot
// in cache instead of being regenerated K times.

#include <cstdint>
#include <memory>
#include <vector>

#include "c2b/sim/system/system.h"

namespace c2b::sim {

/// Resumable event-kernel run over one SystemConfig + cursor set. The
/// cursors are borrowed and must outlive the replay; results are identical
/// to simulate_system_streaming(config, cursors) regardless of how the run
/// is sliced into advance_until() calls.
class SystemReplay {
 public:
  SystemReplay(const SystemConfig& config, std::vector<TraceCursor*> cursors);
  ~SystemReplay();

  SystemReplay(const SystemReplay&) = delete;
  SystemReplay& operator=(const SystemReplay&) = delete;
  SystemReplay(SystemReplay&&) noexcept;
  SystemReplay& operator=(SystemReplay&&) noexcept;

  /// Process events until the run finishes or consumed_records() reaches
  /// `record_target` (summed across this replay's cursors). Returns
  /// finished(). Monotone: targets at or below the current consumption
  /// return without doing work only if an event boundary was already
  /// reached — each call always completes whole events, never partial ones.
  bool advance_until(std::uint64_t record_target);

  /// True once the event heap has drained (all cores done).
  bool finished() const noexcept;

  /// Trace records consumed so far, summed across cursors.
  std::uint64_t consumed_records() const noexcept;

  /// Final result; valid only once finished() is true. Call at most once —
  /// building it folds the per-core detectors, which is a one-shot step.
  SystemResult result();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Vectorized-kernel accounting for one simulate_system_batched call (all
/// zero when the scalar fallback ran). Also published as the
/// exec.batch.simd.{steps,peels,lanes_active} telemetry counters.
struct BatchKernelStats {
  std::uint64_t simd_steps = 0;  ///< events processed by the vectorized kernel
  /// Records issued through the scalar per-record path (the remainder went
  /// through closed-form compute jumps): the kernel's divergence rate is
  /// simd_peels / records consumed.
  std::uint64_t simd_peels = 0;
  /// Sum over lockstep rounds of live members — how compacted the batch
  /// stayed as members finished.
  std::uint64_t simd_lanes_active = 0;

  void merge(const BatchKernelStats& other) noexcept {
    simd_steps += other.simd_steps;
    simd_peels += other.simd_peels;
    simd_lanes_active += other.simd_lanes_active;
  }
};

struct BatchedReplayOptions {
  /// Lockstep granularity: how many records each member may consume past
  /// the previous common target before every member is caught up. One
  /// chunk keeps the shared stream's resident window minimal while still
  /// amortizing the round-robin sweep.
  std::uint64_t lockstep_records = 4096;
  /// Dispatch policy: batches of >= 2 members run the vectorized lockstep
  /// kernel (batched_simd.cpp) unless this is false, the build disabled it
  /// (-DC2B_DISABLE_SIMD=ON), or C2B_NO_SIMD=1 is set in the environment.
  /// Results are bit-identical either way; this is an escape hatch, not a
  /// semantic knob (it does not belong in sim-cache keys).
  bool use_simd = true;
  /// Optional out-param: vectorized-kernel stats are accumulated (+=) into
  /// it when non-null.
  BatchKernelStats* kernel_stats = nullptr;
};

/// Simulate `configs.size()` members in lockstep; member k runs
/// configs[k] over cursors[k]. Members may share cursor sources (e.g.
/// ChunkCursors over one TraceChunkStore stream) — each member owns its
/// *cursor objects*, never shares them. Returns one SystemResult per
/// member, each bit-identical to simulate_system_streaming on that member
/// alone.
std::vector<SystemResult> simulate_system_batched(
    const std::vector<SystemConfig>& configs,
    const std::vector<std::vector<TraceCursor*>>& cursors,
    const BatchedReplayOptions& options = {});

}  // namespace c2b::sim
