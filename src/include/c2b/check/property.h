#pragma once

// Property-based testing engine (the repo's correctness tooling core).
//
// A Property<T> bundles a seed-driven generator, a predicate, and optional
// shrink/print hooks. check() samples `cases` values — case i draws from an
// independent splitmix64-derived Rng stream, so every case replays from
// (seed, case index) alone — and on the first failure greedily shrinks the
// counterexample: it repeatedly asks the shrinker for smaller candidates
// and walks to the first one that still fails, until none do.
//
// Failures print a one-line repro
//
//   C2B_CHECK_SEED=<seed> C2B_CHECK_CASE=<i> <test binary>
//
// and persist the shrunk counterexample to the corpus directory (set via
// CheckOptions::corpus_dir or the C2B_CHECK_CORPUS environment variable)
// so CI uploads it and the failure replays locally. Environment overrides
// honored by options_from_env(): C2B_CHECK_SEED, C2B_CHECK_CASES,
// C2B_CHECK_CASE (run exactly one case), C2B_CHECK_CORPUS.

#include <cstdint>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "c2b/common/rng.h"

namespace c2b::check {

struct CheckOptions {
  std::uint64_t seed = 42;
  std::size_t cases = 100;
  /// Only run this case index when set (replay mode).
  std::optional<std::size_t> only_case;
  /// Cap on accepted shrink steps (each step walks to a smaller failure).
  std::size_t max_shrink_steps = 1000;
  /// Where shrunk counterexamples are written ("" = don't persist).
  std::string corpus_dir;
};

/// Overlay the C2B_CHECK_* environment variables onto `base`.
CheckOptions options_from_env(CheckOptions base = {});

struct Counterexample {
  std::uint64_t seed = 0;        ///< engine seed that produced the failure
  std::size_t case_index = 0;    ///< failing case within that seed's run
  std::size_t shrink_steps = 0;  ///< accepted shrink steps applied
  std::string value;             ///< printed (shrunk) counterexample
  std::string message;           ///< property failure message
};

struct CheckResult {
  std::string property_name;
  std::size_t cases_run = 0;
  bool passed = true;
  std::optional<Counterexample> counterexample;
  std::string repro;        ///< "C2B_CHECK_SEED=… C2B_CHECK_CASE=…" when failed
  std::string corpus_path;  ///< file the counterexample was written to ("" = none)

  /// One-line human summary ("PASS name (100 cases)" / failure + repro).
  std::string summary() const;
};

/// Format the repro line for a failing (seed, case).
std::string repro_line(std::uint64_t seed, std::size_t case_index);

/// Persist a counterexample under `corpus_dir` (created if absent). Returns
/// the file path, or "" when the directory cannot be created/written —
/// corpus persistence must never turn a test failure into an I/O abort.
std::string write_corpus_entry(const std::string& corpus_dir, const std::string& property_name,
                               const Counterexample& counterexample);

/// A property over values of type T. `holds` returns std::nullopt on pass
/// or a failure message; exceptions thrown by it also count as failures
/// (with e.what() as the message).
template <typename T>
struct Property {
  std::string name;
  std::function<T(Rng&)> generate;
  std::function<std::optional<std::string>(const T&)> holds;
  /// Candidate strictly-smaller values, tried in order ({} = no shrinking).
  std::function<std::vector<T>(const T&)> shrink;
  /// Printable form for the repro/corpus (default: "<unprintable>").
  std::function<std::string(const T&)> print;
};

namespace detail {

template <typename T>
std::optional<std::string> run_predicate(const Property<T>& property, const T& value) {
  try {
    return property.holds(value);
  } catch (const std::exception& error) {
    return std::string("exception: ") + error.what();
  }
}

template <typename T>
std::string print_value(const Property<T>& property, const T& value) {
  if (!property.print) return "<unprintable>";
  try {
    return property.print(value);
  } catch (const std::exception& error) {
    return std::string("<print failed: ") + error.what() + ">";
  }
}

}  // namespace detail

/// Run the property. Deterministic: case i regenerates its value from
/// Rng(derive_stream_seed(options.seed, i)) regardless of how many cases
/// ran before it, which is what makes the one-line repro sufficient.
template <typename T>
CheckResult check(const Property<T>& property, const CheckOptions& options = options_from_env()) {
  CheckResult result;
  result.property_name = property.name;

  const std::size_t first = options.only_case.value_or(0);
  const std::size_t last = options.only_case ? *options.only_case + 1 : options.cases;
  for (std::size_t i = first; i < last; ++i) {
    Rng rng(Rng::derive_stream_seed(options.seed, static_cast<std::uint64_t>(i)));
    T value = property.generate(rng);
    ++result.cases_run;
    std::optional<std::string> failure = detail::run_predicate(property, value);
    if (!failure) continue;

    // Greedy shrink: accept the first smaller candidate that still fails,
    // restart from it, stop when a whole candidate round passes (local
    // minimum) or the step budget runs out.
    Counterexample cex;
    cex.seed = options.seed;
    cex.case_index = i;
    while (property.shrink && cex.shrink_steps < options.max_shrink_steps) {
      bool shrunk = false;
      for (T& candidate : property.shrink(value)) {
        std::optional<std::string> candidate_failure = detail::run_predicate(property, candidate);
        if (candidate_failure) {
          value = std::move(candidate);
          failure = std::move(candidate_failure);
          ++cex.shrink_steps;
          shrunk = true;
          break;
        }
      }
      if (!shrunk) break;
    }

    cex.value = detail::print_value(property, value);
    cex.message = *failure;
    result.passed = false;
    result.repro = repro_line(options.seed, i);
    if (!options.corpus_dir.empty())
      result.corpus_path = write_corpus_entry(options.corpus_dir, property.name, cex);
    result.counterexample = std::move(cex);
    return result;
  }
  return result;
}

// --- generic shrink helpers -------------------------------------------------

/// Candidates for a non-negative integer: 0, halves, and value-1 — the
/// classic ladder that converges to the smallest failing value under the
/// greedy loop above.
std::vector<std::uint64_t> shrink_integer(std::uint64_t value);

/// Candidates for a positive double toward `floor`: the floor itself,
/// midpoints, and nearby round numbers.
std::vector<double> shrink_double(double value, double floor = 0.0);

/// Candidates for a vector: drop halves, then drop single elements, then
/// shrink elements with `element_shrink` (may be null).
template <typename T>
std::vector<std::vector<T>> shrink_vector(
    const std::vector<T>& value,
    const std::function<std::vector<T>(const T&)>& element_shrink = nullptr) {
  std::vector<std::vector<T>> out;
  const std::size_t n = value.size();
  if (n == 0) return out;
  // Halves first: fastest descent in length.
  out.emplace_back(value.begin(), value.begin() + static_cast<std::ptrdiff_t>(n / 2));
  out.emplace_back(value.begin() + static_cast<std::ptrdiff_t>(n / 2), value.end());
  // Then single-element drops (front, back, middle).
  for (const std::size_t drop : {std::size_t{0}, n - 1, n / 2}) {
    if (n == 1) break;
    std::vector<T> smaller;
    smaller.reserve(n - 1);
    for (std::size_t i = 0; i < n; ++i)
      if (i != drop) smaller.push_back(value[i]);
    out.push_back(std::move(smaller));
  }
  // Then element-wise shrinks at a few positions.
  if (element_shrink) {
    for (const std::size_t at : {std::size_t{0}, n / 2, n - 1}) {
      if (at >= n) continue;
      for (T& candidate : element_shrink(value[at])) {
        std::vector<T> tweaked = value;
        tweaked[at] = std::move(candidate);
        out.push_back(std::move(tweaked));
      }
    }
  }
  return out;
}

}  // namespace c2b::check
