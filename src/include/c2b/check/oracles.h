#pragma once

// Differential oracle harness: three independent oracle families that
// cross-check the analytic model, the cycle-level simulator, and the
// parallel execution layer against each other on *randomly sampled*
// configurations (seed-driven, so every failure replays from the seed):
//
//   1. analytic-vs-simulator — the calibrated C²-Bound model's predicted
//      time-per-work vs simulate_design_time across sampled designs, with
//      a per-workload tolerance band asserted and exportable as JSON;
//   2. serial-vs-parallel — the PR 2 determinism contract (thread counts
//      1/2/8 bit-identical, warm sim-cache replay identity) on random
//      DSE/APS scenarios instead of hand-picked ones;
//   3. invariant registry — the telemetry ledger (sim.l1.hit + sim.l1.miss
//      + exec.simcache.replayed_accesses == reported memory accesses),
//      area conservation at every optimizer iterate (Eq. 12), and the
//      model's structural bounds (C-AMAT <= AMAT, C >= 1, Pollack CPI
//      monotone in area, time monotone in area at fixed N);
//   4. kernel equivalence — the event-driven cycle-skipping kernel vs the
//      retained per-cycle reference kernel, every SystemResult field
//      compared bitwise on random configurations (coherence and prefetch
//      included) and random traces, plus streaming-cursor vs materialized
//      replay identity and the per-run demand-access ledger;
//   5. batch equivalence — simulate_design_times_batched (shared chunk
//      store + lockstep multi-config replay) vs per-point
//      simulate_design_time on random design-point sets: times and access
//      counts bitwise at every thread count, the telemetry ledger balanced,
//      and the warm path (batched run populating the sim cache, per-point
//      runs replaying it) reproducing the cold results exactly;
//   6. simd equivalence — the vectorized lockstep batch kernel vs the
//      scalar-lockstep driver vs simulate_system_reference, every
//      SystemResult field compared bitwise across batch widths {2,4,8,16}
//      and lockstep granularities {1,7,4096}, plus DSE sweeps with the
//      vectorized kernel on vs off bit-identical at threads {1,2,8};
//   7. constraint ground truth — on random small spaces with finite
//      power/bandwidth/NoC budgets, a serial full-factorial enumeration
//      filtered Eq.-(12)-style by the constraint set is the oracle: the
//      constrained DSE optimum and the Pareto mode's frontier (membership
//      and every time/power/area coordinate, bitwise) must match it at
//      every thread count, and warm sim-cache replays must reproduce the
//      cold frontier exactly;
//   8. surrogate pruning — the MLP-guided sweep pruner vs the exhaustive
//      sweep: on a fixed multi-class space that provably prunes at least
//      one class and on random scenarios, the surrogate run's optimum
//      (index and time, bitwise) and Pareto frontier (membership and every
//      coordinate, bitwise) must equal the exhaustive ground truth at
//      every thread count, cold and warm sim-cache, and every simulated
//      point's time must be bitwise equal to its exhaustive counterpart;
//   9. persistent cache — the two-tier SimCache's cross-run contract: on
//      random scenarios, a no-cache reference sweep, a cold disk-backed
//      sweep, a warm in-memory replay, and warm *restarts* (memory tier
//      dropped, disk tier re-attached — the process-restart emulation)
//      must all be bitwise identical at every thread count; a corrupted
//      cache directory (bit flips, truncated tails, stale schema) must
//      degrade to a cold run with the damage counted as drops, never
//      change a result and never error.
//
// The oracles mutate process-global execution state (thread count, the
// global sim cache, telemetry counters) and restore defaults on exit; do
// not run them concurrently with other work in the same process.

#include <cstdint>
#include <string>
#include <vector>

#include "c2b/check/property.h"

namespace c2b::check {

struct OracleOptions {
  std::uint64_t seed = 42;
  /// analytic-vs-sim: random designs sampled per catalog workload.
  std::size_t designs_per_workload = 5;
  /// determinism: random full-DSE scenarios swept at every thread count.
  std::size_t dse_configs = 100;
  /// determinism: random APS scenarios (characterize + neighborhood).
  std::size_t aps_configs = 4;
  /// invariant registry: cases per property.
  std::size_t invariant_cases = 60;
  /// ledger invariant: random DSE scenarios traced end to end.
  std::size_t ledger_configs = 2;
  /// kernel equivalence: random (config, trace) cases compared bitwise
  /// against the per-cycle reference kernel.
  std::size_t kernel_configs = 40;
  /// batch equivalence: random design-point sets replayed batched vs
  /// per-point at every thread count.
  std::size_t batch_sets = 50;
  /// simd equivalence: random scenarios compared across every batch width
  /// {2,4,8,16} x lockstep granularity {1,7,4096} combination each.
  std::size_t simd_sets = 3;
  /// constraint ground truth: random budgeted spaces enumerated serially
  /// and compared against the constrained optimizer + Pareto frontier.
  std::size_t constraint_sets = 6;
  /// surrogate pruning: random scenarios swept surrogate-on vs exhaustive
  /// (on top of one fixed scenario that must prune at least one class).
  std::size_t surrogate_sets = 3;
  /// persistent cache: random scenarios run no-cache / cold / warm /
  /// warm-restart / corrupted-dir against a fresh disk tier each.
  std::size_t cache_sets = 3;
  std::vector<std::size_t> thread_counts{1, 2, 8};
  /// Corpus directory for shrunk property counterexamples ("" = none).
  std::string corpus_dir;
};

/// Observed vs asserted model-simulator agreement for one workload.
struct ToleranceBand {
  std::string workload;
  std::size_t samples = 0;
  double mean_abs_rel_error = 0.0;  ///< mean |analytic - sim| / sim
  double max_abs_rel_error = 0.0;
  double mean_tolerance = 0.0;  ///< asserted bound on the mean
  double max_tolerance = 0.0;   ///< asserted bound on the max
  bool passed = false;
};

struct OracleReport {
  std::string family;
  std::size_t checks = 0;  ///< individual comparisons performed
  std::vector<std::string> failures;
  std::vector<ToleranceBand> bands;  ///< analytic-vs-sim only
  bool passed() const noexcept { return failures.empty(); }
};

OracleReport run_analytic_vs_sim_oracle(const OracleOptions& options = {});
OracleReport run_determinism_oracle(const OracleOptions& options = {});
OracleReport run_invariant_oracle(const OracleOptions& options = {});
OracleReport run_kernel_equivalence_oracle(const OracleOptions& options = {});
OracleReport run_batch_equivalence_oracle(const OracleOptions& options = {});
OracleReport run_simd_equivalence_oracle(const OracleOptions& options = {});
OracleReport run_constraint_oracle(const OracleOptions& options = {});
OracleReport run_surrogate_oracle(const OracleOptions& options = {});
OracleReport run_persistent_cache_oracle(const OracleOptions& options = {});

/// All nine families in order; never throws on oracle failure (inspect
/// the reports).
std::vector<OracleReport> run_all_oracles(const OracleOptions& options = {});

/// Export tolerance bands as a JSON array. Returns false on I/O failure.
bool write_tolerance_bands_json(const std::string& path,
                                const std::vector<ToleranceBand>& bands);

}  // namespace c2b::check
