#pragma once

// Seed-driven generators for the library's domain types, shared by the
// property suites, the differential oracles, and the fuzz tests. Every
// generator draws from the caller's Rng only (no hidden state), so a value
// replays from (seed, case index) alone, and every generated value
// satisfies the type's own validate() / feasibility contract — properties
// test behavior, not input plumbing.

#include <string>
#include <vector>

#include "c2b/aps/dse.h"
#include "c2b/common/rng.h"
#include "c2b/core/c2bound.h"
#include "c2b/laws/scaling.h"
#include "c2b/sim/system/system.h"
#include "c2b/trace/trace.h"
#include "c2b/trace/workloads.h"

namespace c2b::check {

/// One (A0, A1, A2) simplex point within a per-core budget.
struct AreaSplit {
  double a0 = 1.0;
  double a1 = 0.5;
  double a2 = 1.0;
  double total() const noexcept { return a0 + a1 + a2; }
};

/// A random DSE problem: context + axes with at least one feasible design.
struct DseScenario {
  DseContext context;
  DseAxes axes;
};

/// Random small simulator configuration (1-4 cores, pow2 cache geometries,
/// valid issue/ROB pair). Always passes SystemConfig::validate().
sim::SystemConfig gen_system_config(Rng& rng);

/// Random catalog workload with a randomized (small) size knob; the factory
/// fills the uid, so memoization stays sound across generated specs.
WorkloadSpec gen_workload_spec(Rng& rng);

/// Random area split with a0/a1/a2 >= the chip minimums and total <= budget.
/// Requires budget >= the sum of minimums (throws otherwise).
AreaSplit gen_area_split(Rng& rng, const ChipConstraints& chip, double budget);

/// Random instruction trace: mixed kinds, random addresses, random
/// dependence flags, random (possibly empty) name.
Trace gen_trace(Rng& rng, std::size_t max_records = 256);

/// Random g(N): fixed / linear / power(b in [0, 2]) / FFT-like.
ScalingFunction gen_scaling_function(Rng& rng);

/// Random application / machine profiles; both pass their validate().
AppProfile gen_app_profile(Rng& rng);
MachineProfile gen_machine_profile(Rng& rng);

/// Random tiny DSE scenario (grid of 4-64 points, short simulation
/// windows) guaranteed to contain at least one feasible design, sized so a
/// full factorial sweep stays cheap enough for 100-config oracle runs.
DseScenario gen_dse_scenario(Rng& rng);

// --- shrinkers / printers ---------------------------------------------------

/// Trace shrinker: halves, single-record drops, then address zeroing.
std::vector<Trace> shrink_trace(const Trace& trace);

std::string print_trace(const Trace& trace);
std::string print_area_split(const AreaSplit& split);
std::string print_system_config(const sim::SystemConfig& config);
std::string print_dse_scenario(const DseScenario& scenario);
std::string print_app_profile(const AppProfile& app);

}  // namespace c2b::check
