#pragma once

// Job payloads for `c2b serve`: a flat JSON request body is parsed with
// the journal-line parser (one object per job, same grammar the flight
// recorder reads back), mapped onto the same DseContext the CLI builds,
// and executed synchronously on the calling (runner) thread — the sweeps
// inside fan out on the shared ThreadPool exactly as a CLI run would.
// Supported types: "dse" (full factorial or --pareto), "aps", "check"
// (one oracle family).

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace c2b::serve {

struct JobRequest {
  std::string type;  ///< "dse" | "aps" | "check"
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;

  double num(const std::string& key, double fallback) const;
  std::string str(const std::string& key, const std::string& fallback) const;
  bool flag(const std::string& key) const;  ///< numeric field != 0

  /// How many pool threads this job claims for admission control
  /// ("threads" field, default 1, clamped to [1, threads_total] by the
  /// manager). Purely an admission weight: the sweep itself runs on the
  /// shared work-stealing pool either way.
  std::size_t threads_share() const;

  /// Parses a flat JSON object ({"type":"dse","workload":"stencil",...}).
  /// nullopt + *error on malformed JSON, missing/unknown type, or an
  /// unknown workload/family name.
  static std::optional<JobRequest> parse(const std::string& body, std::string* error);
};

struct JobOutcome {
  bool ok = false;
  std::string error;
  std::string result_json = "{}";  ///< summary for GET /jobs/<id>
};

/// Executes one job on the calling thread. Never throws: failures land in
/// outcome.error. Observation context (per-job journal) is installed by
/// the caller — everything emitted during the run streams there.
JobOutcome run_job(const JobRequest& request);

}  // namespace c2b::serve
