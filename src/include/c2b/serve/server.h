#pragma once

// `c2b serve`: a long-running DSE service wrapping the job layer in a
// loopback HTTP daemon. One process hosts the warm two-tier SimCache
// (memory + optional C2B_SIM_CACHE_DIR disk tier), the shared ThreadPool,
// and a bounded job manager, so successive sweeps submitted over the wire
// warm-start each other exactly like successive CLI runs sharing a cache
// directory — minus the process startup and disk reload.
//
// Admission control is two-layered and rejection is explicit, never
// silent: at most `max_queue` accepted-but-unfinished jobs exist at once
// (submit past that is 429), and the runner threads only start a job when
// its declared `threads` share fits under `threads_total` alongside the
// shares of the jobs already running — a weight on admission order only;
// execution always fans out on the one shared pool.
//
// Every job streams its own flight record: the manager opens
// <spool>/job-<id>.jsonl, installs it thread-locally on the runner (see
// obs/context.h — the pool propagates it across workers per batch), and
// GET /jobs/<id>/events replays validated lines from that file, so
// progress streaming reuses the journal grammar end to end.
//
// Routes (all JSON):
//   POST /jobs            submit ({"type":"dse"|"aps"|"check", ...}) -> 202
//   GET  /jobs/<id>       status + result summary when done
//   GET  /jobs/<id>/events[?from=K]  journal lines K.. as a JSON array
//   GET  /metrics         obs::metrics_json() for the whole process
//   GET  /stats           job-manager occupancy snapshot
//   GET  /healthz         liveness probe
//   POST /shutdown        drain accepted jobs, then exit the serve loop

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "c2b/serve/http.h"
#include "c2b/serve/jobs.h"

namespace c2b::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;                ///< 0 = ephemeral; read back via Server::port()
  std::size_t max_active = 2;  ///< runner threads = max concurrently running jobs
  std::size_t max_queue = 64;  ///< accepted-but-unfinished cap; beyond it: 429
  /// Denominator for per-job `threads` admission shares; 0 = the global
  /// pool's thread count.
  std::size_t threads_total = 0;
  /// Directory for per-job journals (job-<id>.jsonl). Empty = no per-job
  /// journals; the events endpoint then returns an empty array.
  std::string spool_dir;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the listening socket. False + *error on failure.
  bool start(std::string* error);
  int port() const noexcept;

  /// Serve until POST /shutdown (or stop()), then drain: every accepted
  /// job still runs to completion before run() returns.
  void run();

  /// Thread-safe: makes run() return (after draining), e.g. from a test.
  void stop();

  /// The request router, exposed for in-process tests that want to poke
  /// routes without a socket.
  HttpResponse handle(const HttpRequest& request);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace c2b::serve
