#pragma once

// Minimal HTTP/1.1 transport for `c2b serve`, POSIX sockets only — no
// third-party dependency. The server accepts loopback connections and
// handles one request per connection (Connection: close); every handler is
// quick (submit enqueues, status snapshots, metrics serializes), because
// job execution itself is asynchronous on the job manager's runner
// threads, so a sequential accept loop is both sufficient and immune to
// handler-thread races. The client side is a one-shot request helper used
// by `c2b submit` / `c2b fetch` and the smoke tests.

#include <atomic>
#include <functional>
#include <optional>
#include <string>

namespace c2b::serve {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< path without query ("/jobs/3")
  std::string query;   ///< raw query string without '?' ("from=4"), may be empty
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer();
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds and listens on host:port (port 0 = kernel-assigned ephemeral
  /// port, readable via port() afterwards). False + *error on failure.
  bool listen(const std::string& host, int port, std::string* error);
  int port() const noexcept { return port_; }

  /// Accept-and-dispatch loop; returns after stop(). Connections are
  /// handled sequentially on the calling thread.
  void serve(const HttpHandler& handler);

  /// Signals serve() to return after the in-flight request, if any. Safe
  /// from handlers and from other threads.
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

 private:
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
};

/// One-shot client request ("GET"/"POST"); nullopt + *error on connect,
/// I/O, or parse failure.
std::optional<HttpResponse> http_request(const std::string& host, int port,
                                         const std::string& method, const std::string& path,
                                         const std::string& body = {},
                                         std::string* error = nullptr);

}  // namespace c2b::serve
