#pragma once

// On-disk second tier for SimCache: a content-addressed, append-only
// result store that survives process restarts, so repeated sweeps
// warm-start across invocations instead of resimulating.
//
// Layout: the cache directory holds a fixed set of segment files
// (seg-00.c2b .. seg-NN.c2b); a record's segment is chosen by hashing its
// key, so concurrent flushes append to independent files and startup
// recovery can stream each segment independently. Records are
// self-delimiting and individually checksummed (FNV-1a64, the trace-v2
// discipline): a torn tail from a crash mid-append, a flipped bit, or a
// record written by an older schema is skipped and counted as a drop —
// never an error, never a wrong value. The store degrades to "cold" under
// any corruption because a dropped record is indistinguishable from one
// that was never written.
//
// Write path: enqueue() registers the record in the in-memory index
// immediately (so later probes hit) and hands the bytes to a write-behind
// flusher thread; the hot path never touches the filesystem. The pending
// queue is bounded — when it is full the record is dropped from the disk
// queue (counted, like journal-line drops) but stays in the index, so the
// only cost of overload is a recompute after the next restart.
//
// Keys already canonically spell out every field a result depends on
// (simulation_cache_key in aps/dse.cpp, including WorkloadSpec::uid); the
// record header additionally carries kSimCacheSchemaVersion so entries
// written before a Value-layout or key-grammar change self-invalidate.
//
// Telemetry: exec.simcache.disk.{drop,flush} counters and
// exec.simcache.disk.entries gauge live here; exec.simcache.disk.{hit,miss}
// are counted by SimCache, which owns the probe.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "c2b/exec/sim_cache.h"

namespace c2b::exec {

/// Bump when SimCache::Value's layout or the cache-key grammar changes:
/// records stamped with an older version are dropped at load.
inline constexpr std::uint32_t kSimCacheSchemaVersion = 1;

struct DiskTierStats {
  std::size_t entries = 0;        ///< keys in the in-memory index
  std::uint64_t loaded = 0;       ///< records recovered at open()
  std::uint64_t appended = 0;     ///< records written since open()
  std::uint64_t drops = 0;        ///< corrupt/stale records skipped + queue overflows
  std::uint64_t flushes = 0;      ///< write-behind flush rounds
};

class DiskTier {
 public:
  struct Options {
    std::size_t segment_count = 8;    ///< append-only segment files in the dir
    std::size_t queue_limit = 8192;   ///< bounded write-behind queue (records)
  };

  /// Opens (creating if needed) a cache directory and recovers every intact
  /// record from its segments — torn tails, bit flips, and version-mismatched
  /// records are skipped with counted drops. Returns nullptr when the
  /// directory cannot be created or opened; callers treat that as "no disk
  /// tier" and fall through to simulation.
  static std::unique_ptr<DiskTier> open(const std::string& dir, Options options);
  static std::unique_ptr<DiskTier> open(const std::string& dir);

  /// Drains the pending queue and joins the flusher.
  ~DiskTier();
  DiskTier(const DiskTier&) = delete;
  DiskTier& operator=(const DiskTier&) = delete;

  std::optional<SimCache::Value> find(const std::string& key) const;

  /// Bulk probe mirroring SimCache::find_many: one index-lock acquisition
  /// for the whole batch. out[i] is filled only for found keys.
  void find_many(const std::vector<std::string>& keys, const std::vector<std::size_t>& indices,
                 std::vector<std::optional<SimCache::Value>>& out,
                 std::uint64_t& found, std::uint64_t& missed) const;

  /// Registers the record in the index and schedules its append. A key
  /// already present (recovered or previously enqueued) is not re-appended,
  /// so warm reruns do not grow the segments.
  void enqueue(const std::string& key, const SimCache::Value& value);

  /// Synchronously drains the pending queue to the segment files.
  void flush();

  DiskTierStats stats() const;
  std::size_t entries() const;

  /// Segment file name for slot `index` ("seg-03.c2b") — exposed so tests
  /// and tools can locate segments for corruption fuzzing.
  static std::string segment_name(std::size_t index);

 private:
  DiskTier();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace c2b::exec
