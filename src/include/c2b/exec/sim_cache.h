#pragma once

// Memoized simulation results. simulate_design_time() is a pure function
// of (simulator configuration, workload identity, seed, simulation
// windows): overlapping APS neighborhoods, the full-DSE ground truth, and
// repeated bench sweeps keep asking for the same designs, so the answers
// are cached process-wide — and, with a disk tier attached, across
// process restarts.
//
// Keys are canonical strings spelling out every field the result depends
// on (built by the caller — see simulation_cache_key in aps/dse.cpp).
// Exact string equality decides a hit, so hash collisions can never
// return a wrong result, and a cached value is the bit-identical double
// the simulation produced — memoization preserves the determinism
// contract of the parallel sweeps whichever tier serves it.
//
// Two tiers. Tier 1 is the sharded in-memory table: each shard holds a
// mutex, a map, and a second-chance (clock) eviction queue — a hit sets
// the entry's referenced bit, and an entry reaching the clock hand with
// the bit set is granted another cycle instead of being evicted, so hot
// keys survive sweeps that stream past the capacity. Tier 2 (optional,
// attach_disk_tier / C2B_SIM_CACHE_DIR) is an append-only checksummed
// on-disk store (disk_tier.h); misses fall through memory → disk →
// simulate, and a disk hit is promoted into the memory tier. clear()
// resets only the memory tier and the counters — the disk tier is the
// cross-run layer and survives.
//
// Thread safety: shard mutexes for the memory tier, the disk tier locks
// internally; two threads computing the same key concurrently both
// simulate and insert, the values are identical, so last-write-wins is
// harmless. Telemetry: exec.simcache.{hit,miss,evict,entries} for the
// memory tier, exec.simcache.disk.{hit,miss,drop,flush,entries} for the
// disk tier.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace c2b::exec {

struct SimCacheStats {
  std::uint64_t hits = 0;        ///< served from the memory tier
  std::uint64_t misses = 0;      ///< missed every attached tier
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  // Disk tier (all zero when none is attached).
  std::uint64_t disk_hits = 0;    ///< memory misses served from disk
  std::uint64_t disk_misses = 0;  ///< probes that reached disk and missed
  std::uint64_t disk_drops = 0;   ///< corrupt/stale/overflowed records skipped
  std::uint64_t disk_flushes = 0; ///< write-behind flush rounds
  std::size_t disk_entries = 0;
};

class SimCache {
 public:
  /// What one simulate_design_time call produced.
  struct Value {
    double time = 0.0;
    std::uint64_t memory_accesses = 0;
  };

  /// capacity = max cached entries across all shards; once a shard fills
  /// its share the clock hand evicts the first entry not referenced since
  /// its last pass.
  explicit SimCache(std::size_t capacity = 1 << 16);
  ~SimCache();
  SimCache(const SimCache&) = delete;
  SimCache& operator=(const SimCache&) = delete;

  /// nullopt on miss (counts the miss); the hit/miss telemetry lives here
  /// so callers stay one-liners. A memory miss probes the disk tier when
  /// one is attached and promotes a disk hit into the memory tier.
  std::optional<Value> find(const std::string& key);

  /// Bulk probe for batched sweeps, mirroring insert_many: keys are
  /// grouped by shard so each shard's mutex is taken once per call, and
  /// residual misses probe the disk tier under one index lock. out[i]
  /// corresponds to keys[i]; empty keys are never probed and return
  /// nullopt without counting. Equivalent to find() per key in order.
  /// `disk_hits`, when non-null, receives how many of this call's results
  /// were served from the disk tier (exact per-call attribution, immune to
  /// concurrent callers moving the global counters).
  std::vector<std::optional<Value>> find_many(const std::vector<std::string>& keys,
                                              std::uint64_t* disk_hits = nullptr);

  void insert(const std::string& key, const Value& value);

  /// Bulk insert for batched sweeps: groups the entries by shard so each
  /// shard's mutex is taken once per call instead of once per entry.
  /// Equivalent to insert() per pair in order.
  void insert_many(const std::vector<std::pair<std::string, Value>>& entries);

  /// Runtime kill switch (C2B_SIM_CACHE=0 disables at startup). When
  /// disabled, find() always misses without counting and insert() drops.
  bool enabled() const noexcept;
  void set_enabled(bool on) noexcept;

  /// Attaches an on-disk second tier rooted at `dir` (created if needed),
  /// recovering every intact record it already holds. Returns false when
  /// the directory cannot be opened — the cache then simply has no disk
  /// tier, it never errors. Replaces any previously attached tier
  /// (flushing it first). Not safe to call while sweeps are in flight.
  bool attach_disk_tier(const std::string& dir);

  /// Flushes and closes the disk tier; the memory tier is untouched.
  void detach_disk_tier();
  bool has_disk_tier() const;

  /// Synchronously drains pending disk writes (no-op without a tier).
  void flush_disk();

  /// Drops every memory-tier entry and resets the hit/miss/eviction
  /// counters, so a fresh measurement window starts from zero. The disk
  /// tier — the cross-run layer — is deliberately untouched: detach it
  /// (or point it elsewhere) to emulate a truly cold start.
  void clear();
  SimCacheStats stats() const;

  /// Process-wide instance used by simulate_design_time. On first use,
  /// attaches a disk tier at $C2B_SIM_CACHE_DIR when that is set and
  /// non-empty.
  static SimCache& global();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace c2b::exec
