#pragma once

// Memoized simulation results. simulate_design_time() is a pure function
// of (simulator configuration, workload identity, seed, simulation
// windows): overlapping APS neighborhoods, the full-DSE ground truth, and
// repeated bench sweeps keep asking for the same designs, so the answers
// are cached process-wide.
//
// Keys are canonical strings spelling out every field the result depends
// on (built by the caller — see simulation_cache_key in aps/dse.cpp).
// Exact string equality decides a hit, so hash collisions can never
// return a wrong result, and a cached value is the bit-identical double
// the simulation produced — memoization preserves the determinism
// contract of the parallel sweeps.
//
// Thread safety: the table is sharded by key hash; each shard holds a
// mutex, a map, and a FIFO eviction order. Two threads computing the same
// key concurrently both simulate and insert; the values are identical, so
// last-write-wins is harmless. Telemetry: exec.simcache.{hit,miss,evict}.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace c2b::exec {

struct SimCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

class SimCache {
 public:
  /// What one simulate_design_time call produced.
  struct Value {
    double time = 0.0;
    std::uint64_t memory_accesses = 0;
  };

  /// capacity = max cached entries across all shards; oldest-in evicts
  /// first once a shard fills its share.
  explicit SimCache(std::size_t capacity = 1 << 16);
  ~SimCache();
  SimCache(const SimCache&) = delete;
  SimCache& operator=(const SimCache&) = delete;

  /// nullopt on miss (counts the miss); the hit/miss telemetry lives here
  /// so callers stay one-liners.
  std::optional<Value> find(const std::string& key);
  void insert(const std::string& key, const Value& value);

  /// Bulk insert for batched sweeps: groups the entries by shard so each
  /// shard's mutex is taken once per call instead of once per entry.
  /// Equivalent to insert() per pair in order.
  void insert_many(const std::vector<std::pair<std::string, Value>>& entries);

  /// Runtime kill switch (C2B_SIM_CACHE=0 disables at startup). When
  /// disabled, find() always misses without counting and insert() drops.
  bool enabled() const noexcept;
  void set_enabled(bool on) noexcept;

  /// Drops every entry and resets the hit/miss/eviction counters, so a
  /// fresh measurement window starts from zero.
  void clear();
  SimCacheStats stats() const;

  /// Process-wide instance used by simulate_design_time.
  static SimCache& global();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace c2b::exec
