#pragma once

// Fixed-size worker pool for the embarrassingly parallel sweeps (full DSE,
// APS neighborhood simulation, per-core trace generation, Nelder-Mead
// restarts). Fork-join shape, minimal overheads: one pool for the process,
// per-thread work queues fed round-robin, and idle workers steal from the
// back of their siblings' queues.
//
// Determinism contract: the chunk layout of [begin, end) is a pure
// function of (count, grain, thread count) — it is stable across runs at
// one configuration but MAY differ between thread counts. Bit-identical
// results therefore do not rest on chunk boundaries: they follow from each
// index being visited exactly once and writing only its own output slot,
// with any reduction over those slots performed serially in index order
// (as parallel_map's callers do). Do not rely on which indices share a
// chunk. At threads=1 the same code path executes the chunks inline, in
// ascending order, on the calling thread — the exact serial fallback.
// Nested parallel_for calls (a task that itself forks) run inline serially
// on the executing thread, which both preserves determinism and makes
// nesting deadlock-free.
//
// Sizing: set_thread_count(n) wins, else the C2B_THREADS environment
// variable, else std::thread::hardware_concurrency(). A pool of n threads
// runs n-1 workers; the caller of parallel_for is the n-th executor.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace c2b::exec {

/// Body of one parallel_for chunk: fn(chunk_begin, chunk_end).
using ChunkBody = std::function<void(std::size_t, std::size_t)>;

class ThreadPool {
 public:
  /// threads >= 1 is the total executor count (workers + calling thread).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return thread_count_; }

  /// Run body over [begin, end) in contiguous chunks (roughly 4 per
  /// executor, never smaller than `grain` indices). Blocks until every
  /// chunk finished; rethrows the first task exception. The calling thread
  /// participates in execution.
  void parallel_for(std::size_t begin, std::size_t end, const ChunkBody& body,
                    std::size_t grain = 1);

  /// Ordered map: out[i] = fn(i) for i in [0, count). Results land in input
  /// order regardless of execution order, so reductions over the returned
  /// vector are deterministic at any thread count. T must be
  /// default-constructible and movable.
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t count, Fn&& fn) {
    std::vector<T> out(count);
    parallel_for(0, count, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) out[i] = fn(i);
    });
    return out;
  }

  /// The process-wide pool, created on first use with the configured
  /// thread count (see set_thread_count / C2B_THREADS).
  static ThreadPool& global();

  /// Total chunks a *worker* took from a sibling's queue (monotonic, for
  /// tests; the same number feeds the exec.pool.steals telemetry counter).
  /// The caller thread draining leftover chunks is not a steal — it is
  /// counted separately as exec.pool.caller_drains.
  std::uint64_t steal_count() const noexcept;

 private:
  struct Impl;
  Impl* impl_;
  std::size_t thread_count_;
};

/// Configure the global pool size; 0 restores the default (C2B_THREADS env
/// or hardware_concurrency). Takes effect immediately: the existing global
/// pool, if any, is torn down and rebuilt. Must not be called while
/// parallel work is in flight.
void set_thread_count(std::size_t threads);

/// The thread count the global pool has (or would be created with).
std::size_t thread_count();

}  // namespace c2b::exec
