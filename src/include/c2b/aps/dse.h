#pragma once

// The six-parameter CMP design space of the paper's Fig. 12 case study
// (A0, A1, A2, N, issue width, ROB size), the mapping from a design point
// to a simulator configuration, and the ground-truth evaluation of one
// design: the Sun-Ni-scaled problem's execution time on the cycle-level
// simulator (serial phase on one core + SPMD parallel phase on N cores,
// linearly extrapolated from capped simulation windows so a full factorial
// traversal stays affordable).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "c2b/core/chip.h"
#include "c2b/core/constraints.h"
#include "c2b/sim/system/system.h"
#include "c2b/solver/grid.h"
#include "c2b/trace/workloads.h"

namespace c2b {

/// Axis order inside the grid: a0, a1, a2, n, issue, rob.
enum DseAxisIndex : std::size_t {
  kAxisA0 = 0,
  kAxisA1 = 1,
  kAxisA2 = 2,
  kAxisN = 3,
  kAxisIssue = 4,
  kAxisRob = 5,
};

struct DseAxes {
  std::vector<double> a0{0.5, 1.0, 2.0, 4.0};
  std::vector<double> a1{0.25, 0.5, 1.0, 2.0};
  std::vector<double> a2{0.5, 1.0, 2.0, 4.0};
  std::vector<double> n{1, 2, 4, 8};
  std::vector<double> issue{2, 4, 8};
  std::vector<double> rob{32, 128, 256};
};

/// Fig.-12-scale preset: the paper's 10^6-point study sampled at
/// (near-)power-of-two steps — 8x8x8 area splits x 10 core counts x 4
/// issue widths x 6 ROB sizes = 122,880 raw grid points, with the many-N
/// axis giving the surrogate driver real trace classes to prune. Exhaust
/// this grid only through surrogate-guided or heavily budget-filtered
/// sweeps.
DseAxes make_large_axes();

GridSpace make_design_space(const DseAxes& axes);

struct DseContext {
  ChipConstraints chip{};            ///< densities for area -> capacity
  sim::SystemConfig base{};          ///< latencies / DRAM / NoC template
  WorkloadSpec workload;             ///< what runs on each candidate
  std::uint64_t instructions0 = 60'000;  ///< IC0 of the scaled-down study
  std::uint64_t per_core_cap = 40'000;   ///< simulation window cap per core
  std::uint64_t seed = 99;
  // Batched-replay tuning (results are bit-identical for any values, so
  // neither belongs in simulation cache keys): lockstep granularity and the
  // vectorized-kernel escape hatch, forwarded to BatchedReplayOptions.
  std::uint64_t lockstep_records = 4096;
  bool use_simd = true;
  // Multi-resource budgets (+infinity = that resource is unconstrained)
  // and the analytic demand models behind them. Budgets only *filter* the
  // design space — they never change what a simulation computes, so they
  // are deliberately absent from trace-class and sim-cache keys.
  double power_budget = std::numeric_limits<double>::infinity();
  double bw_budget = std::numeric_limits<double>::infinity();
  double noc_budget = std::numeric_limits<double>::infinity();
  ConstraintModels cost{};
  // Surrogate-guided sweep pruning (c2b/aps/surrogate.h): when enabled,
  // run_full_dse / run_pareto_dse train an MLP on streaming batched-replay
  // results and skip trace classes predicted to be more than
  // `surrogate_band` (relative) away from the incumbent optimum/frontier.
  // The reported optimum is always simulator ground truth (an exact
  // fallback pass re-simulates the predicted neighborhood), and every
  // decision is a serial function of deterministic simulation results, so
  // sweeps stay bit-identical at any thread count. Pruned points are the
  // only observable difference: their times stay +infinity.
  bool surrogate_enabled = false;
  double surrogate_band = 0.25;     ///< relative pruning band around incumbent
  std::size_t surrogate_warmup = 3; ///< exact warmup samples per trace class
};

/// The DesignPoint view of a 6-coordinate grid point (issue/ROB carry no
/// resource demand in any current model).
DesignPoint design_point_of(const std::vector<double>& point);

/// Assemble the context's declarative constraint set: area always (the
/// historical Eq. (12) filter, bit-identical), then power / bandwidth /
/// NoC for each finite budget, in that order. A context with all budgets
/// infinite yields exactly the single area constraint.
ConstraintSet design_constraints(const DseContext& context);

/// Translate a design point to a full simulator configuration. Cache sizes
/// are rounded to powers of two (hardware-buildable geometry); functional
/// units follow Pollack: fu = clamp(round(2 sqrt(A0)), 1, 16).
sim::SystemConfig config_for_design(const DseContext& context,
                                    const std::vector<double>& point);

/// The constraint set as a grid filter: a candidate is buildable iff
/// ROB >= issue width and every member of design_constraints(context) is
/// satisfied — Eq. (12) area always, plus power/bandwidth/NoC when their
/// budgets are finite. The paper's design space is a chip's design space —
/// configurations that do not fit the die (or its power/BW/NoC envelopes)
/// are not simulated by any method.
bool design_feasible(const DseContext& context, const std::vector<double>& point);

/// Ground-truth cost of this design: execution time (cycles) of the
/// capacity-scaled problem divided by its work factor g(N) — i.e. inverse
/// throughput, time per unit work. Lower is better. Normalizing by g(N)
/// makes the metric consistent across core counts for BOTH cases of the
/// paper's split (for fixed g it is plain time; for scalable g it ranks by
/// W/T, which is what case I optimizes).
/// `memory_accesses`, when non-null, accumulates (+=) the demand memory
/// accesses the underlying simulations issued. Results are memoized in
/// exec::SimCache::global(); a hit replays the recorded access count
/// without touching the simulator, so the telemetry ledger is
/// sim.l1.hit + sim.l1.miss + exec.simcache.replayed_accesses == total.
double simulate_design_time(const DseContext& context, const std::vector<double>& point,
                            std::uint64_t* memory_accesses = nullptr);

/// Stream-determining key of a design: every field that decides which trace
/// records the simulator consumes — workload uid + numeric g/memory_scale
/// samples (including at the actual core count), f_seq, seed, IC0, window
/// cap, and N. Cache geometry / issue width / ROB size are absent on
/// purpose: they change how the streams are *timed*, never their contents.
/// Designs with equal keys form one trace-equivalence class and can replay
/// a single shared stream. With an empty workload uid the key only
/// identifies streams within one DseContext (uids pin the generator family
/// across contexts).
std::string trace_class_key(const DseContext& context, std::uint32_t cores);

/// One simulate_design_time result, by value.
struct BatchSimOutcome {
  double time = 0.0;
  std::uint64_t memory_accesses = 0;
};

/// What a batched sweep did, for CLI summaries and tests (the same numbers
/// are emitted as exec.batch.* telemetry counters).
struct BatchReplayStats {
  std::size_t classes = 0;     ///< trace-equivalence classes simulated
  std::size_t members = 0;     ///< design points simulated via batched replay
  std::size_t cache_hits = 0;  ///< points peeled off by the sim cache (either tier)
  std::size_t cache_hits_disk = 0;  ///< the subset of cache_hits served from the disk tier
  std::uint64_t chunks_shared = 0;            ///< extra consumers over generated chunks
  std::uint64_t regen_avoided_accesses = 0;   ///< memory accesses not regenerated
  // Vectorized-kernel accounting (sim::BatchKernelStats, summed over
  // units): all zero when every unit ran the scalar fallback.
  std::uint64_t simd_steps = 0;
  std::uint64_t simd_peels = 0;
  std::uint64_t simd_lanes_active = 0;

  void merge(const BatchReplayStats& other) {
    classes += other.classes;
    members += other.members;
    cache_hits += other.cache_hits;
    cache_hits_disk += other.cache_hits_disk;
    chunks_shared += other.chunks_shared;
    regen_avoided_accesses += other.regen_avoided_accesses;
    simd_steps += other.simd_steps;
    simd_peels += other.simd_peels;
    simd_lanes_active += other.simd_lanes_active;
  }
};

/// What the surrogate driver did over one sweep (all zero when
/// surrogate_enabled is false). The same numbers are emitted as
/// exec.surrogate.* telemetry and journaled as surrogate_round /
/// surrogate_summary events. A class counts as *simulated* when every one
/// of its members was simulated (admitted by the band test, or so small the
/// warmup covered it); otherwise it is *pruned* — even though the warmup
/// and fallback passes may still have sampled a few of its members.
struct SurrogateStats {
  std::size_t classes_total = 0;
  std::size_t classes_simulated = 0;
  std::size_t classes_pruned = 0;
  std::size_t points_total = 0;      ///< feasible points handed to the driver
  std::size_t points_simulated = 0;  ///< ground-truth simulations performed
  std::size_t warmup_sims = 0;       ///< per-class seeding samples
  std::size_t fallback_sims = 0;     ///< exact pass over the predicted neighborhood
  std::size_t trained_samples = 0;   ///< (point -> time) pairs the MLP saw
  std::size_t rounds = 0;            ///< scheduling rounds (training epochs batches)
  double mre = 0.0;  ///< final model mean relative error on simulated points
};

/// Batched evaluation of many design points: sim-cache hits are peeled off
/// up front, the misses are grouped into trace-equivalence classes (see
/// trace_class_key), each class generates its streams once into a shared
/// chunk store, and the members replay them in lockstep
/// (sim::simulate_system_batched). Classes are split into bounded work
/// units and scheduled on the exec thread pool; the unit layout is a pure
/// function of the point list, so results are bit-identical at any thread
/// count — and bit-identical to calling simulate_design_time per point
/// (the `batch` oracle family enforces this). Results are bulk-inserted
/// into the sim cache afterwards; duplicate points in one call are
/// simulated redundantly rather than cross-hitting mid-sweep.
std::vector<BatchSimOutcome> simulate_design_times_batched(
    const DseContext& context, const std::vector<std::vector<double>>& points,
    BatchReplayStats* stats = nullptr);

/// One member of the Pareto frontier: the grid point plus its three
/// objective coordinates (all minimized).
struct FrontierPoint {
  std::size_t flat_index = 0;        ///< row-major index into the grid space
  std::vector<double> point;         ///< the 6 axis values (DseAxisIndex order)
  double time = 0.0;                 ///< simulated time-per-work (ground truth)
  double power = 0.0;                ///< analytic PowerModel::total
  double area = 0.0;                 ///< N (A0+A1+A2) + Ac
};

/// Per-constraint accounting over one Pareto sweep.
struct ConstraintUsage {
  std::string name;
  double budget = 0.0;
  std::size_t infeasible = 0;  ///< grid points this constraint rejects
  std::size_t binding = 0;     ///< frontier points within 5% relative slack
};

struct ParetoDseResult {
  std::vector<FrontierPoint> frontier;  ///< sorted by (time, power, area, index)
  std::vector<ConstraintUsage> usage;   ///< one entry per set member, set order
  std::size_t grid_points = 0;          ///< full factorial size
  std::size_t feasible_count = 0;       ///< points passing rob>=issue + the set
  /// Feasible points actually simulated: == feasible_count for exhaustive
  /// sweeps, fewer when context.surrogate_enabled pruned classes.
  std::size_t simulations = 0;
  BatchReplayStats batch;
  SurrogateStats surrogate;  ///< all zero unless context.surrogate_enabled
};

/// Pareto-frontier DSE: filter the factorial grid by design_constraints
/// (counting per-constraint rejections), evaluate every feasible point with
/// the batched/SIMD replay engine (sim cache and trace classing unchanged),
/// attach analytic power and area to each simulated time, and keep the
/// non-dominated set under minimize-(time, power, area). Ties equal in all
/// three coordinates are all kept. The frontier is sorted by
/// (time, power, area, flat_index), so the result is bit-identical at any
/// thread count and across warm/cold caches — the `constraint` oracle
/// family and the parallel-determinism tests enforce this. Emits
/// frontier_point / constraint / pareto_summary journal events when a
/// flight recorder is active. With context.surrogate_enabled, classes
/// confidently dominated by the simulated frontier are pruned instead of
/// simulated (see c2b/aps/surrogate.h); the `surrogate` oracle family
/// checks the returned frontier stays identical to the exhaustive one.
ParetoDseResult run_pareto_dse(const DseContext& context, const GridSpace& space);

}  // namespace c2b
