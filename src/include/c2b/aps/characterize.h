#pragma once

// APS step 1 — application characterization (paper Fig. 5 "input" box and
// Fig. 6 lines 1-3).
//
// Runs the workload's trace through the cycle-level simulator twice (real
// hierarchy + perfect-memory hierarchy) and through the stack-distance
// analyzer, producing every input the analytic model needs:
//   f_mem, CPI_exe, the five C-AMAT components, overlap ratio, working set,
//   and fitted L1/L2 miss power laws. SimPoint sampling keeps this cheap
//   for long traces (the paper's role for SimPoint [26]).

#include "c2b/core/c2bound.h"
#include "c2b/sim/system/system.h"
#include "c2b/trace/reuse.h"
#include "c2b/trace/simpoint.h"
#include "c2b/trace/workloads.h"

namespace c2b {

struct CharacterizeOptions {
  std::uint64_t instructions = 400'000;  ///< trace window length
  bool use_simpoints = false;            ///< characterize representatives only
  SimPointOptions simpoint{};
  std::uint64_t seed = 1;
};

struct Characterization {
  AppProfile app;              ///< ready to feed C2BoundModel
  double measured_cpi = 0.0;   ///< with the real hierarchy
  double cpi_exe = 0.0;        ///< with perfect memory (Pollack's LHS)
  TimelineMetrics camat;       ///< detector output on the baseline config
  PowerLawFit l1_power_law;    ///< miss-curve fit from stack distances
  sim::HierarchyStats hierarchy;
  std::size_t simulated_instructions = 0;
  std::size_t simulation_runs = 0;  ///< how many simulator invocations it cost
  /// Demand memory accesses issued across every characterization run
  /// (real + perfect hierarchies); cross-checkable against the telemetry
  /// counters sim.l1.hit + sim.l1.miss.
  std::uint64_t memory_accesses = 0;
};

/// Characterize `spec` on the given baseline machine. The AppProfile's
/// f_seq and g come from the workload spec (single-threaded traces cannot
/// reveal them); everything else is measured.
Characterization characterize(const WorkloadSpec& spec, const sim::SystemConfig& baseline,
                              const CharacterizeOptions& options = {});

}  // namespace c2b
