#pragma once

// Surrogate-guided sweep pruning: fuse the paper's Fig.-12 ANN baseline
// (Ipek-style MLP, src/ann) into the DSE driver so 10^6-point spaces run
// at interactive latency. The driver
//
//   1. seeds itself with a deterministic strided *warmup* sample from every
//      trace-equivalence class and trains the MLP on (log2 design point ->
//      log time) as those batched-replay results stream in;
//   2. each scheduling round, ranks the still-unexplored classes by the
//      predicted time of their best member and *admits* the most promising
//      one — but only while that prediction falls within a relative error
//      band of the incumbent optimum (or, in Pareto mode, while some member
//      is not confidently dominated by the simulated frontier); admitted
//      members are simulated exactly and become new training data (batched
//      epochs between rounds);
//   3. when no class survives the band test, runs a guaranteed *exact
//      fallback pass*: the top predicted neighborhood of the incumbent plus
//      the predicted-best member of every pruned class are simulated for
//      real. The returned optimum is therefore always simulator ground
//      truth, never a prediction — the band and the fallback only decide
//      how much of the space pays for that proof.
//
// Every decision is a serial function of batched-replay results (which are
// bit-identical at any thread count) and a seed derived from the context,
// so a surrogate sweep is reproducible at threads {1,2,8}, warm or cold
// cache — the `surrogate` oracle family enforces that pruned and
// exhaustive sweeps select identical optima and identical Pareto frontiers
// on seeded spaces.

#include <cstdint>
#include <vector>

#include "c2b/aps/dse.h"

namespace c2b {

/// Analytic objective coordinates for Pareto-aware pruning, parallel to
/// the point list handed to surrogate_sweep: with these present a class is
/// kept alive while any member could still join the (time, power, area)
/// frontier; without them only proximity to the time optimum matters.
struct SurrogateObjectives {
  std::vector<double> power;
  std::vector<double> area;
};

/// One surrogate-guided sweep over a feasible point list. `outcomes[i]` is
/// only meaningful where `simulated[i]` is nonzero; pruned points were
/// never simulated by anyone.
struct SurrogateSweepResult {
  std::vector<BatchSimOutcome> outcomes;
  std::vector<std::uint8_t> simulated;
  SurrogateStats stats;
  BatchReplayStats batch;
};

/// Run the surrogate driver over `points` (already feasibility-filtered,
/// as produced by the run_full_dse / run_pareto_dse plan phase) using
/// context.surrogate_band / context.surrogate_warmup. Pass `pareto` to
/// prune against the simulated frontier instead of the scalar incumbent.
SurrogateSweepResult surrogate_sweep(const DseContext& context,
                                     const std::vector<std::vector<double>>& points,
                                     const SurrogateObjectives* pareto = nullptr);

}  // namespace c2b
