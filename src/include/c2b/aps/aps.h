#pragma once

// APS (Analysis Plus Simulation, paper Fig. 6) and the Fig. 12 comparison:
//
//   * full factorial — simulate every grid point (the paper's 10^6-point
//     ground truth, scaled to a traversable grid);
//   * APS — characterize, solve the C²-Bound optimization analytically,
//     snap (A0, A1, A2, N) to the grid, and simulate only the issue/ROB
//     cross at (optionally a radius-1 neighborhood of) that point;
//   * ANN — the machine-learning baseline: train an MLP on randomly sampled
//     simulations until its chosen design is as good as APS's, counting how
//     many simulations that took (the paper's 613 vs APS's 100).
//
// "Error" follows the paper's usage: the per-point relative prediction
// error of the method's performance estimate, summarized over the space
// (for APS, at its chosen design vs ground truth; for ANN, mean relative
// prediction error + chosen-design regret).

#include <cstdint>
#include <optional>
#include <vector>

#include "c2b/ann/mlp.h"
#include "c2b/aps/characterize.h"
#include "c2b/aps/dse.h"
#include "c2b/core/optimizer.h"

namespace c2b {

struct FullDseResult {
  /// Ground-truth time per flat grid index; +infinity marks designs that
  /// violate the chip's Eq. (12) area budget (never simulated by anyone) —
  /// and, under context.surrogate_enabled, feasible designs the surrogate
  /// pruned (also never simulated; best_index/best_time stay ground truth).
  std::vector<double> times;
  std::size_t best_index = 0;
  double best_time = 0.0;
  std::size_t simulations = 0;     ///< feasible designs actually simulated
  std::size_t feasible_count = 0;
  /// How the batched replay engine covered the sweep (classes, shared
  /// chunks, sim-cache peels).
  BatchReplayStats batch;
  SurrogateStats surrogate;  ///< all zero unless context.surrogate_enabled
};

/// Traverse the whole space (the brute-force baseline) — or, with
/// context.surrogate_enabled, only the classes the surrogate driver admits
/// plus its exact fallback pass (see c2b/aps/surrogate.h). A surrogate
/// result is not a ground-truth table for run_ann_dse: pruned entries are
/// +infinity, not times.
FullDseResult run_full_dse(const DseContext& context, const GridSpace& space);

struct ApsOptions {
  /// Radius (in grid steps, min 1) of the A1/A2 cache-split neighborhood
  /// that simulation refines around the analytic optimum.
  std::size_t neighborhood_radius = 1;
  CharacterizeOptions characterize{};
};

struct ApsResult {
  Characterization characterization;
  OptimalDesign analytic;             ///< continuous C²-Bound optimum
  std::size_t snapped_index = 0;      ///< analytic optimum snapped to the grid
  std::vector<std::size_t> simulated_indices;
  std::size_t best_index = 0;
  double best_time = 0.0;
  std::size_t simulations = 0;        ///< incl. characterization runs
  /// Demand memory accesses across every simulation the run performed
  /// (characterization + neighborhood). Memoized neighborhood hits replay
  /// the recorded count without re-running the simulator, so this total is
  /// cache-invariant while the sim.l1.* telemetry counters only advance on
  /// actual simulations.
  std::uint64_t memory_accesses = 0;
  /// Design-space narrowing factor: |space| / |simulated region|.
  double narrowing_factor = 0.0;
  /// How the batched replay engine covered the neighborhood sweep.
  BatchReplayStats batch;
};

/// Run the APS algorithm over the same space.
ApsResult run_aps(const DseContext& context, const GridSpace& space,
                  const ApsOptions& options = {});

/// The calibrated analytic model APS feeds its optimizer (Fig. 6 step 2):
/// detector concurrency clamped to the baseline's structural limits (MSHRs,
/// L1 ports), Pollack anchored at the baseline core, miss power laws
/// rebased from the stack-distance fit, and the stall term scaled so the
/// model's CPI reproduces the measured CPI at the baseline configuration.
/// Exposed so the differential oracles can compare this exact model — not a
/// re-derivation — against the cycle-level simulator.
C2BoundModel build_calibrated_model(const DseContext& context, const Characterization& c);

struct AnnDseOptions {
  std::size_t initial_samples = 32;
  std::size_t batch_size = 16;
  std::size_t max_samples = 4096;
  int epochs_per_round = 400;
  std::vector<std::size_t> hidden_layers{16, 16};
  std::uint64_t seed = 5;
};

struct AnnDseResult {
  std::size_t simulations = 0;   ///< training samples consumed
  std::size_t best_index = 0;    ///< ANN-predicted best design
  double best_time = 0.0;        ///< its ground-truth time
  double mean_relative_error = 0.0;  ///< prediction error over the space
  bool reached_target = false;
};

/// Grow a random training set until the ANN's chosen design performs within
/// `target_regret` of the true optimum (relative), mimicking Ipek-style
/// predictive DSE. `truth` supplies ground-truth times (from run_full_dse)
/// so no extra simulation bookkeeping is needed beyond the training draws.
AnnDseResult run_ann_dse(const GridSpace& space, const FullDseResult& truth,
                         double target_regret, const AnnDseOptions& options = {});

/// Relative regret of choosing `index` instead of the true best.
double design_regret(const FullDseResult& truth, std::size_t index);

}  // namespace c2b
