#pragma once

// Umbrella header for the telemetry subsystem: include this, then
// instrument with the macros below. Two kill levels:
//
//   * compile time — building a translation unit with -DC2B_OBS_DISABLED
//     turns every macro into nothing (no atomics, no branch, no statics);
//   * run time — obs::set_enabled(false) leaves exactly one predicted
//     branch per macro on the hot path.
//
// Metric names are dot-separated ("sim.l1.hit"); span names are
// slash-separated paths ("aps/characterize"). Both must be string
// literals: the registry copies names once at registration, but the trace
// ring stores the pointer.

#include "c2b/obs/registry.h"
#include "c2b/obs/trace.h"

#if defined(C2B_OBS_DISABLED)

#define C2B_OBS_ACTIVE() (false)
#define C2B_COUNTER_ADD(name, n) ((void)0)
#define C2B_COUNTER_INC(name) ((void)0)
#define C2B_GAUGE_SET(name, value) ((void)0)
#define C2B_HISTOGRAM_RECORD(name, lo, hi, bins, value) ((void)0)
#define C2B_SPAN(name) ((void)0)
#define C2B_SPAN_ARG(name, arg) ((void)0)

#else

/// True when telemetry is compiled in and enabled at run time; use to gate
/// instrumentation-only computation (e.g. deriving the value to record).
#define C2B_OBS_ACTIVE() (::c2b::obs::enabled())

#define C2B_COUNTER_ADD(name, n)                                              \
  do {                                                                        \
    if (C2B_OBS_ACTIVE()) {                                                   \
      static ::c2b::obs::Counter& c2b_obs_slot =                              \
          ::c2b::obs::Registry::global().counter(name);                       \
      c2b_obs_slot.add(n);                                                    \
    }                                                                         \
  } while (0)

#define C2B_COUNTER_INC(name) C2B_COUNTER_ADD(name, 1)

#define C2B_GAUGE_SET(name, value)                                            \
  do {                                                                        \
    if (C2B_OBS_ACTIVE()) {                                                   \
      static ::c2b::obs::Gauge& c2b_obs_slot =                                \
          ::c2b::obs::Registry::global().gauge(name);                         \
      c2b_obs_slot.set(value);                                                \
    }                                                                         \
  } while (0)

#define C2B_HISTOGRAM_RECORD(name, lo, hi, bins, value)                       \
  do {                                                                        \
    if (C2B_OBS_ACTIVE()) {                                                   \
      static ::c2b::obs::ConcurrentHistogram& c2b_obs_slot =                  \
          ::c2b::obs::Registry::global().histogram(name, lo, hi, bins);       \
      c2b_obs_slot.record(value);                                             \
    }                                                                         \
  } while (0)

#define C2B_OBS_CONCAT_(a, b) a##b
#define C2B_OBS_CONCAT(a, b) C2B_OBS_CONCAT_(a, b)

/// Scoped span: times from this statement to the end of the enclosing
/// scope and records one Chrome "X" event.
#define C2B_SPAN(name) ::c2b::obs::Span C2B_OBS_CONCAT(c2b_obs_span_, __LINE__)(name)
/// Span with a numeric payload (exported as args.v in the trace).
#define C2B_SPAN_ARG(name, arg) \
  ::c2b::obs::Span C2B_OBS_CONCAT(c2b_obs_span_, __LINE__)(name, (arg))

#endif  // C2B_OBS_DISABLED
