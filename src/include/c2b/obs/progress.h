#pragma once

// Live progress/ETA for long sweeps. A ProgressMeter accumulates completed
// work weight (trace-class member counts, so cache peels and simulated
// classes advance the same scale), renders a single rate-limited `\r`
// status line on stderr, and attributes wall clock to the current phase so
// the CLI can print a per-phase breakdown at end of run.
//
// Like the run journal, recording is wired through an active-meter pointer
// that sweep code checks before touching the meter; under
// -DC2B_OBS_DISABLED the accessor is a constant nullptr and every call
// site folds away.

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace c2b::obs {

class ProgressMeter {
 public:
  struct Options {
    std::uint64_t interval_ms = 500;  ///< min ms between status-line redraws
    std::FILE* out = nullptr;         ///< status-line sink; nullptr = stderr
  };

  explicit ProgressMeter(Options options);
  ProgressMeter();
  ~ProgressMeter();  ///< calls finish()
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Grow the expected total work weight (call before or during a sweep;
  /// totals are additive so multi-stage runs can extend the bar).
  void add_total(double weight);

  /// Record completed work weight; redraws the status line when the
  /// redraw interval elapsed.
  void advance(double weight);

  /// Phase attribution: nested begin/end pairs; wall clock accrues to the
  /// innermost open phase only (exclusive/self time).
  void begin_phase(const char* name);
  void end_phase(const char* name);

  struct PhaseTime {
    std::string name;
    double wall_ms = 0.0;  ///< exclusive (self) wall time
  };
  /// Phases in first-begin order; open phases include time up to now.
  std::vector<PhaseTime> phase_attribution() const;

  double completed() const;
  double total() const;

  /// Erase the live status line (idempotent; destructor calls it).
  void finish();

  /// Multi-line end-of-run text: per-phase wall-clock attribution plus
  /// overall throughput.
  std::string summary() const;

 private:
  void render_locked(std::uint64_t now_ns);
  void accrue_locked(std::uint64_t now_ns);

  mutable std::mutex mutex_;
  Options options_;
  std::FILE* out_;
  std::uint64_t epoch_ns_;
  std::uint64_t first_advance_ns_ = 0;
  std::uint64_t last_render_ns_ = 0;
  std::size_t last_line_size_ = 0;
  bool rendered_ = false;
  double total_ = 0.0;
  double completed_ = 0.0;
  std::vector<PhaseTime> phases_;     ///< first-begin order
  std::vector<std::size_t> stack_;    ///< open phases, indices into phases_
  std::uint64_t segment_start_ns_;    ///< start of the innermost open segment
};

#if defined(C2B_OBS_DISABLED)
// Internal linkage for the same reason as active_journal(): a disabled TU
// must fold the accessor to nullptr, never bind the library symbol.
static constexpr ProgressMeter* active_progress() noexcept { return nullptr; }
static inline void set_active_progress(ProgressMeter*) noexcept {}
#else
ProgressMeter* active_progress() noexcept;
void set_active_progress(ProgressMeter* meter) noexcept;
#endif

}  // namespace c2b::obs
