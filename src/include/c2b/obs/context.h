#pragma once

// The per-thread observation context: which journal and progress meter the
// current thread records into. active_journal() / active_progress() are
// thread-local so concurrent jobs (c2b serve) can each stream their own
// flight record; the thread pool captures the submitting thread's context
// per batch and installs it around every chunk it runs, so sweep
// instrumentation follows the job across worker threads.
//
// Under -DC2B_OBS_DISABLED the accessors are constant nullptrs and
// everything here folds away.

#include "c2b/obs/journal.h"
#include "c2b/obs/progress.h"

namespace c2b::obs {

struct ObsContext {
  RunJournal* journal = nullptr;
  ProgressMeter* progress = nullptr;
};

/// The calling thread's active journal/progress pointers.
inline ObsContext capture_context() noexcept {
  return ObsContext{active_journal(), active_progress()};
}

/// Installs `context` on the calling thread and returns what was installed
/// before, so callers can restore it.
inline ObsContext install_context(const ObsContext& context) noexcept {
  const ObsContext previous = capture_context();
  set_active_journal(context.journal);
  set_active_progress(context.progress);
  return previous;
}

/// RAII install/restore, for wrapping a chunk or a job body.
class ScopedObsContext {
 public:
  explicit ScopedObsContext(const ObsContext& context) : previous_(install_context(context)) {}
  ~ScopedObsContext() { install_context(previous_); }
  ScopedObsContext(const ScopedObsContext&) = delete;
  ScopedObsContext& operator=(const ScopedObsContext&) = delete;

 private:
  ObsContext previous_;
};

}  // namespace c2b::obs
