#pragma once

// Flat exports of the metric registry: a c2b::Table (console/CSV via the
// existing table infrastructure) and a JSON document mirroring the same
// snapshot with per-bucket histogram detail. Kept out of obs.h so hot-path
// translation units do not pull in the table machinery.

#include <string>

#include "c2b/common/table.h"
#include "c2b/obs/registry.h"

namespace c2b::obs {

/// One row per metric: name, kind, count, value (counter value / gauge
/// value / histogram sum), mean, stddev, min, max.
Table metrics_table(const Registry& registry = Registry::global());

/// metrics_table() as CSV on disk. Returns false (and logs) on I/O failure.
bool write_metrics_csv(const std::string& path, const Registry& registry = Registry::global());

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// mean, stddev, min, max, buckets: [{low, count}, ...]}}}
std::string metrics_json(const Registry& registry = Registry::global());

/// metrics_json() on disk (.json), creating parent directories. Returns
/// false (and logs) on I/O failure.
bool write_metrics_json(const std::string& path, const Registry& registry = Registry::global());

}  // namespace c2b::obs
