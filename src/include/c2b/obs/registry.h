#pragma once

// Process-wide telemetry registry: named counters, gauges, and fixed-bucket
// histograms. The hot path is lock-free (relaxed std::atomic updates on
// cache-line-padded slots); registration takes a mutex once per call site
// (the C2B_* macros cache the returned reference in a function-local
// static). Export walks the registry under the same mutex and aggregates
// histogram moments RunningStats-style (count/sum/sum-of-squares/min/max),
// so a snapshot is cheap and never perturbs concurrent writers.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace c2b::obs {

/// Global runtime switch. When false every C2B_* macro reduces to this one
/// branch; when the build defines C2B_OBS_DISABLED the macros vanish
/// entirely and this function is never consulted.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<double> value_{0.0};
};

/// Fixed-width histogram over [lo, hi) with atomically updated buckets and
/// running moments; out-of-range samples clamp to the edge buckets (same
/// semantics as c2b::Histogram). record() is wait-free on every field
/// except min/max, which use a bounded CAS loop.
class ConcurrentHistogram {
 public:
  ConcurrentHistogram(double lo, double hi, std::size_t bins);

  void record(double x, std::uint64_t weight = 1) noexcept;

  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_low(std::size_t bin) const noexcept;
  std::uint64_t bin_count(std::size_t bin) const noexcept;
  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept;
  /// Population standard deviation from the running moments.
  double stddev() const noexcept;
  double min() const noexcept;  ///< 0 when empty
  double max() const noexcept;  ///< 0 when empty

  /// Quantile estimate (q in [0, 1]) from the bucket counts: walk the
  /// cumulative distribution to the target rank and interpolate linearly
  /// inside the bucket, clamping to the observed [min, max] so edge-bucket
  /// clamping cannot push the estimate outside the recorded range. Exact
  /// when every sample in the target bucket is uniformly spread; error is
  /// bounded by one bucket width otherwise. 0 when empty.
  double percentile(double q) const noexcept;

  void reset() noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  alignas(64) std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> sum_squares_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// One exported metric (flattened for table/JSON writers).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::uint64_t count = 0;  ///< counter value or histogram sample count
  double value = 0.0;       ///< gauge value or histogram sum
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;  ///< histogram percentile estimates, 0 for other kinds
  double p90 = 0.0;
  double p99 = 0.0;
  /// Histogram buckets as (lower edge, count); empty for counters/gauges.
  std::vector<std::pair<double, std::uint64_t>> buckets;
};

class Registry {
 public:
  /// The process-wide registry used by the C2B_* macros.
  static Registry& global();

  /// Find-or-create. Returned references stay valid for the registry's
  /// lifetime (slots are heap-allocated; the map only grows).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// The (lo, hi, bins) shape is fixed by the first registration of `name`;
  /// later mismatched shapes get the existing histogram (first wins).
  ConcurrentHistogram& histogram(std::string_view name, double lo, double hi, std::size_t bins);

  /// Flattened snapshot of everything, sorted by name within each kind.
  std::vector<MetricSample> snapshot() const;

  /// Zero every metric (the names stay registered). For tests and for
  /// separating phases inside one process.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<ConcurrentHistogram>, std::less<>> histograms_;
};

}  // namespace c2b::obs
