#pragma once

// Scoped-timer spans recorded into per-thread ring buffers, exportable as
// Chrome trace-event JSON ("X" complete events) loadable in
// chrome://tracing or Perfetto. Span names must be string literals (or
// otherwise outlive the process) — the buffers store the pointer, never a
// copy, so the record path is two clock reads and a ring-slot store.
//
// A runtime sampling knob (set_span_sample_period) records only every Nth
// span per thread when tracing cost matters more than completeness.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace c2b::obs {

struct TraceEvent {
  const char* name = nullptr;     ///< static string (not owned)
  std::uint64_t start_ns = 0;     ///< since process trace epoch
  std::uint64_t duration_ns = 0;
  std::uint32_t thread_id = 0;    ///< small sequential id, stable per thread
  std::uint32_t depth = 0;        ///< span nesting depth at entry (0 = top)
  std::uint64_t arg = 0;          ///< optional numeric payload
  bool has_arg = false;
};

/// Record every Nth span per thread (1 = record all, 0 behaves as 1).
void set_span_sample_period(std::uint32_t period) noexcept;
std::uint32_t span_sample_period() noexcept;

/// Ring capacity (events per thread) for buffers created after the call.
void set_trace_buffer_capacity(std::size_t events) noexcept;

/// All recorded events from every thread, sorted by start time. Spans still
/// open are not included (an event exists only once its scope closes).
std::vector<TraceEvent> collect_trace_events();

/// Events dropped to ring wrap-around across all threads.
std::uint64_t dropped_trace_events() noexcept;

/// Discard every recorded event (buffers stay allocated).
void clear_trace_events();

/// Chrome trace-event JSON (the {"traceEvents": [...]} object form).
std::string chrome_trace_json();

/// Write chrome_trace_json() to `path`, creating parent directories.
/// Returns false (and logs) on I/O failure rather than throwing.
bool write_chrome_trace(const std::string& path);

namespace detail {

/// Begin a span: returns the start timestamp and bumps the thread's depth.
/// Returns 0 when this span is sampled out (end_span must still be called
/// with the returned token).
std::uint64_t begin_span() noexcept;
void end_span(const char* name, std::uint64_t token, std::uint64_t arg, bool has_arg) noexcept;

}  // namespace detail

/// RAII span. Use through C2B_SPAN / C2B_SPAN_ARG so disabled builds
/// compile it out entirely.
class Span {
 public:
  explicit Span(const char* name) noexcept : name_(name), token_(detail::begin_span()) {}
  Span(const char* name, std::uint64_t arg) noexcept
      : name_(name), arg_(arg), has_arg_(true), token_(detail::begin_span()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { detail::end_span(name_, token_, arg_, has_arg_); }

 private:
  const char* name_;
  std::uint64_t arg_ = 0;
  bool has_arg_ = false;
  std::uint64_t token_;
};

}  // namespace c2b::obs
