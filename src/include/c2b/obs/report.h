#pragma once

// Post-mortem over a run journal: `c2b report` replays the JSONL event
// stream written by RunJournal and aggregates it into a RunReport — phase
// time breakdown, cache/batch effectiveness, slowest trace classes,
// per-class sim-time percentiles, and an objective heatmap over the
// explored (n_cores × cache split) plane. The builder is generic over
// JournalRecord fields (it depends only on obs, not on aps), so journals
// from future producers replay with the same tool.

#include <cstddef>
#include <string>
#include <vector>

#include "c2b/obs/journal.h"

namespace c2b::obs {

struct RunReport {
  // --- run header (from `run_begin` / `run_end`) ---
  std::string command;
  std::string workload;
  std::string workload_uid;
  double threads = 0.0;
  double total_wall_ms = 0.0;     ///< run_end wall, else last event ts
  bool saw_run_end = false;       ///< false = journal ends mid-run (crash?)

  // --- phase breakdown (from `phase_end`, first-seen order) ---
  struct Phase {
    std::string name;
    double wall_ms = 0.0;
    std::size_t count = 0;  ///< phase_end events folded into this row
  };
  std::vector<Phase> phases;

  // --- trace classes (from `class_completed`, sorted by wall desc) ---
  struct ClassStat {
    double cores = 0.0;
    double members = 0.0;
    double wall_ms = 0.0;
    std::string config;  ///< producer-provided summary of one member config
  };
  std::vector<ClassStat> classes;
  double class_wall_p50 = 0.0;
  double class_wall_p90 = 0.0;
  double class_wall_p99 = 0.0;
  double simulated_members = 0.0;  ///< sum of members over completed classes
  double simulated_wall_ms = 0.0;  ///< sum of class wall times

  // --- cache/batch effectiveness (from `cache_peel` / `run_end`) ---
  double points = 0.0;             ///< design points entering the sweep
  double cache_hits = 0.0;         ///< points peeled by the sim cache (any tier)
  double cache_hits_disk = 0.0;    ///< the subset served by the disk tier
  double chunks_shared = 0.0;
  double regen_avoided_accesses = 0.0;
  double est_saved_ms = 0.0;       ///< cache_hits × mean per-member sim wall
  double est_saved_mem_ms = 0.0;   ///< attribution: memory-tier hits' share
  double est_saved_disk_ms = 0.0;  ///< attribution: disk-tier hits' share
  double batch_speedup = 1.0;      ///< (sim wall + est saved) / sim wall

  // --- two-tier sim cache (from the end-of-sweep `cache_tiers` snapshot;
  // counters are process-wide, last snapshot wins) ---
  bool cache_tiers_seen = false;
  bool disk_attached = false;
  double mem_hits = 0.0;
  double mem_misses = 0.0;        ///< missed every attached tier
  double mem_entries = 0.0;
  double evictions = 0.0;
  double disk_hits = 0.0;
  double disk_misses = 0.0;
  double disk_entries = 0.0;
  double disk_flushes = 0.0;
  double disk_drops = 0.0;        ///< corrupt/stale/overflowed records skipped
  // Vectorized-kernel accounting (exec.batch.simd.*); all zero when every
  // unit ran the scalar lockstep fallback.
  double simd_steps = 0.0;
  double simd_peels = 0.0;
  double simd_lanes_active = 0.0;

  // --- explored space (from `point`) ---
  struct PointSample {
    double n_cores = 0.0;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0;
    double objective = 0.0;
    bool cached = false;
  };
  std::vector<PointSample> explored;

  // --- Pareto frontier (from `frontier_point` / `constraint` /
  // `pareto_summary`, emitted by the Pareto DSE mode) ---
  struct FrontierSample {
    double n_cores = 0.0;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0;
    double time = 0.0;
    double power = 0.0;
    double area = 0.0;
  };
  std::vector<FrontierSample> frontier;
  struct ConstraintStat {
    std::string name;
    double budget = 0.0;
    double infeasible = 0.0;  ///< grid points the constraint rejected
    double binding = 0.0;     ///< frontier points within 5% of the budget
  };
  std::vector<ConstraintStat> constraints;
  double pareto_feasible = 0.0;
  double pareto_grid_points = 0.0;

  // --- surrogate pruning (from `surrogate_round` / `surrogate_summary`,
  // emitted by the surrogate-guided sweep driver) ---
  struct SurrogateRound {
    double round = 0.0;
    double class_n = 0.0;          ///< core count of the admitted class
    double class_members = 0.0;    ///< members simulated by the admission
    double predicted_best = 0.0;   ///< model's best guess that triggered it
    double incumbent = 0.0;        ///< best ground-truth time before the round
    double trained_samples = 0.0;
  };
  std::vector<SurrogateRound> surrogate_rounds;
  bool surrogate_seen = false;  ///< a surrogate_summary event was journaled
  double surrogate_classes_total = 0.0;
  double surrogate_classes_simulated = 0.0;
  double surrogate_classes_pruned = 0.0;
  double surrogate_points_total = 0.0;
  double surrogate_points_simulated = 0.0;
  double surrogate_warmup_sims = 0.0;
  double surrogate_fallback_sims = 0.0;
  double surrogate_trained_samples = 0.0;
  double surrogate_rounds_total = 0.0;
  double surrogate_mre = 0.0;

  JournalReadStats read_stats;
};

/// Exact quantile (linear interpolation) of an unsorted sample; the
/// reference implementation histogram percentiles are tested against.
double exact_quantile(std::vector<double> values, double q);

RunReport build_report(const std::vector<JournalRecord>& records,
                       JournalReadStats stats = {});

/// Human-readable post-mortem (top_k bounds the slowest-class table).
std::string render_report(const RunReport& report, std::size_t top_k = 10);

/// CSV heatmap: rows = n_cores, columns = (a1,a2) cache splits, cell =
/// min objective over every other axis. Empty string when no points.
std::string heatmap_csv(const RunReport& report);

}  // namespace c2b::obs
