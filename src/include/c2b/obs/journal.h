#pragma once

// Sweep flight recorder: an append-only structured run journal. DSE/APS/
// check runs emit typed events (run begin/end, phase transitions, trace
// classes scheduled/completed, sim-cache peels, solver convergence,
// periodic metric snapshots) into a JSONL file — one self-contained JSON
// object per line — that `c2b report` replays into a post-mortem and the
// future `c2b serve` daemon can stream to clients.
//
// Writer contract:
//   * crash-safe: events are buffered in bounded memory and flushed to the
//     file (with fflush) once the buffer fills, so a crash loses at most
//     the buffered tail plus possibly one torn final line — which the
//     reader tolerates (read_journal skips unparsable lines and counts
//     them, mirroring dropped_trace_events());
//   * bounded: the in-memory buffer never exceeds Options::buffer_events;
//     events that cannot be persisted (I/O failure) are dropped and
//     counted by dropped_events(), never queued without bound;
//   * thread-safe: pool workers emit concurrently; lines are serialized
//     under one mutex, so each line is complete and events from one thread
//     stay in emission order.
//
// Recording is wired through active_journal(): sweep code checks the
// pointer and emits only when a run installed a journal (the `c2b
// --journal-out` flag). Under -DC2B_OBS_DISABLED the accessor is a
// constant nullptr, so every emission site folds away at compile time,
// exactly like the C2B_* metric macros. The reader/report half of the API
// is plain library code and stays available in disabled builds.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace c2b::obs {

/// One event under construction: `JournalEvent("class_completed")
/// .count("cores", 4).num("wall_ms", 12.5)`. The journal stamps the type
/// and a monotonic `ts_ms` (milliseconds since the journal opened) when
/// the event is emitted. Keys must be plain identifiers (no escaping);
/// string values are JSON-escaped.
class JournalEvent {
 public:
  explicit JournalEvent(std::string_view type) : type_(type) {}

  JournalEvent& str(std::string_view key, std::string_view value);
  JournalEvent& num(std::string_view key, double value);
  JournalEvent& count(std::string_view key, std::uint64_t value);

  const std::string& type() const noexcept { return type_; }
  const std::string& fields() const noexcept { return fields_; }

 private:
  std::string type_;
  std::string fields_;  ///< ",\"key\":value" fragments, ready to splice
};

class RunJournal {
 public:
  struct Options {
    /// Max buffered (unflushed) lines; emit() flushes when the buffer
    /// fills, so this bounds both memory and the crash-loss window.
    std::size_t buffer_events = 64;
    /// Min interval between `metrics` snapshot events (0 = every call).
    std::uint64_t metrics_interval_ms = 1000;
  };

  /// Open `path` for appending a fresh journal (truncates; parent
  /// directories are created). Returns nullptr (and logs) on failure.
  static std::unique_ptr<RunJournal> open(const std::string& path, Options options);
  static std::unique_ptr<RunJournal> open(const std::string& path);

  ~RunJournal();  ///< flushes and closes
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Append one event (thread-safe). Stamps ts_ms at call time.
  void emit(const JournalEvent& event);

  /// Emit a `metrics` event carrying every counter and gauge of the global
  /// registry as flat fields — rate-limited to Options::metrics_interval_ms
  /// unless `force`, so instrumentation sites can call it unconditionally.
  void snapshot_metrics(bool force = false);

  /// Write buffered lines to the file and fflush.
  void flush();

  std::uint64_t written_events() const noexcept;
  std::uint64_t dropped_events() const noexcept;
  double elapsed_ms() const;
  const std::string& path() const noexcept;

 private:
  RunJournal();
  struct Impl;
  Impl* impl_;
};

/// The journal the current *thread* records into, or nullptr when not
/// recording. Thread-local so concurrent jobs can each stream their own
/// record; ThreadPool::parallel_for captures the submitting thread's
/// context and installs it around every chunk (see obs/context.h), so a
/// journal installed before a sweep follows the sweep across workers.
/// Compiled-out builds see a constant nullptr so emission sites vanish
/// entirely.
#if defined(C2B_OBS_DISABLED)
// `static` (internal linkage) so these can never bind to the library's
// real symbols — each disabled TU sees a constant nullptr the optimizer
// folds, making every `if (auto* j = active_journal())` site vanish.
static constexpr RunJournal* active_journal() noexcept { return nullptr; }
static inline void set_active_journal(RunJournal*) noexcept {}
#else
RunJournal* active_journal() noexcept;
void set_active_journal(RunJournal* journal) noexcept;
#endif

/// RAII phase marker: emits `phase_begin`/`phase_end` (with wall_ms) into
/// the active journal and attributes wall clock to the active progress
/// meter. Cheap no-op when neither is installed.
class PhaseScope {
 public:
  explicit PhaseScope(const char* name);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;  ///< 0 = nothing active, destructor no-ops
};

// ---------------------------------------------------------------------------
// Reader

/// One parsed journal line. Values keep their JSON kind: quoted values in
/// `strings`, numeric values in `numbers` (`type` and `ts_ms` lifted out).
struct JournalRecord {
  std::string type;
  double ts_ms = 0.0;
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;

  bool has(const std::string& key) const;
  double num(const std::string& key, double fallback = 0.0) const;
  std::string str(const std::string& key, const std::string& fallback = {}) const;
};

struct JournalReadStats {
  std::size_t lines = 0;    ///< non-empty lines seen
  std::size_t parsed = 0;   ///< well-formed events
  std::size_t skipped = 0;  ///< torn/corrupt lines tolerated and dropped
};

/// Parse a journal file. Unparsable lines (e.g. a torn final line after a
/// crash) are skipped and counted, never fatal; a missing file returns an
/// empty vector with zero lines.
std::vector<JournalRecord> read_journal(const std::string& path,
                                        JournalReadStats* stats = nullptr);

/// Parse one JSONL line into `out`; false when malformed (torn/corrupt).
bool parse_journal_line(std::string_view line, JournalRecord& out);

// ---------------------------------------------------------------------------
// Drop counters

/// Every event-drop counter in the process, surfaced uniformly so the CLI
/// can warn once at end of run: the span-ring wrap counter and — when a
/// journal is given — its I/O drop counter.
struct DropCounter {
  std::string name;
  std::uint64_t dropped = 0;
};
std::vector<DropCounter> drop_counters(const RunJournal* journal = nullptr);

}  // namespace c2b::obs
