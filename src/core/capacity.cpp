#include "c2b/core/capacity.h"

#include <cmath>

#include "c2b/common/assert.h"

namespace c2b {

double capacity_bounded_problem_size(const WorkingSetFn& working_set, double on_chip_lines,
                                     double z_lo, double z_hi, double tolerance) {
  C2B_REQUIRE(static_cast<bool>(working_set), "working-set function required");
  C2B_REQUIRE(on_chip_lines > 0.0, "on-chip capacity must be positive");
  C2B_REQUIRE(z_hi > z_lo && z_lo > 0.0, "need a valid problem-size bracket");

  if (working_set(z_lo) > on_chip_lines) return z_lo;    // nothing fits
  if (working_set(z_hi) <= on_chip_lines) return z_hi;   // everything fits

  double lo = z_lo, hi = z_hi;  // invariant: Y(lo) <= X < Y(hi)
  while (hi - lo > tolerance * std::max(1.0, lo)) {
    const double mid = 0.5 * (lo + hi);
    if (working_set(mid) <= on_chip_lines) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

BoundRegime classify_problem(double real_problem_size, double capacity_bounded_size) {
  C2B_REQUIRE(real_problem_size > 0.0, "problem size must be positive");
  return real_problem_size <= capacity_bounded_size ? BoundRegime::kProcessorBound
                                                    : BoundRegime::kMemoryBound;
}

BoundRegime classify_workload(const WorkingSetFn& working_set, double on_chip_lines,
                              double real_problem_size) {
  const double bound =
      capacity_bounded_problem_size(working_set, on_chip_lines, 1.0,
                                    std::max(2.0, real_problem_size * 4.0));
  return classify_problem(real_problem_size, bound);
}

}  // namespace c2b
