#include "c2b/core/c2bound.h"

#include <cmath>

#include "c2b/common/assert.h"
#include "c2b/laws/speedup.h"

namespace c2b {

void AppProfile::validate() const {
  C2B_REQUIRE(ic0 > 0.0, "IC0 must be positive");
  C2B_REQUIRE(f_mem >= 0.0 && f_mem <= 1.0, "f_mem in [0,1]");
  C2B_REQUIRE(f_seq >= 0.0 && f_seq <= 1.0, "f_seq in [0,1]");
  C2B_REQUIRE(overlap_ratio >= 0.0 && overlap_ratio <= 1.0, "overlap ratio in [0,1]");
  C2B_REQUIRE(working_set_lines0 > 0.0, "working set must be positive");
  C2B_REQUIRE(hit_concurrency >= 1.0, "C_H >= 1");
  C2B_REQUIRE(miss_concurrency >= 1.0, "C_M >= 1");
  C2B_REQUIRE(pure_miss_fraction >= 0.0 && pure_miss_fraction <= 1.0, "pMR/MR in [0,1]");
  C2B_REQUIRE(pure_penalty_fraction >= 0.0 && pure_penalty_fraction <= 1.5,
              "pAMP/AMP in [0,1.5]");
  C2B_REQUIRE(stall_scale > 0.0, "stall calibration factor must be positive");
}

void MachineProfile::validate() const {
  C2B_REQUIRE(l1_hit_time > 0.0, "L1 hit time must be positive");
  C2B_REQUIRE(l2_latency > 0.0, "L2 latency must be positive");
  C2B_REQUIRE(memory_latency > l2_latency, "DRAM must be slower than L2");
  C2B_REQUIRE(cycle_time > 0.0, "cycle time must be positive");
  chip.validate();
}

C2BoundModel::C2BoundModel(AppProfile app, MachineProfile machine)
    : app_(std::move(app)), machine_(std::move(machine)) {
  app_.validate();
  machine_.validate();
}

double C2BoundModel::per_core_working_set(double n) const {
  C2B_REQUIRE(n >= 1.0, "core count must be >= 1");
  return app_.working_set_lines0 * app_.g.memory_scale(n) / n;
}

double C2BoundModel::contention_multiplier(double n, double mr1, double mr2_local) const {
  return 1.0 + machine_.memory_contention * (n - 1.0) * app_.f_mem * mr1 * mr2_local;
}

CamatParams C2BoundModel::camat_at(const DesignPoint& d) const {
  const double ws = per_core_working_set(d.n_cores);
  const double c1 = machine_.chip.l1_capacity_lines(d.a1);
  const double c2 = machine_.chip.l2_capacity_lines(d.a2);

  const double mr1 = machine_.l1_miss.miss_rate(c1, ws);
  const double mr2_local = machine_.l2_miss.miss_rate(c2, ws);
  const double amp = machine_.l2_latency +
                     mr2_local * machine_.memory_latency *
                         contention_multiplier(d.n_cores, mr1, mr2_local);

  CamatParams p;
  p.hit_time = machine_.l1_hit_time;
  p.hit_concurrency = app_.hit_concurrency;
  p.pure_miss_rate = app_.pure_miss_fraction * mr1;
  p.pure_miss_penalty = app_.pure_penalty_fraction * amp;
  p.miss_concurrency = app_.miss_concurrency;
  return p;
}

Evaluation C2BoundModel::evaluate(const DesignPoint& d) const {
  C2B_REQUIRE(d.n_cores >= 1.0, "core count must be >= 1");
  C2B_REQUIRE(d.a0 > 0.0 && d.a1 > 0.0 && d.a2 > 0.0, "areas must be positive");

  Evaluation e;
  e.design = d;
  e.cpi_exe = machine_.pollack.cpi_exe(d.a0);

  const double ws = per_core_working_set(d.n_cores);
  const double c1 = machine_.chip.l1_capacity_lines(d.a1);
  const double c2 = machine_.chip.l2_capacity_lines(d.a2);
  e.l1_miss_rate = machine_.l1_miss.miss_rate(c1, ws);
  e.l2_local_miss_rate = machine_.l2_miss.miss_rate(c2, ws);

  const double amp =
      machine_.l2_latency +
      e.l2_local_miss_rate * machine_.memory_latency *
          contention_multiplier(d.n_cores, e.l1_miss_rate, e.l2_local_miss_rate);
  e.amat_params = {.hit_time = machine_.l1_hit_time, .miss_rate = e.l1_miss_rate,
                   .miss_penalty = amp};
  e.amat = amat(e.amat_params);
  e.camat_params = camat_at(d);
  e.camat = camat(e.camat_params);
  e.concurrency_c = e.camat > 0.0 ? e.amat / e.camat : 1.0;

  e.stall_per_instruction =
      app_.stall_scale * data_stall_camat(app_.f_mem, e.camat, app_.overlap_ratio);

  const double g_n = app_.g(d.n_cores);
  const double time_factor = app_.f_seq + g_n * (1.0 - app_.f_seq) / d.n_cores;
  e.execution_time = app_.ic0 * (e.cpi_exe + e.stall_per_instruction) * time_factor *
                     machine_.cycle_time;
  e.problem_size = g_n * app_.ic0;
  e.throughput = e.problem_size / e.execution_time;
  e.speedup_vs_serial = sunni_speedup(app_.f_seq, g_n, d.n_cores);
  return e;
}

double C2BoundModel::generalized_objective(const DesignPoint& d, int stages) const {
  C2B_REQUIRE(stages >= 1, "need at least one stage");
  // Work is split into stages of increasing parallel degree i = 1..stages:
  // stage 1 carries the sequential fraction, the remaining work is spread
  // uniformly across stages 2..stages. J_D = sum_i g(i) * T_i / i where T_i
  // is stage i's sequential execution time. With stages == 2 and full
  // weight on the last stage this telescopes back to Eq. (8).
  const Evaluation base = evaluate(d);
  const double per_instruction = (base.cpi_exe + base.stall_per_instruction) *
                                 machine_.cycle_time;
  double objective = app_.f_seq * app_.ic0 * per_instruction;  // i = 1, g(1) = 1
  if (stages == 1) return objective;
  const double parallel_share = (1.0 - app_.f_seq) / static_cast<double>(stages - 1);
  for (int i = 2; i <= stages; ++i) {
    const double t_i = parallel_share * app_.ic0 * per_instruction;
    objective += app_.g(static_cast<double>(i)) * t_i / static_cast<double>(i);
  }
  return objective;
}

}  // namespace c2b
