#include "c2b/core/sensitivity.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "c2b/common/assert.h"

namespace c2b {
namespace {

/// Central-difference elasticity of T with respect to one knob, where the
/// knob is applied by `apply(profiles, multiplier)` returning a fresh model.
double elasticity_of(const std::function<double(double)>& time_at_multiplier,
                     double rel_step) {
  const double up = time_at_multiplier(1.0 + rel_step);
  const double down = time_at_multiplier(1.0 - rel_step);
  C2B_ASSERT(up > 0.0 && down > 0.0, "perturbed time must stay positive");
  return (std::log(up) - std::log(down)) / (std::log(1.0 + rel_step) - std::log(1.0 - rel_step));
}

}  // namespace

std::vector<Elasticity> time_elasticities(const C2BoundModel& model, const DesignPoint& d,
                                          double rel_step) {
  C2B_REQUIRE(rel_step > 0.0 && rel_step < 0.5, "relative step in (0, 0.5)");
  const AppProfile& app = model.app();
  const MachineProfile& machine = model.machine();

  std::vector<Elasticity> out;
  auto add = [&](const std::string& name, double current,
                 const std::function<double(double)>& time_fn) {
    out.push_back({name, current, elasticity_of(time_fn, rel_step)});
  };

  // --- Design-point knobs (no model rebuild needed) ---
  add("A0 (core area)", d.a0, [&](double m) {
    DesignPoint p = d;
    p.a0 *= m;
    return model.evaluate(p).execution_time;
  });
  add("A1 (L1 area)", d.a1, [&](double m) {
    DesignPoint p = d;
    p.a1 *= m;
    return model.evaluate(p).execution_time;
  });
  add("A2 (L2 area)", d.a2, [&](double m) {
    DesignPoint p = d;
    p.a2 *= m;
    return model.evaluate(p).execution_time;
  });
  add("N (cores)", d.n_cores, [&](double m) {
    DesignPoint p = d;
    p.n_cores = std::max(1.0, p.n_cores * m);
    return model.evaluate(p).execution_time;
  });

  // --- Application knobs (rebuild with a perturbed profile) ---
  auto app_knob = [&](const std::string& name, double current,
                      const std::function<void(AppProfile&, double)>& mutate) {
    add(name, current, [&, mutate](double m) {
      AppProfile perturbed = app;
      mutate(perturbed, m);
      return C2BoundModel(perturbed, machine).evaluate(d).execution_time;
    });
  };
  app_knob("f_mem", app.f_mem,
           [](AppProfile& a, double m) { a.f_mem = std::min(1.0, a.f_mem * m); });
  app_knob("f_seq", app.f_seq,
           [](AppProfile& a, double m) { a.f_seq = std::min(1.0, a.f_seq * m); });
  app_knob("C_H (hit concurrency)", app.hit_concurrency,
           [](AppProfile& a, double m) { a.hit_concurrency = std::max(1.0, a.hit_concurrency * m); });
  app_knob("C_M (miss concurrency)", app.miss_concurrency, [](AppProfile& a, double m) {
    a.miss_concurrency = std::max(1.0, a.miss_concurrency * m);
  });
  app_knob("working set", app.working_set_lines0,
           [](AppProfile& a, double m) { a.working_set_lines0 *= m; });
  app_knob("overlap ratio", app.overlap_ratio, [](AppProfile& a, double m) {
    a.overlap_ratio = std::min(1.0, a.overlap_ratio * m);
  });

  // --- Machine knobs ---
  auto machine_knob = [&](const std::string& name, double current,
                          const std::function<void(MachineProfile&, double)>& mutate) {
    add(name, current, [&, mutate](double m) {
      MachineProfile perturbed = machine;
      mutate(perturbed, m);
      return C2BoundModel(app, perturbed).evaluate(d).execution_time;
    });
  };
  machine_knob("memory latency", machine.memory_latency,
               [](MachineProfile& p, double m) { p.memory_latency *= m; });
  machine_knob("L2 latency", machine.l2_latency,
               [](MachineProfile& p, double m) { p.l2_latency *= m; });
  machine_knob("L1 hit time", machine.l1_hit_time,
               [](MachineProfile& p, double m) { p.l1_hit_time *= m; });

  std::sort(out.begin(), out.end(), [](const Elasticity& a, const Elasticity& b) {
    return std::fabs(a.elasticity) > std::fabs(b.elasticity);
  });
  return out;
}

BindingBound classify_binding_bound(const std::vector<Elasticity>& elasticities) {
  C2B_REQUIRE(!elasticities.empty(), "need at least one elasticity");
  double compute = 0.0, latency = 0.0, capacity = 0.0;
  for (const Elasticity& e : elasticities) {
    const double magnitude = std::fabs(e.elasticity);
    if (e.parameter.starts_with("A0")) compute += magnitude;
    if (e.parameter.starts_with("memory latency") || e.parameter.starts_with("L2 latency") ||
        e.parameter.starts_with("C_M") || e.parameter.starts_with("L1 hit time"))
      latency += magnitude;
    if (e.parameter.starts_with("A1") || e.parameter.starts_with("A2") ||
        e.parameter.starts_with("working set"))
      capacity += magnitude;
  }
  if (compute >= latency && compute >= capacity) return BindingBound::kCompute;
  if (latency >= capacity) return BindingBound::kMemLatency;
  return BindingBound::kMemCapacity;
}

const char* to_string(BindingBound bound) {
  switch (bound) {
    case BindingBound::kCompute:
      return "compute-bound (core area / CPI_exe)";
    case BindingBound::kMemLatency:
      return "memory-latency-bound (latency / concurrency)";
    case BindingBound::kMemCapacity:
      return "memory-capacity-bound (cache area / working set)";
  }
  return "?";
}

}  // namespace c2b
