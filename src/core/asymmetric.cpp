#include "c2b/core/asymmetric.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "c2b/common/assert.h"
#include "c2b/solver/minimize.h"

namespace c2b {

AsymmetricC2BoundModel::AsymmetricC2BoundModel(AppProfile app, MachineProfile machine)
    : model_(std::move(app), std::move(machine)) {}

AsymmetricEvaluation AsymmetricC2BoundModel::evaluate(const AsymmetricDesign& d) const {
  C2B_REQUIRE(d.n_small >= 1, "need at least one small core");
  C2B_REQUIRE(d.big_core_ratio >= 1.0, "the big core cannot be smaller than a small one");
  C2B_REQUIRE(d.l1_fraction > 0.0 && d.l2_fraction > 0.0 && d.core_fraction() > 0.0,
              "area fractions must be a positive simplex");

  const AppProfile& app = model_.app();
  const MachineProfile& machine = model_.machine();
  const double n_small = static_cast<double>(d.n_small);
  const double total_cores = n_small + 1.0;  // memory/compute units incl. big

  const double unit =
      (machine.chip.total_area - machine.chip.shared_area) / (n_small + d.big_core_ratio);
  C2B_REQUIRE(unit > 0.0, "area budget exhausted");

  auto split = [&](double core_area, double n_for_model) {
    return DesignPoint{.n_cores = n_for_model,
                       .a0 = core_area * d.core_fraction(),
                       .a1 = core_area * d.l1_fraction,
                       .a2 = core_area * d.l2_fraction};
  };

  AsymmetricEvaluation e;
  e.design = d;
  // Both core types see the capacity-scaled per-core working set at the
  // chip's total core count (the problem is partitioned over all cores).
  e.big = split(unit * d.big_core_ratio, total_cores);
  e.small = split(unit, total_cores);

  const Evaluation big_eval = model_.evaluate(e.big);
  const Evaluation small_eval = model_.evaluate(e.small);
  e.cpi_big = big_eval.cpi_exe;
  e.cpi_small = small_eval.cpi_exe;
  e.camat_big = big_eval.camat;
  e.camat_small = small_eval.camat;

  const double per_instr_big =
      (big_eval.cpi_exe + big_eval.stall_per_instruction) * machine.cycle_time;
  const double per_instr_small =
      (small_eval.cpi_exe + small_eval.stall_per_instruction) * machine.cycle_time;

  const double g_n = app.g(total_cores);
  e.problem_size = g_n * app.ic0;

  // Sequential phase: big core alone.
  e.serial_time = app.f_seq * app.ic0 * per_instr_big;
  // Parallel phase: aggregate instruction throughput of the heterogeneous
  // pool (instructions/cycle), big core included.
  const double throughput_pool = 1.0 / per_instr_big + n_small / per_instr_small;
  e.parallel_time = (1.0 - app.f_seq) * g_n * app.ic0 / throughput_pool;
  e.execution_time = e.serial_time + e.parallel_time;
  e.throughput = e.problem_size / e.execution_time;
  e.speedup_vs_big_serial = e.problem_size * per_instr_big / e.execution_time;
  return e;
}

AsymmetricOptimizer::AsymmetricOptimizer(AsymmetricC2BoundModel model, OptimizerOptions options)
    : model_(std::move(model)), options_(options) {
  C2B_REQUIRE(options_.n_min >= 1, "n_min >= 1");
}

AsymmetricEvaluation AsymmetricOptimizer::best_allocation(long long n_small) const {
  const ChipConstraints& chip = model_.machine().chip;
  const double n = static_cast<double>(n_small);

  // Inner variables: x = (log r, f1, f2); r in [1, budget-limited], the
  // fractions on the open simplex. Penalty-guarded Nelder-Mead, restarted.
  auto objective = [&](const Vector& x) {
    const double r = std::exp(x[0]);
    const double f1 = x[1];
    const double f2 = x[2];
    const double f0 = 1.0 - f1 - f2;
    double penalty = 0.0;
    auto violation = [](double v) { return v > 0.0 ? v : 0.0; };
    penalty += violation(1.0 - r);
    penalty += violation(f1 - 0.9) + violation(0.005 - f1);
    penalty += violation(f2 - 0.9) + violation(0.005 - f2);
    penalty += violation(0.01 - f0);
    const double unit = (chip.total_area - chip.shared_area) / (n + r);
    penalty += violation(chip.min_core_area - unit * f0);
    penalty += violation(chip.min_l1_area - unit * f1);
    penalty += violation(chip.min_l2_area - unit * f2);
    if (penalty > 0.0) return 1e12 * (1.0 + penalty);
    const AsymmetricDesign d{.n_small = n_small,
                             .big_core_ratio = r,
                             .l1_fraction = f1,
                             .l2_fraction = f2};
    return model_.evaluate(d).execution_time;
  };

  NelderMeadOptions nm;
  nm.tolerance = 1e-11;
  nm.initial_step = 0.25;
  double best_value = std::numeric_limits<double>::infinity();
  Vector best_x{std::log(4.0), 0.2, 0.4};
  const int restarts = std::max(1, options_.nelder_mead_restarts);
  for (int restart = 0; restart < restarts; ++restart) {
    Vector start{std::log(2.0 + 3.0 * restart), 0.1 + 0.1 * restart, 0.25 + 0.1 * restart};
    const NelderMeadResult res = nelder_mead_minimize(objective, std::move(start), nm);
    if (res.value < best_value) {
      best_value = res.value;
      best_x = res.x;
    }
  }
  const AsymmetricDesign d{.n_small = n_small,
                           .big_core_ratio = std::exp(best_x[0]),
                           .l1_fraction = best_x[1],
                           .l2_fraction = best_x[2]};
  return model_.evaluate(d);
}

AsymmetricOptimum AsymmetricOptimizer::optimize() const {
  const ChipConstraints& chip = model_.machine().chip;
  long long n_max = options_.n_max > 0 ? options_.n_max : chip.max_cores() - 1;
  n_max = std::min(n_max, options_.n_cap);
  C2B_REQUIRE(n_max >= options_.n_min, "no feasible small-core count in range");

  AsymmetricOptimum result;
  const double probe =
      static_cast<double>(std::max<long long>(2, n_max));
  result.opt_case = model_.app().g.at_least_linear(probe)
                        ? OptimizationCase::kMaximizeThroughput
                        : OptimizationCase::kMinimizeTime;

  double best_score = -std::numeric_limits<double>::infinity();
  bool have_best = false;
  for (long long n = options_.n_min; n <= n_max; ++n) {
    // Feasibility: the n small cores plus a minimal big core must fit.
    const double min_per_core =
        chip.min_core_area + chip.min_l1_area + chip.min_l2_area;
    if ((static_cast<double>(n) + 1.0) * min_per_core + chip.shared_area >
        chip.total_area)
      break;
    AsymmetricEvaluation eval = best_allocation(n);
    const double score = result.opt_case == OptimizationCase::kMaximizeThroughput
                             ? eval.throughput
                             : -eval.execution_time;
    result.per_small_count.push_back(eval);
    if (score > best_score) {
      best_score = score;
      result.best = std::move(eval);
      have_best = true;
    }
  }
  C2B_REQUIRE(have_best, "no feasible asymmetric design found");
  return result;
}

}  // namespace c2b
