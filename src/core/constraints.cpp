#include "c2b/core/constraints.h"

#include <algorithm>
#include <utility>

#include "c2b/common/assert.h"

namespace c2b {

void ConstraintSet::add(Constraint constraint) {
  C2B_REQUIRE(!constraint.name.empty(), "constraint needs a name");
  C2B_REQUIRE(static_cast<bool>(constraint.evaluate), "constraint needs an evaluate fn");
  C2B_REQUIRE(constraint.tolerance >= 0.0, "constraint tolerance must be >= 0");
  constraints_.push_back(std::move(constraint));
}

bool ConstraintSet::feasible(const DesignPoint& d) const {
  for (const Constraint& constraint : constraints_)
    if (!constraint.satisfied(d)) return false;
  return true;
}

// --- power ------------------------------------------------------------------

void PowerModel::validate() const {
  C2B_REQUIRE(core_dynamic_base >= 0.0, "core_dynamic_base must be >= 0");
  C2B_REQUIRE(core_area_exponent >= 0.0, "core_area_exponent must be >= 0");
  C2B_REQUIRE(l1_dynamic_per_area >= 0.0, "l1_dynamic_per_area must be >= 0");
  C2B_REQUIRE(l2_dynamic_per_area >= 0.0, "l2_dynamic_per_area must be >= 0");
  C2B_REQUIRE(leakage_per_area >= 0.0, "leakage_per_area must be >= 0");
  C2B_REQUIRE(uncore_power >= 0.0, "uncore_power must be >= 0");
}

double PowerModel::core_dynamic(const DesignPoint& d) const {
  return d.n_cores * core_dynamic_base * std::pow(d.a0, core_area_exponent);
}

double PowerModel::cache_dynamic(const DesignPoint& d) const {
  return d.n_cores * (l1_dynamic_per_area * d.a1 + l2_dynamic_per_area * d.a2);
}

double PowerModel::static_power(const DesignPoint& d, double shared_area) const {
  return leakage_per_area * (d.n_cores * d.per_core_area() + shared_area);
}

double PowerModel::total(const DesignPoint& d, double shared_area) const {
  return core_dynamic(d) + cache_dynamic(d) + static_power(d, shared_area) + uncore_power;
}

// --- off-chip bandwidth -----------------------------------------------------

void BandwidthModel::validate() const {
  C2B_REQUIRE(accesses_per_kilocycle_per_core >= 0.0,
              "accesses_per_kilocycle_per_core must be >= 0");
  C2B_REQUIRE(base_miss_rate >= 0.0 && base_miss_rate <= 1.0,
              "base_miss_rate must be in [0, 1]");
  C2B_REQUIRE(capacity_exponent >= 0.0, "capacity_exponent must be >= 0");
  C2B_REQUIRE(min_cache_area > 0.0, "min_cache_area must be > 0");
}

double BandwidthModel::miss_rate(double a2) const {
  const double area = std::max(a2, min_cache_area);
  return std::clamp(base_miss_rate * std::pow(area, -capacity_exponent), 0.0, 1.0);
}

double BandwidthModel::demand_at_miss_rate(const DesignPoint& d, double rate) const {
  return d.n_cores * accesses_per_kilocycle_per_core * rate;
}

double BandwidthModel::demand(const DesignPoint& d) const {
  return demand_at_miss_rate(d, miss_rate(d.a2));
}

// --- NoC bisection ----------------------------------------------------------

void NocCapacityModel::validate() const {
  C2B_REQUIRE(accesses_per_kilocycle_per_core >= 0.0,
              "accesses_per_kilocycle_per_core must be >= 0");
  C2B_REQUIRE(base_l1_miss_rate >= 0.0 && base_l1_miss_rate <= 1.0,
              "base_l1_miss_rate must be in [0, 1]");
  C2B_REQUIRE(capacity_exponent >= 0.0, "capacity_exponent must be >= 0");
  C2B_REQUIRE(bisection_fraction >= 0.0 && bisection_fraction <= 1.0,
              "bisection_fraction must be in [0, 1]");
  C2B_REQUIRE(min_cache_area > 0.0, "min_cache_area must be > 0");
}

double NocCapacityModel::l1_miss_rate(double a1) const {
  const double area = std::max(a1, min_cache_area);
  return std::clamp(base_l1_miss_rate * std::pow(area, -capacity_exponent), 0.0, 1.0);
}

double NocCapacityModel::bisection_links(double n_cores) const {
  // MeshNoc rounds the node count up to a square; the bisection of a
  // side x side mesh is crossed by `side` links.
  return std::ceil(std::sqrt(std::max(1.0, n_cores)));
}

double NocCapacityModel::per_link_load(const DesignPoint& d) const {
  const double crossing = d.n_cores * accesses_per_kilocycle_per_core *
                          l1_miss_rate(d.a1) * bisection_fraction;
  return crossing / bisection_links(d.n_cores);
}

void ConstraintModels::validate() const {
  power.validate();
  bandwidth.validate();
  noc.validate();
}

// --- factories --------------------------------------------------------------

Constraint make_area_constraint(const ChipConstraints& chip) {
  Constraint constraint;
  constraint.name = "area";
  const double shared = chip.shared_area;
  constraint.evaluate = [shared](const DesignPoint& d) {
    return d.n_cores * (d.a0 + d.a1 + d.a2) + shared;
  };
  constraint.budget = chip.total_area;
  constraint.tolerance = 1e-9;
  return constraint;
}

Constraint make_power_constraint(const PowerModel& model, double shared_area, double budget) {
  model.validate();
  Constraint constraint;
  constraint.name = "power";
  constraint.evaluate = [model, shared_area](const DesignPoint& d) {
    return model.total(d, shared_area);
  };
  constraint.budget = budget;
  return constraint;
}

Constraint make_bandwidth_constraint(const BandwidthModel& model, double budget) {
  model.validate();
  Constraint constraint;
  constraint.name = "bandwidth";
  constraint.evaluate = [model](const DesignPoint& d) { return model.demand(d); };
  constraint.budget = budget;
  return constraint;
}

Constraint make_noc_constraint(const NocCapacityModel& model, double budget) {
  model.validate();
  Constraint constraint;
  constraint.name = "noc";
  constraint.evaluate = [model](const DesignPoint& d) { return model.per_link_load(d); };
  constraint.budget = budget;
  return constraint;
}

}  // namespace c2b
