#include "c2b/core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "c2b/common/assert.h"
#include "c2b/common/math_util.h"
#include "c2b/exec/pool.h"
#include "c2b/obs/obs.h"
#include "c2b/solver/lagrange.h"
#include "c2b/solver/minimize.h"

namespace c2b {

C2BoundOptimizer::C2BoundOptimizer(C2BoundModel model, OptimizerOptions options)
    : model_(std::move(model)), options_(options) {
  C2B_REQUIRE(options_.n_min >= 1, "n_min >= 1");
}

OptimizationCase C2BoundOptimizer::classify() const {
  const double n_max = static_cast<double>(
      std::max<long long>(2, options_.n_max > 0 ? options_.n_max
                                                : model_.machine().chip.max_cores()));
  return model_.app().g.at_least_linear(n_max) ? OptimizationCase::kMaximizeThroughput
                                               : OptimizationCase::kMinimizeTime;
}

Evaluation C2BoundOptimizer::best_allocation(long long n_cores) const {
  C2B_REQUIRE(n_cores >= 1, "core count must be >= 1");
  const ChipConstraints& chip = model_.machine().chip;
  const double n = static_cast<double>(n_cores);
  const double budget = chip.per_core_budget(n);
  const double min_total = chip.min_core_area + chip.min_l1_area + chip.min_l2_area;
  C2B_REQUIRE(budget >= min_total, "per-core budget below minimum areas — fewer cores needed");

  // Inner problem over x = (a1, a2); a0 takes the remainder of the budget
  // so Eq. (12) holds with equality. Out-of-bounds points get a smooth
  // penalty so Nelder-Mead walks back into the feasible region.
  auto objective = [&](const Vector& x) {
    const double a1 = x[0];
    const double a2 = x[1];
    const double a0 = budget - a1 - a2;
    double penalty = 0.0;
    auto violation = [](double v) { return v > 0.0 ? v : 0.0; };
    penalty += violation(chip.min_l1_area - a1);
    penalty += violation(chip.min_l2_area - a2);
    penalty += violation(chip.min_core_area - a0);
    if (penalty > 0.0) return 1e12 * (1.0 + penalty);
    const DesignPoint d{.n_cores = n, .a0 = a0, .a1 = a1, .a2 = a2};
    // Resource ceilings beyond Eq. (12): penalize the excess demand the
    // same way bound violations are, so Nelder-Mead walks toward splits
    // that fit every budget (when any such split exists at this N).
    for (const Constraint& constraint : options_.constraints.constraints()) {
      const double excess = constraint.evaluate(d) - constraint.budget;
      if (excess > constraint.tolerance) penalty += excess;
    }
    if (penalty > 0.0) return 1e12 * (1.0 + penalty);
    if (options_.iterate_observer) options_.iterate_observer(d);
    return model_.evaluate(d).execution_time;
  };

  // Multi-start Nelder-Mead: the objective can have shallow basins where a
  // miss curve saturates, so a few spread starting splits are cheap
  // insurance.
  NelderMeadOptions nm;
  nm.tolerance = 1e-12;
  nm.initial_step = 0.2;
  double best_value = std::numeric_limits<double>::infinity();
  Vector best_x = {budget * 0.2, budget * 0.4};
  const int restarts = std::max(1, options_.nelder_mead_restarts);
  C2B_COUNTER_ADD("optimizer.nm_restarts", static_cast<std::uint64_t>(restarts));
  // Restarts are independent descents of a pure objective; run them
  // concurrently and keep the serial strict-< reduction in restart order,
  // so the winner matches the sequential loop exactly.
  const std::vector<NelderMeadResult> descents =
      exec::ThreadPool::global().parallel_map<NelderMeadResult>(
          static_cast<std::size_t>(restarts), [&](std::size_t r) {
            const double l1_frac = 0.1 + 0.25 * static_cast<double>(r) / restarts;
            const double l2_frac = 0.2 + 0.4 * static_cast<double>(r) / restarts;
            Vector start = {budget * l1_frac, budget * l2_frac};
            return nelder_mead_minimize(objective, std::move(start), nm);
          });
  for (const NelderMeadResult& res : descents) {
    if (res.value < best_value) {
      best_value = res.value;
      best_x = res.x;
    }
  }

  DesignPoint d{.n_cores = n,
                .a0 = budget - best_x[0] - best_x[1],
                .a1 = best_x[0],
                .a2 = best_x[1]};

  if (options_.lagrange_polish) {
    const PolishResult polished = lagrange_polish(d);
    if (polished.converged && model_.machine().chip.feasible(polished.design, 1e-4) &&
        options_.constraints.feasible(polished.design)) {
      const double polished_time = model_.evaluate(polished.design).execution_time;
      if (polished_time <= best_value * (1.0 + 1e-9)) d = polished.design;
    }
  }
  if (options_.iterate_observer) options_.iterate_observer(d);
  return model_.evaluate(d);
}

C2BoundOptimizer::PolishResult C2BoundOptimizer::lagrange_polish(const DesignPoint& start) const {
  const ChipConstraints& chip = model_.machine().chip;
  const double n = start.n_cores;

  // Eq. (13): L(A0, A1, A2, lambda) = J_D + lambda [N(A0+A1+A2) + Ac - A].
  ScalarField objective = [&](const Vector& x) {
    const DesignPoint d{.n_cores = n, .a0 = x[0], .a1 = x[1], .a2 = x[2]};
    if (x[0] <= 0.0 || x[1] <= 0.0 || x[2] <= 0.0) return 1e12;
    return model_.evaluate(d).execution_time;
  };
  ScalarField constraint = [&](const Vector& x) {
    return n * (x[0] + x[1] + x[2]) + chip.shared_area - chip.total_area;
  };

  NewtonOptions newton;
  newton.max_iterations = 60;
  newton.tolerance = 1e-7;
  const LagrangeResult res = lagrange_stationary_point(
      objective, {constraint}, {start.a0, start.a1, start.a2}, newton, 1e-5);

  PolishResult out;
  out.converged = res.converged;
  if (res.converged) {
    out.design = DesignPoint{.n_cores = n, .a0 = res.x[0], .a1 = res.x[1], .a2 = res.x[2]};
    out.lambda = res.lambda.empty() ? 0.0 : res.lambda[0];
  } else {
    out.design = start;
  }
  return out;
}

OptimalDesign C2BoundOptimizer::optimize() const {
  C2B_SPAN("optimizer/optimize");
  const ChipConstraints& chip = model_.machine().chip;
  long long n_max = options_.n_max > 0 ? options_.n_max : chip.max_cores();
  n_max = std::min(n_max, options_.n_cap);
  C2B_REQUIRE(n_max >= options_.n_min, "no feasible core count in range");

  OptimalDesign result;
  result.opt_case = classify();

  double best_score = -std::numeric_limits<double>::infinity();
  for (long long n = options_.n_min; n <= n_max; ++n) {
    const double budget = chip.per_core_budget(static_cast<double>(n));
    if (budget < chip.min_core_area + chip.min_l1_area + chip.min_l2_area) break;
    C2B_SPAN_ARG("optimizer/per_n", static_cast<std::uint64_t>(n));
    Evaluation eval = best_allocation(n);
    // A core count whose best split still violates a resource ceiling is
    // unbuildable; it joins neither the frontier nor the argmax. (Power and
    // NoC demand grow with N, but bandwidth demand can shrink as per-core
    // L2 grows back at smaller N — scan on rather than break.)
    if (!options_.constraints.empty() && !options_.constraints.feasible(eval.design))
      continue;
    const double score = result.opt_case == OptimizationCase::kMaximizeThroughput
                             ? eval.throughput
                             : -eval.execution_time;
    result.per_core_count.push_back(eval);
    if (score > best_score) {
      best_score = score;
      result.best = std::move(eval);
    }
  }
  C2B_REQUIRE(!result.per_core_count.empty(), "no feasible design found");

  // Recover lambda (the area price) at the winner via one polish pass.
  const PolishResult polished = lagrange_polish(result.best.design);
  result.lagrange_converged = polished.converged;
  result.lambda = polished.lambda;
  return result;
}

}  // namespace c2b
