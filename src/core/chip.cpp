#include "c2b/core/chip.h"

#include <cmath>

namespace c2b {

void ChipConstraints::validate() const {
  C2B_REQUIRE(total_area > 0.0, "total area must be positive");
  C2B_REQUIRE(shared_area >= 0.0 && shared_area < total_area,
              "shared area must fit inside the chip");
  C2B_REQUIRE(l1_kib_per_area > 0.0 && l2_kib_per_area > 0.0, "densities must be positive");
  C2B_REQUIRE(line_bytes > 0, "line size must be positive");
  C2B_REQUIRE(min_core_area > 0.0 && min_l1_area > 0.0 && min_l2_area > 0.0,
              "minimum areas must be positive");
}

double ChipConstraints::per_core_budget(double n) const {
  C2B_REQUIRE(n >= 1.0, "core count must be >= 1");
  return (total_area - shared_area) / n;
}

double ChipConstraints::area_residual(const DesignPoint& d) const {
  return d.n_cores * d.per_core_area() + shared_area - total_area;
}

bool ChipConstraints::feasible(const DesignPoint& d, double tolerance) const {
  if (d.n_cores < 1.0) return false;
  if (d.a0 < min_core_area || d.a1 < min_l1_area || d.a2 < min_l2_area) return false;
  return area_residual(d) <= tolerance;
}

double ChipConstraints::l1_capacity_lines(double a1) const {
  C2B_REQUIRE(a1 > 0.0, "L1 area must be positive");
  return a1 * l1_kib_per_area * 1024.0 / static_cast<double>(line_bytes);
}

double ChipConstraints::l2_capacity_lines(double a2) const {
  C2B_REQUIRE(a2 > 0.0, "L2 area must be positive");
  return a2 * l2_kib_per_area * 1024.0 / static_cast<double>(line_bytes);
}

long long ChipConstraints::max_cores() const {
  const double per_core_min = min_core_area + min_l1_area + min_l2_area;
  return static_cast<long long>(std::floor((total_area - shared_area) / per_core_min));
}

}  // namespace c2b
