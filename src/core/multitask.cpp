#include "c2b/core/multitask.h"

#include <algorithm>
#include <cmath>

#include "c2b/common/assert.h"

namespace c2b {
namespace {

/// Utility of giving `n` cores to one task: the C²-Bound throughput on a
/// chip slice proportional to n / total (area scales with the partition).
double task_utility(const TaskProfile& task, const MachineProfile& machine, long long n,
                    long long total_cores) {
  MachineProfile slice = machine;
  const double share = static_cast<double>(n) / static_cast<double>(total_cores);
  slice.chip.total_area = machine.chip.total_area * share;
  slice.chip.shared_area = machine.chip.shared_area * share;

  const double per_core = slice.chip.per_core_budget(static_cast<double>(n));
  // Fixed split within the slice: 40% core logic, 20% L1, 40% L2 — the
  // allocator compares core *counts*; the area split is optimized later by
  // the per-task C²-Bound optimizer if desired.
  const DesignPoint d{.n_cores = static_cast<double>(n),
                      .a0 = per_core * 0.4,
                      .a1 = per_core * 0.2,
                      .a2 = per_core * 0.4};
  const C2BoundModel model(task.app, slice);
  return task.priority * model.evaluate(d).throughput;
}

}  // namespace

MultiTaskResult allocate_cores(const std::vector<TaskProfile>& tasks,
                               const MachineProfile& machine, long long total_cores) {
  C2B_REQUIRE(!tasks.empty(), "need at least one task");
  C2B_REQUIRE(total_cores >= static_cast<long long>(tasks.size()),
              "need at least one core per task");

  const std::size_t k = tasks.size();
  std::vector<long long> cores(k, 1);
  std::vector<double> utility(k);
  for (std::size_t t = 0; t < k; ++t)
    utility[t] = task_utility(tasks[t], machine, 1, total_cores);

  std::vector<double> last_gain(k, 0.0);
  long long remaining = total_cores - static_cast<long long>(k);
  while (remaining-- > 0) {
    // Grant the next core to the task with the largest marginal gain.
    std::size_t best_task = 0;
    double best_gain = -std::numeric_limits<double>::infinity();
    double best_new_utility = 0.0;
    for (std::size_t t = 0; t < k; ++t) {
      const double next = task_utility(tasks[t], machine, cores[t] + 1, total_cores);
      const double gain = next - utility[t];
      if (gain > best_gain) {
        best_gain = gain;
        best_task = t;
        best_new_utility = next;
      }
    }
    cores[best_task] += 1;
    utility[best_task] = best_new_utility;
    last_gain[best_task] = best_gain;
  }

  MultiTaskResult result;
  for (std::size_t t = 0; t < k; ++t) {
    TaskAllocation alloc;
    alloc.name = tasks[t].name;
    alloc.cores = cores[t];
    alloc.throughput = utility[t] / tasks[t].priority;
    alloc.marginal_gain = last_gain[t];

    MachineProfile slice = machine;
    const double share = static_cast<double>(cores[t]) / static_cast<double>(total_cores);
    slice.chip.total_area = machine.chip.total_area * share;
    slice.chip.shared_area = machine.chip.shared_area * share;
    const double per_core = slice.chip.per_core_budget(static_cast<double>(cores[t]));
    const DesignPoint d{.n_cores = static_cast<double>(cores[t]),
                        .a0 = per_core * 0.4,
                        .a1 = per_core * 0.2,
                        .a2 = per_core * 0.4};
    alloc.concurrency_c = C2BoundModel(tasks[t].app, slice).evaluate(d).concurrency_c;

    result.aggregate_utility += utility[t];
    result.allocations.push_back(std::move(alloc));
  }
  return result;
}

}  // namespace c2b
