#include "c2b/core/energy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "c2b/common/assert.h"
#include "c2b/solver/minimize.h"

namespace c2b {

void EnergyModel::validate() const {
  C2B_REQUIRE(epi_base > 0.0, "core EPI must be positive");
  C2B_REQUIRE(epi_area_exponent >= 0.0, "EPI area exponent must be non-negative");
  C2B_REQUIRE(l1_access_base > 0.0 && l2_access_base > 0.0, "cache energies must be positive");
  C2B_REQUIRE(cache_energy_exponent >= 0.0, "cache energy exponent must be non-negative");
  C2B_REQUIRE(dram_access_energy >= 0.0, "DRAM energy must be non-negative");
  C2B_REQUIRE(leakage_per_area_cycle >= 0.0, "leakage must be non-negative");
}

EnergyAwareModel::EnergyAwareModel(C2BoundModel model, EnergyModel energy)
    : model_(std::move(model)), energy_(energy) {
  energy_.validate();
}

EnergyEvaluation EnergyAwareModel::evaluate(const DesignPoint& d) const {
  EnergyEvaluation e;
  e.performance = model_.evaluate(d);
  const AppProfile& app = model_.app();
  const ChipConstraints& chip = model_.machine().chip;

  // Total dynamic instructions across the scaled problem.
  const double instructions = e.performance.problem_size;
  const double l1_accesses = instructions * app.f_mem;
  const double l2_accesses = l1_accesses * e.performance.l1_miss_rate;
  const double dram_accesses = l2_accesses * e.performance.l2_local_miss_rate;

  const double l1_kib = chip.l1_capacity_lines(d.a1) * chip.line_bytes / 1024.0;
  const double l2_kib = chip.l2_capacity_lines(d.a2) * chip.line_bytes / 1024.0;

  e.core_dynamic =
      instructions * energy_.epi_base * std::pow(d.a0, energy_.epi_area_exponent);
  e.l1_dynamic =
      l1_accesses * energy_.l1_access_base * std::pow(l1_kib, energy_.cache_energy_exponent);
  e.l2_dynamic =
      l2_accesses * energy_.l2_access_base * std::pow(l2_kib, energy_.cache_energy_exponent);
  e.dram_dynamic = dram_accesses * energy_.dram_access_energy;

  const double occupied_area = d.n_cores * d.per_core_area() + chip.shared_area;
  e.static_energy =
      energy_.leakage_per_area_cycle * occupied_area * e.performance.execution_time;

  e.total_energy =
      e.core_dynamic + e.l1_dynamic + e.l2_dynamic + e.dram_dynamic + e.static_energy;
  e.average_power = e.total_energy / e.performance.execution_time;
  e.edp = e.total_energy * e.performance.execution_time;
  e.ed2p = e.edp * e.performance.execution_time;
  return e;
}

double EnergyAwareModel::objective_value(const DesignPoint& d,
                                         DesignObjective objective) const {
  const EnergyEvaluation e = evaluate(d);
  switch (objective) {
    case DesignObjective::kTime:
      return e.performance.execution_time;
    case DesignObjective::kEnergy:
      return e.total_energy;
    case DesignObjective::kEdp:
      return e.edp;
    case DesignObjective::kEd2p:
      return e.ed2p;
  }
  return e.edp;
}

EnergyAwareOptimizer::EnergyAwareOptimizer(EnergyAwareModel model, OptimizerOptions options)
    : model_(std::move(model)), options_(options) {
  C2B_REQUIRE(options_.n_min >= 1, "n_min >= 1");
}

EnergyEvaluation EnergyAwareOptimizer::best_allocation(long long n_cores,
                                                       DesignObjective objective) const {
  const ChipConstraints& chip = model_.model().machine().chip;
  const double n = static_cast<double>(n_cores);
  const double budget = chip.per_core_budget(n);
  C2B_REQUIRE(budget >= chip.min_core_area + chip.min_l1_area + chip.min_l2_area,
              "per-core budget below minimum areas");

  auto objective_fn = [&](const Vector& x) {
    const double a1 = x[0];
    const double a2 = x[1];
    const double a0 = budget - a1 - a2;
    double penalty = 0.0;
    auto violation = [](double v) { return v > 0.0 ? v : 0.0; };
    penalty += violation(chip.min_l1_area - a1);
    penalty += violation(chip.min_l2_area - a2);
    penalty += violation(chip.min_core_area - a0);
    if (penalty > 0.0) return 1e15 * (1.0 + penalty);
    return model_.objective_value({.n_cores = n, .a0 = a0, .a1 = a1, .a2 = a2}, objective);
  };

  NelderMeadOptions nm;
  nm.tolerance = 1e-12;
  nm.initial_step = 0.2;
  double best_value = std::numeric_limits<double>::infinity();
  Vector best_x{budget * 0.2, budget * 0.4};
  const int restarts = std::max(1, options_.nelder_mead_restarts);
  for (int restart = 0; restart < restarts; ++restart) {
    const double l1_frac = 0.1 + 0.25 * restart / static_cast<double>(restarts);
    const double l2_frac = 0.2 + 0.4 * restart / static_cast<double>(restarts);
    const NelderMeadResult res =
        nelder_mead_minimize(objective_fn, {budget * l1_frac, budget * l2_frac}, nm);
    if (res.value < best_value) {
      best_value = res.value;
      best_x = res.x;
    }
  }
  return model_.evaluate(
      {.n_cores = n, .a0 = budget - best_x[0] - best_x[1], .a1 = best_x[0], .a2 = best_x[1]});
}

EnergyOptimum EnergyAwareOptimizer::optimize(DesignObjective objective) const {
  const ChipConstraints& chip = model_.model().machine().chip;
  long long n_max = options_.n_max > 0 ? options_.n_max : chip.max_cores();
  n_max = std::min(n_max, options_.n_cap);
  C2B_REQUIRE(n_max >= options_.n_min, "no feasible core count in range");

  EnergyOptimum result;
  result.objective = objective;
  double best_value = std::numeric_limits<double>::infinity();
  bool have_best = false;
  for (long long n = options_.n_min; n <= n_max; ++n) {
    const double budget = chip.per_core_budget(static_cast<double>(n));
    if (budget < chip.min_core_area + chip.min_l1_area + chip.min_l2_area) break;
    EnergyEvaluation eval = best_allocation(n, objective);
    const double value = [&] {
      switch (objective) {
        case DesignObjective::kTime:
          return eval.performance.execution_time;
        case DesignObjective::kEnergy:
          return eval.total_energy;
        case DesignObjective::kEdp:
          return eval.edp;
        case DesignObjective::kEd2p:
          return eval.ed2p;
      }
      return eval.edp;
    }();
    result.per_core_count.push_back(eval);
    if (value < best_value) {
      best_value = value;
      result.best = std::move(eval);
      have_best = true;
    }
  }
  C2B_REQUIRE(have_best, "no feasible design found");
  return result;
}

std::vector<ParetoPoint> EnergyAwareOptimizer::pareto_front() const {
  const ChipConstraints& chip = model_.model().machine().chip;
  long long n_max = options_.n_max > 0 ? options_.n_max : chip.max_cores();
  n_max = std::min(n_max, options_.n_cap);

  std::vector<EnergyEvaluation> candidates;
  for (long long n = options_.n_min; n <= n_max; ++n) {
    const double budget = chip.per_core_budget(static_cast<double>(n));
    if (budget < chip.min_core_area + chip.min_l1_area + chip.min_l2_area) break;
    candidates.push_back(best_allocation(n, DesignObjective::kTime));
    candidates.push_back(best_allocation(n, DesignObjective::kEnergy));
  }
  C2B_REQUIRE(!candidates.empty(), "no feasible designs for the Pareto front");

  std::sort(candidates.begin(), candidates.end(),
            [](const EnergyEvaluation& a, const EnergyEvaluation& b) {
              if (a.performance.execution_time != b.performance.execution_time)
                return a.performance.execution_time < b.performance.execution_time;
              return a.total_energy < b.total_energy;
            });
  std::vector<ParetoPoint> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (EnergyEvaluation& candidate : candidates) {
    if (candidate.total_energy < best_energy - 1e-12) {
      best_energy = candidate.total_energy;
      front.push_back({std::move(candidate)});
    }
  }
  return front;
}

}  // namespace c2b
