#include "c2b/solver/minimize.h"

#include <algorithm>
#include <cmath>

#include "c2b/common/assert.h"
#include "c2b/linalg/matrix.h"
#include "c2b/obs/obs.h"

namespace c2b {

#if !defined(C2B_OBS_DISABLED)
namespace {

/// log10 of |det| of the simplex's edge matrix — a volume proxy tracking
/// simplex collapse. Degenerate (singular) simplices record the floor.
double log10_simplex_volume(const std::vector<Vector>& simplex) {
  const std::size_t n = simplex.size() - 1;
  Matrix edges(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t d = 0; d < n; ++d) edges(i, d) = simplex[i + 1][d] - simplex[0][d];
  try {
    const double abs_det = std::fabs(LuDecomposition(std::move(edges)).determinant());
    return abs_det > 0.0 ? std::log10(abs_det) : -320.0;
  } catch (const std::runtime_error&) {
    return -320.0;
  }
}

}  // namespace
#endif  // !C2B_OBS_DISABLED

ScalarMinResult golden_section_minimize(const ScalarFn& f, double lo, double hi, double tolerance,
                                        int max_iterations) {
  C2B_REQUIRE(hi >= lo, "golden section requires hi >= lo");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  ScalarMinResult result;

  double a = lo, b = hi;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  result.evaluations = 2;

  for (int iter = 0; iter < max_iterations && (b - a) > tolerance; ++iter) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
    ++result.evaluations;
  }
  if (f1 <= f2) {
    result.x = x1;
    result.value = f1;
  } else {
    result.x = x2;
    result.value = f2;
  }
  return result;
}

IntMinResult integer_minimize(const std::function<double(long long)>& f, long long lo,
                              long long hi) {
  C2B_REQUIRE(hi >= lo, "integer_minimize requires hi >= lo");
  IntMinResult best{lo, f(lo)};
  for (long long x = lo + 1; x <= hi; ++x) {
    const double v = f(x);
    if (v < best.value) best = {x, v};
  }
  return best;
}

NelderMeadResult nelder_mead_minimize(const MultiFn& f, Vector x0,
                                      const NelderMeadOptions& options) {
  C2B_REQUIRE(!x0.empty(), "nelder-mead needs a non-empty start point");
  C2B_SPAN("solver/nelder_mead");
  C2B_COUNTER_INC("solver.nm.calls");
  const std::size_t n = x0.size();

  // Initial simplex: x0 plus one perturbed vertex per dimension.
  std::vector<Vector> simplex;
  simplex.reserve(n + 1);
  simplex.push_back(x0);
  for (std::size_t i = 0; i < n; ++i) {
    Vector v = x0;
    const double step = options.initial_step * std::max(1.0, std::fabs(v[i]));
    v[i] += step;
    simplex.push_back(std::move(v));
  }
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) values[i] = f(simplex[i]);

  NelderMeadResult result;
  std::vector<std::size_t> order(n + 1);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    result.iterations = iter;
    C2B_COUNTER_INC("solver.nm.iterations");
    C2B_HISTOGRAM_RECORD("solver.nm.log10_simplex_volume", -320.0, 20.0, 68,
                         log10_simplex_volume(simplex));
    if (std::fabs(values[worst] - values[best]) <=
        options.tolerance * (std::fabs(values[best]) + options.tolerance)) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    Vector centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto along = [&](double coeff) {
      Vector v(n);
      for (std::size_t d = 0; d < n; ++d)
        v[d] = centroid[d] + coeff * (centroid[d] - simplex[worst][d]);
      return v;
    };

    const Vector reflected = along(1.0);
    const double fr = f(reflected);
    if (fr < values[best]) {
      const Vector expanded = along(2.0);
      const double fe = f(expanded);
      if (fe < fr) {
        simplex[worst] = expanded;
        values[worst] = fe;
      } else {
        simplex[worst] = reflected;
        values[worst] = fr;
      }
    } else if (fr < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = fr;
    } else {
      const Vector contracted = along(fr < values[worst] ? 0.5 : -0.5);
      const double fc = f(contracted);
      if (fc < std::min(fr, values[worst])) {
        simplex[worst] = contracted;
        values[worst] = fc;
      } else {
        // Shrink towards the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t d = 0; d < n; ++d)
            simplex[i][d] = simplex[best][d] + 0.5 * (simplex[i][d] - simplex[best][d]);
          values[i] = f(simplex[i]);
        }
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i)
    if (values[i] < values[best]) best = i;
  result.x = simplex[best];
  result.value = values[best];
  return result;
}

BisectResult bisect_root(const ScalarFn& f, double lo, double hi, double tolerance,
                         int max_iterations) {
  C2B_REQUIRE(hi >= lo, "bisect requires hi >= lo");
  BisectResult result;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0.0, true};
  if (fhi == 0.0) return {hi, 0.0, true};
  if (flo * fhi > 0.0) {
    result.x = std::fabs(flo) < std::fabs(fhi) ? lo : hi;
    result.fx = std::fabs(flo) < std::fabs(fhi) ? flo : fhi;
    return result;  // not bracketed; converged stays false
  }
  double a = lo, b = hi;
  for (int iter = 0; iter < max_iterations; ++iter) {
    const double mid = 0.5 * (a + b);
    const double fmid = f(mid);
    if (fmid == 0.0 || (b - a) * 0.5 < tolerance) {
      return {mid, fmid, true};
    }
    if (flo * fmid < 0.0) {
      b = mid;
    } else {
      a = mid;
      flo = fmid;
    }
  }
  const double mid = 0.5 * (a + b);
  return {mid, f(mid), true};
}

}  // namespace c2b
