#include "c2b/solver/grid.h"

#include <cmath>

namespace c2b {

GridSpace::GridSpace(std::vector<GridAxis> axes) : axes_(std::move(axes)) {
  C2B_REQUIRE(!axes_.empty(), "grid space needs at least one axis");
  total_ = 1;
  for (const auto& ax : axes_) {
    C2B_REQUIRE(!ax.values.empty(), "grid axis '" + ax.name + "' has no values");
    total_ *= ax.values.size();
  }
}

const GridAxis& GridSpace::axis(std::size_t i) const {
  C2B_REQUIRE(i < axes_.size(), "axis index out of range");
  return axes_[i];
}

std::size_t GridSpace::axis_index(const std::string& name) const {
  for (std::size_t i = 0; i < axes_.size(); ++i)
    if (axes_[i].name == name) return i;
  throw std::invalid_argument("GridSpace: no axis named '" + name + "'");
}

std::vector<std::size_t> GridSpace::indices(std::size_t flat_index) const {
  C2B_REQUIRE(flat_index < total_, "flat index out of range");
  std::vector<std::size_t> idx(axes_.size());
  // Row-major: the last axis varies fastest.
  for (std::size_t i = axes_.size(); i-- > 0;) {
    const std::size_t sz = axes_[i].values.size();
    idx[i] = flat_index % sz;
    flat_index /= sz;
  }
  return idx;
}

std::vector<double> GridSpace::point(std::size_t flat_index) const {
  const auto idx = indices(flat_index);
  std::vector<double> values(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) values[i] = axes_[i].values[idx[i]];
  return values;
}

std::size_t GridSpace::flat_index(const std::vector<std::size_t>& idx) const {
  C2B_REQUIRE(idx.size() == axes_.size(), "index rank mismatch");
  std::size_t flat = 0;
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    C2B_REQUIRE(idx[i] < axes_[i].values.size(), "axis index out of range");
    flat = flat * axes_[i].values.size() + idx[i];
  }
  return flat;
}

void GridSpace::for_each(
    const std::function<void(std::size_t, const std::vector<double>&)>& fn) const {
  for_each(0, total_, fn);
}

void GridSpace::for_each(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, const std::vector<double>&)>& fn) const {
  C2B_REQUIRE(begin <= end, "for_each range reversed");
  C2B_REQUIRE(end <= total_, "for_each range beyond the space");
  if (begin == end) return;
  std::vector<std::size_t> idx = indices(begin);
  std::vector<double> values(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) values[i] = axes_[i].values[idx[i]];
  for (std::size_t flat = begin; flat < end; ++flat) {
    fn(flat, values);
    // Odometer increment (last axis fastest) keeps values in sync without
    // re-decoding the flat index every step.
    for (std::size_t i = axes_.size(); i-- > 0;) {
      if (++idx[i] < axes_[i].values.size()) {
        values[i] = axes_[i].values[idx[i]];
        break;
      }
      idx[i] = 0;
      values[i] = axes_[i].values[0];
    }
  }
}

std::vector<std::size_t> GridSpace::neighborhood(std::size_t center, std::size_t radius) const {
  const auto center_idx = indices(center);
  std::vector<std::pair<std::size_t, std::size_t>> ranges(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    const std::size_t lo = center_idx[i] >= radius ? center_idx[i] - radius : 0;
    const std::size_t hi = std::min(center_idx[i] + radius, axes_[i].values.size() - 1);
    ranges[i] = {lo, hi};
  }
  std::vector<std::size_t> result;
  std::vector<std::size_t> idx(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) idx[i] = ranges[i].first;
  for (;;) {
    result.push_back(flat_index(idx));
    // Odometer increment over the clamped ranges. The d == 0 iteration
    // either breaks (more points to visit) or returns (full wrap), so the
    // while condition itself never runs out.
    std::size_t d = axes_.size();
    while (d-- > 0) {
      if (++idx[d] <= ranges[d].second) break;
      idx[d] = ranges[d].first;
      if (d == 0) return result;
    }
  }
}

std::size_t GridSpace::nearest(const std::vector<double>& continuous_point) const {
  C2B_REQUIRE(continuous_point.size() == axes_.size(), "point rank mismatch");
  std::vector<std::size_t> idx(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = 0;
    for (std::size_t j = 0; j < axes_[i].values.size(); ++j) {
      const double v = axes_[i].values[j];
      const double scale = std::max({std::fabs(v), std::fabs(continuous_point[i]), 1e-12});
      const double err = std::fabs(v - continuous_point[i]) / scale;
      if (err < best) {
        best = err;
        best_j = j;
      }
    }
    idx[i] = best_j;
  }
  return flat_index(idx);
}

}  // namespace c2b
