#include "c2b/solver/lagrange.h"

#include <cmath>

#include "c2b/common/assert.h"

namespace c2b {

Vector numeric_gradient(const ScalarField& f, const Vector& x, double rel_step) {
  Vector grad(x.size());
  Vector probe = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double h = rel_step * std::max(1.0, std::fabs(x[i]));
    probe[i] = x[i] + h;
    const double fp = f(probe);
    probe[i] = x[i] - h;
    const double fm = f(probe);
    probe[i] = x[i];
    grad[i] = (fp - fm) / (2.0 * h);
  }
  return grad;
}

LagrangeResult lagrange_stationary_point(const ScalarField& objective,
                                         const std::vector<ScalarField>& constraints, Vector x0,
                                         const NewtonOptions& newton, double gradient_step) {
  C2B_REQUIRE(!x0.empty(), "lagrange needs a non-empty start point");
  const std::size_t n = x0.size();
  const std::size_t m = constraints.size();

  // Unknowns: [x (n entries), lambda (m entries)].
  // Residual: [∇f(x) + Σ λ_k ∇g_k(x); g(x)].
  ResidualFn residual = [&, n, m](const Vector& z) {
    const Vector x(z.begin(), z.begin() + static_cast<std::ptrdiff_t>(n));
    Vector out(n + m, 0.0);
    const Vector grad_f = numeric_gradient(objective, x, gradient_step);
    for (std::size_t i = 0; i < n; ++i) out[i] = grad_f[i];
    for (std::size_t k = 0; k < m; ++k) {
      const double lambda_k = z[n + k];
      const Vector grad_g = numeric_gradient(constraints[k], x, gradient_step);
      for (std::size_t i = 0; i < n; ++i) out[i] += lambda_k * grad_g[i];
      out[n + k] = constraints[k](x);
    }
    return out;
  };

  Vector z0(n + m, 0.0);
  for (std::size_t i = 0; i < n; ++i) z0[i] = x0[i];

  const NewtonResult solved = newton_solve(residual, std::move(z0), newton);

  LagrangeResult result;
  result.converged = solved.converged;
  result.iterations = solved.iterations;
  result.x.assign(solved.x.begin(), solved.x.begin() + static_cast<std::ptrdiff_t>(n));
  result.lambda.assign(solved.x.begin() + static_cast<std::ptrdiff_t>(n), solved.x.end());
  result.objective = objective(result.x);
  return result;
}

}  // namespace c2b
