#include "c2b/solver/newton.h"

#include <algorithm>
#include <cmath>

#include "c2b/common/assert.h"
#include "c2b/common/log.h"
#include "c2b/obs/obs.h"

namespace c2b {

Matrix numeric_jacobian(const ResidualFn& f, const Vector& x, double rel_step) {
  C2B_REQUIRE(!x.empty(), "jacobian of empty vector");
  const std::size_t n = x.size();
  const Vector f0 = f(x);
  C2B_REQUIRE(f0.size() == n, "residual must be square (len(F) == len(x))");

  Matrix jac(n, n);
  Vector probe = x;
  for (std::size_t j = 0; j < n; ++j) {
    const double h = rel_step * std::max(1.0, std::fabs(x[j]));
    probe[j] = x[j] + h;
    const Vector fp = f(probe);
    probe[j] = x[j] - h;
    const Vector fm = f(probe);
    probe[j] = x[j];
    const double inv2h = 1.0 / (2.0 * h);
    for (std::size_t i = 0; i < n; ++i) jac(i, j) = (fp[i] - fm[i]) * inv2h;
  }
  return jac;
}

NewtonResult newton_solve(const ResidualFn& f, Vector x0, const NewtonOptions& options) {
  C2B_REQUIRE(!x0.empty(), "newton_solve needs a non-empty start point");
  C2B_SPAN("solver/newton");
  C2B_COUNTER_INC("solver.newton.calls");
  NewtonResult result;
  result.x = std::move(x0);

  Vector residual = f(result.x);
  C2B_REQUIRE(residual.size() == result.x.size(), "residual must be square");
  result.residual_norm = norm_inf(residual);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (result.residual_norm <= options.tolerance) {
      result.converged = true;
      result.message = "residual tolerance reached";
      return result;
    }

    Matrix jac = numeric_jacobian(f, result.x, options.fd_step);
    Vector rhs(residual.size());
    for (std::size_t i = 0; i < rhs.size(); ++i) rhs[i] = -residual[i];

    Vector step;
    try {
      step = LuDecomposition(std::move(jac)).solve(rhs);
    } catch (const std::runtime_error&) {
      result.message = "singular Jacobian";
      return result;
    }

    // Backtracking: accept the longest damped step that reduces ||F||.
    double damping = 1.0;
    bool accepted = false;
    for (int bt = 0; bt <= options.max_backtracks && damping >= options.min_damping; ++bt) {
      const Vector candidate = axpy(damping, step, result.x);
      const Vector cand_res = f(candidate);
      const double cand_norm = norm_inf(cand_res);
      if (cand_norm < result.residual_norm || cand_norm <= options.tolerance) {
        result.x = candidate;
        residual = cand_res;
        result.residual_norm = cand_norm;
        accepted = true;
        break;
      }
      damping *= 0.5;
    }
    ++result.iterations;
    C2B_COUNTER_INC("solver.newton.iterations");
    C2B_HISTOGRAM_RECORD("solver.newton.log10_residual", -16.0, 4.0, 40,
                         std::log10(std::max(result.residual_norm, 1e-300)));
    C2B_HISTOGRAM_RECORD("solver.newton.log10_step", -16.0, 4.0, 40,
                         std::log10(std::max(damping * norm_inf(step), 1e-300)));
    if (!accepted) {
      result.message = "line search stalled";
      return result;
    }
    if (damping * norm_inf(step) <= options.step_tolerance) {
      result.converged = result.residual_norm <= options.tolerance * 1e3;
      result.message = "step size underflow";
      return result;
    }
  }
  result.converged = result.residual_norm <= options.tolerance;
  result.message = result.converged ? "converged at iteration cap" : "iteration cap reached";
  return result;
}

}  // namespace c2b
