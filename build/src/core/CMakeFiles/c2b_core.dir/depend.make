# Empty dependencies file for c2b_core.
# This may be replaced when dependencies are built.
