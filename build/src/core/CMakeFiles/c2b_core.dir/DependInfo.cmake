
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/asymmetric.cpp" "src/core/CMakeFiles/c2b_core.dir/asymmetric.cpp.o" "gcc" "src/core/CMakeFiles/c2b_core.dir/asymmetric.cpp.o.d"
  "/root/repo/src/core/c2bound.cpp" "src/core/CMakeFiles/c2b_core.dir/c2bound.cpp.o" "gcc" "src/core/CMakeFiles/c2b_core.dir/c2bound.cpp.o.d"
  "/root/repo/src/core/capacity.cpp" "src/core/CMakeFiles/c2b_core.dir/capacity.cpp.o" "gcc" "src/core/CMakeFiles/c2b_core.dir/capacity.cpp.o.d"
  "/root/repo/src/core/chip.cpp" "src/core/CMakeFiles/c2b_core.dir/chip.cpp.o" "gcc" "src/core/CMakeFiles/c2b_core.dir/chip.cpp.o.d"
  "/root/repo/src/core/energy.cpp" "src/core/CMakeFiles/c2b_core.dir/energy.cpp.o" "gcc" "src/core/CMakeFiles/c2b_core.dir/energy.cpp.o.d"
  "/root/repo/src/core/multitask.cpp" "src/core/CMakeFiles/c2b_core.dir/multitask.cpp.o" "gcc" "src/core/CMakeFiles/c2b_core.dir/multitask.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/c2b_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/c2b_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/c2b_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/c2b_core.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/c2b_common.dir/DependInfo.cmake"
  "/root/repo/build/src/laws/CMakeFiles/c2b_laws.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/c2b_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/c2b_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/c2b_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
