file(REMOVE_RECURSE
  "libc2b_core.a"
)
