file(REMOVE_RECURSE
  "CMakeFiles/c2b_core.dir/asymmetric.cpp.o"
  "CMakeFiles/c2b_core.dir/asymmetric.cpp.o.d"
  "CMakeFiles/c2b_core.dir/c2bound.cpp.o"
  "CMakeFiles/c2b_core.dir/c2bound.cpp.o.d"
  "CMakeFiles/c2b_core.dir/capacity.cpp.o"
  "CMakeFiles/c2b_core.dir/capacity.cpp.o.d"
  "CMakeFiles/c2b_core.dir/chip.cpp.o"
  "CMakeFiles/c2b_core.dir/chip.cpp.o.d"
  "CMakeFiles/c2b_core.dir/energy.cpp.o"
  "CMakeFiles/c2b_core.dir/energy.cpp.o.d"
  "CMakeFiles/c2b_core.dir/multitask.cpp.o"
  "CMakeFiles/c2b_core.dir/multitask.cpp.o.d"
  "CMakeFiles/c2b_core.dir/optimizer.cpp.o"
  "CMakeFiles/c2b_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/c2b_core.dir/sensitivity.cpp.o"
  "CMakeFiles/c2b_core.dir/sensitivity.cpp.o.d"
  "libc2b_core.a"
  "libc2b_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
