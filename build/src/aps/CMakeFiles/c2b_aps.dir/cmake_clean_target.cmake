file(REMOVE_RECURSE
  "libc2b_aps.a"
)
