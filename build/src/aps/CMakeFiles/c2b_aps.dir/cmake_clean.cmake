file(REMOVE_RECURSE
  "CMakeFiles/c2b_aps.dir/aps.cpp.o"
  "CMakeFiles/c2b_aps.dir/aps.cpp.o.d"
  "CMakeFiles/c2b_aps.dir/characterize.cpp.o"
  "CMakeFiles/c2b_aps.dir/characterize.cpp.o.d"
  "CMakeFiles/c2b_aps.dir/dse.cpp.o"
  "CMakeFiles/c2b_aps.dir/dse.cpp.o.d"
  "libc2b_aps.a"
  "libc2b_aps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_aps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
