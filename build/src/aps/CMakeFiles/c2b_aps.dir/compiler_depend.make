# Empty compiler generated dependencies file for c2b_aps.
# This may be replaced when dependencies are built.
