file(REMOVE_RECURSE
  "CMakeFiles/c2b_metrics.dir/amat.cpp.o"
  "CMakeFiles/c2b_metrics.dir/amat.cpp.o.d"
  "CMakeFiles/c2b_metrics.dir/timeline.cpp.o"
  "CMakeFiles/c2b_metrics.dir/timeline.cpp.o.d"
  "libc2b_metrics.a"
  "libc2b_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
