# Empty compiler generated dependencies file for c2b_metrics.
# This may be replaced when dependencies are built.
