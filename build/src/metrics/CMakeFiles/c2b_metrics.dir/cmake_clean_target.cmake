file(REMOVE_RECURSE
  "libc2b_metrics.a"
)
