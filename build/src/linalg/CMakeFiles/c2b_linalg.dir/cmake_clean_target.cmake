file(REMOVE_RECURSE
  "libc2b_linalg.a"
)
