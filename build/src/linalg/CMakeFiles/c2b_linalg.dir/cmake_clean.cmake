file(REMOVE_RECURSE
  "CMakeFiles/c2b_linalg.dir/matrix.cpp.o"
  "CMakeFiles/c2b_linalg.dir/matrix.cpp.o.d"
  "libc2b_linalg.a"
  "libc2b_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
