# Empty dependencies file for c2b_linalg.
# This may be replaced when dependencies are built.
