file(REMOVE_RECURSE
  "CMakeFiles/c2b_ann.dir/mlp.cpp.o"
  "CMakeFiles/c2b_ann.dir/mlp.cpp.o.d"
  "libc2b_ann.a"
  "libc2b_ann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_ann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
