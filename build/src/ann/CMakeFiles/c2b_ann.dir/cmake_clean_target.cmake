file(REMOVE_RECURSE
  "libc2b_ann.a"
)
