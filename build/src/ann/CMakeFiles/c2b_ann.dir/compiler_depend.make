# Empty compiler generated dependencies file for c2b_ann.
# This may be replaced when dependencies are built.
