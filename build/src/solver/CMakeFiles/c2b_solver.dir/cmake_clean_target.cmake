file(REMOVE_RECURSE
  "libc2b_solver.a"
)
