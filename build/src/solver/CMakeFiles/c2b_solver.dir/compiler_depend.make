# Empty compiler generated dependencies file for c2b_solver.
# This may be replaced when dependencies are built.
