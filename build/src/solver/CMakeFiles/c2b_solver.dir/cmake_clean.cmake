file(REMOVE_RECURSE
  "CMakeFiles/c2b_solver.dir/grid.cpp.o"
  "CMakeFiles/c2b_solver.dir/grid.cpp.o.d"
  "CMakeFiles/c2b_solver.dir/lagrange.cpp.o"
  "CMakeFiles/c2b_solver.dir/lagrange.cpp.o.d"
  "CMakeFiles/c2b_solver.dir/minimize.cpp.o"
  "CMakeFiles/c2b_solver.dir/minimize.cpp.o.d"
  "CMakeFiles/c2b_solver.dir/newton.cpp.o"
  "CMakeFiles/c2b_solver.dir/newton.cpp.o.d"
  "libc2b_solver.a"
  "libc2b_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
