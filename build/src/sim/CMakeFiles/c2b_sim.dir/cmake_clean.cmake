file(REMOVE_RECURSE
  "CMakeFiles/c2b_sim.dir/cache/cache.cpp.o"
  "CMakeFiles/c2b_sim.dir/cache/cache.cpp.o.d"
  "CMakeFiles/c2b_sim.dir/cache/coherence.cpp.o"
  "CMakeFiles/c2b_sim.dir/cache/coherence.cpp.o.d"
  "CMakeFiles/c2b_sim.dir/cache/prefetch.cpp.o"
  "CMakeFiles/c2b_sim.dir/cache/prefetch.cpp.o.d"
  "CMakeFiles/c2b_sim.dir/detector/detector.cpp.o"
  "CMakeFiles/c2b_sim.dir/detector/detector.cpp.o.d"
  "CMakeFiles/c2b_sim.dir/dram/dram.cpp.o"
  "CMakeFiles/c2b_sim.dir/dram/dram.cpp.o.d"
  "CMakeFiles/c2b_sim.dir/dram/scheduler.cpp.o"
  "CMakeFiles/c2b_sim.dir/dram/scheduler.cpp.o.d"
  "CMakeFiles/c2b_sim.dir/noc/noc.cpp.o"
  "CMakeFiles/c2b_sim.dir/noc/noc.cpp.o.d"
  "CMakeFiles/c2b_sim.dir/system/hierarchy.cpp.o"
  "CMakeFiles/c2b_sim.dir/system/hierarchy.cpp.o.d"
  "CMakeFiles/c2b_sim.dir/system/system.cpp.o"
  "CMakeFiles/c2b_sim.dir/system/system.cpp.o.d"
  "libc2b_sim.a"
  "libc2b_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
