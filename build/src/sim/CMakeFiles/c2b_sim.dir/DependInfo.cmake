
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache/cache.cpp" "src/sim/CMakeFiles/c2b_sim.dir/cache/cache.cpp.o" "gcc" "src/sim/CMakeFiles/c2b_sim.dir/cache/cache.cpp.o.d"
  "/root/repo/src/sim/cache/coherence.cpp" "src/sim/CMakeFiles/c2b_sim.dir/cache/coherence.cpp.o" "gcc" "src/sim/CMakeFiles/c2b_sim.dir/cache/coherence.cpp.o.d"
  "/root/repo/src/sim/cache/prefetch.cpp" "src/sim/CMakeFiles/c2b_sim.dir/cache/prefetch.cpp.o" "gcc" "src/sim/CMakeFiles/c2b_sim.dir/cache/prefetch.cpp.o.d"
  "/root/repo/src/sim/detector/detector.cpp" "src/sim/CMakeFiles/c2b_sim.dir/detector/detector.cpp.o" "gcc" "src/sim/CMakeFiles/c2b_sim.dir/detector/detector.cpp.o.d"
  "/root/repo/src/sim/dram/dram.cpp" "src/sim/CMakeFiles/c2b_sim.dir/dram/dram.cpp.o" "gcc" "src/sim/CMakeFiles/c2b_sim.dir/dram/dram.cpp.o.d"
  "/root/repo/src/sim/dram/scheduler.cpp" "src/sim/CMakeFiles/c2b_sim.dir/dram/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/c2b_sim.dir/dram/scheduler.cpp.o.d"
  "/root/repo/src/sim/noc/noc.cpp" "src/sim/CMakeFiles/c2b_sim.dir/noc/noc.cpp.o" "gcc" "src/sim/CMakeFiles/c2b_sim.dir/noc/noc.cpp.o.d"
  "/root/repo/src/sim/system/hierarchy.cpp" "src/sim/CMakeFiles/c2b_sim.dir/system/hierarchy.cpp.o" "gcc" "src/sim/CMakeFiles/c2b_sim.dir/system/hierarchy.cpp.o.d"
  "/root/repo/src/sim/system/system.cpp" "src/sim/CMakeFiles/c2b_sim.dir/system/system.cpp.o" "gcc" "src/sim/CMakeFiles/c2b_sim.dir/system/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/c2b_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/c2b_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/c2b_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/laws/CMakeFiles/c2b_laws.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
