file(REMOVE_RECURSE
  "libc2b_sim.a"
)
