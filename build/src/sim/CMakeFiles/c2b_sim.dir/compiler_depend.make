# Empty compiler generated dependencies file for c2b_sim.
# This may be replaced when dependencies are built.
