file(REMOVE_RECURSE
  "CMakeFiles/c2b_trace.dir/generators.cpp.o"
  "CMakeFiles/c2b_trace.dir/generators.cpp.o.d"
  "CMakeFiles/c2b_trace.dir/reuse.cpp.o"
  "CMakeFiles/c2b_trace.dir/reuse.cpp.o.d"
  "CMakeFiles/c2b_trace.dir/simpoint.cpp.o"
  "CMakeFiles/c2b_trace.dir/simpoint.cpp.o.d"
  "CMakeFiles/c2b_trace.dir/trace.cpp.o"
  "CMakeFiles/c2b_trace.dir/trace.cpp.o.d"
  "CMakeFiles/c2b_trace.dir/trace_io.cpp.o"
  "CMakeFiles/c2b_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/c2b_trace.dir/workloads.cpp.o"
  "CMakeFiles/c2b_trace.dir/workloads.cpp.o.d"
  "libc2b_trace.a"
  "libc2b_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
