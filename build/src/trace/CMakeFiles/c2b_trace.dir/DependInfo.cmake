
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/generators.cpp" "src/trace/CMakeFiles/c2b_trace.dir/generators.cpp.o" "gcc" "src/trace/CMakeFiles/c2b_trace.dir/generators.cpp.o.d"
  "/root/repo/src/trace/reuse.cpp" "src/trace/CMakeFiles/c2b_trace.dir/reuse.cpp.o" "gcc" "src/trace/CMakeFiles/c2b_trace.dir/reuse.cpp.o.d"
  "/root/repo/src/trace/simpoint.cpp" "src/trace/CMakeFiles/c2b_trace.dir/simpoint.cpp.o" "gcc" "src/trace/CMakeFiles/c2b_trace.dir/simpoint.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/c2b_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/c2b_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/c2b_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/c2b_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/workloads.cpp" "src/trace/CMakeFiles/c2b_trace.dir/workloads.cpp.o" "gcc" "src/trace/CMakeFiles/c2b_trace.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/c2b_common.dir/DependInfo.cmake"
  "/root/repo/build/src/laws/CMakeFiles/c2b_laws.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
