file(REMOVE_RECURSE
  "libc2b_trace.a"
)
