# Empty compiler generated dependencies file for c2b_trace.
# This may be replaced when dependencies are built.
