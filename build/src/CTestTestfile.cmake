# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("linalg")
subdirs("solver")
subdirs("metrics")
subdirs("laws")
subdirs("trace")
subdirs("sim")
subdirs("ann")
subdirs("core")
subdirs("aps")
