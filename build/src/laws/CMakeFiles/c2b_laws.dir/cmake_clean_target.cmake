file(REMOVE_RECURSE
  "libc2b_laws.a"
)
