file(REMOVE_RECURSE
  "CMakeFiles/c2b_laws.dir/scaling.cpp.o"
  "CMakeFiles/c2b_laws.dir/scaling.cpp.o.d"
  "CMakeFiles/c2b_laws.dir/speedup.cpp.o"
  "CMakeFiles/c2b_laws.dir/speedup.cpp.o.d"
  "libc2b_laws.a"
  "libc2b_laws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
