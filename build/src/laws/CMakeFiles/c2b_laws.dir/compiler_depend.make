# Empty compiler generated dependencies file for c2b_laws.
# This may be replaced when dependencies are built.
