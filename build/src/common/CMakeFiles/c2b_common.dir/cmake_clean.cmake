file(REMOVE_RECURSE
  "CMakeFiles/c2b_common.dir/log.cpp.o"
  "CMakeFiles/c2b_common.dir/log.cpp.o.d"
  "CMakeFiles/c2b_common.dir/math_util.cpp.o"
  "CMakeFiles/c2b_common.dir/math_util.cpp.o.d"
  "CMakeFiles/c2b_common.dir/rng.cpp.o"
  "CMakeFiles/c2b_common.dir/rng.cpp.o.d"
  "CMakeFiles/c2b_common.dir/stats.cpp.o"
  "CMakeFiles/c2b_common.dir/stats.cpp.o.d"
  "CMakeFiles/c2b_common.dir/table.cpp.o"
  "CMakeFiles/c2b_common.dir/table.cpp.o.d"
  "libc2b_common.a"
  "libc2b_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
