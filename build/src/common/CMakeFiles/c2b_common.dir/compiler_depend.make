# Empty compiler generated dependencies file for c2b_common.
# This may be replaced when dependencies are built.
