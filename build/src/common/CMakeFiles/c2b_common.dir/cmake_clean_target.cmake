file(REMOVE_RECURSE
  "libc2b_common.a"
)
