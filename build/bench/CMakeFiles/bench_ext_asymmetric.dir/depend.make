# Empty dependencies file for bench_ext_asymmetric.
# This may be replaced when dependencies are built.
