file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_asymmetric.dir/bench_ext_asymmetric.cpp.o"
  "CMakeFiles/bench_ext_asymmetric.dir/bench_ext_asymmetric.cpp.o.d"
  "bench_ext_asymmetric"
  "bench_ext_asymmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
