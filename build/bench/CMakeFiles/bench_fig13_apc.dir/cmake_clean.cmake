file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_apc.dir/bench_fig13_apc.cpp.o"
  "CMakeFiles/bench_fig13_apc.dir/bench_fig13_apc.cpp.o.d"
  "bench_fig13_apc"
  "bench_fig13_apc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_apc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
