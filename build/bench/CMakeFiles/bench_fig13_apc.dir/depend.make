# Empty dependencies file for bench_fig13_apc.
# This may be replaced when dependencies are built.
