file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_multitask.dir/bench_fig7_multitask.cpp.o"
  "CMakeFiles/bench_fig7_multitask.dir/bench_fig7_multitask.cpp.o.d"
  "bench_fig7_multitask"
  "bench_fig7_multitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
