# Empty dependencies file for bench_fig12_dse.
# This may be replaced when dependencies are built.
