file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_capacity.dir/bench_sec5_capacity.cpp.o"
  "CMakeFiles/bench_sec5_capacity.dir/bench_sec5_capacity.cpp.o.d"
  "bench_sec5_capacity"
  "bench_sec5_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
