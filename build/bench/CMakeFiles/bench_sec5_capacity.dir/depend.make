# Empty dependencies file for bench_sec5_capacity.
# This may be replaced when dependencies are built.
