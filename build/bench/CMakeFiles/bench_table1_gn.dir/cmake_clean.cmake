file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gn.dir/bench_table1_gn.cpp.o"
  "CMakeFiles/bench_table1_gn.dir/bench_table1_gn.cpp.o.d"
  "bench_table1_gn"
  "bench_table1_gn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
