file(REMOVE_RECURSE
  "../lib/libc2b_bench_common.a"
  "../lib/libc2b_bench_common.pdb"
  "CMakeFiles/c2b_bench_common.dir/scaling_figures.cpp.o"
  "CMakeFiles/c2b_bench_common.dir/scaling_figures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
