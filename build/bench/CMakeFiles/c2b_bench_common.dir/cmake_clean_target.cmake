file(REMOVE_RECURSE
  "../lib/libc2b_bench_common.a"
)
