# Empty dependencies file for c2b_bench_common.
# This may be replaced when dependencies are built.
