# Empty compiler generated dependencies file for bench_fig2_concurrency_demo.
# This may be replaced when dependencies are built.
