file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_concurrency_demo.dir/bench_fig2_concurrency_demo.cpp.o"
  "CMakeFiles/bench_fig2_concurrency_demo.dir/bench_fig2_concurrency_demo.cpp.o.d"
  "bench_fig2_concurrency_demo"
  "bench_fig2_concurrency_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_concurrency_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
