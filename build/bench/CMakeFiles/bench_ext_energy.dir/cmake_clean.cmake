file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_energy.dir/bench_ext_energy.cpp.o"
  "CMakeFiles/bench_ext_energy.dir/bench_ext_energy.cpp.o.d"
  "bench_ext_energy"
  "bench_ext_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
