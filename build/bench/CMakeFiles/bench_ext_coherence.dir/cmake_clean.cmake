file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_coherence.dir/bench_ext_coherence.cpp.o"
  "CMakeFiles/bench_ext_coherence.dir/bench_ext_coherence.cpp.o.d"
  "bench_ext_coherence"
  "bench_ext_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
