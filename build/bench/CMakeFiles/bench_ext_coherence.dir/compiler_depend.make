# Empty compiler generated dependencies file for bench_ext_coherence.
# This may be replaced when dependencies are built.
