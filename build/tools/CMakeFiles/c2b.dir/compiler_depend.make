# Empty compiler generated dependencies file for c2b.
# This may be replaced when dependencies are built.
