file(REMOVE_RECURSE
  "CMakeFiles/c2b.dir/c2b_cli.cpp.o"
  "CMakeFiles/c2b.dir/c2b_cli.cpp.o.d"
  "c2b"
  "c2b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c2b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
