# Empty dependencies file for test_laws.
# This may be replaced when dependencies are built.
