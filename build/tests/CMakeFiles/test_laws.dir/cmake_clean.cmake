file(REMOVE_RECURSE
  "CMakeFiles/test_laws.dir/test_laws.cpp.o"
  "CMakeFiles/test_laws.dir/test_laws.cpp.o.d"
  "test_laws"
  "test_laws.pdb"
  "test_laws[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
