file(REMOVE_RECURSE
  "CMakeFiles/test_trace_new_kernels.dir/test_trace_new_kernels.cpp.o"
  "CMakeFiles/test_trace_new_kernels.dir/test_trace_new_kernels.cpp.o.d"
  "test_trace_new_kernels"
  "test_trace_new_kernels.pdb"
  "test_trace_new_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_new_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
