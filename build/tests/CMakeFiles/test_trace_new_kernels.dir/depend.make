# Empty dependencies file for test_trace_new_kernels.
# This may be replaced when dependencies are built.
