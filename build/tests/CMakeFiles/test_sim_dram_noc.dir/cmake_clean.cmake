file(REMOVE_RECURSE
  "CMakeFiles/test_sim_dram_noc.dir/test_sim_dram_noc.cpp.o"
  "CMakeFiles/test_sim_dram_noc.dir/test_sim_dram_noc.cpp.o.d"
  "test_sim_dram_noc"
  "test_sim_dram_noc.pdb"
  "test_sim_dram_noc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_dram_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
