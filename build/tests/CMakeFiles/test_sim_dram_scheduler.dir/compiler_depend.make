# Empty compiler generated dependencies file for test_sim_dram_scheduler.
# This may be replaced when dependencies are built.
