file(REMOVE_RECURSE
  "CMakeFiles/test_sim_dram_scheduler.dir/test_sim_dram_scheduler.cpp.o"
  "CMakeFiles/test_sim_dram_scheduler.dir/test_sim_dram_scheduler.cpp.o.d"
  "test_sim_dram_scheduler"
  "test_sim_dram_scheduler.pdb"
  "test_sim_dram_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_dram_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
