# Empty compiler generated dependencies file for test_core_multitask.
# This may be replaced when dependencies are built.
