file(REMOVE_RECURSE
  "CMakeFiles/test_core_multitask.dir/test_core_multitask.cpp.o"
  "CMakeFiles/test_core_multitask.dir/test_core_multitask.cpp.o.d"
  "test_core_multitask"
  "test_core_multitask.pdb"
  "test_core_multitask[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
