# Empty compiler generated dependencies file for test_core_c2bound.
# This may be replaced when dependencies are built.
