file(REMOVE_RECURSE
  "CMakeFiles/test_core_c2bound.dir/test_core_c2bound.cpp.o"
  "CMakeFiles/test_core_c2bound.dir/test_core_c2bound.cpp.o.d"
  "test_core_c2bound"
  "test_core_c2bound.pdb"
  "test_core_c2bound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_c2bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
