# Empty dependencies file for test_trace_simpoint.
# This may be replaced when dependencies are built.
