file(REMOVE_RECURSE
  "CMakeFiles/test_trace_simpoint.dir/test_trace_simpoint.cpp.o"
  "CMakeFiles/test_trace_simpoint.dir/test_trace_simpoint.cpp.o.d"
  "test_trace_simpoint"
  "test_trace_simpoint.pdb"
  "test_trace_simpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_simpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
