file(REMOVE_RECURSE
  "CMakeFiles/test_core_optimizer.dir/test_core_optimizer.cpp.o"
  "CMakeFiles/test_core_optimizer.dir/test_core_optimizer.cpp.o.d"
  "test_core_optimizer"
  "test_core_optimizer.pdb"
  "test_core_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
