# Empty dependencies file for test_core_energy.
# This may be replaced when dependencies are built.
