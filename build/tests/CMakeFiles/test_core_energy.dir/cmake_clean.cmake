file(REMOVE_RECURSE
  "CMakeFiles/test_core_energy.dir/test_core_energy.cpp.o"
  "CMakeFiles/test_core_energy.dir/test_core_energy.cpp.o.d"
  "test_core_energy"
  "test_core_energy.pdb"
  "test_core_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
