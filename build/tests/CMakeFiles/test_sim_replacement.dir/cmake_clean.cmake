file(REMOVE_RECURSE
  "CMakeFiles/test_sim_replacement.dir/test_sim_replacement.cpp.o"
  "CMakeFiles/test_sim_replacement.dir/test_sim_replacement.cpp.o.d"
  "test_sim_replacement"
  "test_sim_replacement.pdb"
  "test_sim_replacement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
