# Empty dependencies file for test_sim_replacement.
# This may be replaced when dependencies are built.
