# Empty dependencies file for test_trace_reuse.
# This may be replaced when dependencies are built.
