file(REMOVE_RECURSE
  "CMakeFiles/test_trace_reuse.dir/test_trace_reuse.cpp.o"
  "CMakeFiles/test_trace_reuse.dir/test_trace_reuse.cpp.o.d"
  "test_trace_reuse"
  "test_trace_reuse.pdb"
  "test_trace_reuse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
