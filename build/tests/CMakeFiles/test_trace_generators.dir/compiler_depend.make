# Empty compiler generated dependencies file for test_trace_generators.
# This may be replaced when dependencies are built.
