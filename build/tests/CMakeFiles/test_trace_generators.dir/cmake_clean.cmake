file(REMOVE_RECURSE
  "CMakeFiles/test_trace_generators.dir/test_trace_generators.cpp.o"
  "CMakeFiles/test_trace_generators.dir/test_trace_generators.cpp.o.d"
  "test_trace_generators"
  "test_trace_generators.pdb"
  "test_trace_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
