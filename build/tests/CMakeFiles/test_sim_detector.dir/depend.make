# Empty dependencies file for test_sim_detector.
# This may be replaced when dependencies are built.
