file(REMOVE_RECURSE
  "CMakeFiles/test_sim_detector.dir/test_sim_detector.cpp.o"
  "CMakeFiles/test_sim_detector.dir/test_sim_detector.cpp.o.d"
  "test_sim_detector"
  "test_sim_detector.pdb"
  "test_sim_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
