file(REMOVE_RECURSE
  "CMakeFiles/test_sim_coherence.dir/test_sim_coherence.cpp.o"
  "CMakeFiles/test_sim_coherence.dir/test_sim_coherence.cpp.o.d"
  "test_sim_coherence"
  "test_sim_coherence.pdb"
  "test_sim_coherence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
