# Empty dependencies file for test_sim_coherence.
# This may be replaced when dependencies are built.
