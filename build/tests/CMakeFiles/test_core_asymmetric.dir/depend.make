# Empty dependencies file for test_core_asymmetric.
# This may be replaced when dependencies are built.
