file(REMOVE_RECURSE
  "CMakeFiles/test_core_asymmetric.dir/test_core_asymmetric.cpp.o"
  "CMakeFiles/test_core_asymmetric.dir/test_core_asymmetric.cpp.o.d"
  "test_core_asymmetric"
  "test_core_asymmetric.pdb"
  "test_core_asymmetric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
