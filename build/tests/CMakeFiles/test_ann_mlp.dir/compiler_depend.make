# Empty compiler generated dependencies file for test_ann_mlp.
# This may be replaced when dependencies are built.
