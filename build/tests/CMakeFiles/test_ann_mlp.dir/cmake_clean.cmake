file(REMOVE_RECURSE
  "CMakeFiles/test_ann_mlp.dir/test_ann_mlp.cpp.o"
  "CMakeFiles/test_ann_mlp.dir/test_ann_mlp.cpp.o.d"
  "test_ann_mlp"
  "test_ann_mlp.pdb"
  "test_ann_mlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ann_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
