file(REMOVE_RECURSE
  "CMakeFiles/test_aps.dir/test_aps.cpp.o"
  "CMakeFiles/test_aps.dir/test_aps.cpp.o.d"
  "test_aps"
  "test_aps.pdb"
  "test_aps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
