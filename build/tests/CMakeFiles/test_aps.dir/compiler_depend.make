# Empty compiler generated dependencies file for test_aps.
# This may be replaced when dependencies are built.
