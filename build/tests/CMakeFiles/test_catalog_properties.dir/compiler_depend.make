# Empty compiler generated dependencies file for test_catalog_properties.
# This may be replaced when dependencies are built.
