file(REMOVE_RECURSE
  "CMakeFiles/test_catalog_properties.dir/test_catalog_properties.cpp.o"
  "CMakeFiles/test_catalog_properties.dir/test_catalog_properties.cpp.o.d"
  "test_catalog_properties"
  "test_catalog_properties.pdb"
  "test_catalog_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_catalog_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
