# Empty compiler generated dependencies file for memory_hierarchy_apc.
# This may be replaced when dependencies are built.
