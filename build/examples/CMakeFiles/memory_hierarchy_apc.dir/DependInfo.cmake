
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/memory_hierarchy_apc.cpp" "examples/CMakeFiles/memory_hierarchy_apc.dir/memory_hierarchy_apc.cpp.o" "gcc" "examples/CMakeFiles/memory_hierarchy_apc.dir/memory_hierarchy_apc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/aps/CMakeFiles/c2b_aps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/c2b_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/c2b_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ann/CMakeFiles/c2b_ann.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/c2b_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/laws/CMakeFiles/c2b_laws.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/c2b_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/c2b_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/c2b_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/c2b_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
