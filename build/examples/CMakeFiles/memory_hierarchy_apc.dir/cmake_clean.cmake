file(REMOVE_RECURSE
  "CMakeFiles/memory_hierarchy_apc.dir/memory_hierarchy_apc.cpp.o"
  "CMakeFiles/memory_hierarchy_apc.dir/memory_hierarchy_apc.cpp.o.d"
  "memory_hierarchy_apc"
  "memory_hierarchy_apc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_hierarchy_apc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
