# Empty compiler generated dependencies file for asymmetric_design.
# This may be replaced when dependencies are built.
