file(REMOVE_RECURSE
  "CMakeFiles/asymmetric_design.dir/asymmetric_design.cpp.o"
  "CMakeFiles/asymmetric_design.dir/asymmetric_design.cpp.o.d"
  "asymmetric_design"
  "asymmetric_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asymmetric_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
