file(REMOVE_RECURSE
  "CMakeFiles/dse_fluidanimate.dir/dse_fluidanimate.cpp.o"
  "CMakeFiles/dse_fluidanimate.dir/dse_fluidanimate.cpp.o.d"
  "dse_fluidanimate"
  "dse_fluidanimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_fluidanimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
