# Empty dependencies file for dse_fluidanimate.
# This may be replaced when dependencies are built.
