file(REMOVE_RECURSE
  "CMakeFiles/energy_pareto.dir/energy_pareto.cpp.o"
  "CMakeFiles/energy_pareto.dir/energy_pareto.cpp.o.d"
  "energy_pareto"
  "energy_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
