# Empty dependencies file for energy_pareto.
# This may be replaced when dependencies are built.
