file(REMOVE_RECURSE
  "CMakeFiles/multi_task_allocation.dir/multi_task_allocation.cpp.o"
  "CMakeFiles/multi_task_allocation.dir/multi_task_allocation.cpp.o.d"
  "multi_task_allocation"
  "multi_task_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_task_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
