# Empty compiler generated dependencies file for multi_task_allocation.
# This may be replaced when dependencies are built.
