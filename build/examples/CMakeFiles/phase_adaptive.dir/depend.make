# Empty dependencies file for phase_adaptive.
# This may be replaced when dependencies are built.
