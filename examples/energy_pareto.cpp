// Multi-objective chip design (the paper's Section VII future work made
// concrete): the same C²-Bound machinery with an energy model attached,
// optimized for time, energy, EDP, and ED²P, plus the time-energy Pareto
// front a datacenter architect would actually pick from.
//
// Usage: ./build/examples/energy_pareto

#include <cstdio>

#include "c2b/core/energy.h"

int main() {
  using namespace c2b;

  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.35;
  app.f_seq = 0.05;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 15;
  app.g = ScalingFunction::fixed();
  app.hit_concurrency = 2.0;
  app.miss_concurrency = 3.0;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;

  MachineProfile machine;
  machine.chip.total_area = 96.0;
  machine.chip.shared_area = 8.0;
  machine.memory_contention = 0.05;

  EnergyModel energy;
  energy.leakage_per_area_cycle = 5e-3;

  OptimizerOptions options;
  options.n_max = 32;
  options.nelder_mead_restarts = 4;
  const EnergyAwareOptimizer optimizer(
      EnergyAwareModel(C2BoundModel(app, machine), energy), options);

  std::printf("per-objective optima:\n");
  std::printf("%-10s %4s %8s %8s %8s %12s %12s %10s\n", "objective", "N", "a0", "a1", "a2",
              "time", "energy", "power");
  const std::pair<DesignObjective, const char*> objectives[] = {
      {DesignObjective::kTime, "time"},
      {DesignObjective::kEnergy, "energy"},
      {DesignObjective::kEdp, "EDP"},
      {DesignObjective::kEd2p, "ED^2P"},
  };
  for (const auto& [objective, label] : objectives) {
    const EnergyOptimum result = optimizer.optimize(objective);
    const DesignPoint& d = result.best.performance.design;
    std::printf("%-10s %4.0f %8.3f %8.3f %8.3f %12.4g %12.4g %10.3f\n", label, d.n_cores,
                d.a0, d.a1, d.a2, result.best.performance.execution_time,
                result.best.total_energy, result.best.average_power);
  }

  std::printf("\ntime-energy Pareto front (pick your operating point):\n");
  std::printf("%4s %8s %8s %8s %12s %12s\n", "N", "a0", "a1", "a2", "time", "energy");
  for (const ParetoPoint& point : optimizer.pareto_front()) {
    const DesignPoint& d = point.eval.performance.design;
    std::printf("%4.0f %8.3f %8.3f %8.3f %12.4g %12.4g\n", d.n_cores, d.a0, d.a1, d.a2,
                point.eval.performance.execution_time, point.eval.total_energy);
  }
  std::printf("\nreading: the fast end spends area on wide cores; the frugal end runs\n"
              "lean cores and trades time for energy. EDP/ED^2P select interior points\n"
              "on this front — exactly the 'reshaped Eq. (10)' the paper anticipates.\n");
  return 0;
}
