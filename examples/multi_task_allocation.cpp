// Core allocation across co-scheduled applications (paper Fig. 7 use case).
//
// Three applications with different sequential fractions and memory
// concurrencies share one CMP. The C²-Bound utility model hands cores out
// by diminishing marginal return, so the demand profile — not a naive even
// split — decides the partition. Usage:
//
//   ./build/examples/multi_task_allocation [total_cores]

#include <cstdio>
#include <cstdlib>

#include "c2b/core/multitask.h"

namespace {

c2b::AppProfile make_app(double f_seq, double concurrency, double f_mem) {
  c2b::AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = f_mem;
  app.f_seq = f_seq;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 15;
  app.g = c2b::ScalingFunction::linear();
  app.hit_concurrency = concurrency;
  app.miss_concurrency = concurrency;
  app.pure_miss_fraction = 0.7;
  app.pure_penalty_fraction = 0.8;
  return app;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace c2b;
  const long long total_cores = argc > 1 ? std::atoll(argv[1]) : 32;
  if (total_cores < 3) {
    std::fprintf(stderr, "need at least 3 cores (one per task)\n");
    return 1;
  }

  const std::vector<TaskProfile> tasks{
      {.name = "interactive-serial", .app = make_app(0.50, 1.0, 0.30), .priority = 1.0},
      {.name = "analytics-parallel", .app = make_app(0.01, 8.0, 0.45), .priority = 1.0},
      {.name = "batch-medium", .app = make_app(0.15, 2.0, 0.35), .priority = 1.0},
  };

  MachineProfile machine;
  machine.chip.total_area = 512.0;
  machine.chip.shared_area = 32.0;

  const MultiTaskResult result = allocate_cores(tasks, machine, total_cores);

  std::printf("partitioning %lld cores among %zu applications:\n\n", total_cores,
              tasks.size());
  std::printf("%-22s %6s %8s %12s %10s\n", "application", "cores", "share", "throughput",
              "C");
  for (const TaskAllocation& a : result.allocations) {
    std::printf("%-22s %6lld %7.1f%% %12.3f %10.2f\n", a.name.c_str(), a.cores,
                100.0 * static_cast<double>(a.cores) / static_cast<double>(total_cores),
                a.throughput, a.concurrency_c);
  }
  std::printf("\naggregate utility: %.3f\n", result.aggregate_utility);
  std::printf("\nreading: the app with a large sequential fraction and no memory\n"
              "concurrency cannot use extra cores (Fig. 7 'app 1'); the parallel,\n"
              "high-MLP app soaks up most of the chip ('app 2').\n");
  return 0;
}
