// Quickstart: the three layers of the C²-Bound library in ~80 lines.
//
//   1. Metrics    — compute AMAT / C-AMAT / C on a concurrent access
//                   timeline (the paper's Fig. 1 example).
//   2. Laws       — Sun-Ni memory-bounded speedup and its Amdahl /
//                   Gustafson special cases (Eq. 4).
//   3. C²-Bound   — optimize a chip: how many cores, and how much area for
//                   core logic vs L1 vs L2 (Eqs. 10-13).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "c2b/core/optimizer.h"
#include "c2b/laws/speedup.h"
#include "c2b/metrics/timeline.h"

int main() {
  using namespace c2b;

  // ---- 1. Metrics: analyze a concurrent access timeline ----
  const TimelineMetrics m = analyze_timeline(figure1_example_timeline());
  std::printf("Fig. 1 timeline:  AMAT = %.2f cycles, C-AMAT = %.2f cycles\n",
              m.amat_value, m.camat_value);
  std::printf("                  concurrency C = AMAT/C-AMAT = %.3f, APC = %.3f\n\n",
              m.concurrency_c, m.apc);

  // ---- 2. Laws: memory-bounded speedup ----
  const double f_seq = 0.05;
  std::printf("Speedup at N = 64, f_seq = %.2f:\n", f_seq);
  std::printf("  Amdahl     (g = 1)      : %6.2f\n", amdahl_speedup(f_seq, 64));
  std::printf("  Gustafson  (g = N)      : %6.2f\n", gustafson_speedup(f_seq, 64));
  std::printf("  Sun-Ni     (g = N^1.5)  : %6.2f\n\n",
              sunni_speedup(f_seq, ScalingFunction::power(1.5), 64));

  // ---- 3. C²-Bound: optimize a many-core chip ----
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.35;                 // 35% of instructions touch memory
  app.f_seq = f_seq;
  app.overlap_ratio = 0.25;         // the OoO core hides 25% of the stall
  app.working_set_lines0 = 1 << 14; // 1 MiB footprint at N = 1
  app.g = ScalingFunction::power(1.5);  // TMM-like capacity scaling
  app.hit_concurrency = m.camat_params.hit_concurrency;   // from the detector
  app.miss_concurrency = 2.0;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;

  MachineProfile machine;          // defaults: Pollack core, i7-like latencies
  machine.chip.total_area = 256.0;
  machine.chip.shared_area = 16.0;
  machine.memory_contention = 0.05;  // shared memory controllers queue with N

  const C2BoundOptimizer optimizer{C2BoundModel(app, machine)};
  const OptimalDesign design = optimizer.optimize();

  std::printf("C²-Bound optimum (%s):\n",
              design.opt_case == OptimizationCase::kMaximizeThroughput
                  ? "case I: maximize W/T"
                  : "case II: minimize T");
  std::printf("  cores N             = %.0f\n", design.best.design.n_cores);
  std::printf("  core logic A0       = %.3f area units\n", design.best.design.a0);
  std::printf("  private L1 A1       = %.3f area units\n", design.best.design.a1);
  std::printf("  L2 slice   A2       = %.3f area units\n", design.best.design.a2);
  std::printf("  analytic C-AMAT     = %.2f cycles (C = %.2f)\n", design.best.camat,
              design.best.concurrency_c);
  std::printf("  throughput W/T      = %.4f work/cycle\n", design.best.throughput);
  std::printf("  area price lambda   = %.3g (marginal time per area unit)\n",
              design.lambda);
  return 0;
}
