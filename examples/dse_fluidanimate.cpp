// The full APS (Analysis Plus Simulation) flow on a fluidanimate-like
// workload — the paper's Fig. 12 case study as a narrative walkthrough:
//
//   characterize  -> measure f_mem, CPI_exe, C-AMAT components, working set
//   optimize      -> solve the C²-Bound problem for (A0, A1, A2, N)
//   simulate      -> sweep only issue width x ROB at the analytic point
//
// Usage: ./build/examples/dse_fluidanimate

#include <cstdio>

#include "c2b/aps/aps.h"

int main() {
  using namespace c2b;

  DseContext context;
  context.base.core.issue_width = 4;
  context.base.core.rob_size = 128;
  context.base.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                        .associativity = 4};
  context.base.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                        .associativity = 8};
  context.workload = make_fluidanimate_like_workload(1 << 14);
  context.instructions0 = 24'000;
  context.per_core_cap = 12'000;
  context.chip.total_area = 26.0;  // grid axes = the buildable range (Eq. 12)
  context.chip.shared_area = 2.0;

  DseAxes axes;  // the six-parameter space of the paper's case study
  const GridSpace space = make_design_space(axes);
  std::printf("design space: %zu candidate chips "
              "(A0 x A1 x A2 x N x issue x ROB)\n\n",
              space.size());

  // ---- Step 1 + 2 + 3: the APS pipeline ----
  ApsOptions options;
  options.characterize.instructions = 150'000;
  options.characterize.use_simpoints = true;
  options.characterize.simpoint.interval_length = 25'000;
  const ApsResult aps = run_aps(context, space, options);

  const Characterization& c = aps.characterization;
  std::printf("step 1 — characterization (%zu simulator runs, %zu instructions):\n",
              c.simulation_runs, c.simulated_instructions);
  std::printf("  f_mem = %.3f   CPI_exe = %.3f   measured CPI = %.3f\n", c.app.f_mem,
              c.cpi_exe, c.measured_cpi);
  std::printf("  C-AMAT = %.2f cycles  (C_H = %.2f, C_M = %.2f, pMR/MR = %.2f)\n",
              c.camat.camat_value, c.app.hit_concurrency, c.app.miss_concurrency,
              c.app.pure_miss_fraction);
  std::printf("  concurrency C = %.2f   overlap ratio = %.2f   working set = %.0f lines\n",
              c.camat.concurrency_c, c.app.overlap_ratio, c.app.working_set_lines0);
  std::printf("  L1 miss power law: MR(S) ~ %.3g * S^-%.2f\n\n", c.l1_power_law.alpha,
              c.l1_power_law.beta);

  const DesignPoint& best = aps.analytic.best.design;
  std::printf("step 2 — C²-Bound analytic optimum (%s):\n",
              aps.analytic.opt_case == OptimizationCase::kMaximizeThroughput
                  ? "maximize W/T"
                  : "minimize T");
  std::printf("  N = %.0f cores, A0 = %.2f, A1 = %.2f, A2 = %.2f (area units)\n", best.n_cores,
              best.a0, best.a1, best.a2);
  std::printf("  predicted C-AMAT = %.2f, throughput = %.4f\n\n", aps.analytic.best.camat,
              aps.analytic.best.throughput);

  std::printf("step 3 — simulation, restricted to the analytic neighborhood:\n");
  std::printf("  simulated %zu of %zu designs (narrowing %.0fx)\n",
              aps.simulated_indices.size(), space.size(), aps.narrowing_factor);
  const auto winner = space.point(aps.best_index);
  std::printf("  winner: a0=%.2f a1=%.2f a2=%.2f N=%.0f issue=%.0f rob=%.0f "
              "(%.0f cycles)\n",
              winner[kAxisA0], winner[kAxisA1], winner[kAxisA2], winner[kAxisN],
              winner[kAxisIssue], winner[kAxisRob], aps.best_time);
  std::printf("\ntotal cost: %zu simulator invocations end to end.\n", aps.simulations);
  return 0;
}
