// Asymmetric CMP design with C²-Bound (the Section VII extension):
// sweep the sequential fraction and watch the optimizer trade one big core
// against a sea of small ones — Hill & Marty's question answered with the
// capacity- and concurrency-aware machinery.
//
// Usage: ./build/examples/asymmetric_design [f_seq]

#include <cstdio>
#include <cstdlib>

#include "c2b/core/asymmetric.h"

namespace {

c2b::AppProfile make_app(double f_seq) {
  c2b::AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.35;
  app.f_seq = f_seq;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 15;
  app.g = c2b::ScalingFunction::fixed();  // fixed problem: the Amdahl regime
  app.hit_concurrency = 2.0;
  app.miss_concurrency = 3.0;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;
  return app;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace c2b;

  MachineProfile machine;
  machine.chip.total_area = 128.0;
  machine.chip.shared_area = 8.0;
  machine.memory_contention = 0.05;

  OptimizerOptions options;
  options.n_max = 24;
  options.nelder_mead_restarts = 2;

  if (argc > 1) {
    // Single-shot detailed design at the requested f_seq.
    const double f_seq = std::atof(argv[1]);
    const AsymmetricOptimizer optimizer(
        AsymmetricC2BoundModel(make_app(f_seq), machine), options);
    const AsymmetricOptimum result = optimizer.optimize();
    const AsymmetricEvaluation& best = result.best;
    std::printf("f_seq = %.2f: %lld small cores + 1 big core (r = %.2f)\n", f_seq,
                best.design.n_small, best.design.big_core_ratio);
    std::printf("  big core:   a0=%.2f a1=%.2f a2=%.2f  CPI_exe=%.3f  C-AMAT=%.2f\n",
                best.big.a0, best.big.a1, best.big.a2, best.cpi_big, best.camat_big);
    std::printf("  small core: a0=%.2f a1=%.2f a2=%.2f  CPI_exe=%.3f  C-AMAT=%.2f\n",
                best.small.a0, best.small.a1, best.small.a2, best.cpi_small,
                best.camat_small);
    std::printf("  serial %.3g + parallel %.3g = %.3g cycles (speedup over big-serial "
                "%.2fx)\n",
                best.serial_time, best.parallel_time, best.execution_time,
                best.speedup_vs_big_serial);
    return 0;
  }

  std::printf("%-8s | %-28s | %-12s | %s\n", "f_seq", "asymmetric optimum",
              "asym time", "symmetric time (best N)");
  for (const double f_seq : {0.02, 0.1, 0.2, 0.35, 0.5}) {
    const AppProfile app = make_app(f_seq);
    const AsymmetricOptimum asym =
        AsymmetricOptimizer(AsymmetricC2BoundModel(app, machine), options).optimize();
    const OptimalDesign sym = C2BoundOptimizer(C2BoundModel(app, machine), options).optimize();
    std::printf("%-8.2f | n=%-3lld + big r=%-6.2f        | %-12.4g | %.4g (N=%.0f)\n",
                f_seq, asym.best.design.n_small, asym.best.design.big_core_ratio,
                asym.best.execution_time, sym.best.execution_time,
                sym.best.design.n_cores);
  }
  std::printf("\nreading: as f_seq grows, the asymmetric design buys a bigger big core\n"
              "and pulls further ahead of the best symmetric chip — the serial phase\n"
              "is where Pollack's sqrt returns are still worth paying for.\n");
  return 0;
}
