// Phase-adaptive reconfiguration (paper Sections IV-V): programs change
// behavior phase by phase, and the lightweight HCD/MCD counters let the
// runtime re-match hardware to the current phase.
//
// A phased workload alternates between a pointer-chasing phase (C ~ 1,
// extra cores useless) and a high-MLP streaming phase (C >> 1, cores pay
// off). We characterize each execution window with the on-line detector,
// feed the measured profile to the C²-Bound optimizer, and print the
// recommended configuration per window.
//
// Usage: ./build/examples/phase_adaptive

#include <cstdio>
#include <memory>

#include "c2b/core/optimizer.h"
#include "c2b/sim/system/system.h"
#include "c2b/trace/generators.h"

namespace {

c2b::sim::SystemConfig monitoring_system() {
  c2b::sim::SystemConfig config;
  config.core.issue_width = 4;
  config.core.rob_size = 128;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  return config;
}

}  // namespace

int main() {
  using namespace c2b;

  // Two alternating phases of 60k instructions each.
  constexpr std::uint64_t kPhaseLen = 60'000;
  std::vector<PhasedGenerator::Phase> phases;
  phases.push_back({std::make_shared<PointerChaseGenerator>(1 << 13, 2, 1), kPhaseLen});
  ZipfStreamGenerator::Params zipf;
  zipf.working_set_lines = 1 << 14;
  zipf.zipf_exponent = 0.5;
  zipf.f_mem = 0.6;
  zipf.seed = 2;
  phases.push_back({std::make_shared<ZipfStreamGenerator>(zipf), kPhaseLen});
  PhasedGenerator generator(std::move(phases));

  MachineProfile machine;
  machine.chip.total_area = 256.0;
  machine.chip.shared_area = 16.0;
  // Shared-controller queueing: with C ~ 1 every queued cycle is exposed,
  // so the optimizer backs off the core count; high C hides it.
  machine.memory_contention = 0.3;

  std::printf("%-8s %10s %8s %8s %8s | %-12s %6s\n", "window", "C-AMAT", "C", "C_H", "C_M",
              "recommend", "cores");
  for (int window = 0; window < 6; ++window) {
    // Simulate this window in isolation and read the detector, as the
    // hardware counters would be read and reset at a phase boundary.
    const Trace trace = generator.generate(kPhaseLen);
    const sim::SystemResult result =
        sim::simulate_single_core(monitoring_system(), trace);
    const TimelineMetrics& m = result.cores[0].camat;

    // Feed the measured concurrency structure into the optimizer.
    AppProfile app;
    app.ic0 = 1e6;
    app.f_mem = result.cores[0].f_mem;
    app.f_seq = 0.05;
    app.overlap_ratio = 0.3;
    app.working_set_lines0 =
        std::max<double>(1024.0, static_cast<double>(trace.distinct_lines()));
    app.g = ScalingFunction::linear();
    app.hit_concurrency = m.camat_params.hit_concurrency;
    app.miss_concurrency = m.camat_params.miss_concurrency;
    app.pure_miss_fraction =
        m.amat_params.miss_rate > 0
            ? std::min(1.0, m.camat_params.pure_miss_rate / m.amat_params.miss_rate)
            : 0.5;
    app.pure_penalty_fraction =
        m.amat_params.miss_penalty > 0
            ? std::min(1.5, m.camat_params.pure_miss_penalty / m.amat_params.miss_penalty)
            : 0.8;

    OptimizerOptions opts;
    opts.n_max = 64;
    const OptimalDesign design =
        C2BoundOptimizer(C2BoundModel(app, machine), opts).optimize();

    std::printf("%-8d %10.2f %8.2f %8.2f %8.2f | %-12s %6.0f\n", window, m.camat_value,
                m.concurrency_c, m.camat_params.hit_concurrency,
                m.camat_params.miss_concurrency,
                design.opt_case == OptimizationCase::kMaximizeThroughput ? "max W/T"
                                                                         : "min T",
                design.best.design.n_cores);
  }
  std::printf("\nreading: chase windows (odd/even alternation) report C ~ 1 and earn a\n"
              "small-core recommendation; streaming windows report C >> 1 and flip the\n"
              "recommendation toward many cores — the dynamic matching of Section V.\n");
  return 0;
}
