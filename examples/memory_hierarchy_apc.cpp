// Per-layer APC measurement (paper Section V / Fig. 13): which layer of the
// memory hierarchy binds performance? APC_i is accesses per memory-active
// cycle at layer i; the steep on-chip/off-chip cliff is why C²-Bound treats
// the on-chip capacity as the binding memory bound.
//
// Usage: ./build/examples/memory_hierarchy_apc [workload]
//   workload in {tmm, stencil, fft, band_sparse, pointer_chase,
//                fluidanimate_like}; default: tmm. Also sweeps the L1 size
//   to show how capacity moves the APC profile.

#include <cstdio>
#include <cstring>

#include "c2b/sim/system/system.h"
#include "c2b/trace/workloads.h"

int main(int argc, char** argv) {
  using namespace c2b;

  const char* wanted = argc > 1 ? argv[1] : "tmm";
  const auto catalog = workload_catalog();
  const WorkloadSpec* spec = nullptr;
  for (const WorkloadSpec& s : catalog)
    if (s.name == wanted) spec = &s;
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; choices:", wanted);
    for (const WorkloadSpec& s : catalog) std::fprintf(stderr, " %s", s.name.c_str());
    std::fprintf(stderr, "\n");
    return 1;
  }

  const Trace trace = spec->make_generator(1.0, 42)->generate(200'000);
  std::printf("workload %s: %llu instructions, f_mem = %.2f, footprint = %llu lines\n\n",
              spec->name.c_str(), (unsigned long long)trace.instruction_count(),
              trace.f_mem(), (unsigned long long)trace.distinct_lines());

  std::printf("%-10s %10s %10s %12s %10s %10s\n", "L1 size", "APC_1", "APC_2", "APC_3",
              "L1 MR", "CPI");
  for (const unsigned long long l1_kib : {8ull, 16ull, 32ull, 64ull, 128ull}) {
    sim::SystemConfig config;
    config.hierarchy.l1_geometry = {.size_bytes = l1_kib * 1024, .line_bytes = 64,
                                    .associativity = 8};
    config.hierarchy.l2_geometry = {.size_bytes = 1024 * 1024, .line_bytes = 64,
                                    .associativity = 8};
    const sim::SystemResult result = sim::simulate_single_core(config, trace);
    const sim::HierarchyStats& h = result.hierarchy;
    std::printf("%7lluKiB %10.4f %10.4f %12.4f %10.4f %10.3f\n", l1_kib, h.apc_l1,
                h.apc_l2, h.apc_mem, h.l1_miss_ratio, result.cores[0].cpi);
  }

  std::printf("\nreading: APC_1 >> APC_2 > APC_3 — each level down the hierarchy\n"
              "serves far fewer accesses per active cycle. Growing the L1 raises\n"
              "APC_1 (more hits per busy cycle) and starves the lower levels, which\n"
              "is exactly the capacity lever the C²-Bound optimizer trades against\n"
              "core count.\n");
  return 0;
}
