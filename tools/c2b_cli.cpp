// c2b — the C²-Bound command-line tool.
//
//   c2b workloads
//       List the built-in synthetic workloads.
//   c2b characterize --workload <name> [--instructions N] [--simpoints]
//       Trace + simulate the workload and print its measured AppProfile.
//   c2b optimize [--f-mem F] [--f-seq F] [--ch C] [--cm C] [--overlap R]
//                [--working-set LINES] [--g fixed|linear|power:<b>|fft:<M>]
//                [--area A] [--shared-area A] [--contention Q] [--n-max N]
//                [--asymmetric] [--objective time|energy|edp|ed2p]
//       Solve the C²-Bound chip-design problem for the given profile and
//       print the optimum, the per-N frontier, and the elasticity profile.
//   c2b simulate --workload <name> [--cores N] [--l1-kib K] [--l2-kib K]
//                [--issue W] [--rob R] [--prefetch none|nextline|stride]
//                [--coherence] [--instructions N]
//       Run the cycle-level simulator and print CPI, C-AMAT, APC per layer.
//   c2b trace --workload <name> --out <file> [--instructions N] [--scale S]
//       Generate a trace and save it in the binary trace format.
//   c2b aps [--workload <name>] [--instructions N] [--per-core-cap N]
//           [--characterize-instructions N] [--radius R] [--area A]
//           [--shared-area A] [--seed S] [--repeat N]
//           [--lockstep-records N] [--no-simd]
//       Run the APS design-space exploration (characterize, analytic
//       solve, neighborhood simulation) on a small grid and print the
//       chosen design plus the run's simulation/memory-access totals.
//       --repeat re-runs the whole flow N times: repeats are served by the
//       memoized simulation cache and must match the first run bit for bit
//       (watch exec.simcache.hit in --metrics-out).
//   c2b dse [--workload <name>] [--instructions N] [--per-core-cap N]
//           [--area A] [--shared-area A] [--seed S]
//           [--lockstep-records N] [--no-simd] [--pareto]
//           [--power-budget P] [--bw-budget B] [--noc-budget L]
//           [--surrogate | --no-surrogate] [--surrogate-band B]
//           [--surrogate-warmup N] [--large-axes]
//       Run the full-factorial DSE (every feasible grid point simulated,
//       batched over shared trace streams) and print the ground-truth best
//       design plus the batch/cache effectiveness summary.
//       --surrogate enables the MLP-guided sweep pruner: trace-equivalence
//       classes whose predicted best member falls outside the relative
//       --surrogate-band (default 0.25) of the incumbent are skipped, after
//       --surrogate-warmup (default 3) exact samples per class seed the
//       model; a guaranteed exact fallback pass makes the printed optimum
//       (and the --pareto frontier) simulator ground truth either way.
//       --large-axes swaps in the Fig.-12-scale preset grid (~10^5 points)
//       instead of the default smoke-sized grid.
//       --lockstep-records sets the batched-replay lockstep granularity;
//       --no-simd forces the scalar lockstep driver (results are identical
//       either way — both are tuning/escape knobs, shared with `c2b aps`).
//       --power-budget / --bw-budget / --noc-budget (all > 0; also accepted
//       by `c2b aps`) add power, off-chip-bandwidth, and NoC-bisection
//       ceilings to the Eq. (12) area constraint; infeasible points are
//       never simulated. --pareto switches to the Pareto-frontier mode:
//       every feasible point is swept with the same batched engine and the
//       non-dominated (time, power, area) set is printed along with
//       per-constraint rejection/binding statistics.
//   c2b report --journal <file> [--top K] [--heatmap-out <csv>]
//       Replay a run journal (see --journal-out) into a post-mortem: phase
//       time breakdown, cache/batch effectiveness, top-K slowest trace
//       classes, per-class sim-time percentiles, and (with --heatmap-out)
//       an objective-vs-(N, cache split) CSV heatmap.
//   c2b check [--family all|analytic|determinism|invariants|kernel|batch|simd|constraint|surrogate|cache]
//             [--seed S] [--configs N] [--aps-configs N] [--cases N]
//             [--designs N] [--kernel-configs N] [--batch-sets N]
//             [--simd-sets N] [--constraint-sets N] [--surrogate-sets N]
//             [--cache-sets N] [--bands-out <file>] [--corpus <dir>]
//       Run the differential oracle families (analytic model vs simulator
//       tolerance bands, serial-vs-parallel determinism on random configs,
//       invariant registry). Deterministic for a fixed --seed; failures
//       print a one-line C2B_CHECK_SEED/C2B_CHECK_CASE repro and exit
//       nonzero. --bands-out exports the per-workload tolerance bands as
//       JSON; --corpus persists shrunk property counterexamples.
//   c2b serve [--port P] [--host H] [--port-file <file>] [--spool <dir>]
//             [--max-active N] [--max-queue N] [--cache-dir <dir>]
//       Run the DSE service: a loopback HTTP daemon accepting concurrent
//       dse/aps/check jobs (POST /jobs with a flat JSON body) on the shared
//       thread pool, with bounded admission (--max-queue unfinished jobs,
//       --max-active running at once), per-job journal streaming
//       (GET /jobs/<id>/events, needs --spool), process-wide telemetry at
//       GET /metrics, and graceful drain on POST /shutdown. --port 0 picks
//       an ephemeral port, written to --port-file for scripts. --cache-dir
//       attaches the persistent sim-cache tier (same as C2B_SIM_CACHE_DIR),
//       so every job warm-starts from all previous runs.
//   c2b submit --port P [--type dse|aps|check] [--workload <name>]
//              [--family <oracle>] [--instructions N] [--per-core-cap N]
//              [--area A] [--shared-area A] [--seed S] [--radius R]
//              [--characterize-instructions N] [--large-axes] [--pareto]
//              [--surrogate] [--job-threads N] [--body <json>]
//              [--wait] [--poll-ms N]
//       Submit one job to a running `c2b serve` and print the job id.
//       Flags assemble the JSON body (--body overrides with raw JSON);
//       --job-threads is the job's admission weight. --wait polls the
//       status endpoint until the job finishes and prints the result.
//   c2b fetch --port P [--path /metrics] [--post]
//       One-shot HTTP helper against a running daemon: GET (or POST) the
//       path and print the response body (e.g. /metrics, /stats,
//       /jobs/0/events?from=0, /shutdown with --post).
//
// Flags accepted by every command:
//   --threads N            parallel execution width for the DSE/APS sweeps
//                          (default: C2B_THREADS env, else hardware
//                          concurrency; 1 = serial)
//   --metrics-out <path>   dump the counter/gauge/histogram registry after
//                          the command (JSON, or CSV when path ends .csv)
//   --trace-out <path>     dump recorded spans as Chrome trace-event JSON
//                          (load in chrome://tracing or Perfetto)
//   --span-sample-period N record only every Nth span per thread
//   --journal-out <path>   record the run into an append-only JSONL journal
//                          (the flight recorder `c2b report` replays)
//   --progress[=N]         live progress/ETA line on stderr, redrawn at
//                          most every N ms (default 500), plus a per-phase
//                          wall-clock attribution summary at end of run
//
// Every command prints plain text to stdout; exit code 0 on success.
// Unknown flags are an error: each command lists them and exits nonzero.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "c2b/aps/aps.h"
#include "c2b/aps/characterize.h"
#include "c2b/check/oracles.h"
#include "c2b/core/asymmetric.h"
#include "c2b/core/energy.h"
#include "c2b/core/optimizer.h"
#include "c2b/core/sensitivity.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"
#include "c2b/obs/export.h"
#include "c2b/obs/journal.h"
#include "c2b/obs/obs.h"
#include "c2b/obs/progress.h"
#include "c2b/obs/report.h"
#include "c2b/serve/http.h"
#include "c2b/serve/server.h"
#include "c2b/sim/system/system.h"
#include "c2b/trace/trace_io.h"
#include "c2b/trace/workloads.h"
#include "cli_args.h"

namespace c2b::cli {
namespace {

int usage() {
  std::fprintf(stderr,
               "usage: c2b <command> [flags]\n"
               "commands: workloads | characterize | optimize | simulate | trace | aps | dse | report | check | serve | submit | fetch\n"
               "run `c2b <command> --help` is not needed — see the header of\n"
               "tools/c2b_cli.cpp or README.md for the flag lists.\n");
  return 2;
}

const WorkloadSpec* find_workload(const std::vector<WorkloadSpec>& catalog,
                                  const std::string& name) {
  for (const WorkloadSpec& spec : catalog)
    if (spec.name == name) return &spec;
  return nullptr;
}

ScalingFunction parse_g(const std::string& text) {
  if (text == "fixed") return ScalingFunction::fixed();
  if (text == "linear") return ScalingFunction::linear();
  if (text.rfind("power:", 0) == 0) return ScalingFunction::power(std::stod(text.substr(6)));
  if (text.rfind("fft:", 0) == 0) return ScalingFunction::fft_like(std::stod(text.substr(4)));
  throw std::invalid_argument("unknown g(N) spec '" + text +
                              "' (want fixed|linear|power:<b>|fft:<M>)");
}

sim::SystemConfig default_system() {
  sim::SystemConfig config;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 512 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  return config;
}

// ---------------------------------------------------------------------------

int cmd_workloads(const Args& args) {
  args.finish();
  std::printf("%-20s %-8s %-10s %s\n", "name", "f_seq", "g(N)", "emulates");
  for (const WorkloadSpec& spec : workload_catalog()) {
    std::printf("%-20s %-8.2f %-10s %s\n", spec.name.c_str(), spec.f_seq,
                spec.g.description().substr(0, 10).c_str(), spec.emulates.c_str());
  }
  return 0;
}

int cmd_characterize(const Args& args) {
  const std::string name = args.get("workload", std::string("fluidanimate_like"));
  const auto catalog = workload_catalog();
  const WorkloadSpec* spec = find_workload(catalog, name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (see `c2b workloads`)\n", name.c_str());
    return 2;
  }
  CharacterizeOptions options;
  options.instructions =
      static_cast<std::uint64_t>(args.get("instructions", 200'000LL));
  options.use_simpoints = args.has("simpoints");
  args.mark_used("simpoints");
  args.finish();

  const Characterization c = characterize(*spec, default_system(), options);
  std::printf("workload: %s (%s)\n", spec->name.c_str(), spec->emulates.c_str());
  std::printf("simulated %zu instructions in %zu runs\n\n", c.simulated_instructions,
              c.simulation_runs);
  std::printf("f_mem                 %8.3f\n", c.app.f_mem);
  std::printf("CPI (measured)        %8.3f\n", c.measured_cpi);
  std::printf("CPI_exe (perfect mem) %8.3f\n", c.cpi_exe);
  std::printf("AMAT                  %8.3f cycles\n", c.camat.amat_value);
  std::printf("C-AMAT                %8.3f cycles\n", c.camat.camat_value);
  std::printf("concurrency C         %8.3f\n", c.camat.concurrency_c);
  std::printf("C_H / C_M             %8.3f / %.3f\n", c.app.hit_concurrency,
              c.app.miss_concurrency);
  std::printf("pMR/MR, pAMP/AMP      %8.3f / %.3f\n", c.app.pure_miss_fraction,
              c.app.pure_penalty_fraction);
  std::printf("overlap ratio         %8.3f\n", c.app.overlap_ratio);
  std::printf("working set           %8.0f lines\n", c.app.working_set_lines0);
  std::printf("L1 miss power law     MR(S) ~ %.4g * S^-%.3f\n", c.l1_power_law.alpha,
              c.l1_power_law.beta);
  std::printf("APC per layer         L1 %.3f | L2 %.4f | DRAM %.4f\n", c.hierarchy.apc_l1,
              c.hierarchy.apc_l2, c.hierarchy.apc_mem);
  return 0;
}

AppProfile profile_from_flags(const Args& args) {
  AppProfile app;
  app.ic0 = args.get("ic0", 1e6);
  app.f_mem = args.get("f-mem", 0.35);
  app.f_seq = args.get("f-seq", 0.05);
  app.overlap_ratio = args.get("overlap", 0.3);
  app.working_set_lines0 = args.get("working-set", 32768.0);
  app.g = parse_g(args.get("g", std::string("power:1.5")));
  app.hit_concurrency = args.get("ch", 2.0);
  app.miss_concurrency = args.get("cm", 3.0);
  app.pure_miss_fraction = args.get("pure-miss-fraction", 0.6);
  app.pure_penalty_fraction = args.get("pure-penalty-fraction", 0.8);
  return app;
}

MachineProfile machine_from_flags(const Args& args) {
  MachineProfile machine;
  machine.chip.total_area = args.get("area", 256.0);
  machine.chip.shared_area = args.get("shared-area", 16.0);
  machine.memory_contention = args.get("contention", 0.05);
  machine.memory_latency = args.get("memory-latency", machine.memory_latency);
  return machine;
}

int cmd_optimize(const Args& args) {
  const AppProfile app = profile_from_flags(args);
  const MachineProfile machine = machine_from_flags(args);
  OptimizerOptions options;
  options.n_max = args.get("n-max", 0LL);
  const std::string objective = args.get("objective", std::string("time"));
  const bool asymmetric = args.has("asymmetric");
  args.mark_used("asymmetric");
  args.finish();

  if (asymmetric) {
    const AsymmetricOptimizer optimizer(AsymmetricC2BoundModel(app, machine), options);
    const AsymmetricOptimum result = optimizer.optimize();
    std::printf("asymmetric optimum (%s):\n",
                result.opt_case == OptimizationCase::kMaximizeThroughput ? "max W/T"
                                                                         : "min T");
    std::printf("  small cores n      = %lld\n", result.best.design.n_small);
    std::printf("  big core ratio r   = %.2f small-core equivalents\n",
                result.best.design.big_core_ratio);
    std::printf("  area fractions     = core %.2f | L1 %.2f | L2 %.2f\n",
                result.best.design.core_fraction(), result.best.design.l1_fraction,
                result.best.design.l2_fraction);
    std::printf("  serial / parallel  = %.3g / %.3g cycles\n", result.best.serial_time,
                result.best.parallel_time);
    std::printf("  time, throughput   = %.4g cycles, %.4g work/cycle\n",
                result.best.execution_time, result.best.throughput);
    return 0;
  }

  if (objective != "time") {
    DesignObjective parsed = DesignObjective::kEdp;
    if (objective == "energy") parsed = DesignObjective::kEnergy;
    else if (objective == "edp") parsed = DesignObjective::kEdp;
    else if (objective == "ed2p") parsed = DesignObjective::kEd2p;
    else {
      std::fprintf(stderr, "unknown objective '%s'\n", objective.c_str());
      return 2;
    }
    const EnergyAwareOptimizer optimizer(
        EnergyAwareModel(C2BoundModel(app, machine), EnergyModel{}), options);
    const EnergyOptimum result = optimizer.optimize(parsed);
    const DesignPoint& d = result.best.performance.design;
    std::printf("%s-optimal design:\n", objective.c_str());
    std::printf("  N = %.0f, A0 = %.3f, A1 = %.3f, A2 = %.3f\n", d.n_cores, d.a0, d.a1,
                d.a2);
    std::printf("  time %.4g cycles | energy %.4g | EDP %.4g | power %.4g\n",
                result.best.performance.execution_time, result.best.total_energy,
                result.best.edp, result.best.average_power);
    return 0;
  }

  const C2BoundOptimizer optimizer(C2BoundModel(app, machine), options);
  const OptimalDesign result = optimizer.optimize();
  std::printf("C²-Bound optimum (%s):\n",
              result.opt_case == OptimizationCase::kMaximizeThroughput
                  ? "case I: maximize W/T"
                  : "case II: minimize T");
  const DesignPoint& d = result.best.design;
  std::printf("  N = %.0f cores, A0 = %.3f, A1 = %.3f, A2 = %.3f (area units)\n", d.n_cores,
              d.a0, d.a1, d.a2);
  std::printf("  C-AMAT %.3f cycles (C = %.2f), L1 MR %.4f, L2 local MR %.4f\n",
              result.best.camat, result.best.concurrency_c, result.best.l1_miss_rate,
              result.best.l2_local_miss_rate);
  std::printf("  time %.4g cycles | throughput %.4g | Sun-Ni speedup %.2f\n",
              result.best.execution_time, result.best.throughput,
              result.best.speedup_vs_serial);
  std::printf("  area price lambda = %.4g\n\n", result.lambda);

  const C2BoundModel model(app, machine);
  const auto elasticities = time_elasticities(model, d);
  std::printf("elasticities at the optimum (d log T / d log x):\n");
  for (const Elasticity& e : elasticities)
    std::printf("  %-24s %+8.4f  (at %.4g)\n", e.parameter.c_str(), e.elasticity, e.value);
  std::printf("binding bound: %s\n", to_string(classify_binding_bound(elasticities)));
  return 0;
}

int cmd_simulate(const Args& args) {
  const std::string name = args.get("workload", std::string("stencil"));
  const auto catalog = workload_catalog();
  const WorkloadSpec* spec = find_workload(catalog, name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (see `c2b workloads`)\n", name.c_str());
    return 2;
  }

  sim::SystemConfig config = default_system();
  const auto cores = static_cast<std::uint32_t>(args.get("cores", 1LL));
  config.hierarchy.cores = cores;
  config.hierarchy.l1_geometry.size_bytes =
      static_cast<std::uint64_t>(args.get("l1-kib", 16LL)) * 1024;
  config.hierarchy.l2_geometry.size_bytes =
      static_cast<std::uint64_t>(args.get("l2-kib", 512LL)) * 1024;
  config.core.issue_width = static_cast<std::uint32_t>(args.get("issue", 4LL));
  config.core.rob_size = static_cast<std::uint32_t>(args.get("rob", 128LL));
  config.hierarchy.coherence = args.has("coherence");
  args.mark_used("coherence");
  const std::string prefetch = args.get("prefetch", std::string("none"));
  if (prefetch == "nextline") config.hierarchy.l1_prefetch.kind = sim::PrefetchKind::kNextLine;
  else if (prefetch == "stride") config.hierarchy.l1_prefetch.kind = sim::PrefetchKind::kStride;
  else if (prefetch != "none") {
    std::fprintf(stderr, "unknown prefetch kind '%s'\n", prefetch.c_str());
    return 2;
  }
  const auto instructions =
      static_cast<std::uint64_t>(args.get("instructions", 100'000LL));
  args.finish();

  std::vector<Trace> traces;
  for (std::uint32_t c = 0; c < cores; ++c)
    traces.push_back(spec->make_generator(1.0, 7 + c)->generate(instructions));
  const sim::SystemResult result = sim::simulate_system(config, traces);

  std::printf("workload %s on %u core(s), %llu instructions each\n", spec->name.c_str(),
              cores, static_cast<unsigned long long>(instructions));
  std::printf("makespan          %llu cycles (aggregate IPC %.3f)\n",
              static_cast<unsigned long long>(result.cycles), result.aggregate_ipc());
  std::uint64_t memory_accesses = 0;
  for (const sim::CoreResult& core : result.cores) memory_accesses += core.memory_accesses;
  std::printf("memory accesses   %llu (all cores)\n",
              static_cast<unsigned long long>(memory_accesses));
  const sim::CoreResult& core0 = result.cores[0];
  std::printf("core 0: CPI %.3f | f_mem %.3f | AMAT %.2f | C-AMAT %.2f | C %.2f\n",
              core0.cpi, core0.f_mem, core0.camat.amat_value, core0.camat.camat_value,
              core0.camat.concurrency_c);
  const sim::HierarchyStats& h = result.hierarchy;
  std::printf("L1 MR %.4f | L2 local MR %.4f | DRAM accesses %llu (row hit %.2f)\n",
              h.l1_miss_ratio, h.l2_miss_ratio,
              static_cast<unsigned long long>(h.dram_accesses), h.dram_row_hit_ratio);
  std::printf("APC: L1 %.3f | L2 %.4f | DRAM %.4f\n", h.apc_l1, h.apc_l2, h.apc_mem);
  std::printf("writebacks: L1->L2 %llu | L2->DRAM %llu\n",
              static_cast<unsigned long long>(h.l1_writebacks),
              static_cast<unsigned long long>(h.l2_writebacks));
  if (config.hierarchy.l1_prefetch.kind != sim::PrefetchKind::kNone)
    std::printf("prefetch: issued %llu, useful %llu (accuracy %.2f)\n",
                static_cast<unsigned long long>(h.prefetches_issued),
                static_cast<unsigned long long>(h.prefetch_useful_hits),
                h.prefetch_accuracy);
  if (config.hierarchy.coherence)
    std::printf("coherence: invalidations %llu, owner transfers %llu, upgrades %llu\n",
                static_cast<unsigned long long>(h.coherence_invalidations),
                static_cast<unsigned long long>(h.coherence_owner_transfers),
                static_cast<unsigned long long>(h.coherence_upgrades));
  return 0;
}

// One-line batch/cache effectiveness summary shared by `c2b dse` and
// `c2b aps`: sim-cache traffic for the whole process, plus how the batched
// replay engine covered this command's sweeps.
void print_batch_summary(const BatchReplayStats& batch) {
  const exec::SimCacheStats cache = exec::SimCache::global().stats();
  std::printf("cache hits %llu (%llu mem + %llu disk) / misses %llu | "
              "batch classes %zu (%zu members) | regen avoided %llu accesses\n",
              static_cast<unsigned long long>(cache.hits + cache.disk_hits),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.disk_hits),
              static_cast<unsigned long long>(cache.misses), batch.classes, batch.members,
              static_cast<unsigned long long>(batch.regen_avoided_accesses));
  if (exec::SimCache::global().has_disk_tier())
    std::printf("disk tier: %llu hits / %llu misses | %zu entries | "
                "%llu flushes | %llu drops\n",
                static_cast<unsigned long long>(cache.disk_hits),
                static_cast<unsigned long long>(cache.disk_misses), cache.disk_entries,
                static_cast<unsigned long long>(cache.disk_flushes),
                static_cast<unsigned long long>(cache.disk_drops));
  if (batch.simd_steps > 0)
    std::printf("simd kernel: %llu steps | %llu peeled records | %llu lane-rounds\n",
                static_cast<unsigned long long>(batch.simd_steps),
                static_cast<unsigned long long>(batch.simd_peels),
                static_cast<unsigned long long>(batch.simd_lanes_active));
}

/// Journal the sweep configuration (full context + workload uid) before the
/// run and the batch totals after — the pair `c2b report` attributes
/// cache/batch effectiveness from.
void journal_sweep_config(const char* command, const DseContext& context,
                          std::size_t grid_points) {
  if (auto* journal = obs::active_journal())
    journal->emit(obs::JournalEvent("sweep_config")
                      .str("command", command)
                      .str("workload", context.workload.name)
                      .str("workload_uid", context.workload.uid)
                      .count("instructions", context.instructions0)
                      .count("per_core_cap", context.per_core_cap)
                      .num("area", context.chip.total_area)
                      .num("shared_area", context.chip.shared_area)
                      .count("seed", context.seed)
                      .count("grid_points", grid_points));
}

void journal_batch_stats(const BatchReplayStats& batch) {
  auto* journal = obs::active_journal();
  if (journal == nullptr) return;
  journal->emit(obs::JournalEvent("batch_stats")
                    .count("classes", batch.classes)
                    .count("members", batch.members)
                    .count("cache_hits", batch.cache_hits)
                    .count("cache_hits_disk", batch.cache_hits_disk)
                    .count("chunks_shared", batch.chunks_shared)
                    .count("regen_avoided_accesses", batch.regen_avoided_accesses)
                    .count("simd_steps", batch.simd_steps)
                    .count("simd_peels", batch.simd_peels)
                    .count("simd_lanes_active", batch.simd_lanes_active));
  // Tier attribution snapshot for the `c2b report` "== cache ==" section:
  // process-wide sim-cache traffic split memory vs disk at the end of the
  // sweep.
  const exec::SimCacheStats cache = exec::SimCache::global().stats();
  journal->emit(obs::JournalEvent("cache_tiers")
                    .count("mem_hits", cache.hits)
                    .count("misses", cache.misses)
                    .count("mem_entries", cache.entries)
                    .count("evictions", cache.evictions)
                    .count("disk_attached", exec::SimCache::global().has_disk_tier() ? 1 : 0)
                    .count("disk_hits", cache.disk_hits)
                    .count("disk_misses", cache.disk_misses)
                    .count("disk_entries", cache.disk_entries)
                    .count("disk_flushes", cache.disk_flushes)
                    .count("disk_drops", cache.disk_drops));
}

/// Shared `--lockstep-records` / `--no-simd` handling for the sweep
/// commands. Returns false (after printing an error) on a bad value.
bool apply_batch_flags(const Args& args, const char* command, DseContext& context) {
  if (const auto lockstep = args.get_opt("lockstep-records",
                                         static_cast<long long>(context.lockstep_records))) {
    if (*lockstep < 1) {
      std::fprintf(stderr, "%s: --lockstep-records must be >= 1\n", command);
      return false;
    }
    context.lockstep_records = static_cast<std::uint64_t>(*lockstep);
  }
  context.use_simd = args.get("no-simd", std::string("false")) != "true";
  return true;
}

/// Shared `--power-budget` / `--bw-budget` / `--noc-budget` handling for
/// the sweep commands. Unset flags leave the budget infinite (constraint
/// not assembled); set values must be finite and > 0 — zero, negative, and
/// NaN budgets are rejected here with a clear message (non-numeric text is
/// rejected by the parser itself), exit nonzero either way.
bool apply_constraint_flags(const Args& args, const char* command, DseContext& context) {
  const struct {
    const char* flag;
    double* budget;
  } budgets[] = {{"power-budget", &context.power_budget},
                 {"bw-budget", &context.bw_budget},
                 {"noc-budget", &context.noc_budget}};
  for (const auto& entry : budgets) {
    if (!args.has(entry.flag)) continue;
    const double value = args.get(entry.flag, 0.0);
    if (!(value > 0.0) || !std::isfinite(value)) {
      std::fprintf(stderr, "%s: --%s must be a finite value > 0\n", command, entry.flag);
      return false;
    }
    *entry.budget = value;
  }
  return true;
}

/// Shared `--surrogate` / `--no-surrogate` / `--surrogate-band` /
/// `--surrogate-warmup` handling for the sweep commands. The two boolean
/// flags are mutually exclusive; the band must be finite and >= 0 and the
/// warmup >= 1 (non-numeric text is rejected by the parser itself). Returns
/// false after printing an error, exit nonzero either way.
bool apply_surrogate_flags(const Args& args, const char* command, DseContext& context) {
  const bool on = args.get("surrogate", std::string("false")) == "true";
  const bool off = args.get("no-surrogate", std::string("false")) == "true";
  if (on && off) {
    std::fprintf(stderr, "%s: --surrogate and --no-surrogate are mutually exclusive\n",
                 command);
    return false;
  }
  if (on) context.surrogate_enabled = true;
  if (off) context.surrogate_enabled = false;
  if (args.has("surrogate-band")) {
    const double band = args.get("surrogate-band", 0.0);
    if (!(band >= 0.0) || !std::isfinite(band)) {
      std::fprintf(stderr, "%s: --surrogate-band must be a finite value >= 0\n", command);
      return false;
    }
    context.surrogate_band = band;
  }
  if (args.has("surrogate-warmup")) {
    const auto warmup = args.get("surrogate-warmup", 0LL);
    if (warmup < 1) {
      std::fprintf(stderr, "%s: --surrogate-warmup must be >= 1\n", command);
      return false;
    }
    context.surrogate_warmup = static_cast<std::size_t>(warmup);
  }
  return true;
}

void print_surrogate_summary(const SurrogateStats& stats) {
  if (stats.classes_total == 0) return;
  const double class_pct =
      100.0 * static_cast<double>(stats.classes_simulated) /
      static_cast<double>(stats.classes_total);
  const double point_pct = stats.points_total > 0
                               ? 100.0 * static_cast<double>(stats.points_simulated) /
                                     static_cast<double>(stats.points_total)
                               : 0.0;
  std::printf("surrogate         %zu/%zu classes simulated (%.1f%%), %zu pruned\n",
              stats.classes_simulated, stats.classes_total, class_pct,
              stats.classes_pruned);
  std::printf("  points          %zu/%zu simulated (%.1f%%), warmup %zu, fallback %zu\n",
              stats.points_simulated, stats.points_total, point_pct, stats.warmup_sims,
              stats.fallback_sims);
  std::printf("  model           %zu round(s), %zu trained samples, final MRE %.2f%%\n",
              stats.rounds, stats.trained_samples, 100.0 * stats.mre);
}

int cmd_aps(const Args& args) {
  const std::string name = args.get("workload", std::string("stencil"));
  const auto catalog = workload_catalog();
  const WorkloadSpec* spec = find_workload(catalog, name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (see `c2b workloads`)\n", name.c_str());
    return 2;
  }

  DseContext context;
  context.base = default_system();
  context.workload = *spec;
  context.instructions0 = static_cast<std::uint64_t>(args.get("instructions", 20'000LL));
  context.per_core_cap = static_cast<std::uint64_t>(args.get("per-core-cap", 10'000LL));
  context.chip.total_area = args.get("area", 9.0);
  context.chip.shared_area = args.get("shared-area", 1.0);
  context.seed = static_cast<std::uint64_t>(args.get("seed", 99LL));
  if (!apply_batch_flags(args, "aps", context)) return 2;
  if (!apply_constraint_flags(args, "aps", context)) return 2;

  // A small buildable grid (the paper-scale space is bench territory; the
  // CLI command is for inspecting one APS run end to end).
  DseAxes axes;
  axes.a0 = {1.0, 4.0};
  axes.a1 = {0.5, 1.0};
  axes.a2 = {1.0, 2.0};
  axes.n = {1, 2};
  axes.issue = {2, 4};
  axes.rob = {32, 64};

  ApsOptions options;
  options.neighborhood_radius =
      static_cast<std::size_t>(args.get("radius", 1LL));
  options.characterize.instructions =
      static_cast<std::uint64_t>(args.get("characterize-instructions", 60'000LL));
  const auto repeat = args.get("repeat", 1LL);
  args.finish();
  if (repeat < 1) {
    std::fprintf(stderr, "aps: --repeat must be >= 1\n");
    return 2;
  }

  const GridSpace space = make_design_space(axes);
  journal_sweep_config("aps", context, space.size());
  ApsResult aps = run_aps(context, space, options);
  // Re-running the same neighborhood hits the memoized simulation cache;
  // every repeat must reproduce the first result bit for bit (the
  // exec.simcache.* counters in --metrics-out show the hit traffic).
  for (long long r = 1; r < repeat; ++r) {
    const ApsResult again = run_aps(context, space, options);
    if (again.best_index != aps.best_index || again.best_time != aps.best_time ||
        again.memory_accesses != aps.memory_accesses) {
      std::fprintf(stderr, "aps: repeat %lld diverged from the first run\n", r);
      return 1;
    }
  }

  std::printf("APS on workload %s (%s), %zu-point grid\n", spec->name.c_str(),
              spec->emulates.c_str(), space.size());
  std::printf("characterize: CPI %.3f (CPI_exe %.3f), f_mem %.3f, C-AMAT %.3f\n",
              aps.characterization.measured_cpi, aps.characterization.cpi_exe,
              aps.characterization.app.f_mem, aps.characterization.camat.camat_value);
  const DesignPoint& d = aps.analytic.best.design;
  std::printf("analytic optimum: N = %.0f, A0 = %.3f, A1 = %.3f, A2 = %.3f\n", d.n_cores,
              d.a0, d.a1, d.a2);
  const std::vector<double> chosen = space.point(aps.best_index);
  std::printf("chosen design: a0 %.2f | a1 %.2f | a2 %.2f | N %.0f | issue %.0f | rob %.0f\n",
              chosen[kAxisA0], chosen[kAxisA1], chosen[kAxisA2], chosen[kAxisN],
              chosen[kAxisIssue], chosen[kAxisRob]);
  std::printf("best time/work    %.6g cycles\n", aps.best_time);
  std::printf("simulations       %zu (narrowing factor %.1fx)\n", aps.simulations,
              aps.narrowing_factor);
  std::printf("memory accesses   %llu\n",
              static_cast<unsigned long long>(aps.memory_accesses));
  print_batch_summary(aps.batch);
  journal_batch_stats(aps.batch);
  return 0;
}

int cmd_dse(const Args& args) {
  const std::string name = args.get("workload", std::string("stencil"));
  const auto catalog = workload_catalog();
  const WorkloadSpec* spec = find_workload(catalog, name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (see `c2b workloads`)\n", name.c_str());
    return 2;
  }

  DseContext context;
  context.base = default_system();
  context.workload = *spec;
  context.instructions0 = static_cast<std::uint64_t>(args.get("instructions", 20'000LL));
  context.per_core_cap = static_cast<std::uint64_t>(args.get("per-core-cap", 10'000LL));
  context.chip.total_area = args.get("area", 9.0);
  context.chip.shared_area = args.get("shared-area", 1.0);
  context.seed = static_cast<std::uint64_t>(args.get("seed", 99LL));
  if (!apply_batch_flags(args, "dse", context)) return 2;
  if (!apply_constraint_flags(args, "dse", context)) return 2;
  if (!apply_surrogate_flags(args, "dse", context)) return 2;
  const bool pareto = args.has("pareto");
  args.mark_used("pareto");
  const bool large_axes = args.get("large-axes", std::string("false")) == "true";
  args.finish();

  // Same small buildable grid as `c2b aps`, so the two commands are directly
  // comparable (full factorial here vs analytic narrowing there).
  // --large-axes swaps in the Fig.-12-scale preset instead.
  DseAxes axes;
  if (large_axes) {
    axes = make_large_axes();
  } else {
    axes.a0 = {1.0, 4.0};
    axes.a1 = {0.5, 1.0};
    axes.a2 = {1.0, 2.0};
    axes.n = {1, 2};
    axes.issue = {2, 4};
    axes.rob = {32, 64};
  }

  const GridSpace space = make_design_space(axes);
  journal_sweep_config("dse", context, space.size());

  if (pareto) {
    const ParetoDseResult result = run_pareto_dse(context, space);
    std::printf("Pareto DSE on workload %s (%s), %zu-point grid\n", spec->name.c_str(),
                spec->emulates.c_str(), space.size());
    std::printf("feasible          %zu of %zu points\n", result.feasible_count,
                result.grid_points);
    std::printf("frontier          %zu non-dominated design(s) (time, power, area)\n",
                result.frontier.size());
    for (const FrontierPoint& fp : result.frontier)
      std::printf("  a0 %.2f | a1 %.2f | a2 %.2f | N %.0f | issue %.0f | rob %.0f"
                  "  -> time %.6g | power %.4g | area %.4g\n",
                  fp.point[kAxisA0], fp.point[kAxisA1], fp.point[kAxisA2],
                  fp.point[kAxisN], fp.point[kAxisIssue], fp.point[kAxisRob], fp.time,
                  fp.power, fp.area);
    std::printf("constraints:\n");
    for (const ConstraintUsage& usage : result.usage)
      std::printf("  %-10s budget %-10.4g rejected %-6zu binding %zu/%zu frontier\n",
                  usage.name.c_str(), usage.budget, usage.infeasible, usage.binding,
                  result.frontier.size());
    print_surrogate_summary(result.surrogate);
    print_batch_summary(result.batch);
    journal_batch_stats(result.batch);
    return 0;
  }

  const FullDseResult full = run_full_dse(context, space);

  std::printf("full-factorial DSE on workload %s (%s), %zu-point grid\n",
              spec->name.c_str(), spec->emulates.c_str(), space.size());
  const std::vector<double> best = space.point(full.best_index);
  std::printf("best design: a0 %.2f | a1 %.2f | a2 %.2f | N %.0f | issue %.0f | rob %.0f\n",
              best[kAxisA0], best[kAxisA1], best[kAxisA2], best[kAxisN],
              best[kAxisIssue], best[kAxisRob]);
  std::printf("best time/work    %.6g cycles\n", full.best_time);
  std::printf("simulations       %zu (%zu feasible of %zu points)\n", full.simulations,
              full.feasible_count, space.size());
  print_surrogate_summary(full.surrogate);
  print_batch_summary(full.batch);
  journal_batch_stats(full.batch);
  return 0;
}

int cmd_report(const Args& args) {
  const std::string journal_path = args.get("journal", std::string(""));
  const auto top_k = args.get("top", 10LL);
  const std::string heatmap_out = args.get("heatmap-out", std::string(""));
  args.finish();
  if (journal_path.empty()) {
    std::fprintf(stderr, "report: --journal <file> is required\n");
    return 2;
  }
  if (top_k < 1) {
    std::fprintf(stderr, "report: --top must be >= 1\n");
    return 2;
  }

  obs::JournalReadStats stats;
  const std::vector<obs::JournalRecord> records = obs::read_journal(journal_path, &stats);
  if (stats.lines == 0) {
    std::fprintf(stderr, "report: journal '%s' is empty or missing\n",
                 journal_path.c_str());
    return 1;
  }
  const obs::RunReport report = obs::build_report(records, stats);
  std::fputs(obs::render_report(report, static_cast<std::size_t>(top_k)).c_str(), stdout);

  if (!heatmap_out.empty()) {
    const std::string csv = obs::heatmap_csv(report);
    if (csv.empty()) {
      std::fprintf(stderr, "report: journal has no point events, heatmap not written\n");
      return 1;
    }
    std::ofstream out(heatmap_out);
    out << csv;
    if (!out) {
      std::fprintf(stderr, "report: cannot write heatmap to %s\n", heatmap_out.c_str());
      return 1;
    }
    std::printf("\nheatmap written to %s\n", heatmap_out.c_str());
  }
  return 0;
}

int cmd_trace(const Args& args) {
  const std::string name = args.get("workload", std::string("stencil"));
  const std::string out = args.get("out", std::string(""));
  if (out.empty()) {
    std::fprintf(stderr, "trace: --out <file> is required\n");
    return 2;
  }
  const auto catalog = workload_catalog();
  const WorkloadSpec* spec = find_workload(catalog, name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (see `c2b workloads`)\n", name.c_str());
    return 2;
  }
  const auto instructions =
      static_cast<std::uint64_t>(args.get("instructions", 100'000LL));
  const double scale = args.get("scale", 1.0);
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1LL));
  args.finish();

  Trace trace = spec->make_generator(scale, seed)->generate(instructions);
  trace.name = spec->name;
  save_trace(out, trace);
  std::printf("wrote %llu records (%llu distinct lines, f_mem %.3f) to %s\n",
              static_cast<unsigned long long>(trace.records.size()),
              static_cast<unsigned long long>(trace.distinct_lines()), trace.f_mem(),
              out.c_str());
  return 0;
}

int cmd_check(const Args& args) {
  check::OracleOptions options;
  options.seed = static_cast<std::uint64_t>(args.get("seed", 42LL));
  options.dse_configs = static_cast<std::size_t>(args.get("configs", 100LL));
  options.aps_configs = static_cast<std::size_t>(args.get("aps-configs", 4LL));
  options.invariant_cases = static_cast<std::size_t>(args.get("cases", 60LL));
  options.designs_per_workload = static_cast<std::size_t>(args.get("designs", 5LL));
  options.kernel_configs = static_cast<std::size_t>(args.get("kernel-configs", 40LL));
  options.batch_sets = static_cast<std::size_t>(args.get("batch-sets", 50LL));
  options.simd_sets = static_cast<std::size_t>(args.get("simd-sets", 3LL));
  options.constraint_sets = static_cast<std::size_t>(args.get("constraint-sets", 6LL));
  options.surrogate_sets = static_cast<std::size_t>(args.get("surrogate-sets", 3LL));
  options.cache_sets = static_cast<std::size_t>(args.get("cache-sets", 3LL));
  options.corpus_dir = args.get("corpus", std::string(""));
  const std::string bands_out = args.get("bands-out", std::string(""));
  const std::string family = args.get("family", std::string("all"));
  args.finish();

  std::vector<check::OracleReport> reports;
  if (family == "all") {
    reports = check::run_all_oracles(options);
  } else if (family == "analytic") {
    reports.push_back(check::run_analytic_vs_sim_oracle(options));
  } else if (family == "determinism") {
    reports.push_back(check::run_determinism_oracle(options));
  } else if (family == "invariants") {
    reports.push_back(check::run_invariant_oracle(options));
  } else if (family == "kernel") {
    reports.push_back(check::run_kernel_equivalence_oracle(options));
  } else if (family == "batch") {
    reports.push_back(check::run_batch_equivalence_oracle(options));
  } else if (family == "simd") {
    reports.push_back(check::run_simd_equivalence_oracle(options));
  } else if (family == "constraint") {
    reports.push_back(check::run_constraint_oracle(options));
  } else if (family == "surrogate") {
    reports.push_back(check::run_surrogate_oracle(options));
  } else if (family == "cache") {
    reports.push_back(check::run_persistent_cache_oracle(options));
  } else {
    std::fprintf(stderr,
                 "check: unknown --family '%s' (want all|analytic|determinism|invariants|kernel|batch|simd|constraint|surrogate|cache)\n",
                 family.c_str());
    return 2;
  }

  bool all_passed = true;
  for (const check::OracleReport& report : reports) {
    std::printf("%s %-16s %zu checks, %zu failure(s)\n",
                report.passed() ? "PASS" : "FAIL", report.family.c_str(), report.checks,
                report.failures.size());
    for (const check::ToleranceBand& band : report.bands)
      std::printf("  band %-20s mean %6.2f%% (tol %5.1f%%)  max %6.2f%% (tol %5.1f%%)  %s\n",
                  band.workload.c_str(), 100.0 * band.mean_abs_rel_error,
                  100.0 * band.mean_tolerance, 100.0 * band.max_abs_rel_error,
                  100.0 * band.max_tolerance, band.passed ? "ok" : "VIOLATED");
    for (const std::string& failure : report.failures)
      std::printf("  FAIL %s\n", failure.c_str());
    if (!bands_out.empty() && report.family == "analytic_vs_sim") {
      if (check::write_tolerance_bands_json(bands_out, report.bands))
        std::printf("tolerance bands written to %s\n", bands_out.c_str());
      else
        all_passed = false;
    }
    all_passed = all_passed && report.passed();
  }
  return all_passed ? 0 : 1;
}

int cmd_serve(const Args& args) {
  serve::ServerOptions options;
  options.host = args.get("host", std::string("127.0.0.1"));
  options.port = static_cast<int>(args.get("port", 0LL));
  options.max_active = static_cast<std::size_t>(args.get("max-active", 2LL));
  options.max_queue = static_cast<std::size_t>(args.get("max-queue", 64LL));
  options.spool_dir = args.get("spool", std::string(""));
  const std::string port_file = args.get("port-file", std::string(""));
  const std::string cache_dir = args.get("cache-dir", std::string(""));
  args.finish();

  if (!cache_dir.empty() && !exec::SimCache::global().attach_disk_tier(cache_dir)) {
    std::fprintf(stderr, "serve: cannot attach cache dir '%s'\n", cache_dir.c_str());
    return 1;
  }
  serve::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "serve: cannot write port file '%s'\n", port_file.c_str());
      return 1;
    }
  }
  std::printf("serving on %s:%d (max-active %zu, max-queue %zu)\n", options.host.c_str(),
              server.port(), options.max_active, options.max_queue);
  std::fflush(stdout);
  server.run();
  exec::SimCache::global().flush_disk();
  std::printf("serve: drained, exiting\n");
  return 0;
}

int cmd_submit(const Args& args) {
  const std::string host = args.get("host", std::string("127.0.0.1"));
  const int port = static_cast<int>(args.get("port", 0LL));
  std::string body = args.get("body", std::string(""));
  if (body.empty()) {
    // Assemble the flat JSON job body from flags; only flags actually
    // given are serialized, so server-side defaults stay in one place.
    body = "{\"type\":\"" + args.get("type", std::string("dse")) + "\"";
    for (const char* key : {"workload", "family"})
      if (args.has(key)) body += ",\"" + std::string(key) + "\":\"" + args.get(key, std::string("")) + "\"";
    for (const char* key :
         {"instructions", "per-core-cap", "area", "shared-area", "seed", "radius",
          "characterize-instructions", "power-budget", "bw-budget", "noc-budget",
          "surrogate-band", "surrogate-warmup"})
      if (args.has(key)) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", args.get(key, 0.0));
        body += ",\"" + std::string(key) + "\":" + buf;
      }
    for (const char* key : {"large-axes", "pareto", "surrogate"})
      if (args.get(key, std::string("false")) == "true")
        body += ",\"" + std::string(key) + "\":1";
    if (args.has("job-threads"))
      body += ",\"threads\":" + std::to_string(args.get("job-threads", 1LL));
    body += "}";
  } else {
    // A raw body overrides the assembler; still mark the flags used so
    // finish() does not reject mixed invocations.
    for (const char* key : {"type", "workload", "family", "job-threads"})
      (void)args.get(key, std::string(""));
  }
  const bool wait = args.get("wait", std::string("false")) == "true";
  const long long poll_ms = args.get("poll-ms", 200LL);
  args.finish();
  if (port <= 0) {
    std::fprintf(stderr, "submit: --port is required (see `c2b serve --port-file`)\n");
    return 2;
  }

  std::string error;
  const auto response = serve::http_request(host, port, "POST", "/jobs", body, &error);
  if (!response.has_value()) {
    std::fprintf(stderr, "submit: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s\n", response->body.c_str());
  if (response->status >= 300) return 1;
  if (!wait) return 0;

  const std::size_t id_pos = response->body.find("\"id\":");
  if (id_pos == std::string::npos) return 1;
  const unsigned long long id = std::strtoull(response->body.c_str() + id_pos + 5, nullptr, 10);
  const std::string path = "/jobs/" + std::to_string(id);
  for (;;) {
    const auto status = serve::http_request(host, port, "GET", path, {}, &error);
    if (!status.has_value()) {
      std::fprintf(stderr, "submit: %s\n", error.c_str());
      return 1;
    }
    const bool done = status->body.find("\"status\":\"done\"") != std::string::npos;
    const bool failed = status->body.find("\"status\":\"failed\"") != std::string::npos;
    if (done || failed) {
      std::printf("%s\n", status->body.c_str());
      return done ? 0 : 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms > 0 ? poll_ms : 200));
  }
}

int cmd_fetch(const Args& args) {
  const std::string host = args.get("host", std::string("127.0.0.1"));
  const int port = static_cast<int>(args.get("port", 0LL));
  const std::string target = args.get("path", std::string("/metrics"));
  const bool post = args.get("post", std::string("false")) == "true";
  args.finish();
  if (port <= 0) {
    std::fprintf(stderr, "fetch: --port is required\n");
    return 2;
  }
  std::string error;
  const auto response =
      serve::http_request(host, port, post ? "POST" : "GET", target, {}, &error);
  if (!response.has_value()) {
    std::fprintf(stderr, "fetch: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s\n", response->body.c_str());
  return response->status < 400 ? 0 : 1;
}

/// Owns the run's recorder state and guarantees the process-global active
/// pointers never outlive it, whichever way run() exits.
struct RecorderSession {
  std::unique_ptr<obs::RunJournal> journal;
  std::unique_ptr<obs::ProgressMeter> progress;
  ~RecorderSession() {
    obs::set_active_journal(nullptr);
    obs::set_active_progress(nullptr);
  }
};

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const std::set<std::string> boolean_flags{"simpoints",  "asymmetric",   "coherence",
                                            "progress",   "no-simd",      "pareto",
                                            "surrogate",  "no-surrogate", "large-axes",
                                            "wait",       "post"};
  const Args args(argc, argv, 2, boolean_flags);

  // Cross-command flags; read before dispatch so the per-command finish()
  // does not reject them as unknown.
  const auto threads = args.get("threads", 0LL);
  if (threads < 0) {
    std::fprintf(stderr, "c2b: --threads must be >= 1\n");
    return 2;
  }
  if (threads > 0) exec::set_thread_count(static_cast<std::size_t>(threads));
  const std::string metrics_out = args.get("metrics-out", std::string(""));
  const std::string trace_out = args.get("trace-out", std::string(""));
  const auto sample_period = args.get("span-sample-period", 1LL);
  if (sample_period > 1)
    obs::set_span_sample_period(static_cast<std::uint32_t>(sample_period));

  RecorderSession recorder;
  const std::string journal_out = args.get("journal-out", std::string(""));
  if (!journal_out.empty()) {
    recorder.journal = obs::RunJournal::open(journal_out);
    if (recorder.journal == nullptr) {
      std::fprintf(stderr, "c2b: cannot open journal %s\n", journal_out.c_str());
      return 1;
    }
    obs::set_active_journal(recorder.journal.get());
  }
  // `--progress` renders at the default interval; `--progress=N` overrides
  // it (milliseconds; 0 redraws on every update).
  if (const auto interval_ms = args.get_opt("progress", 500)) {
    obs::ProgressMeter::Options options;
    options.interval_ms = *interval_ms > 0 ? static_cast<std::uint64_t>(*interval_ms) : 0;
    recorder.progress = std::make_unique<obs::ProgressMeter>(options);
    obs::set_active_progress(recorder.progress.get());
  }

  if (recorder.journal != nullptr) {
    obs::JournalEvent event("run_begin");
    event.str("command", command);
    event.count("threads", exec::thread_count());
    std::string argv_line;
    for (int i = 2; i < argc; ++i) {
      if (!argv_line.empty()) argv_line += ' ';
      argv_line += argv[i];
    }
    event.str("argv", argv_line);
    recorder.journal->emit(event);
  }

  int rc;
  if (command == "workloads") rc = cmd_workloads(args);
  else if (command == "characterize") rc = cmd_characterize(args);
  else if (command == "optimize") rc = cmd_optimize(args);
  else if (command == "simulate") rc = cmd_simulate(args);
  else if (command == "trace") rc = cmd_trace(args);
  else if (command == "aps") rc = cmd_aps(args);
  else if (command == "dse") rc = cmd_dse(args);
  else if (command == "report") rc = cmd_report(args);
  else if (command == "check") rc = cmd_check(args);
  else if (command == "serve") rc = cmd_serve(args);
  else if (command == "submit") rc = cmd_submit(args);
  else if (command == "fetch") rc = cmd_fetch(args);
  else return usage();

  if (recorder.progress != nullptr) {
    recorder.progress->finish();
    obs::set_active_progress(nullptr);
    std::fputs(recorder.progress->summary().c_str(), stdout);
  }
  if (recorder.journal != nullptr) {
    recorder.journal->snapshot_metrics(/*force=*/true);
    recorder.journal->emit(obs::JournalEvent("run_end")
                               .count("exit_code", static_cast<std::uint64_t>(rc))
                               .num("wall_ms", recorder.journal->elapsed_ms()));
    recorder.journal->flush();
    obs::set_active_journal(nullptr);
    std::printf("journal written to %s (%llu events)\n", journal_out.c_str(),
                static_cast<unsigned long long>(recorder.journal->written_events()));
  }
  // Uniform end-of-run drop accounting: any nonzero counter means the
  // observability record is incomplete, which deserves a loud note even
  // when the run itself succeeded.
  for (const obs::DropCounter& counter : obs::drop_counters(recorder.journal.get()))
    if (counter.dropped > 0)
      std::fprintf(stderr, "c2b: warning: %s dropped %llu event(s)\n",
                   counter.name.c_str(),
                   static_cast<unsigned long long>(counter.dropped));

  if (!metrics_out.empty()) {
    const bool csv = metrics_out.size() >= 4 &&
                     metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0;
    const bool ok = csv ? obs::write_metrics_csv(metrics_out)
                        : obs::write_metrics_json(metrics_out);
    if (ok) std::printf("metrics written to %s\n", metrics_out.c_str());
    else if (rc == 0) rc = 1;
  }
  if (!trace_out.empty()) {
    if (obs::write_chrome_trace(trace_out))
      std::printf("trace written to %s (%zu events)\n", trace_out.c_str(),
                  obs::collect_trace_events().size());
    else if (rc == 0) rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace c2b::cli

int main(int argc, char** argv) {
  try {
    return c2b::cli::run(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "c2b: %s\n", error.what());
    return 1;
  }
}
