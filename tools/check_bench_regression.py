#!/usr/bin/env python3
"""Gate CI on benchmark throughput (and, where baselined, speedup).

Usage: check_bench_regression.py CURRENT_JSON BASELINE_JSON [--tolerance FRAC]

Compares every metric named in each baseline scenario — `accesses_per_sec`
always, `speedup` when the baseline entry carries one — against a freshly
produced BENCH_*.json and fails (exit 1) when any metric runs more than
--tolerance (default 0.20) below its baseline. The committed baselines are
deliberately set below typical runner numbers so machine-to-machine
variance does not trip the gate — only a genuine regression should.
"""

import argparse
import json
import sys


def load_scenarios(path):
    with open(path) as f:
        doc = json.load(f)
    return {s["name"]: s for s in doc.get("scenarios", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional shortfall vs baseline (default 0.20)")
    args = parser.parse_args()

    current = load_scenarios(args.current)
    baseline = load_scenarios(args.baseline)
    if not baseline:
        print(f"error: no scenarios in baseline {args.baseline}", file=sys.stderr)
        return 2

    failed = False
    for name, base in baseline.items():
        if name not in current:
            print(f"FAIL {name}: scenario missing from {args.current}")
            failed = True
            continue
        metrics = ["accesses_per_sec"]
        if "speedup" in base:
            metrics.append("speedup")
        for metric in metrics:
            base_value = float(base[metric])
            cur_value = float(current[name][metric])
            floor = base_value * (1.0 - args.tolerance)
            verdict = "FAIL" if cur_value < floor else "ok"
            print(f"{verdict:4} {name}: {metric} {cur_value:,.2f} "
                  f"(baseline {base_value:,.2f}, floor {floor:,.2f})")
            if cur_value < floor:
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
