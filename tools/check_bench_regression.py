#!/usr/bin/env python3
"""Gate CI on benchmark throughput (and, where baselined, speedup/overhead).

Usage: check_bench_regression.py CURRENT_JSON BASELINE_JSON [--tolerance FRAC]

Compares the metrics each baseline scenario names — `accesses_per_sec` and
`speedup` when present are floors (current must reach baseline minus
--tolerance, default 0.20), and any `max_<metric>` key is a hard ceiling on
the measured `<metric>` (no tolerance: ceilings gate A/B deltas and
coverage ratios, already machine-speed independent) — e.g.
`max_overhead_pct` caps `overhead_pct` and `max_classes_simulated_pct`
caps `classes_simulated_pct`. Fails (exit 1) on any violation. The
committed floor baselines are deliberately set below typical runner
numbers so machine-to-machine variance does not trip the gate — only a
genuine regression should.
"""

import argparse
import json
import sys


def load_scenarios(path):
    with open(path) as f:
        doc = json.load(f)
    return {s["name"]: s for s in doc.get("scenarios", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional shortfall vs baseline (default 0.20)")
    args = parser.parse_args()

    current = load_scenarios(args.current)
    baseline = load_scenarios(args.baseline)
    if not baseline:
        print(f"error: no scenarios in baseline {args.baseline}", file=sys.stderr)
        return 2

    failed = False
    for name, base in baseline.items():
        if name not in current:
            print(f"FAIL {name}: scenario missing from {args.current}")
            failed = True
            continue
        checked = False
        for metric in ("accesses_per_sec", "speedup"):
            if metric not in base:
                continue
            checked = True
            base_value = float(base[metric])
            cur_value = float(current[name][metric])
            floor = base_value * (1.0 - args.tolerance)
            verdict = "FAIL" if cur_value < floor else "ok"
            print(f"{verdict:4} {name}: {metric} {cur_value:,.2f} "
                  f"(baseline {base_value:,.2f}, floor {floor:,.2f})")
            if cur_value < floor:
                failed = True
        for key, base_value in base.items():
            if not key.startswith("max_"):
                continue
            metric = key[len("max_"):]
            if metric not in current[name]:
                print(f"FAIL {name}: ceiling {key} names missing metric {metric}")
                failed = True
                continue
            checked = True
            ceiling = float(base_value)
            cur_value = float(current[name][metric])
            verdict = "FAIL" if cur_value > ceiling else "ok"
            print(f"{verdict:4} {name}: {metric} {cur_value:+.2f} "
                  f"(ceiling {ceiling:.2f})")
            if cur_value > ceiling:
                failed = True
        if not checked:
            print(f"FAIL {name}: baseline names no known metric")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
