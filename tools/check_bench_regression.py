#!/usr/bin/env python3
"""Gate CI on simulator-kernel benchmark throughput.

Usage: check_bench_regression.py CURRENT_JSON BASELINE_JSON [--tolerance FRAC]

Compares the `accesses_per_sec` of every scenario named in the baseline
against a freshly produced BENCH_sim_kernel.json and fails (exit 1) when
any scenario runs more than --tolerance (default 0.20) below its baseline.
The committed baseline is deliberately set below typical runner throughput
so machine-to-machine variance does not trip the gate — only a genuine
kernel regression should.
"""

import argparse
import json
import sys


def load_scenarios(path):
    with open(path) as f:
        doc = json.load(f)
    return {s["name"]: s for s in doc.get("scenarios", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional shortfall vs baseline (default 0.20)")
    args = parser.parse_args()

    current = load_scenarios(args.current)
    baseline = load_scenarios(args.baseline)
    if not baseline:
        print(f"error: no scenarios in baseline {args.baseline}", file=sys.stderr)
        return 2

    failed = False
    for name, base in baseline.items():
        if name not in current:
            print(f"FAIL {name}: scenario missing from {args.current}")
            failed = True
            continue
        base_tput = float(base["accesses_per_sec"])
        cur_tput = float(current[name]["accesses_per_sec"])
        floor = base_tput * (1.0 - args.tolerance)
        verdict = "FAIL" if cur_tput < floor else "ok"
        print(f"{verdict:4} {name}: {cur_tput:,.0f} accesses/s "
              f"(baseline {base_tput:,.0f}, floor {floor:,.0f})")
        if cur_tput < floor:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
