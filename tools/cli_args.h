#pragma once

// Minimal flag parser for the c2b command-line tool: supports
// `--flag value`, `--flag=value`, and boolean `--flag`. Unknown flags are
// an error (typos should not silently do nothing).

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace c2b::cli {

class Args {
 public:
  /// Parse argv[first..). `boolean_flags` take no value.
  Args(int argc, char** argv, int first, std::set<std::string> boolean_flags = {});

  bool has(const std::string& flag) const { return values_.count(flag) > 0; }

  std::string get(const std::string& flag, const std::string& fallback) const;
  double get(const std::string& flag, double fallback) const;
  long long get(const std::string& flag, long long fallback) const;

  /// Optional-value flag (`--progress` / `--progress=N`): nullopt when the
  /// flag is absent, `bare_value` when present with no `=value` (the flag
  /// must be registered as boolean so the parser does not eat the next
  /// token), the parsed number otherwise.
  std::optional<long long> get_opt(const std::string& flag, long long bare_value) const;

  /// Flags that were parsed but never queried — call at the end to reject
  /// typos (`finish()` throws listing them).
  void mark_used(const std::string& flag) const { used_.insert(flag); }
  void finish() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

inline Args::Args(int argc, char** argv, int first, std::set<std::string> boolean_flags) {
  for (int i = first; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0)
      throw std::invalid_argument("expected a --flag, got '" + token + "'");
    token.erase(0, 2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    if (boolean_flags.count(token) > 0) {
      values_[token] = "true";
      continue;
    }
    if (i + 1 >= argc)
      throw std::invalid_argument("flag --" + token + " needs a value");
    values_[token] = argv[++i];
  }
}

inline std::string Args::get(const std::string& flag, const std::string& fallback) const {
  mark_used(flag);
  const auto it = values_.find(flag);
  return it == values_.end() ? fallback : it->second;
}

inline double Args::get(const std::string& flag, double fallback) const {
  mark_used(flag);
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + flag + " needs a number, got '" +
                                it->second + "'");
  }
}

inline long long Args::get(const std::string& flag, long long fallback) const {
  mark_used(flag);
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + flag + " needs an integer, got '" +
                                it->second + "'");
  }
}

inline std::optional<long long> Args::get_opt(const std::string& flag,
                                              long long bare_value) const {
  mark_used(flag);
  const auto it = values_.find(flag);
  if (it == values_.end()) return std::nullopt;
  if (it->second == "true") return bare_value;  // bare boolean form
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + flag + " needs an integer, got '" +
                                it->second + "'");
  }
}

inline void Args::finish() const {
  std::string unknown;
  for (const auto& [flag, value] : values_) {
    (void)value;
    if (used_.count(flag) == 0) unknown += " --" + flag;
  }
  if (!unknown.empty()) throw std::invalid_argument("unknown flag(s):" + unknown);
}

}  // namespace c2b::cli
