// Extension bench (paper Section VII future work): reshaping the Eq. (10)
// objective to balance performance against power/energy. Prints the
// per-objective optima (time / energy / EDP / ED²P) and the time-energy
// Pareto front over core counts.

#include <cstdio>

#include "bench_util.h"
#include "c2b/core/energy.h"

namespace c2b::bench {
namespace {

EnergyAwareModel make_model() {
  AppProfile app;
  app.ic0 = 1e6;
  app.f_mem = 0.35;
  app.f_seq = 0.05;
  app.overlap_ratio = 0.3;
  app.working_set_lines0 = 1 << 15;
  app.g = ScalingFunction::fixed();  // fixed problem: time rewards parallelism
  app.hit_concurrency = 2.0;
  app.miss_concurrency = 3.0;
  app.pure_miss_fraction = 0.6;
  app.pure_penalty_fraction = 0.8;

  MachineProfile machine;
  machine.chip.total_area = 96.0;
  machine.chip.shared_area = 8.0;
  machine.memory_contention = 0.05;
  EnergyModel energy;
  energy.leakage_per_area_cycle = 5e-3;  // leakage matters: slow chips pay
  return EnergyAwareModel(C2BoundModel(app, machine), energy);
}

void bm_energy_evaluate(benchmark::State& state) {
  const EnergyAwareModel model = make_model();
  const c2b::DesignPoint d{.n_cores = 8, .a0 = 2.0, .a1 = 1.0, .a2 = 2.0};
  for (auto _ : state) benchmark::DoNotOptimize(model.evaluate(d).edp);
}
BENCHMARK(bm_energy_evaluate);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  OptimizerOptions options;
  options.n_max = 32;
  options.nelder_mead_restarts = 5;
  const EnergyAwareOptimizer optimizer(make_model(), options);

  Table optima({"objective", "N", "a0", "a1", "a2", "time", "energy", "EDP"}, 4);
  const std::pair<DesignObjective, const char*> objectives[] = {
      {DesignObjective::kTime, "min time"},
      {DesignObjective::kEnergy, "min energy"},
      {DesignObjective::kEdp, "min EDP"},
      {DesignObjective::kEd2p, "min ED^2P"},
  };
  for (const auto& [objective, label] : objectives) {
    const EnergyOptimum result = optimizer.optimize(objective);
    const DesignPoint& d = result.best.performance.design;
    optima.add_row({std::string(label), d.n_cores, d.a0, d.a1, d.a2,
                    result.best.performance.execution_time, result.best.total_energy,
                    result.best.edp});
  }
  emit("Extension: multi-objective C²-Bound optima", optima, "ext_energy_optima");

  Table front({"N", "a0", "a1", "a2", "time", "energy", "avg power"}, 4);
  for (const ParetoPoint& p : optimizer.pareto_front()) {
    const DesignPoint& d = p.eval.performance.design;
    front.add_row({d.n_cores, d.a0, d.a1, d.a2, p.eval.performance.execution_time,
                   p.eval.total_energy, p.eval.average_power});
  }
  emit("Extension: time-energy Pareto front over core counts", front, "ext_energy_pareto");

  std::printf("[shape] the time-optimal chip spends big cores and area freely; the\n"
              "        energy-optimal chip runs fewer, leaner cores; EDP/ED^2P land\n"
              "        between them along the Pareto front.\n");
  return run_benchmarks(argc, argv);
}
