// Fig. 13 reproduction: APC (accesses per memory-active cycle) measured at
// each layer of the memory hierarchy — L1 (APC_1), LLC (APC_2), and main
// memory (APC_3) — for the workload catalog, via the cycle-level simulator
// and the per-layer interval counters. The paper's takeaway: a large gap
// between on-chip and off-chip APC, justifying treating the *on-chip*
// capacity as the binding memory bound of the C²-Bound model.

#include <cstdio>

#include "bench_util.h"
#include "c2b/common/stats.h"
#include "c2b/sim/system/system.h"
#include "c2b/trace/workloads.h"

namespace c2b::bench {
namespace {

c2b::sim::SystemConfig measurement_system() {
  c2b::sim::SystemConfig config;
  config.core.issue_width = 4;
  config.core.rob_size = 128;
  config.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                  .associativity = 4};
  config.hierarchy.l2_geometry = {.size_bytes = 1024 * 1024, .line_bytes = 64,
                                  .associativity = 8};
  return config;
}

void bm_simulator_throughput(benchmark::State& state) {
  const c2b::WorkloadSpec spec = c2b::make_stencil_workload(128);
  const c2b::Trace trace = spec.make_generator(1.0, 1)->generate(50'000);
  const auto config = measurement_system();
  for (auto _ : state) {
    benchmark::DoNotOptimize(c2b::sim::simulate_single_core(config, trace).cycles);
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(bm_simulator_throughput)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  const sim::SystemConfig config = measurement_system();
  Table table({"benchmark", "APC_1 (L1)", "APC_2 (LLC)", "APC_3 (DRAM)", "APC1/APC3"}, 4);

  std::vector<double> gaps;
  for (const WorkloadSpec& spec : workload_catalog()) {
    const Trace trace = spec.make_generator(1.0, 7)->generate(250'000);
    const sim::SystemResult result = sim::simulate_single_core(config, trace);
    const sim::HierarchyStats& h = result.hierarchy;
    const double apc3 = h.apc_mem;
    const double gap = apc3 > 0.0 ? h.apc_l1 / apc3 : 0.0;
    if (apc3 > 0.0) gaps.push_back(gap);
    table.add_row({spec.name, h.apc_l1, h.apc_l2, apc3, gap});
  }
  emit("Fig. 13: APC values at each layer of the memory hierarchy", table, "fig13_apc");

  if (!gaps.empty()) {
    std::printf("[shape] geometric-mean APC_1/APC_3 gap: %.1fx — the on/off-chip cliff the\n"
                "        paper uses to argue the memory bound is the ON-CHIP bound.\n",
                geomean_of(gaps));
  }
  return run_benchmarks(argc, argv);
}
