// Thread-scaling benchmark for the parallel execution layer: run the
// full-factorial DSE sweep at threads in {1, 2, 4, hw} and report wall time
// and speedup vs the serial run, then demonstrate the memoized simulation
// cache on a repeated APS neighborhood. Emits BENCH_dse_scaling.json next
// to the binary's working directory for CI artifact collection.
//
// The sweep is bit-identical at every thread count (asserted here as well
// as in tests/test_parallel_determinism.cpp), so the timing comparison is
// apples to apples: same simulations, same results, different schedules.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "c2b/aps/aps.h"
#include "c2b/exec/pool.h"
#include "c2b/exec/sim_cache.h"

namespace c2b::bench {
namespace {

DseAxes scaling_axes() {
  // Smaller than the fig12 grid: the sweep runs 4+ times here (once per
  // thread count), and the scaling *curve* is what this bench measures,
  // not ground-truth coverage.
  DseAxes axes;
  axes.a0 = {0.5, 1.0, 2.0};
  axes.a1 = {0.25, 0.5};
  axes.a2 = {0.5, 1.0};
  axes.n = {1, 2, 4};
  axes.issue = {2, 4};
  axes.rob = {32, 128};
  return axes;
}

DseContext make_context() {
  DseContext context;
  context.base.core.issue_width = 4;
  context.base.core.rob_size = 128;
  context.base.hierarchy.l1_geometry = {.size_bytes = 16 * 1024, .line_bytes = 64,
                                        .associativity = 4};
  context.base.hierarchy.l2_geometry = {.size_bytes = 256 * 1024, .line_bytes = 64,
                                        .associativity = 8};
  context.workload = make_fluidanimate_like_workload(1 << 14);
  context.instructions0 = 12'000;
  context.per_core_cap = 6'000;
  context.chip.total_area = 26.0;
  context.chip.shared_area = 2.0;
  return context;
}

double wall_ms(const std::chrono::steady_clock::time_point& start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

struct ScalingPoint {
  std::size_t threads = 0;
  double ms = 0.0;
  double speedup = 0.0;
};

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  const DseContext context = make_context();
  const GridSpace space = make_design_space(scaling_axes());
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  // ---- Sweep scaling (memoization off: measure the sweep, not the cache).
  exec::SimCache& cache = exec::SimCache::global();
  cache.set_enabled(false);

  // Untimed warmup so first-touch costs don't land on the serial baseline.
  exec::set_thread_count(hw);
  const FullDseResult reference = run_full_dse(context, space);

  std::vector<ScalingPoint> points;
  for (const std::size_t threads : thread_counts) {
    exec::set_thread_count(threads);
    const auto start = std::chrono::steady_clock::now();
    const FullDseResult result = run_full_dse(context, space);
    ScalingPoint point;
    point.threads = threads;
    point.ms = wall_ms(start);
    points.push_back(point);
    if (result.best_index != reference.best_index ||
        result.best_time != reference.best_time) {
      std::fprintf(stderr, "determinism violated at threads=%zu\n", threads);
      return 1;
    }
  }
  for (ScalingPoint& point : points) point.speedup = points.front().ms / point.ms;

  Table table({"threads", "wall (ms)", "speedup vs 1 thread"}, 2);
  for (const ScalingPoint& point : points)
    table.add_row({static_cast<std::int64_t>(point.threads), point.ms, point.speedup});
  emit("DSE sweep thread scaling (" + std::to_string(space.size()) + " designs)", table,
       "dse_scaling");

  // ---- Memoization demo: repeated APS neighborhood on a warm cache.
  cache.set_enabled(true);
  cache.clear();
  exec::set_thread_count(hw);
  ApsOptions aps_options;
  aps_options.characterize.instructions = 60'000;

  const auto cold_start = std::chrono::steady_clock::now();
  const ApsResult cold = run_aps(context, space, aps_options);
  const double cold_ms = wall_ms(cold_start);
  const auto warm_start = std::chrono::steady_clock::now();
  const ApsResult warm = run_aps(context, space, aps_options);
  const double warm_ms = wall_ms(warm_start);
  const exec::SimCacheStats stats = cache.stats();
  const double hit_rate =
      stats.hits + stats.misses == 0
          ? 0.0
          : static_cast<double>(stats.hits) / static_cast<double>(stats.hits + stats.misses);
  if (warm.best_index != cold.best_index || warm.best_time != cold.best_time) {
    std::fprintf(stderr, "memoized APS result diverged from cold run\n");
    return 1;
  }
  std::printf("\nsim cache: cold APS %.1f ms, warm APS %.1f ms; %llu hits / %llu misses "
              "(hit rate %.1f%%)\n",
              cold_ms, warm_ms, static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses), 100.0 * hit_rate);

  // ---- Machine-readable summary for CI.
  if (std::FILE* out = std::fopen("BENCH_dse_scaling.json", "w")) {
    std::fprintf(out, "{\n  \"bench\": \"dse_scaling\",\n  \"space_points\": %zu,\n",
                 space.size());
    std::fprintf(out, "  \"hardware_concurrency\": %zu,\n  \"sweep\": [\n", hw);
    for (std::size_t i = 0; i < points.size(); ++i)
      std::fprintf(out, "    {\"threads\": %zu, \"wall_ms\": %.3f, \"speedup\": %.3f}%s\n",
                   points[i].threads, points[i].ms, points[i].speedup,
                   i + 1 < points.size() ? "," : "");
    std::fprintf(out,
                 "  ],\n  \"sim_cache\": {\"cold_aps_ms\": %.3f, \"warm_aps_ms\": %.3f, "
                 "\"hits\": %llu, \"misses\": %llu, \"hit_rate\": %.4f}\n}\n",
                 cold_ms, warm_ms, static_cast<unsigned long long>(stats.hits),
                 static_cast<unsigned long long>(stats.misses), hit_rate);
    std::fclose(out);
    std::printf("[json] BENCH_dse_scaling.json\n");
  }

  exec::set_thread_count(0);
  return run_benchmarks(argc, argv);
}
