// Fig. 7 reproduction: core allocation for multiple tasks in a CMP. Three
// applications — (1) large f_seq and low memory concurrency C, (2) small
// f_seq and high C, (3) in between — share one chip; the C²-Bound-driven
// allocator hands out cores by marginal utility.

#include <cstdio>

#include "bench_util.h"
#include "c2b/core/multitask.h"

namespace c2b::bench {
namespace {

c2b::AppProfile app(double f_seq, double concurrency) {
  c2b::AppProfile a;
  a.ic0 = 1e6;
  a.f_mem = 0.4;
  a.f_seq = f_seq;
  a.overlap_ratio = 0.3;
  a.working_set_lines0 = 1 << 15;
  a.g = c2b::ScalingFunction::linear();
  a.hit_concurrency = concurrency;
  a.miss_concurrency = concurrency;
  a.pure_miss_fraction = 0.7;
  a.pure_penalty_fraction = 0.8;
  return a;
}

std::vector<c2b::TaskProfile> tasks() {
  return {{.name = "app1 (f_seq=0.50, C~1)", .app = app(0.5, 1.0), .priority = 1.0},
          {.name = "app2 (f_seq=0.01, C~8)", .app = app(0.01, 8.0), .priority = 1.0},
          {.name = "app3 (f_seq=0.15, C~2)", .app = app(0.15, 2.0), .priority = 1.0}};
}

void bm_allocate(benchmark::State& state) {
  c2b::MachineProfile machine;
  machine.chip.total_area = 512.0;
  machine.chip.shared_area = 32.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c2b::allocate_cores(tasks(), machine, 32).aggregate_utility);
  }
}
BENCHMARK(bm_allocate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace c2b::bench

int main(int argc, char** argv) {
  using namespace c2b;
  using namespace c2b::bench;

  MachineProfile machine;
  machine.chip.total_area = 512.0;
  machine.chip.shared_area = 32.0;

  for (const long long total : {16LL, 32LL, 64LL}) {
    const MultiTaskResult r = allocate_cores(tasks(), machine, total);
    Table table({"application", "cores", "share %", "throughput", "C at allocation"}, 4);
    for (const TaskAllocation& a : r.allocations) {
      table.add_row({a.name, a.cores,
                     100.0 * static_cast<double>(a.cores) / static_cast<double>(total),
                     a.throughput, a.concurrency_c});
    }
    emit("Fig. 7: core allocation for multiple tasks (total = " + std::to_string(total) + ")",
         table, "fig7_multitask_" + std::to_string(total));
  }

  std::printf("[shape] the high-f_seq/low-C app receives the fewest cores and the\n"
              "        low-f_seq/high-C app the most, matching the paper's Fig. 7.\n");
  return run_benchmarks(argc, argv);
}
